/**
 * @file
 * Ablation for the measurement filter depth (§4.3 / Fig. 7): sweep the
 * number of combined measurement rounds and report coverage, logical
 * error rate, and ERSFQ hardware cost together.
 *
 * Expected shape: one round is useless (every transient measurement
 * flip looks complex); two rounds (the paper's design) recover nearly
 * all coverage; additional rounds buy a little more accuracy at high
 * distance for a modest DFF/JJ cost (the §7.3 trade-off).
 */

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sfq/clique_circuit.hpp"
#include "sfq/cost.hpp"
#include "sfq/synth.hpp"
#include "sim/lifetime.hpp"
#include "sim/memory.hpp"
#include "surface/lattice.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "ablation_filter_rounds");
    const uint64_t cycles = bench_cycles(flags, 20000, 1000000);
    const uint64_t trials =
        static_cast<uint64_t>(flags.get_int("trials", 4000));
    const int distance = static_cast<int>(flags.get_int("distance", 9));
    const double p = flags.get_double("p", 8e-3);
    const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 1));

    bench_header("Ablation: measurement filter rounds (Fig. 7)",
                 "Coverage, logical error rate and hardware cost as a "
                 "function of the persistence window.");
    std::printf("d=%d, p=%g\n\n", distance, p);

    const RotatedSurfaceCode code(distance);
    const ErsfqOperatingPoint op;

    MemoryConfig base;
    base.distance = distance;
    base.p = p;
    base.max_trials = trials;
    base.target_failures = trials;  // fixed-trial comparison
    base.seed = seed;
    const MemoryResult baseline =
        run_memory_experiment(base, DecoderArm::MwpmOnly);

    Table table({"rounds", "coverage_%", "LER", "LER_vs_baseline",
                 "JJs", "power_uW", "latency_ns"});
    for (const int rounds : {1, 2, 3, 4}) {
        LifetimeConfig lconfig;
        lconfig.distance = distance;
        lconfig.p = p;
        lconfig.cycles = cycles;
        lconfig.filter_rounds = rounds;
        lconfig.threads = threads_from_flags(flags);
        lconfig.seed = seed;
        const LifetimeStats stats = run_lifetime(lconfig);

        MemoryConfig mconfig = base;
        mconfig.filter_rounds = rounds;
        const MemoryResult hybrid =
            run_memory_experiment(mconfig, DecoderArm::CliqueMwpm);

        const SynthesisResult synth =
            synthesize(build_clique_netlist(code, rounds));
        table.add_row(
            {std::to_string(rounds),
             Table::num(100.0 * stats.coverage_per_decode(), 2),
             Table::sci(hybrid.ler(), 2),
             baseline.ler() > 0
                 ? Table::num(hybrid.ler() / baseline.ler(), 2)
                 : "-",
             std::to_string(synth.jj_count),
             Table::num(op.power_uw(synth), 1),
             Table::num(synth.critical_path_ps / 1000.0, 3)});
    }
    if (flags.get_bool("csv")) {
        std::fputs(table.to_csv().c_str(), stdout);
    } else {
        table.print();
    }
    std::printf("\nbaseline (MWPM-only) LER at these settings: %s over "
                "%llu trials\n",
                Table::sci(baseline.ler(), 2).c_str(),
                static_cast<unsigned long long>(baseline.trials));
    std::printf("Expected shape: rounds=1 collapses coverage; rounds=2 "
                "(paper) recovers it; more rounds nudge the LER toward "
                "the baseline for ~linear DFF cost.\n");
    json.report().set("distance", distance);
    json.report().set("p", p);
    json.report().set("baseline_ler", baseline.ler());
    json.add_table("sweep", table);
    return json.finish();
}
