/**
 * @file
 * Ablation for the §8.1 "deeper hierarchy" extension: insert a
 * Union-Find mid-tier between Clique and MWPM and sweep its
 * escalation threshold.
 *
 * For each configuration this prints the fraction of decodes resolved
 * at each tier, the residual MWPM (off-chip) fraction, and the rate of
 * logical disagreement with MWPM-only decoding on the same syndromes.
 * Expected shape: the UF tier absorbs most of Clique's COMPLEX
 * hand-offs (a further order-of-magnitude off-chip reduction) at a
 * sub-percent accuracy cost.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/hierarchy.hpp"
#include "matching/mwpm.hpp"
#include "surface/frame.hpp"
#include "surface/lattice.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "ablation_hierarchy");
    const uint64_t cycles = bench_cycles(flags, 20000, 1000000);
    const int distance = static_cast<int>(flags.get_int("distance", 9));
    const double p = flags.get_double("p", 5e-3);
    const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 1));

    bench_header("Ablation: decode hierarchy (Clique -> UF -> MWPM)",
                 "§8.1 extension: a Union-Find mid-tier absorbs most "
                 "of Clique's COMPLEX hand-offs before the exact "
                 "matcher.");
    std::printf("d=%d, p=%g, %llu sampled signatures per row\n\n",
                distance, p, static_cast<unsigned long long>(cycles));

    const RotatedSurfaceCode code(distance);
    const MwpmDecoder mwpm(code, CheckType::Z);

    Table table({"uf_threshold", "clique_%", "uf_%", "mwpm_%",
                 "offchip_reduction_x", "logical_disagree_%"});
    for (const int threshold : {0, 1, 2, 4, 8}) {
        HierarchyConfig config;
        config.uf_growth_threshold = threshold;
        const HierarchicalDecoder hier(code, CheckType::Z, config);

        Rng rng(seed);
        ErrorFrame frame(code, CheckType::X);
        std::vector<uint8_t> syndrome;
        uint64_t tier_count[3] = {0, 0, 0};
        uint64_t disagreements = 0;
        for (uint64_t i = 0; i < cycles; ++i) {
            frame.reset();
            frame.inject(p, rng);
            frame.measure_perfect(syndrome);
            const auto result = hier.decode(syndrome);
            ++tier_count[static_cast<int>(result.tier)];
            if (result.tier != DecoderTier::Clique) {
                ErrorFrame hier_frame = frame;
                ErrorFrame mwpm_frame = frame;
                hier_frame.apply_mask(result.correction);
                mwpm_frame.apply_mask(
                    mwpm.decode_syndrome(syndrome).correction);
                disagreements += hier_frame.logical_flipped() !=
                                         mwpm_frame.logical_flipped()
                                     ? 1
                                     : 0;
            }
        }
        const double denom = static_cast<double>(cycles);
        const double mwpm_frac = tier_count[2] / denom;
        table.add_row(
            {threshold == 0 ? "off (paper)" : std::to_string(threshold),
             Table::num(100.0 * tier_count[0] / denom, 2),
             Table::num(100.0 * tier_count[1] / denom, 2),
             Table::num(100.0 * mwpm_frac, 3),
             mwpm_frac > 0 ? Table::num(1.0 / mwpm_frac, 0) : "inf",
             Table::num(100.0 * disagreements / denom, 4)});
    }
    if (flags.get_bool("csv")) {
        std::fputs(table.to_csv().c_str(), stdout);
    } else {
        table.print();
    }
    std::printf("\nExpected shape: the UF tier cuts the MWPM fraction "
                "by ~10x over the paper's two-level design at "
                "negligible logical disagreement.\n");
    json.report().set("distance", distance);
    json.report().set("p", p);
    json.report().set("cycles", cycles);
    json.add_table("sweep", table);
    return json.finish();
}
