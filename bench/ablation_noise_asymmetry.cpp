/**
 * @file
 * Ablation: robustness to asymmetric noise (p_meas != p_data).
 *
 * The paper's evaluation uses a single parameter for both channels.
 * Real devices disagree: readout error typically exceeds the per-cycle
 * data error. This ablation sweeps the measurement/data error ratio
 * and reports (a) Clique coverage -- noisier measurement stresses the
 * Fig. 7 filter -- and (b) the logical error rate of the MWPM baseline
 * with unit vs log-likelihood edge weights, quantifying what the
 * weighted-matching extension buys once the symmetry assumption
 * breaks.
 */

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/lifetime.hpp"
#include "sim/memory.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "ablation_noise_asymmetry");
    const uint64_t cycles = bench_cycles(flags, 20000, 1000000);
    const uint64_t trials =
        static_cast<uint64_t>(flags.get_int("trials", 6000));
    const int distance = static_cast<int>(flags.get_int("distance", 7));
    const double p_data = flags.get_double("p", 8e-3);
    const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 1));

    bench_header("Ablation: measurement/data noise asymmetry",
                 "Clique coverage and baseline LER (unit vs "
                 "log-likelihood matching weights) as p_meas/p_data "
                 "varies.");
    std::printf("d=%d, p_data=%g, %llu trials per LER cell\n\n", distance,
                p_data, static_cast<unsigned long long>(trials));

    Table table({"p_meas/p_data", "coverage_%", "LER_unit_w",
                 "LER_loglik_w", "weighted_gain_x"});
    for (const double ratio : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        const double p_meas = p_data * ratio;

        LifetimeConfig lconfig;
        lconfig.distance = distance;
        lconfig.p = p_data;
        lconfig.p_meas = p_meas;
        lconfig.cycles = cycles;
        lconfig.threads = threads_from_flags(flags);
        lconfig.seed = seed;
        const LifetimeStats stats = run_lifetime(lconfig);

        MemoryConfig mconfig;
        mconfig.distance = distance;
        mconfig.p = p_data;
        mconfig.p_meas = p_meas;
        mconfig.max_trials = trials;
        mconfig.target_failures = trials;
        mconfig.seed = seed;
        const MemoryResult unit =
            run_memory_experiment(mconfig, DecoderArm::MwpmOnly);
        mconfig.weighted_matching = true;
        const MemoryResult weighted =
            run_memory_experiment(mconfig, DecoderArm::MwpmOnly);

        table.add_row(
            {Table::num(ratio, 2),
             Table::num(100.0 * stats.coverage_per_decode(), 2),
             Table::sci(unit.ler(), 2), Table::sci(weighted.ler(), 2),
             weighted.ler() > 0
                 ? Table::num(unit.ler() / weighted.ler(), 2)
                 : "-"});
    }
    if (flags.get_bool("csv")) {
        std::fputs(table.to_csv().c_str(), stdout);
    } else {
        table.print();
    }
    std::printf("\nExpected shape: coverage falls as measurement noise "
                "grows (filter stress); log-likelihood weights match or "
                "beat unit weights, most visibly away from ratio 1.\n");
    json.report().set("distance", distance);
    json.report().set("p_data", p_data);
    json.report().set("trials", trials);
    json.add_table("sweep", table);
    return json.finish();
}
