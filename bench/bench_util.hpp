#pragma once

#include <algorithm>
#include <cstdio>
#include <string>

#include "api/json_output.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/fleet.hpp"

namespace btwc {

/**
 * Shared bench-binary conventions.
 *
 * Every figure harness runs with no arguments at a laptop-scale trial
 * count and accepts:
 *   --cycles / --trials  override the Monte-Carlo volume
 *   --paper              restore the paper-scale volume (slow!)
 *   --seed               RNG seed
 *   --threads            Monte-Carlo worker shards (0 = all cores;
 *                        see threads_from_flags / sim/engine.hpp)
 *   --csv                emit CSV instead of the aligned table
 *   --json PATH          also write the run as a JSON Report
 *                        (api/json_output.hpp)
 */
inline uint64_t
bench_cycles(const Flags &flags, uint64_t dflt, uint64_t paper_scale)
{
    if (flags.has("cycles")) {
        return static_cast<uint64_t>(flags.get_int("cycles", dflt));
    }
    return flags.get_bool("paper") ? paper_scale : dflt;
}

inline uint64_t
bench_trials(const Flags &flags, uint64_t dflt, uint64_t paper_scale)
{
    if (flags.has("trials")) {
        return static_cast<uint64_t>(flags.get_int("trials", dflt));
    }
    return flags.get_bool("paper") ? paper_scale : dflt;
}

inline void
bench_header(const char *figure, const char *claim)
{
    std::printf("== %s ==\n%s\n\n", figure, claim);
}

/**
 * Shared binomial-vs-real-demand comparison leg of the provisioning
 * benches (fig09, fig16): run `link.fleet_size` fully simulated
 * pipelines against one shared unlimited off-chip link
 * (core/offchip_service.hpp), print their measured demand percentiles
 * next to Binomial(fleet_size, q) on the same axis, and return the
 * exact-fleet statistics for follow-up runs (e.g. a narrow-link
 * contention point). `q` is the measured per-qubit off-chip
 * probability the binomial model is built from.
 */
inline ExactFleetStats
print_binomial_vs_real_demand(int distance, double p, double q,
                              const FleetLinkFlags &link,
                              uint64_t exact_cycles, uint64_t seed,
                              int threads, uint64_t offchip_latency = 0,
                              uint64_t offchip_batch = 0)
{
    ExactFleetConfig exact;
    exact.distance = distance;
    exact.p = p;
    exact.num_qubits = link.fleet_size;
    exact.cycles = exact_cycles;
    exact.seed = seed;
    exact.threads = threads;
    exact.shared_link = true;
    exact.offchip_latency = offchip_latency;
    exact.offchip_batch = offchip_batch;
    const ExactFleetStats real = fleet_demand_exact_stats(exact);

    FleetConfig small;
    small.num_qubits = link.fleet_size;
    small.offchip_prob = q;
    small.cycles = 100000;
    small.seed = seed;
    small.threads = threads;
    const CountHistogram binomial = fleet_demand_histogram(small);

    std::printf("-- provisioning percentiles, binomial vs real demand "
                "(%d fully simulated qubits, shared link) --\n",
                link.fleet_size);
    Table compare({"percentile", "binomial_B", "real_B"});
    for (const double percentile : {0.5, 0.9, 0.99, 0.999}) {
        compare.add_row(
            {Table::num(100.0 * percentile, 1),
             std::to_string(
                 std::max<uint64_t>(1, binomial.percentile(percentile))),
             std::to_string(std::max<uint64_t>(
                 1, real.demand.percentile(percentile)))});
    }
    compare.print();
    std::printf("binomial demand mean %.2f vs real mean %.2f "
                "(decodes/cycle)\n\n",
                binomial.mean(), real.demand.mean());
    return real;
}

} // namespace btwc
