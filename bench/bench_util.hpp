#pragma once

#include <cstdio>

#include "common/flags.hpp"

namespace btwc {

/**
 * Shared bench-binary conventions.
 *
 * Every figure harness runs with no arguments at a laptop-scale trial
 * count and accepts:
 *   --cycles / --trials  override the Monte-Carlo volume
 *   --paper              restore the paper-scale volume (slow!)
 *   --seed               RNG seed
 *   --threads            Monte-Carlo worker shards (0 = all cores;
 *                        see threads_from_flags / sim/engine.hpp)
 *   --csv                emit CSV instead of the aligned table
 */
inline uint64_t
bench_cycles(const Flags &flags, uint64_t dflt, uint64_t paper_scale)
{
    if (flags.has("cycles")) {
        return static_cast<uint64_t>(flags.get_int("cycles", dflt));
    }
    return flags.get_bool("paper") ? paper_scale : dflt;
}

inline uint64_t
bench_trials(const Flags &flags, uint64_t dflt, uint64_t paper_scale)
{
    if (flags.has("trials")) {
        return static_cast<uint64_t>(flags.get_int("trials", dflt));
    }
    return flags.get_bool("paper") ? paper_scale : dflt;
}

inline void
bench_header(const char *figure, const char *claim)
{
    std::printf("== %s ==\n%s\n\n", figure, claim);
}

} // namespace btwc
