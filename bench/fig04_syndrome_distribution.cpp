/**
 * @file
 * Reproduces Fig. 4: QEC error-signature distribution (All-0s /
 * Local-1s / Complex) for the paper's six (physical error rate,
 * target logical error rate, code distance) configurations.
 *
 * Paper shape: All-0s dominates at low p / low d; Local-1s significant
 * except at low p with high target LER; Complex nearly negligible
 * except at p = 5e-3 with LER 1e-12 (d = 81).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/lifetime.hpp"

namespace {

struct Fig4Config
{
    double p;
    const char *target_ler;
    int distance;
};

// The exact configurations of Fig. 4.
const Fig4Config kConfigs[] = {
    {5e-3, "1e-5", 25}, {5e-3, "1e-12", 81}, {1e-3, "1e-5", 7},
    {1e-3, "1e-12", 21}, {5e-4, "1e-5", 5},  {5e-4, "1e-12", 15},
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "fig04");
    const uint64_t cycles = bench_cycles(flags, 20000, 1000000000ull);
    const uint64_t seed =
        static_cast<uint64_t>(flags.get_int("seed", 1));
    json.report().set("cycles", cycles);
    json.report().set("seed", seed);

    bench_header("Fig. 4: syndrome distribution",
                 "Columns: p / target LER (code distance); rows show "
                 "the All-0s / Local-1s / Complex split per cycle.");

    Table table({"p", "target_LER", "d", "all_0s_%", "local_1s_%",
                 "complex_%", "cycles"});
    for (const Fig4Config &config : kConfigs) {
        LifetimeConfig run;
        run.distance = config.distance;
        run.p = config.p;
        run.cycles = cycles;
        run.threads = threads_from_flags(flags);
        run.seed = seed;
        const LifetimeStats stats = run_lifetime(run);
        // Reported at decode granularity: the X- and Z-half signatures
        // are classified independently, as the paper's per-decoder
        // distribution does.
        const double denom = static_cast<double>(stats.total_halves());
        table.add_row({Table::sci(config.p, 0), config.target_ler,
                       std::to_string(config.distance),
                       Table::num(100.0 * stats.all_zero_halves / denom, 2),
                       Table::num(100.0 * stats.trivial_halves / denom, 2),
                       Table::num(100.0 * stats.complex_halves / denom, 2),
                       std::to_string(stats.cycles)});
    }
    if (flags.get_bool("csv")) {
        std::fputs(table.to_csv().c_str(), stdout);
    } else {
        table.print();
    }
    std::printf("\nPaper check: trivial (All-0s + Local-1s) fraction "
                ">90%% everywhere except the 5e-3/1e-12 column.\n");
    json.add_table("distribution", table);
    return json.finish();
}
