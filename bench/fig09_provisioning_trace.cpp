/**
 * @file
 * Reproduces Fig. 9: a 1000-logical-qubit machine traced over 100
 * decode cycles under 50th- vs 99th-percentile off-chip bandwidth
 * provisioning.
 *
 * Paper shape: median provisioning stalls on the vast majority of
 * cycles (an accumulating decode backlog); 99th-percentile
 * provisioning stalls on at most a cycle or two.
 *
 * The binomial demand model is cross-checked against *real* demand: a
 * small fully simulated fleet whose escalations route through one
 * shared off-chip link (core/offchip_service.hpp, `--shared-link`
 * semantics), with the provisioning percentiles of both models on the
 * same axes. `--fleet-size` / `--exact_cycles` size that leg.
 */

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/fleet.hpp"
#include "sim/lifetime.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "fig09");
    const uint64_t seed =
        static_cast<uint64_t>(flags.get_int("seed", 1));
    const int distance = static_cast<int>(flags.get_int("distance", 11));
    const double p = flags.get_double("p", 1e-3);

    bench_header("Fig. 9: bandwidth provisioning trace",
                 "1000 logical qubits, 100 decode cycles, provisioned "
                 "at the 50th vs 99th percentile of per-cycle off-chip "
                 "demand.");

    // Measure the per-qubit off-chip probability, then the fleet
    // demand distribution.
    LifetimeConfig lconfig;
    lconfig.distance = distance;
    lconfig.p = p;
    lconfig.cycles = bench_cycles(flags, 20000, 1000000);
    lconfig.threads = threads_from_flags(flags);
    lconfig.seed = seed;
    const double q = run_lifetime(lconfig).offchip_fraction();
    std::printf("measured per-qubit off-chip probability q = %s "
                "(d=%d, p=%g)\n\n",
                Table::sci(q, 2).c_str(), distance, p);
    json.report().set("distance", distance);
    json.report().set("p", p);
    json.report().set("q", q);

    FleetConfig fleet;
    fleet.num_qubits = 1000;
    fleet.offchip_prob = q;
    fleet.seed = seed;
    fleet.cycles = 100000;
    const CountHistogram demand = fleet_demand_histogram(fleet);
    const uint64_t b50 = std::max<uint64_t>(1, demand.percentile(0.50));
    const uint64_t b99 = std::max<uint64_t>(1, demand.percentile(0.99));
    std::printf("bandwidth @50th percentile = %llu decodes/cycle\n"
                "bandwidth @99th percentile = %llu decodes/cycle\n\n",
                static_cast<unsigned long long>(b50),
                static_cast<unsigned long long>(b99));
    json.report().set("bandwidth_p50", b50);
    json.report().set("bandwidth_p99", b99);

    // Binomial vs real demand: the binomial model assumes per-qubit
    // independence with a single q; the exact fleet steps every
    // pipeline against one shared link and counts what actually
    // escalates. Both provisioned on the same percentile axis.
    const ExactFleetStats real_demand = print_binomial_vs_real_demand(
        distance, p, q, fleet_link_from_flags(flags, 50),
        static_cast<uint64_t>(flags.get_int("exact_cycles", 4000)), seed,
        lconfig.threads);
    json.report().set("real_demand_mean", real_demand.demand.mean());
    json.report().set("real_demand_p99",
                      real_demand.demand.percentile(0.99));

    fleet.cycles = 100;
    struct TraceLeg
    {
        const char *label;
        const char *json_key;
        uint64_t bandwidth;
    };
    for (const TraceLeg &leg : {TraceLeg{"50th percentile", "trace_p50", b50},
                                TraceLeg{"99th percentile", "trace_p99", b99}}) {
        const uint64_t bandwidth = leg.bandwidth;
        const auto trace = fleet_trace(fleet, bandwidth);
        uint64_t stalls = 0;
        Table table({"cycle", "new", "carryover", "served", "stall"});
        for (size_t t = 0; t < trace.size(); ++t) {
            stalls += trace[t].stall ? 1 : 0;
            if (t % 10 == 0 || trace[t].stall) {
                table.add_row({std::to_string(t),
                               std::to_string(trace[t].fresh),
                               std::to_string(trace[t].carryover),
                               std::to_string(trace[t].served),
                               trace[t].stall ? "STALL" : ""});
            }
        }
        std::printf("-- provisioning at the %s (B = %llu) --\n",
                    leg.label,
                    static_cast<unsigned long long>(bandwidth));
        if (flags.get_bool("full_trace")) {
            table.print();
        }
        std::printf("stall cycles in the 100-cycle window: %llu\n\n",
                    static_cast<unsigned long long>(stalls));
        Report &trace_node = json.report().child(leg.json_key);
        trace_node.set("bandwidth", bandwidth);
        trace_node.set("stall_cycles", stalls);
        trace_node.add_table("trace", table);
    }
    std::printf("Paper check: ~90+ stalls at the 50th percentile, "
                "~0-2 at the 99th.\n");
    return json.finish();
}
