/**
 * @file
 * Reproduces Fig. 11: fraction of decodes handled by Clique on-chip
 * (coverage) as a function of code distance, one series per physical
 * error rate.
 *
 * Paper shape: coverage stays around ~70% even at (p = 1e-2, d = 21)
 * and approaches 100% as p or d shrink.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/lifetime.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "fig11");
    const uint64_t cycles = bench_cycles(flags, 20000, 1000000000ull);
    const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 1));
    json.report().set("cycles", cycles);
    json.report().set("seed", seed);
    const auto distances =
        flags.get_int_list("distances", {3, 5, 7, 9, 11, 13, 15, 17, 21});
    const auto rates =
        flags.get_double_list("rates", {1e-4, 5e-4, 1e-3, 5e-3, 1e-2});

    bench_header("Fig. 11: Clique on-chip coverage",
                 "Percent of decode cycles resolved without going "
                 "off-chip; one column per physical error rate.");

    std::vector<std::string> headers = {"d"};
    for (const double p : rates) {
        headers.push_back("p=" + Table::sci(p, 0));
    }
    Table table(headers);
    for (const int64_t d : distances) {
        std::vector<std::string> row = {std::to_string(d)};
        for (const double p : rates) {
            LifetimeConfig config;
            config.distance = static_cast<int>(d);
            config.p = p;
            config.cycles = cycles;
            config.threads = threads_from_flags(flags);
            config.seed = seed;
            const LifetimeStats stats = run_lifetime(config);
            row.push_back(
                Table::num(100.0 * stats.coverage_per_decode(), 2));
        }
        table.add_row(std::move(row));
    }
    if (flags.get_bool("csv")) {
        std::fputs(table.to_csv().c_str(), stdout);
    } else {
        table.print();
    }
    std::printf("\nPaper check: >=~70%% at (p=1e-2, d=21); ~100%% at "
                "low p / low d; monotone in both.\n");
    json.add_table("coverage", table);
    return json.finish();
}
