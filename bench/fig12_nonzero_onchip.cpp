/**
 * @file
 * Reproduces Fig. 12: among the decodes Clique keeps on-chip, the
 * fraction that are *actual errors* (not All-0s). High values mean a
 * simpler "ship everything nonzero off-chip" design would forfeit
 * most of the bandwidth win.
 *
 * Paper shape: approaches 100% near the surface-code threshold
 * (p = 1e-2) especially at large d; small at very low p.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/lifetime.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "fig12");
    const uint64_t cycles = bench_cycles(flags, 20000, 1000000000ull);
    const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 1));
    json.report().set("cycles", cycles);
    json.report().set("seed", seed);
    const auto distances =
        flags.get_int_list("distances", {3, 5, 7, 9, 11, 13, 15, 17, 21});
    const auto rates =
        flags.get_double_list("rates", {1e-4, 5e-4, 1e-3, 5e-3, 1e-2});

    bench_header("Fig. 12: on-chip decodes that are not All-0s",
                 "Percent of Clique-handled cycles that applied a real "
                 "correction.");

    std::vector<std::string> headers = {"d"};
    for (const double p : rates) {
        headers.push_back("p=" + Table::sci(p, 0));
    }
    Table table(headers);
    for (const int64_t d : distances) {
        std::vector<std::string> row = {std::to_string(d)};
        for (const double p : rates) {
            LifetimeConfig config;
            config.distance = static_cast<int>(d);
            config.p = p;
            config.cycles = cycles;
            config.threads = threads_from_flags(flags);
            config.seed = seed;
            const LifetimeStats stats = run_lifetime(config);
            row.push_back(
                Table::num(100.0 * stats.onchip_nonzero_fraction(), 2));
        }
        table.add_row(std::move(row));
    }
    if (flags.get_bool("csv")) {
        std::fputs(table.to_csv().c_str(), stdout);
    } else {
        table.print();
    }
    std::printf("\nPaper check: ~100%% near threshold at high d, so "
                "all-zero filtering alone cannot replace Clique.\n");
    json.add_table("nonzero_onchip", table);
    return json.finish();
}
