/**
 * @file
 * Reproduces Fig. 13: average off-chip data reduction of Clique vs
 * the AFS syndrome-compression baseline, across code distances and
 * physical error rates (log-scale quantity).
 *
 * Paper shape: Clique beats AFS by 10x-10000x; AFS benefits grow then
 * saturate with d, Clique benefits shrink with d but saturate at least
 * an order of magnitude above AFS.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "afs/compression.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/lifetime.hpp"

namespace {

/**
 * Average AFS compressed size per cycle from the lifetime run's raw
 * syndrome-weight histogram (the dynamic scheme's size depends only on
 * the set-bit count under our fixed-width field model).
 */
double
afs_average_bits(const btwc::LifetimeStats &stats, int syndrome_bits)
{
    const btwc::AfsCompressor afs(syndrome_bits);
    double total = 0.0;
    const auto &counts = stats.raw_weight.counts();
    for (size_t k = 0; k < counts.size(); ++k) {
        if (counts[k] == 0) {
            continue;
        }
        std::vector<int> ones(k);
        for (size_t i = 0; i < k; ++i) {
            ones[i] = static_cast<int>(i);
        }
        total += static_cast<double>(counts[k]) *
                 afs.dynamic_bits(ones);
    }
    return total / static_cast<double>(stats.raw_weight.total());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "fig13");
    const uint64_t cycles = bench_cycles(flags, 20000, 1000000000ull);
    const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 1));
    json.report().set("cycles", cycles);
    json.report().set("seed", seed);
    const auto distances =
        flags.get_int_list("distances", {3, 5, 7, 9, 11, 13, 15, 17, 21});
    const auto rates = flags.get_double_list("rates", {5e-4, 1e-3, 5e-3});

    bench_header("Fig. 13: off-chip data reduction, Clique vs AFS",
                 "Reduction factor = raw syndrome stream bits / bits "
                 "actually shipped off-chip (higher is better).");

    Table table({"d", "p", "clique_reduction", "afs_reduction",
                 "clique_vs_afs"});
    for (const double p : rates) {
        for (const int64_t d : distances) {
            LifetimeConfig config;
            config.distance = static_cast<int>(d);
            config.p = p;
            config.cycles = cycles;
            config.threads = threads_from_flags(flags);
            config.seed = seed;
            const LifetimeStats stats = run_lifetime(config);
            const int syndrome_bits =
                static_cast<int>(d) * static_cast<int>(d) - 1;
            const double afs_bits = afs_average_bits(stats, syndrome_bits);
            const double afs_reduction = syndrome_bits / afs_bits;
            const double clique_reduction = stats.clique_data_reduction();
            table.add_row({std::to_string(d), Table::sci(p, 0),
                           Table::num(clique_reduction, 1),
                           Table::num(afs_reduction, 2),
                           Table::num(clique_reduction / afs_reduction, 1)});
        }
    }
    if (flags.get_bool("csv")) {
        std::fputs(table.to_csv().c_str(), stdout);
    } else {
        table.print();
    }
    std::printf("\nPaper check: clique_vs_afs between ~10x and ~10000x "
                "across the sweep (Clique saturates >= 10x above AFS).\n");
    json.add_table("reduction", table);
    return json.finish();
}
