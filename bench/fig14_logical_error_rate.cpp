/**
 * @file
 * Reproduces Fig. 14: logical error rate of the MWPM baseline vs
 * Clique+Baseline across code distances and physical error rates.
 *
 * Paper shape: the two arms are nearly identical for d = 3/5/7 and
 * Clique+Baseline is marginally worse at d = 9/11 (two-round filter
 * occasionally mistakes coordinated sticky measurement errors for
 * local data errors).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/memory.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "fig14");
    const uint64_t max_trials = bench_trials(flags, 6000, 10000000);
    const uint64_t target_failures =
        static_cast<uint64_t>(flags.get_int("failures", 50));
    const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 1));
    const auto distances = flags.get_int_list("distances", {3, 5, 7, 9, 11});
    const auto rates =
        flags.get_double_list("rates", {2e-3, 4e-3, 8e-3, 1.6e-2});

    bench_header("Fig. 14: logical error rate, baseline vs Clique+baseline",
                 "Per-block (d noisy rounds + 1 perfect round) logical "
                 "error rate of one lattice half; 95% Wilson CIs.");

    Table table({"d", "p", "baseline_LER", "baseline_CI",
                 "clique+mwpm_LER", "clique_CI", "offchip_frac",
                 "trials_b", "trials_c"});
    const auto ci_string = [](double lo, double hi) {
        std::string s = "[";
        s += Table::sci(lo, 1);
        s += ",";
        s += Table::sci(hi, 1);
        s += "]";
        return s;
    };
    for (const int64_t d : distances) {
        for (const double p : rates) {
            MemoryConfig config;
            config.distance = static_cast<int>(d);
            config.p = p;
            config.max_trials = max_trials;
            config.target_failures = target_failures;
            config.threads = threads_from_flags(flags);
            config.seed = seed;
            const MemoryResult base =
                run_memory_experiment(config, DecoderArm::MwpmOnly);
            const MemoryResult hybrid =
                run_memory_experiment(config, DecoderArm::CliqueMwpm);
            const auto [blo, bhi] = base.ler_interval();
            const auto [clo, chi] = hybrid.ler_interval();
            const double offchip =
                hybrid.total_rounds == 0
                    ? 0.0
                    : static_cast<double>(hybrid.offchip_rounds) /
                          static_cast<double>(hybrid.total_rounds);
            table.add_row(
                {std::to_string(d), Table::sci(p, 1),
                 Table::sci(base.ler(), 2), ci_string(blo, bhi),
                 Table::sci(hybrid.ler(), 2), ci_string(clo, chi),
                 Table::num(offchip, 4), std::to_string(base.trials),
                 std::to_string(hybrid.trials)});
        }
    }
    if (flags.get_bool("csv")) {
        std::fputs(table.to_csv().c_str(), stdout);
    } else {
        table.print();
    }
    std::printf("\nPaper check: CIs overlap for d<=7; small hybrid "
                "penalty may appear at d=9/11; LER falls with d below "
                "threshold.\n");
    json.report().set("max_trials", max_trials);
    json.report().set("target_failures", target_failures);
    json.report().set("seed", seed);
    json.add_table("ler", table);
    return json.finish();
}
