/**
 * @file
 * Reproduces Fig. 15 (and prints Table 1): ERSFQ power, area, and
 * latency of the synthesized Clique decoder per logical qubit across
 * code distances, with the NISQ+ comparison at d = 9.
 *
 * Paper shape: power grows from ~10 uW (d = 3) to ~500 uW (d = 21);
 * area stays under ~100 mm^2 at d = 21; latency stays at 0.1-0.3 ns;
 * at d = 9 Clique is ~37x / ~25x / ~15x better than NISQ+ in power /
 * area / latency.
 */

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sfq/cells.hpp"
#include "sfq/clique_circuit.hpp"
#include "sfq/cost.hpp"
#include "sfq/synth.hpp"
#include "surface/lattice.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "fig15");
    const int filter_rounds =
        static_cast<int>(flags.get_int("filter_rounds", 2));
    const auto distances =
        flags.get_int_list("distances", {3, 5, 7, 9, 11, 13, 15, 17, 19, 21});

    bench_header("Fig. 15 + Table 1: Clique hardware overheads",
                 "ERSFQ synthesis (splitter insertion + full path "
                 "balancing) of the Clique decoder per logical qubit.");

    std::printf("Table 1: ERSFQ cell library\n");
    Table cells({"cell", "delay_ps", "area_um2", "JJs"});
    for (int t = 0; t < kNumCellTypes; ++t) {
        const CellSpec &spec = cell_spec(static_cast<CellType>(t));
        cells.add_row({spec.name, Table::num(spec.delay_ps, 1),
                       Table::num(spec.area_um2, 0),
                       std::to_string(spec.jj_count)});
    }
    cells.print();
    std::printf("\n");

    const ErsfqOperatingPoint op;
    Table table({"d", "cells", "splitters", "bal_DFFs", "JJs",
                 "power_uW", "area_mm2", "latency_ns"});
    SynthesisResult at_d9{};
    for (const int64_t d : distances) {
        const RotatedSurfaceCode code(static_cast<int>(d));
        const SynthesisResult synth =
            synthesize(build_clique_netlist(code, filter_rounds));
        if (d == 9) {
            at_d9 = synth;
        }
        table.add_row({std::to_string(d),
                       std::to_string(synth.total_cells),
                       std::to_string(synth.splitters),
                       std::to_string(synth.balancing_dffs),
                       std::to_string(synth.jj_count),
                       Table::num(op.power_uw(synth), 1),
                       Table::num(synth.area_mm2(), 2),
                       Table::num(synth.critical_path_ps / 1000.0, 3)});
    }
    if (flags.get_bool("csv")) {
        std::fputs(table.to_csv().c_str(), stdout);
    } else {
        table.print();
    }
    json.report().set("filter_rounds", filter_rounds);
    json.add_table("cells", cells);
    json.add_table("overheads", table);

    const NisqPlusReference &nisq = nisq_plus_reference();
    if (at_d9.jj_count > 0) {
        std::printf(
            "\nNISQ+ comparison at d=%d (modeled reference, see "
            "DESIGN.md):\n"
            "  power:   Clique %.1f uW vs NISQ+ %.0f uW  -> %.0fx\n"
            "  area:    Clique %.2f mm2 vs NISQ+ %.0f mm2 -> %.0fx\n"
            "  latency: Clique %.3f ns vs NISQ+ %.1f ns  -> %.0fx "
            "(NISQ+ worst case another %.0fx)\n",
            nisq.distance, op.power_uw(at_d9), nisq.power_uw,
            nisq.power_uw / op.power_uw(at_d9), at_d9.area_mm2(),
            nisq.area_mm2, nisq.area_mm2 / at_d9.area_mm2(),
            at_d9.critical_path_ps / 1000.0, nisq.latency_ns,
            nisq.latency_ns / (at_d9.critical_path_ps / 1000.0),
            nisq.worst_case_latency_factor);
    }
    std::printf("\nPaper check: ~10-500 uW across d=3..21, area under "
                "~100 mm2, latency 0.1-0.3 ns, and order-10x gaps to "
                "NISQ+ at d=9.\n");
    return json.finish();
}
