/**
 * @file
 * Reproduces Fig. 16: off-chip bandwidth reduction vs execution-time
 * increase for three (physical error rate, code distance) operating
 * points of a 1000-logical-qubit machine.
 *
 * Paper shape: provisioning at the mean demand (maximum reduction)
 * stalls forever; backing off modestly (e.g. accepting a 10% runtime
 * increase) still yields order-of-magnitude bandwidth reductions, with
 * the exact curve shape depending on (p, d).
 *
 * The off-chip link runs through the async decode service
 * (core/offchip_queue.hpp): `--offchip-latency N` adds N cycles of
 * decode round-trip latency (shifting the enqueue-to-landing delay
 * columns without changing the stall curve -- latency is pipelined,
 * only backlog stalls), and `--batch N` caps the decode_batch group
 * size the served stream is sliced into.
 *
 * Each operating point also cross-checks the binomial demand model
 * against *real* demand: a small fully simulated fleet contending for
 * one shared link (core/offchip_service.hpp), provisioned on the same
 * percentile axis, plus one narrow shared-link run at the real 99th
 * percentile reporting the backlog/delay/batch observables the
 * binomial model cannot express. `--fleet-size` / `--exact_cycles`
 * size that leg; `--real-demand=false` skips it.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/fleet.hpp"
#include "sim/lifetime.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "fig16");
    const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 1));
    const int threads = threads_from_flags(flags);
    const uint64_t measure_cycles = bench_cycles(flags, 20000, 1000000);
    const uint64_t fleet_cycles = static_cast<uint64_t>(
        flags.get_int("fleet_cycles", 200000));
    const OffchipServiceFlags offchip = offchip_from_flags(flags);

    struct OperatingPoint
    {
        double p;
        int distance;
    };
    const std::vector<OperatingPoint> points = {
        {1e-3, 11}, {5e-4, 9}, {5e-3, 17}};

    bench_header("Fig. 16: bandwidth reduction vs execution stalling",
                 "1000 logical qubits; sweep the provisioned off-chip "
                 "bandwidth from the mean demand upward.");

    for (const OperatingPoint &point : points) {
        LifetimeConfig lconfig;
        lconfig.distance = point.distance;
        lconfig.p = point.p;
        lconfig.cycles = measure_cycles;
        lconfig.threads = threads;
        lconfig.seed = seed;
        const double q = run_lifetime(lconfig).offchip_fraction();

        FleetConfig fleet;
        fleet.num_qubits = 1000;
        fleet.offchip_prob = q;
        fleet.cycles = fleet_cycles;
        fleet.threads = threads;
        fleet.seed = seed;
        fleet.offchip_latency = offchip.latency;
        fleet.offchip_batch = offchip.batch;

        FleetConfig demand_config = fleet;
        demand_config.cycles = 100000;
        const CountHistogram demand = fleet_demand_histogram(demand_config);
        const uint64_t mean_b =
            std::max<uint64_t>(1, static_cast<uint64_t>(demand.mean()));

        std::printf("-- p=%g, d=%d: q=%s, mean demand=%.1f "
                    "decodes/cycle --\n",
                    point.p, point.distance, Table::sci(q, 2).c_str(),
                    demand.mean());
        Table table({"bandwidth", "reduction_x", "stall_cycles",
                     "exec_increase_%", "mean_qdelay", "p99_qdelay",
                     "mean_link_batch"});
        std::vector<uint64_t> sweep;
        for (const double percentile :
             {0.5, 0.9, 0.99, 0.999, 0.9999, 1.0}) {
            sweep.push_back(
                std::max<uint64_t>(1, demand.percentile(percentile)));
        }
        sweep.insert(sweep.begin(), mean_b);
        uint64_t last = 0;
        for (const uint64_t bandwidth : sweep) {
            if (bandwidth == last) {
                continue;
            }
            last = bandwidth;
            const FleetRunResult run =
                run_fleet_with_bandwidth(fleet, bandwidth);
            const bool diverged = run.work_cycles < fleet.cycles;
            table.add_row(
                {std::to_string(bandwidth),
                 Table::num(run.bandwidth_reduction, 1),
                 std::to_string(run.stall_cycles),
                 diverged ? "diverges (infinite stalling)"
                          : Table::num(100.0 * run.exec_time_increase, 2),
                 Table::num(run.mean_queue_delay, 2),
                 std::to_string(run.p99_queue_delay),
                 Table::num(run.mean_batch, 1)});
        }
        if (flags.get_bool("csv")) {
            std::fputs(table.to_csv().c_str(), stdout);
        } else {
            table.print();
        }
        std::printf("\n");
        Report &point_node = json.report().child(
            "p" + Table::sci(point.p, 0) + "_d" +
            std::to_string(point.distance));
        point_node.set("p", point.p);
        point_node.set("distance", point.distance);
        point_node.set("q", q);
        point_node.set("mean_demand", demand.mean());
        point_node.add_table("sweep", table);

        if (flags.get_bool("real-demand", true)) {
            const FleetLinkFlags link = fleet_link_from_flags(flags, 32);
            ExactFleetConfig exact;
            exact.distance = point.distance;
            exact.p = point.p;
            exact.num_qubits = link.fleet_size;
            exact.cycles = static_cast<uint64_t>(
                flags.get_int("exact_cycles", 3000));
            exact.seed = seed;
            exact.threads = threads;
            exact.shared_link = true;
            exact.offchip_latency = offchip.latency;
            exact.offchip_batch = offchip.batch;
            const ExactFleetStats real = print_binomial_vs_real_demand(
                point.distance, point.p, q, link, exact.cycles, seed,
                threads, offchip.latency, offchip.batch);

            // One narrow shared-link run at the real 99th percentile:
            // the contention observables of the actual machine model.
            exact.offchip_bandwidth =
                std::max<uint64_t>(1, real.demand.percentile(0.99));
            const ExactFleetStats narrow =
                fleet_demand_exact_stats(exact);
            std::printf("shared link @ real p99 (B = %llu): "
                        "stall_cycles %llu, exec_increase %.2f%%, "
                        "mean_backlog %.2f, p99_qdelay %llu, "
                        "mean_link_batch %.1f, suppressed %llu\n\n",
                        static_cast<unsigned long long>(
                            exact.offchip_bandwidth),
                        static_cast<unsigned long long>(
                            narrow.stall_cycles),
                        100.0 * narrow.exec_time_increase(),
                        narrow.backlog.mean(),
                        static_cast<unsigned long long>(
                            narrow.queue_delay.percentile(0.99)),
                        narrow.batch_sizes.mean(),
                        static_cast<unsigned long long>(
                            narrow.suppressed));
            Report &shared_node = point_node.child("shared_link_p99");
            shared_node.set("bandwidth", exact.offchip_bandwidth);
            shared_node.set("stall_cycles", narrow.stall_cycles);
            shared_node.set("exec_time_increase",
                            narrow.exec_time_increase());
            shared_node.set("mean_backlog", narrow.backlog.mean());
            shared_node.set("p99_queue_delay",
                            narrow.queue_delay.percentile(0.99));
            shared_node.set("mean_link_batch", narrow.batch_sizes.mean());
            shared_node.set("suppressed", narrow.suppressed);
            shared_node.set("real_demand_mean", real.demand.mean());
        }
    }
    std::printf("Paper check: mean provisioning diverges; high "
                "percentiles give large reductions at <=10%% runtime "
                "increase (paper quotes 8.5-150x depending on p/d).\n");
    return json.finish();
}
