/**
 * @file
 * Google-benchmark microbenchmarks for the decode pipeline: per-cycle
 * Clique decisions, the measurement filter, MWPM and Union-Find
 * decodes, and the full BTWC system step. These back the paper's
 * architectural argument that the common case must be cheap: Clique's
 * per-cycle work is orders of magnitude below MWPM's.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/clique.hpp"
#include "core/filter.hpp"
#include "core/system.hpp"
#include "decoders/exact_decoder.hpp"
#include "decoders/lookup_table.hpp"
#include "decoders/stream_window.hpp"
#include "decoders/tier_chain.hpp"
#include "matching/mwpm.hpp"
#include "matching/union_find.hpp"
#include "surface/frame.hpp"
#include "surface/lattice.hpp"
#include "surface/packed.hpp"

namespace {

using namespace btwc;

/** A random syndrome with roughly `errors` injected data errors. */
std::vector<uint8_t>
sample_syndrome(const RotatedSurfaceCode &code, int errors, Rng &rng)
{
    ErrorFrame frame(code, CheckType::X);
    for (int i = 0; i < errors; ++i) {
        frame.flip(static_cast<int>(rng.next_below(code.num_data())));
    }
    std::vector<uint8_t> syndrome;
    frame.measure_perfect(syndrome);
    return syndrome;
}

/** Detection events of a full d-round spacetime window at p = 5e-3. */
std::vector<DetectionEvent>
sample_window(const RotatedSurfaceCode &code, Rng &rng)
{
    const int d = code.distance();
    ErrorFrame frame(code, CheckType::X);
    std::vector<std::vector<uint8_t>> raw(d + 1);
    std::vector<DetectionEvent> events;
    for (int t = 0; t < d; ++t) {
        frame.inject(5e-3, rng);
        frame.measure(5e-3, rng, raw[t]);
    }
    frame.measure_perfect(raw[d]);
    for (int t = 0; t <= d; ++t) {
        for (int c = 0; c < code.num_checks(CheckType::Z); ++c) {
            const uint8_t prev = t == 0 ? 0 : raw[t - 1][c];
            if ((raw[t][c] ^ prev) & 1) {
                events.push_back(DetectionEvent{c, t});
            }
        }
    }
    return events;
}

void
BM_CliqueDecode(benchmark::State &state)
{
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    const CliqueDecoder clique(code, CheckType::Z);
    Rng rng(1);
    std::vector<std::vector<uint8_t>> syndromes;
    for (int i = 0; i < 64; ++i) {
        syndromes.push_back(sample_syndrome(code, 2, rng));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(clique.decode(syndromes[i++ & 63]));
    }
}
BENCHMARK(BM_CliqueDecode)->Arg(5)->Arg(9)->Arg(21);

void
BM_MeasurementFilter(benchmark::State &state)
{
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    MeasurementFilter filter(code.num_checks(CheckType::Z), 2);
    Rng rng(2);
    std::vector<uint8_t> raw(code.num_checks(CheckType::Z), 0);
    for (auto _ : state) {
        for (auto &bit : raw) {
            bit = rng.bernoulli(0.01) ? 1 : 0;
        }
        benchmark::DoNotOptimize(filter.push(raw));
    }
}
BENCHMARK(BM_MeasurementFilter)->Arg(9)->Arg(21);

void
BM_MwpmDecodeSyndrome(benchmark::State &state)
{
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    const MwpmDecoder mwpm(code, CheckType::Z);
    Rng rng(3);
    std::vector<std::vector<uint8_t>> syndromes;
    for (int i = 0; i < 64; ++i) {
        syndromes.push_back(
            sample_syndrome(code, state.range(0) / 2, rng));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mwpm.decode_syndrome(syndromes[i++ & 63]));
    }
}
BENCHMARK(BM_MwpmDecodeSyndrome)->Arg(5)->Arg(9)->Arg(21);

void
BM_UnionFindDecodeSyndrome(benchmark::State &state)
{
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    const UnionFindDecoder uf(code, CheckType::Z);
    Rng rng(4);
    std::vector<std::vector<uint8_t>> syndromes;
    for (int i = 0; i < 64; ++i) {
        syndromes.push_back(
            sample_syndrome(code, state.range(0) / 2, rng));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            uf.decode_syndrome(syndromes[i++ & 63]));
    }
}
BENCHMARK(BM_UnionFindDecodeSyndrome)->Arg(5)->Arg(9)->Arg(21);

/**
 * The packed-fast-path trio (byte baseline vs word-parallel packed,
 * same pre-sampled inputs): Clique screening, the Union-Find mid-tier
 * and noisy syndrome extraction. The acceptance bar is >= 2x on the
 * Clique screen and UF decode at d = 21; see the archived
 * BENCH_decoders.json for the measured trajectory.
 */
void
BM_CliqueScreenByte(benchmark::State &state)
{
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    const CliqueDecoder clique(code, CheckType::Z);
    Rng rng(12);
    std::vector<std::vector<uint8_t>> syndromes;
    for (int i = 0; i < 64; ++i) {
        syndromes.push_back(sample_syndrome(code, 2, rng));
    }
    CliqueOutcome outcome;
    size_t i = 0;
    for (auto _ : state) {
        clique.decode(syndromes[i++ & 63], outcome);
        benchmark::DoNotOptimize(outcome.verdict);
    }
}
BENCHMARK(BM_CliqueScreenByte)->Arg(9)->Arg(21);

void
BM_CliqueScreenPacked(benchmark::State &state)
{
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    const CliqueDecoder clique(code, CheckType::Z);
    Rng rng(12);
    std::vector<PackedSyndrome> syndromes(64);
    for (int i = 0; i < 64; ++i) {
        syndromes[i].from_bytes(sample_syndrome(code, 2, rng));
    }
    PackedBits correction;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            clique.decode_packed(syndromes[i++ & 63], correction));
    }
}
BENCHMARK(BM_CliqueScreenPacked)->Arg(9)->Arg(21);

void
BM_UnionFindDecodeByte(benchmark::State &state)
{
    // The original allocate-per-call implementation, kept as the
    // pinned reference (UnionFindDecoder::decode_reference).
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    const UnionFindDecoder uf(code, CheckType::Z);
    Rng rng(13);
    std::vector<std::vector<DetectionEvent>> events;
    for (int i = 0; i < 64; ++i) {
        events.push_back(events_from_syndrome(
            sample_syndrome(code, state.range(0) / 2, rng)));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(uf.decode_reference(events[i++ & 63], 1));
    }
}
BENCHMARK(BM_UnionFindDecodeByte)->Arg(9)->Arg(21);

void
BM_UnionFindDecodePacked(benchmark::State &state)
{
    // The packed fast path: cached topology, bitset cluster state,
    // pooled scratch (bit-exact with the byte reference).
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    const UnionFindDecoder uf(code, CheckType::Z);
    Rng rng(13);
    std::vector<std::vector<DetectionEvent>> events;
    for (int i = 0; i < 64; ++i) {
        events.push_back(events_from_syndrome(
            sample_syndrome(code, state.range(0) / 2, rng)));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(uf.decode(events[i++ & 63], 1));
    }
}
BENCHMARK(BM_UnionFindDecodePacked)->Arg(9)->Arg(21);

void
BM_SyndromeExtractByte(benchmark::State &state)
{
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    ErrorFrame frame(code, CheckType::X);
    Rng rng(14);
    frame.inject(5e-3, rng);
    std::vector<uint8_t> syndrome;
    for (auto _ : state) {
        frame.measure(1e-3, rng, syndrome);
        benchmark::DoNotOptimize(syndrome.data());
    }
}
BENCHMARK(BM_SyndromeExtractByte)->Arg(9)->Arg(21);

void
BM_SyndromeExtractPacked(benchmark::State &state)
{
    // Sparse extraction off the packed error frame: O(weight) check
    // flips instead of an O(num_data) byte scan.
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    ErrorFrame frame(code, CheckType::X);
    Rng rng(14);
    frame.inject(5e-3, rng);
    PackedSyndrome syndrome;
    for (auto _ : state) {
        frame.measure_packed(1e-3, rng, syndrome);
        benchmark::DoNotOptimize(syndrome.data());
    }
}
BENCHMARK(BM_SyndromeExtractPacked)->Arg(9)->Arg(21);

void
BM_BtwcSystemStep(benchmark::State &state)
{
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    BtwcSystem system(code, NoiseParams::uniform(1e-3), SystemConfig{}, 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(system.step());
    }
}
BENCHMARK(BM_BtwcSystemStep)->Arg(5)->Arg(9)->Arg(21);

void
BM_SpacetimeMwpmWindow(benchmark::State &state)
{
    // Full d-round spacetime decode, the off-chip worst case.
    const int d = static_cast<int>(state.range(0));
    const RotatedSurfaceCode code(d);
    const MwpmDecoder mwpm(code, CheckType::Z);
    Rng rng(6);
    const std::vector<DetectionEvent> events = sample_window(code, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mwpm.decode(events, d + 1));
    }
}
BENCHMARK(BM_SpacetimeMwpmWindow)->Arg(5)->Arg(9)->Arg(11);

/**
 * The perf-gate pair: single-shot spacetime decodes (a fresh window
 * per slot, varied inputs) through the fast path — distance oracle +
 * sparse candidates + pooled per-instance scratch, the production
 * default — against the legacy per-defect Dijkstra + complete-graph
 * configuration (bit-exact results, tests/test_fastpath.cpp). The
 * acceptance bar is >= 3x at d >= 11; see the archived
 * BENCH_decoders.json for the measured trajectory.
 */
void
run_single_decode(benchmark::State &state, const FastPathConfig &config)
{
    const int d = static_cast<int>(state.range(0));
    const RotatedSurfaceCode code(d);
    const MwpmDecoder mwpm(code, CheckType::Z, 1, 1,
                           MwpmDecoder::Matcher::Blossom, config);
    Rng rng(10);
    std::vector<std::vector<DetectionEvent>> windows;
    for (int i = 0; i < 16; ++i) {
        windows.push_back(sample_window(code, rng));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mwpm.decode(windows[i++ & 15], d + 1));
    }
}

void
BM_MwpmDecodeSingle(benchmark::State &state)
{
    run_single_decode(state, FastPathConfig::fast());
}
BENCHMARK(BM_MwpmDecodeSingle)->Arg(11)->Arg(15)->Arg(21);

void
BM_MwpmDecodeSingleLegacy(benchmark::State &state)
{
    run_single_decode(state, FastPathConfig::legacy());
}
BENCHMARK(BM_MwpmDecodeSingleLegacy)->Arg(11)->Arg(15)->Arg(21);

void
BM_LutDecode(benchmark::State &state)
{
    // The lookup-table tier: one syndrome-indexed read per decode.
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    const LookupTableDecoder lut(code, CheckType::Z);
    Rng rng(11);
    std::vector<std::vector<uint8_t>> syndromes;
    for (int i = 0; i < 64; ++i) {
        syndromes.push_back(sample_syndrome(code, 2, rng));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lut.decode_syndrome(syndromes[i++ & 63]));
    }
}
BENCHMARK(BM_LutDecode)->Arg(3)->Arg(5);

void
BM_TierChainDeepDecode(benchmark::State &state)
{
    // The §8.1 three-tier chain on moderately complex signatures:
    // dominated by the Union-Find mid-tier, with rare MWPM spills.
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    const TierChain chain(code, CheckType::Z, TierChainConfig::deep());
    Rng rng(7);
    std::vector<std::vector<uint8_t>> syndromes;
    for (int i = 0; i < 64; ++i) {
        syndromes.push_back(
            sample_syndrome(code, static_cast<int>(state.range(0)) / 2,
                            rng));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain.decode_syndrome(syndromes[i++ & 63]));
    }
}
BENCHMARK(BM_TierChainDeepDecode)->Arg(5)->Arg(9)->Arg(21);

void
BM_MwpmDecodeBatch(benchmark::State &state)
{
    // Batched off-chip decoding (the async service's drain path):
    // decode_batch reuses one graph scratch across the batch, vs the
    // per-call setup of looping decode (BM_MwpmDecodeLoop).
    const int d = 21;
    const RotatedSurfaceCode code(d);
    const MwpmDecoder mwpm(code, CheckType::Z);
    Rng rng(9);
    std::vector<std::vector<DetectionEvent>> batch;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
        batch.push_back(
            events_from_syndrome(sample_syndrome(code, d / 2, rng)));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(mwpm.decode_batch(batch, 1));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MwpmDecodeBatch)->Arg(4)->Arg(16)->Arg(64);

void
BM_MwpmDecodeLoop(benchmark::State &state)
{
    // Baseline for BM_MwpmDecodeBatch: same inputs, one decode call
    // (and one scratch allocation) per item.
    const int d = 21;
    const RotatedSurfaceCode code(d);
    const MwpmDecoder mwpm(code, CheckType::Z);
    Rng rng(9);
    std::vector<std::vector<DetectionEvent>> batch;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
        batch.push_back(
            events_from_syndrome(sample_syndrome(code, d / 2, rng)));
    }
    for (auto _ : state) {
        for (const auto &events : batch) {
            benchmark::DoNotOptimize(mwpm.decode(events, 1));
        }
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MwpmDecodeLoop)->Arg(4)->Arg(16)->Arg(64);

void
BM_StreamWindowDecode(benchmark::State &state)
{
    // Steady-state streaming decode: per-round cost of push_round
    // (word-parallel diff extraction plus the amortized sliding-window
    // decodes) over a pre-sampled loop of raw syndrome rounds, with a
    // UF(2) screening tier absorbing the easy windows — the sustained
    // decodes/sec point behind the stream-quick scenario.
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    StreamWindowConfig config;
    config.screen = {TierSpec::union_find(2)};
    StreamWindowDecoder stream(code, CheckType::Z, config);
    ErrorFrame frame(code, CheckType::X);
    Rng rng(15);
    std::vector<PackedSyndrome> raws(256);
    for (PackedSyndrome &raw : raws) {
        frame.inject(3e-3, rng);
        frame.measure_packed(3e-3, rng, raw);
    }
    size_t i = 0;
    for (auto _ : state) {
        stream.push_round(raws[i++ & 255]);
    }
    benchmark::DoNotOptimize(stream.stats().windows);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamWindowDecode)->Arg(9)->Arg(21);

void
BM_ExactDecodeSyndrome(benchmark::State &state)
{
    // The subset-DP matching oracle on sparse syndromes (the
    // cross-validation tier; exponential in the defect count).
    const RotatedSurfaceCode code(static_cast<int>(state.range(0)));
    const ExactDecoder exact(code, CheckType::Z);
    Rng rng(8);
    std::vector<std::vector<uint8_t>> syndromes;
    for (int i = 0; i < 64; ++i) {
        syndromes.push_back(sample_syndrome(code, 3, rng));
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(exact.decode_syndrome(syndromes[i++ & 63]));
    }
}
BENCHMARK(BM_ExactDecodeSyndrome)->Arg(5)->Arg(9);

} // namespace

/**
 * Custom main so the repo-wide `--json <path>` convention works here
 * too: it is rewritten into google-benchmark's native
 * `--benchmark_out=<path> --benchmark_out_format=json` pair before
 * benchmark::Initialize consumes argv.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    args.reserve(static_cast<size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string path;
        if (arg.rfind("--json=", 0) == 0) {
            path = arg.substr(7);
        } else if (arg == "--json" && i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            path = argv[++i];
        } else {
            // A bare --json (no path) falls through untranslated and
            // is rejected by ReportUnrecognizedArguments below.
            args.push_back(arg);
            continue;
        }
        if (path.empty() || path == "true") {
            std::fprintf(stderr, "--json requires a path "
                                 "(e.g. --json out.json)\n");
            return 2;
        }
        args.push_back("--benchmark_out=" + path);
        args.push_back("--benchmark_out_format=json");
    }
    std::vector<char *> argv_rewritten;
    argv_rewritten.reserve(args.size());
    for (std::string &arg : args) {
        argv_rewritten.push_back(arg.data());
    }
    int argc_rewritten = static_cast<int>(argv_rewritten.size());
    benchmark::Initialize(&argc_rewritten, argv_rewritten.data());
    if (benchmark::ReportUnrecognizedArguments(argc_rewritten,
                                               argv_rewritten.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
