#!/usr/bin/env bash
# CI entry point: tier-1 verify with warnings promoted to errors, a
# Release (-DNDEBUG) ctest leg so assert-stripped builds run the full
# suite (runtime-counted invariants like
# MemoryResult::unclear_syndromes are exercised where asserts are
# gone), Release-mode smoke runs of the examples, and a btwc_run
# scenario leg that validates the unified JSON Report and archives it
# as BENCH_scenario.json.
#
#   ./ci.sh            # full verify + Release suite + smoke
#   ./ci.sh --verify   # tier-1 verify only
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== docs check =="
# README.md must exist and quote the exact tier-1 verify command that
# ROADMAP.md declares, so the two can never drift apart.
test -f README.md || { echo "README.md missing" >&2; exit 1; }
TIER1="$(sed -n 's/^\*\*Tier-1 verify:\*\* `\(.*\)`$/\1/p' ROADMAP.md)"
test -n "${TIER1}" || { echo "ROADMAP.md tier-1 line missing" >&2; exit 1; }
grep -Fq "${TIER1}" README.md || {
    echo "README.md verify command does not match ROADMAP.md:" >&2
    echo "  ${TIER1}" >&2
    exit 1
}
test -f src/core/README.md || { echo "src/core/README.md missing" >&2; exit 1; }
test -f src/api/README.md || { echo "src/api/README.md missing" >&2; exit 1; }
echo "docs OK"

echo
echo "== tier-1 verify (-Werror) =="
cmake -B build-ci -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-Werror"
cmake --build build-ci -j "${JOBS}"
ctest --test-dir build-ci --output-on-failure --no-tests=error -j "${JOBS}"

if [[ "${1:-}" == "--verify" ]]; then
    exit 0
fi

echo
echo "== Release (-DNDEBUG) ctest =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "${JOBS}"
ctest --test-dir build-release --output-on-failure --no-tests=error \
      -j "${JOBS}"

echo
echo "== Release smoke: examples/quickstart =="
./build-release/quickstart --distance 5 --p 0.003 --cycles 2000
echo
echo "== Release smoke: three-tier sharded lifetime =="
./build-release/sweep_explorer lifetime --distance 9 --p 0.005 \
    --cycles 20000 --tiers clique,uf,mwpm --threads 0
echo
echo "== Release smoke: async off-chip pipeline =="
./build-release/sweep_explorer lifetime --pipeline --real_offchip \
    --distance 7 --p 0.008 --cycles 20000 \
    --offchip-latency 4 --offchip-bandwidth 1 --batch 8
echo
echo "== Release smoke: shared-link fleet provisioning =="
./build-release/fleet_provisioning --shared-link --fleet-size 12 \
    --distance 5 --p 0.006 --qubits 200 --cycles 4000 \
    --exact_cycles 1500 --hot-fraction 0.1 --hot-mult 8
echo
echo "== scenario API: btwc_run -> BENCH_scenario.json =="
# Run a fast registry scenario through the unified front door and
# archive its machine-readable Report — the seed of the BENCH_* perf
# trajectory. The JSON must parse and carry the schema's three
# required top-level sections.
./build-release/btwc_run quick --threads 0 --json BENCH_scenario.json \
    > /dev/null
if command -v python3 > /dev/null 2>&1; then
    python3 - <<'EOF'
import json
with open("BENCH_scenario.json") as f:
    data = json.load(f)
for key in ("scenario", "config", "metrics"):
    assert key in data, f"BENCH_scenario.json missing '{key}'"
assert data["scenario"]["kind"] == "lifetime", data["scenario"]
assert data["metrics"]["cycles"] > 0, data["metrics"]
print("BENCH_scenario.json OK "
      f"(kind={data['scenario']['kind']}, "
      f"cycles={data['metrics']['cycles']})")
EOF
else
    # No python3: structural grep fallback on the stable key order.
    for key in '"scenario"' '"config"' '"metrics"' '"cycles"'; do
        grep -Fq "${key}" BENCH_scenario.json || {
            echo "BENCH_scenario.json missing ${key}" >&2
            exit 1
        }
    done
    echo "BENCH_scenario.json OK (grep fallback)"
fi
echo
echo "CI OK"
