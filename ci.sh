#!/usr/bin/env bash
# CI entry point: tier-1 verify with warnings promoted to errors, a
# Release (-DNDEBUG) ctest leg so assert-stripped builds run the full
# suite (runtime-counted invariants like
# MemoryResult::unclear_syndromes are exercised where asserts are
# gone), Release-mode smoke runs of the examples, and a btwc_run
# scenario leg that validates the unified JSON Report and archives it
# as BENCH_scenario.json.
#
#   ./ci.sh            # full verify + Release suite + smoke
#   ./ci.sh --verify   # tier-1 verify only
#   ./ci.sh --asan     # ASan+UBSan build + full ctest + audited scenario
#   ./ci.sh --tsan     # TSan build + concurrency tests + --threads 4 run
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 2)"

# Probe whether the toolchain can link a given -fsanitize= combination
# (the runtime libs are separate packages; mirror the skip-not-fail
# policy of the micro_decoders and thread-scaling legs).
sanitizer_supported() {
    local probe_dir
    probe_dir="$(mktemp -d)"
    local ok=0
    echo 'int main() { return 0; }' > "${probe_dir}/probe.cpp"
    if c++ "-fsanitize=$1" -o "${probe_dir}/probe" \
           "${probe_dir}/probe.cpp" > /dev/null 2>&1; then
        ok=1
    fi
    rm -rf "${probe_dir}"
    [[ "${ok}" == 1 ]]
}

if [[ "${1:-}" == "--asan" ]]; then
    echo "== ASan+UBSan leg =="
    if ! sanitizer_supported "address,undefined"; then
        echo "toolchain cannot link -fsanitize=address,undefined;"
        echo "ASan leg skipped"
        exit 0
    fi
    cmake -B build-asan -S . \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DBTWC_SANITIZE=address,undefined
    cmake --build build-asan -j "${JOBS}"
    ctest --test-dir build-asan --output-on-failure --no-tests=error \
          -j "${JOBS}"
    # Deep-audit scenario under the sanitizers: the structural audit()
    # scans walk every container the fast paths touch, so ASan sees
    # the full object graph, not just what the metrics read.
    ./build-asan/btwc_run quick --threads 1 --audit deep \
        --json build-asan/BENCH_asan.json > /dev/null
    echo "ASan+UBSan OK"
    exit 0
fi

if [[ "${1:-}" == "--tsan" ]]; then
    echo "== TSan leg =="
    if ! sanitizer_supported "thread"; then
        echo "toolchain cannot link -fsanitize=thread; TSan leg skipped"
        exit 0
    fi
    cmake -B build-tsan -S . \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DBTWC_SANITIZE=thread
    cmake --build build-tsan -j "${JOBS}"
    # Concurrency-relevant suites only: TSan's 5-15x slowdown makes
    # the full matrix impractical, and the single-threaded decoders
    # are covered by the ASan leg.
    ctest --test-dir build-tsan --output-on-failure --no-tests=error \
          -j "${JOBS}" -R 'Engine|Fleet|Thread|Api'
    CORES="$(nproc 2>/dev/null || echo 1)"
    if [[ "${CORES}" -ge 2 ]]; then
        # The shared-link fleet is the most contended multi-thread
        # path: sharded tenants + one shared off-chip service.
        ./build-tsan/btwc_run fleet-shared-narrow --threads 4 \
            --cycles 1000 --json build-tsan/BENCH_tsan.json > /dev/null
        ./build-tsan/btwc_run quick --threads 4 --audit basic \
            --json build-tsan/BENCH_tsan_quick.json > /dev/null
    else
        echo "single core (nproc=${CORES}): --threads 4 TSan scenario"
        echo "skipped (no real interleaving to observe; mirror of the"
        echo "thread-scaling leg's skip-not-fail policy)"
    fi
    echo "TSan OK"
    exit 0
fi

echo "== docs check =="
# README.md must exist and quote the exact tier-1 verify command that
# ROADMAP.md declares, so the two can never drift apart.
test -f README.md || { echo "README.md missing" >&2; exit 1; }
TIER1="$(sed -n 's/^\*\*Tier-1 verify:\*\* `\(.*\)`$/\1/p' ROADMAP.md)"
test -n "${TIER1}" || { echo "ROADMAP.md tier-1 line missing" >&2; exit 1; }
grep -Fq "${TIER1}" README.md || {
    echo "README.md verify command does not match ROADMAP.md:" >&2
    echo "  ${TIER1}" >&2
    exit 1
}
test -f src/core/README.md || { echo "src/core/README.md missing" >&2; exit 1; }
test -f src/api/README.md || { echo "src/api/README.md missing" >&2; exit 1; }
echo "docs OK"

echo
echo "== repo lint (tools/lint.sh) =="
bash tools/lint.sh

echo
echo "== tier-1 verify (-Werror) =="
cmake -B build-ci -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-Werror"
cmake --build build-ci -j "${JOBS}"
ctest --test-dir build-ci --output-on-failure --no-tests=error -j "${JOBS}"

if [[ "${1:-}" == "--verify" ]]; then
    exit 0
fi

echo
echo "== clang-tidy (compile_commands.json) =="
# Static-analysis sweep over the library sources with the pinned
# .clang-tidy profile. Guarded like the micro_decoders leg: absent
# tooling skips, it never fails the build for a missing binary.
if command -v clang-tidy > /dev/null 2>&1; then
    if command -v run-clang-tidy > /dev/null 2>&1; then
        run-clang-tidy -p build-ci -quiet "src/.*\.cpp$"
    else
        find src -name '*.cpp' -print0 |
            xargs -0 -n 8 -P "${JOBS}" clang-tidy -p build-ci --quiet
    fi
    echo "clang-tidy OK"
else
    echo "clang-tidy not installed; leg skipped"
fi

echo
echo "== Release (-DNDEBUG) ctest =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "${JOBS}"
ctest --test-dir build-release --output-on-failure --no-tests=error \
      -j "${JOBS}"

echo
echo "== Release smoke: examples/quickstart =="
./build-release/quickstart --distance 5 --p 0.003 --cycles 2000
echo
echo "== Release smoke: three-tier sharded lifetime =="
./build-release/sweep_explorer lifetime --distance 9 --p 0.005 \
    --cycles 20000 --tiers clique,uf,mwpm --threads 0
echo
echo "== Release smoke: async off-chip pipeline =="
./build-release/sweep_explorer lifetime --pipeline --real_offchip \
    --distance 7 --p 0.008 --cycles 20000 \
    --offchip-latency 4 --offchip-bandwidth 1 --batch 8
echo
echo "== Release smoke: shared-link fleet provisioning =="
./build-release/fleet_provisioning --shared-link --fleet-size 12 \
    --distance 5 --p 0.006 --qubits 200 --cycles 4000 \
    --exact_cycles 1500 --hot-fraction 0.1 --hot-mult 8
echo
echo "== scenario API: btwc_run -> BENCH_scenario.json =="
# Run a fast registry scenario through the unified front door and
# archive its machine-readable Report — the BENCH_* perf trajectory.
# --threads 1 keeps the metrics machine-independent (shard count
# changes the Monte-Carlo stream), which is what lets the btwc_diff
# gate below compare against the committed artifact bit-exactly. The
# JSON must parse and carry the schema's required top-level sections.
FRESH_SCENARIO="build-release/BENCH_scenario.fresh.json"
# --repeat 3 reports the median-walltime run: the metrics subtree is
# identical across repeats (fixed RNG stream), so the btwc_diff gate
# is unaffected while the archived walltime sidecar is de-noised.
# --audit deep turns on every structural audit() scan and the packed/
# byte cross-path re-decode (common/check.hpp): audits consume no
# randomness and alter no metrics, so the btwc_diff gate doubles as a
# machine check that deep auditing is observationally free.
./build-release/btwc_run quick --threads 1 --repeat 3 --audit deep \
    --json "${FRESH_SCENARIO}" > /dev/null
if command -v python3 > /dev/null 2>&1; then
    python3 - "${FRESH_SCENARIO}" <<'EOF'
import json
import sys
with open(sys.argv[1]) as f:
    data = json.load(f)
for key in ("scenario", "config", "metrics", "walltime"):
    assert key in data, f"BENCH_scenario.json missing '{key}'"
assert data["scenario"]["kind"] == "lifetime", data["scenario"]
assert data["metrics"]["cycles"] > 0, data["metrics"]
assert data["walltime"]["walltime_ms"] > 0, data["walltime"]
print("BENCH_scenario.json OK "
      f"(kind={data['scenario']['kind']}, "
      f"cycles={data['metrics']['cycles']}, "
      f"walltime_ms={data['walltime']['walltime_ms']:.1f})")
EOF
else
    # No python3: structural grep fallback on the stable key order.
    for key in '"scenario"' '"config"' '"metrics"' '"walltime"'; do
        grep -Fq "${key}" "${FRESH_SCENARIO}" || {
            echo "BENCH_scenario.json missing ${key}" >&2
            exit 1
        }
    done
    echo "BENCH_scenario.json OK (grep fallback)"
fi

echo
echo "== perf trajectory gate: btwc_diff vs committed BENCH_scenario.json =="
# The regression gate: the fresh Report's metrics subtree must match
# the committed artifact exactly (counters) / within tolerance
# (floats). Wall-clock lives under the sibling `walltime` subtree and
# never trips the gate. The committed artifact is only touched by an
# intentional refresh (the cp below, run by hand when a metrics
# change is deliberate), never by a passing CI run — otherwise every
# invocation would dirty the tree with machine-local walltime.
./build-release/btwc_diff BENCH_scenario.json "${FRESH_SCENARIO}" || {
    echo "metrics drifted; if intentional:" >&2
    echo "  cp ${FRESH_SCENARIO} BENCH_scenario.json  # and commit" >&2
    exit 1
}

echo
echo "== streaming decode gate: btwc_run stream-quick -> BENCH_stream.json =="
# The sliding-window streaming leg: the pinned stream-quick scenario
# (UF-screened sliding-window MWPM over a 4k-round syndrome stream)
# runs single-threaded under deep audits — every window decode
# re-proves the defect conservation ledger and the pair-path XOR
# contract — and its metrics subtree (counters, commit-lag histogram,
# conservation totals) must match the committed artifact exactly. The
# walltime sidecar carries the sustained decodes/sec and rounds/sec.
FRESH_STREAM="build-release/BENCH_stream.fresh.json"
./build-release/btwc_run stream-quick --threads 1 --repeat 3 --audit deep \
    --json "${FRESH_STREAM}" > /dev/null
./build-release/btwc_diff BENCH_stream.json "${FRESH_STREAM}" || {
    echo "stream metrics drifted; if intentional:" >&2
    echo "  cp ${FRESH_STREAM} BENCH_stream.json  # and commit" >&2
    exit 1
}

echo
echo "== decode fabric gate: btwc_run fabric-quick -> BENCH_fabric.json =="
# The multi-tenant fabric leg: the pinned fabric-quick scenario (a
# 2-link priority fabric with a hot tenant quartile and per-request
# deadlines) runs single-threaded under deep audits — conservation
# across links, the per-request starvation bound, and the FIFO
# lockstep cursor are all re-proved every cycle — and its metrics
# subtree, including the per-link and per-tenant tables under
# metrics.fabric, must match the committed artifact exactly.
FRESH_FABRIC="build-release/BENCH_fabric.fresh.json"
./build-release/btwc_run fabric-quick --threads 1 --repeat 3 --audit deep \
    --json "${FRESH_FABRIC}" > /dev/null
./build-release/btwc_diff BENCH_fabric.json "${FRESH_FABRIC}" || {
    echo "fabric metrics drifted; if intentional:" >&2
    echo "  cp ${FRESH_FABRIC} BENCH_fabric.json  # and commit" >&2
    exit 1
}

echo
echo "== chaos fabric gate: btwc_run fabric-chaos -> BENCH_chaos.json =="
# The fault-injection leg: the pinned fabric-chaos scenario (a 2-link
# EDF fabric under a flapping link, delivery loss/duplication/
# corruption, and a beyond-bandwidth tenant surge, with the full
# degradation stack — timeout+retry, UF fallback, shedding, failover)
# runs single-threaded under deep audits. The fault draws are a pure
# hash stream keyed by (fseed, link, index), so the chaos run is as
# deterministic as the fault-free ones and its metrics subtree —
# including the metrics.faults ledger — diffs bit-exactly against the
# committed artifact.
FRESH_CHAOS="build-release/BENCH_chaos.fresh.json"
./build-release/btwc_run fabric-chaos --threads 1 --repeat 3 --audit deep \
    --json "${FRESH_CHAOS}" > /dev/null
./build-release/btwc_diff BENCH_chaos.json "${FRESH_CHAOS}" || {
    echo "chaos metrics drifted; if intentional:" >&2
    echo "  cp ${FRESH_CHAOS} BENCH_chaos.json  # and commit" >&2
    exit 1
}

echo
echo "== chaos soak: 10k-cycle flapping link under deep audits =="
# Long-horizon graceful-degradation soak (unpinned: it asserts bounds,
# not exact numbers — the pinning lives in the gate above). Every
# cycle re-proves the queue conservation, the fault ledger, and the
# cross-link audit; afterwards the run must have reached steady state:
# a bounded worst-case backlog and no leaked requests.
SOAK_SPEC="kind=fabric,d=3,p=6e-3,policy=mwpm,fleet=4,links=2"
SOAK_SPEC+=",scheduler=deadline,deadline=8,latency=2,bandwidth=1"
SOAK_SPEC+=",timeout=10,retries=1,shed=true,migrate=32"
SOAK_SPEC+=",faults=outage:500:60;drop:0.05;dup:0.05;corrupt:0.05;surge:250:40:2"
SOAK_SPEC+=",cycles=10000"
./build-release/btwc_run "${SOAK_SPEC}" --threads 1 --audit deep \
    --json build-release/BENCH_chaos_soak.json > /dev/null
if command -v python3 > /dev/null 2>&1; then
    python3 - build-release/BENCH_chaos_soak.json <<'EOF'
import json
import sys
with open(sys.argv[1]) as f:
    data = json.load(f)
m = data["metrics"]
assert m["max_backlog"] < 500, f"soak backlog unbounded: {m['max_backlog']}"
assert m["pending"] <= 16, f"soak leaked requests: pending={m['pending']}"
f = m["faults"]
assert f["outage_cycles"] > 0 and f["surge_enqueued"] > 0, f
print("chaos soak OK "
      f"(max_backlog={m['max_backlog']}, pending={m['pending']}, "
      f"shed={f['shed']}, degraded={f['degraded']}, "
      f"migrations={f['migrations']})")
EOF
else
    grep -Fq '"faults"' build-release/BENCH_chaos_soak.json || {
        echo "chaos soak report missing metrics.faults" >&2
        exit 1
    }
    echo "chaos soak OK (grep fallback)"
fi

echo
echo "== micro benchmarks: micro_decoders -> BENCH_decoders.json =="
# Matcher/decoder microbenchmarks join the perf trajectory next to the
# scenario Report. --benchmark_min_time is pinned so archived numbers
# are comparable across commits; the run lands in build-release/ (CI
# artifact), and the committed BENCH_decoders.json snapshot is
# refreshed by hand alongside hot-path changes. Skipped gracefully
# when google-benchmark is absent (micro_decoders is not built then).
if [[ -x build-release/micro_decoders ]]; then
    ./build-release/micro_decoders \
        --benchmark_filter='BM_MwpmDecodeSingle|BM_SpacetimeMwpmWindow|BM_MwpmDecodeBatch|BM_LutDecode|BM_CliqueScreen|BM_UnionFindDecodeByte|BM_UnionFindDecodePacked|BM_SyndromeExtract|BM_StreamWindowDecode' \
        --benchmark_min_time=0.05 \
        --json build-release/BENCH_decoders.json
else
    echo "micro_decoders not built (google-benchmark missing); skipped"
fi

echo
echo "== thread-scaling leg =="
# Multi-core scaling of the packed per-cycle pipeline. On a
# multi-core runner, measure decodes/sec at --threads 1/2(/4) into
# build-release/BENCH_threads.json (walltime sidecar only — metrics
# change with the shard count, so no btwc_diff gate applies here). On
# a single-core runner real scaling numbers would be noise, so assert
# sharded determinism instead: the same sharded run twice must report
# identical metrics (skip-not-fail, never a red X for lack of cores).
CORES="$(nproc 2>/dev/null || echo 1)"
if [[ "${CORES}" -ge 2 ]]; then
    THREAD_POINTS="1 2"
    if [[ "${CORES}" -ge 4 ]]; then
        THREAD_POINTS="1 2 4"
    fi
    for t in ${THREAD_POINTS}; do
        ./build-release/btwc_run quick --threads "${t}" --repeat 3 \
            --json "build-release/BENCH_threads.t${t}.json" > /dev/null
    done
    if command -v python3 > /dev/null 2>&1; then
        python3 - "${THREAD_POINTS}" <<'EOF'
import json
import sys
points = {}
for t in sys.argv[1].split():
    with open(f"build-release/BENCH_threads.t{t}.json") as f:
        data = json.load(f)
    points[t] = data["walltime"]["cycles_per_sec"]
base = points[sorted(points, key=int)[0]]
out = {
    "threads": {
        t: {
            "cycles_per_sec": rate,
            "speedup": rate / base if base > 0 else 0.0,
        }
        for t, rate in points.items()
    }
}
with open("build-release/BENCH_threads.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
for t, rate in points.items():
    print(f"threads={t}: {rate:.0f} cycles/sec "
          f"({rate / base:.2f}x vs threads=1)")
EOF
    else
        echo "python3 missing; per-point JSONs kept, summary skipped"
    fi
else
    echo "single core (nproc=${CORES}): scaling skipped, checking"
    echo "sharded determinism instead"
    ./build-release/btwc_run quick --threads 2 \
        --json build-release/BENCH_threads.det1.json > /dev/null
    ./build-release/btwc_run quick --threads 2 \
        --json build-release/BENCH_threads.det2.json > /dev/null
    ./build-release/btwc_diff build-release/BENCH_threads.det1.json \
        build-release/BENCH_threads.det2.json
fi

echo
echo "CI OK"
