/**
 * @file
 * btwc_diff — the perf-trajectory regression gate.
 *
 * Compares a subtree (default: `metrics`) of two Report JSON files —
 * typically the committed BENCH_scenario.json against a freshly
 * generated one — and exits nonzero when they diverge beyond the
 * tolerance. Counters (integer tokens) compare exactly: a seeded run
 * is bit-reproducible, so any counter drift is a real behavior
 * change. Float tokens go through a relative tolerance that absorbs
 * printf round-trip noise. Wall-clock values never trip the gate:
 * `run_scenario` emits them under the `walltime` subtree, a sibling
 * of `metrics` (see src/api/README.md).
 *
 *     btwc_diff BENCH_scenario.json fresh.json
 *     btwc_diff --tol 1e-6 base.json fresh.json
 *     btwc_diff --subtree metrics.service base.json fresh.json
 *     btwc_diff --subtree "" base.json fresh.json   # whole documents
 *
 * Exit codes: 0 = match, 1 = differences found, 2 = usage / I/O /
 * parse error.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/json_input.hpp"
#include "api/report_diff.hpp"
#include "common/parse.hpp"

namespace {

using namespace btwc;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: btwc_diff [--tol <rel>] [--subtree <dotted>] "
        "<baseline.json> <fresh.json>\n"
        "\n"
        "  --tol <rel>       relative tolerance for float metrics "
        "(default 1e-9;\n"
        "                    integer counters always compare exactly)\n"
        "  --subtree <path>  dotted subtree to compare (default "
        "'metrics'; '' = whole file)\n"
        "\n"
        "exit: 0 = match, 1 = differences, 2 = error\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    ReportDiffOptions options;
    std::vector<std::string> files;
    bool subtree_set = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tol") {
            double tol = 0.0;
            if (i + 1 >= argc || !parse_f64(argv[i + 1], &tol) ||
                tol < 0.0) {
                std::fprintf(stderr,
                             "--tol requires a non-negative number\n");
                return usage();
            }
            options.rel_tol = tol;
            ++i;
        } else if (arg == "--subtree") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--subtree requires a path\n");
                return usage();
            }
            options.subtree = argv[i + 1];
            subtree_set = true;
            ++i;
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    (void)subtree_set;
    if (files.size() != 2) {
        return usage();
    }

    JsonValue baseline;
    JsonValue fresh;
    std::string error;
    if (!json_parse_file(files[0], &baseline, &error)) {
        std::fprintf(stderr, "%s: %s\n", files[0].c_str(), error.c_str());
        return 2;
    }
    if (!json_parse_file(files[1], &fresh, &error)) {
        std::fprintf(stderr, "%s: %s\n", files[1].c_str(), error.c_str());
        return 2;
    }

    const std::vector<ReportDiff> diffs =
        diff_reports(baseline, fresh, options);
    if (diffs.empty()) {
        std::printf("btwc_diff: '%s' matches (%s vs %s, tol %g)\n",
                    options.subtree.empty() ? "<document>"
                                            : options.subtree.c_str(),
                    files[0].c_str(), files[1].c_str(), options.rel_tol);
        return 0;
    }
    std::fprintf(stderr,
                 "btwc_diff: %zu difference%s between %s and %s:\n",
                 diffs.size(), diffs.size() == 1 ? "" : "s",
                 files[0].c_str(), files[1].c_str());
    for (const ReportDiff &diff : diffs) {
        std::fprintf(stderr, "  %-40s %s -> %s\n", diff.path.c_str(),
                     diff.baseline.c_str(), diff.fresh.c_str());
    }
    return 1;
}
