/**
 * @file
 * btwc_run — the unified scenario front door.
 *
 * Runs any operating point of the evaluation grid through the
 * src/api layer: a named registry scenario or a full ScenarioSpec
 * string, with CLI flag overrides layered on top, rendered as the
 * uniform metric table / CSV / JSON Report.
 *
 *     btwc_run --list                      # the scenario registry
 *     btwc_run quick
 *     btwc_run fig04 --cycles 100000 --threads 0
 *     btwc_run "d=9,p=5e-3,tiers=clique,uf:2,mwpm"
 *     btwc_run fleet-shared-narrow --json out.json
 *     btwc_run memory-weighted --csv
 *
 * Overrides: every key of the spec grammar has a flag spelling
 * (--distance, --p, --cycles, --tiers, --offchip-latency, ...); see
 * ScenarioSpec::apply_flags and src/api/README.md.
 */

#include <cstdio>
#include <string>

#include "api/registry.hpp"
#include "api/report.hpp"
#include "api/run.hpp"
#include "api/scenario.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"

namespace {

using namespace btwc;

int
list_scenarios(const Flags &flags)
{
    Table table({"name", "kind", "description"});
    Report report;
    Report &scenarios = report.child("scenarios");
    for (const NamedScenario &entry : scenario_registry()) {
        ScenarioSpec spec;
        std::string error;
        const char *kind = "?";
        if (ScenarioSpec::try_parse(entry.spec, &spec, &error)) {
            kind = scenario_kind_name(spec.kind);
        }
        table.add_row({entry.name, kind, entry.description});
        Report &node = scenarios.child(entry.name);
        node.set("kind", kind);
        node.set("description", entry.description);
        node.set("spec", entry.spec);
    }
    if (flags.get_bool("csv")) {
        std::fputs(table.to_csv().c_str(), stdout);
    } else {
        table.print();
        std::printf("\nrun one with: btwc_run <name> [overrides]; "
                    "full grammar: src/api/README.md\n");
    }
    if (flags.has("json")) {
        std::string error;
        if (!write_report_json(report, flags.get("json", ""), &error)) {
            std::fprintf(stderr, "--json: %s\n", error.c_str());
            return 1;
        }
    }
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: btwc_run <scenario-name | spec-string> [overrides]\n"
        "       btwc_run --list\n"
        "\n"
        "  <scenario-name>   a registry entry (btwc_run --list)\n"
        "  <spec-string>     ScenarioSpec grammar, e.g.\n"
        "                    \"d=9,p=5e-3,tiers=clique,uf:2,mwpm\"\n"
        "  --json PATH       write the uniform Report as JSON\n"
        "  --csv             CSV instead of the aligned table\n"
        "  --repeat N        run N times, report the median-walltime\n"
        "                    run (metrics are identical across runs)\n"
        "  plus any spec-key override flag (--cycles, --threads, ...)\n");
    return 2;
}

/**
 * btwc_run's whole flag surface is the spec-override set plus its own
 * output flags, so an unknown flag is always a mistake — reject it
 * instead of silently dropping the override (exit(2), the CLI
 * counterpart of the library's status contract).
 */
void
reject_unknown_flags(const btwc::Flags &flags)
{
    static const char *const kOwnFlags[] = {"list", "csv", "json",
                                            "spec", "repeat"};
    for (const std::string &name : flags.names()) {
        bool known = false;
        for (const char *own : kOwnFlags) {
            known = known || name == own;
        }
        for (const std::string &override_flag :
             btwc::scenario_override_flags()) {
            known = known || name == override_flag;
        }
        if (!known) {
            std::fprintf(stderr,
                         "unknown flag '--%s' (see btwc_run --list and "
                         "src/api/README.md for the override keys)\n",
                         name.c_str());
            std::exit(2);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    reject_unknown_flags(flags);
    if (flags.has("json") && flags.get("json", "") == "true") {
        // A bare --json parses as the value "true"; writing a file
        // literally named `true` is never what the user meant.
        std::fprintf(stderr,
                     "--json requires a path (e.g. --json out.json)\n");
        return 2;
    }
    if (flags.get_bool("list")) {
        return list_scenarios(flags);
    }
    std::string source = flags.get("spec", "");
    if (!flags.positional().empty()) {
        source = flags.positional()[0];
    }
    if (source.empty()) {
        return usage();
    }

    ScenarioSpec spec;
    std::string name;
    std::string registry_error;
    if (find_scenario(source, &spec, &registry_error)) {
        name = source;
    } else {
        // Not a registry name: treat the argument as a spec string.
        std::string parse_error;
        if (!ScenarioSpec::try_parse(source, &spec, &parse_error)) {
            const bool looks_like_spec =
                source.find('=') != std::string::npos;
            std::fprintf(stderr, "%s\n",
                         (looks_like_spec ? parse_error : registry_error)
                             .c_str());
            return 2;
        }
    }

    std::string error;
    if (!spec.apply_flags(flags, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }

    const int repeat = static_cast<int>(flags.get_int("repeat", 1));
    if (repeat < 1) {
        std::fprintf(stderr, "--repeat requires a positive count\n");
        return 2;
    }
    Report report = repeat > 1 ? run_scenario_repeated(spec, repeat)
                               : run_scenario(spec);
    if (!name.empty()) {
        report.child("scenario").set("name", name);
    }
    if (flags.get_bool("csv")) {
        std::fputs(report.csv().c_str(), stdout);
    } else {
        std::printf("== scenario%s%s ==\n%s\n\n",
                    name.empty() ? "" : " ", name.c_str(),
                    spec.to_string().c_str());
        report.to_table().print();
    }
    if (flags.has("json")) {
        if (!write_report_json(report, flags.get("json", ""), &error)) {
            std::fprintf(stderr, "--json: %s\n", error.c_str());
            return 1;
        }
    }
    return 0;
}
