/**
 * @file
 * Machine-sizing scenario: provision the fridge-to-room-temperature
 * decode link of a 1000-logical-qubit machine.
 *
 * Measures the per-qubit off-chip decode probability with the Clique
 * predecoder in place, prints the demand distribution, and sweeps
 * provisioning percentiles to find the smallest link that keeps the
 * execution-time increase under a user-chosen budget (§5 / Fig. 16).
 *
 *     ./fleet_provisioning [--distance 11] [--p 0.001] [--qubits 1000]
 *                          [--budget 0.10]
 *
 * Scenario knobs:
 *   --hot-fraction F --hot-mult M   heterogeneous fleet: fraction F of
 *       the qubits escalate M times more often (hot spots / defective
 *       patches); the demand model turns Poisson-binomial and the
 *       provisioning sweep runs against it.
 *   --shared-link [--fleet-size N] [--exact_cycles C]   real-pipeline
 *       fleet: N fully simulated qubits route every escalation through
 *       one shared off-chip service (core/offchip_service.hpp),
 *       provisioned at the percentiles of the *measured* demand, with
 *       the backlog/delay/batch contention observables the binomial
 *       model cannot express.
 */

#include <cstdio>

#include "api/json_output.hpp"
#include "api/run.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/fleet.hpp"
#include "sim/lifetime.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "fleet_provisioning");
    const int distance = static_cast<int>(flags.get_int("distance", 11));
    const double p = flags.get_double("p", 1e-3);
    const int qubits = static_cast<int>(flags.get_int("qubits", 1000));
    const double budget = flags.get_double("budget", 0.10);

    LifetimeConfig lconfig;
    lconfig.distance = distance;
    lconfig.p = p;
    lconfig.threads = threads_from_flags(flags);
    lconfig.cycles =
        static_cast<uint64_t>(flags.get_int("cycles", 30000));
    const double q = run_lifetime(lconfig).offchip_fraction();
    std::printf("machine: %d logical qubits, d=%d, p=%g\n", qubits,
                distance, p);
    std::printf("Clique leaves q=%s of decodes per qubit-cycle for the "
                "off-chip decoder\n\n",
                Table::sci(q, 2).c_str());

    FleetConfig fleet;
    fleet.num_qubits = qubits;
    fleet.offchip_prob = q;
    fleet.threads = threads_from_flags(flags);
    fleet.cycles = 100000;
    const CountHistogram demand = fleet_demand_histogram(fleet);
    std::printf("off-chip demand distribution (decodes/cycle): mean "
                "%.2f, p50 %llu, p99 %llu, p99.99 %llu, max %llu\n\n",
                demand.mean(),
                static_cast<unsigned long long>(demand.percentile(0.5)),
                static_cast<unsigned long long>(demand.percentile(0.99)),
                static_cast<unsigned long long>(
                    demand.percentile(0.9999)),
                static_cast<unsigned long long>(demand.max_value()));

    // Heterogeneous fleet: hot spots escalate more often, the demand
    // turns Poisson-binomial, and the provisioning percentiles shift
    // -- the rest of the sweep runs against the hot profile.
    CountHistogram sweep_demand = demand;
    const double hot_fraction = flags.get_double("hot-fraction", 0.0);
    if (hot_fraction > 0.0) {
        const double hot_mult = flags.get_double("hot-mult", 10.0);
        fleet.qubit_probs = hotspot_probs(qubits, q, hot_fraction, hot_mult);
        sweep_demand = fleet_demand_histogram(fleet);
        std::printf("hot-spot profile (%.0f%% of qubits at %.0fx q): "
                    "mean %.2f, p50 %llu, p99 %llu, p99.99 %llu -- "
                    "provisioning sweep uses this profile\n\n",
                    100.0 * hot_fraction, hot_mult, sweep_demand.mean(),
                    static_cast<unsigned long long>(
                        sweep_demand.percentile(0.5)),
                    static_cast<unsigned long long>(
                        sweep_demand.percentile(0.99)),
                    static_cast<unsigned long long>(
                        sweep_demand.percentile(0.9999)));
    }

    fleet.cycles = 200000;
    Table table({"percentile", "bandwidth", "reduction_x",
                 "exec_increase_%", "within_budget"});
    uint64_t chosen = 0;
    double chosen_reduction = 0.0;
    for (const double percentile : {0.5, 0.9, 0.99, 0.999, 0.9999}) {
        const uint64_t bandwidth =
            std::max<uint64_t>(1, sweep_demand.percentile(percentile));
        const FleetRunResult run =
            run_fleet_with_bandwidth(fleet, bandwidth);
        const bool diverged = run.work_cycles < fleet.cycles;
        const bool ok = !diverged && run.exec_time_increase <= budget;
        if (ok && chosen == 0) {
            chosen = bandwidth;
            chosen_reduction = run.bandwidth_reduction;
        }
        table.add_row({Table::num(100.0 * percentile, 2),
                       std::to_string(bandwidth),
                       Table::num(run.bandwidth_reduction, 1),
                       diverged ? "diverges"
                                : Table::num(
                                      100.0 * run.exec_time_increase, 2),
                       ok ? "yes" : "no"});
    }
    table.print();
    json.report().set("distance", distance);
    json.report().set("p", p);
    json.report().set("qubits", qubits);
    json.report().set("q", q);
    json.report().set("budget", budget);
    json.report().set("chosen_bandwidth", chosen);
    json.report().set("chosen_reduction", chosen_reduction);
    json.add_table("provisioning", table);

    if (chosen) {
        std::printf("\n=> provision %llu decodes/cycle: %.0fx less "
                    "off-chip bandwidth than shipping every syndrome, "
                    "within the %.0f%% runtime budget.\n",
                    static_cast<unsigned long long>(chosen),
                    chosen_reduction, 100.0 * budget);
    } else {
        std::printf("\n=> no swept percentile met the %.0f%% budget; "
                    "raise the budget or the provisioning.\n",
                    100.0 * budget);
    }

    // Real-pipeline fleet on one shared link: every qubit is a full
    // BtwcSystem and every escalation contends for the same service.
    // Demand is measured (not binomial), and narrowing the link shows
    // the contention observables -- backlog, queueing delay, mixed-
    // owner served batches, reconciliation-suppressed escalations.
    const FleetLinkFlags link = fleet_link_from_flags(flags, 24);
    if (link.shared_link) {
        const OffchipServiceFlags offchip = offchip_from_flags(flags);
        ExactFleetConfig exact;
        exact.distance = distance;
        exact.p = p;
        exact.num_qubits = link.fleet_size;
        exact.cycles = static_cast<uint64_t>(
            flags.get_int("exact_cycles", 5000));
        exact.threads = threads_from_flags(flags);
        exact.shared_link = true;
        exact.offchip_latency = offchip.latency;
        exact.offchip_batch = offchip.batch;
        const ExactFleetStats real = fleet_demand_exact_stats(exact);
        std::printf("\n-- shared off-chip link, %d fully simulated "
                    "qubits --\n",
                    link.fleet_size);
        std::printf("real demand (decodes/cycle): mean %.2f, p50 %llu, "
                    "p99 %llu (binomial would predict mean %.2f)\n",
                    real.demand.mean(),
                    static_cast<unsigned long long>(
                        real.demand.percentile(0.5)),
                    static_cast<unsigned long long>(
                        real.demand.percentile(0.99)),
                    q * link.fleet_size);

        Table shared({"percentile", "bandwidth", "stall_cycles",
                      "exec_increase_%", "mean_backlog", "p99_qdelay",
                      "mean_link_batch", "suppressed"});
        for (const double percentile : {0.5, 0.9, 0.99}) {
            exact.offchip_bandwidth = std::max<uint64_t>(
                1, real.demand.percentile(percentile));
            const ExactFleetStats run = fleet_demand_exact_stats(exact);
            shared.add_row(
                {Table::num(100.0 * percentile, 1),
                 std::to_string(exact.offchip_bandwidth),
                 std::to_string(run.stall_cycles),
                 Table::num(100.0 * run.exec_time_increase(), 2),
                 Table::num(run.backlog.mean(), 2),
                 std::to_string(run.queue_delay.percentile(0.99)),
                 Table::num(run.batch_sizes.mean(), 1),
                 std::to_string(run.suppressed)});
        }
        shared.print();
        std::printf("(served batches mix owners: one decode_batch call "
                    "amortizes graph setup across the whole fleet's "
                    "same-cycle escalations)\n");
        Report &shared_node = json.report().child("shared_link");
        shared_node.set("fleet_size", link.fleet_size);
        shared_node.child("real") = exact_fleet_metrics_report(real);
        shared_node.add_table("percentile_sweep", shared);
    }
    return json.finish();
}
