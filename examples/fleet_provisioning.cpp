/**
 * @file
 * Machine-sizing scenario: provision the fridge-to-room-temperature
 * decode link of a 1000-logical-qubit machine.
 *
 * Measures the per-qubit off-chip decode probability with the Clique
 * predecoder in place, prints the demand distribution, and sweeps
 * provisioning percentiles to find the smallest link that keeps the
 * execution-time increase under a user-chosen budget (§5 / Fig. 16).
 *
 *     ./fleet_provisioning [--distance 11] [--p 0.001] [--qubits 1000]
 *                          [--budget 0.10]
 */

#include <cstdio>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/fleet.hpp"
#include "sim/lifetime.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags(argc, argv);
    const int distance = static_cast<int>(flags.get_int("distance", 11));
    const double p = flags.get_double("p", 1e-3);
    const int qubits = static_cast<int>(flags.get_int("qubits", 1000));
    const double budget = flags.get_double("budget", 0.10);

    LifetimeConfig lconfig;
    lconfig.distance = distance;
    lconfig.p = p;
    lconfig.threads = threads_from_flags(flags);
    lconfig.cycles =
        static_cast<uint64_t>(flags.get_int("cycles", 30000));
    const double q = run_lifetime(lconfig).offchip_fraction();
    std::printf("machine: %d logical qubits, d=%d, p=%g\n", qubits,
                distance, p);
    std::printf("Clique leaves q=%s of decodes per qubit-cycle for the "
                "off-chip decoder\n\n",
                Table::sci(q, 2).c_str());

    FleetConfig fleet;
    fleet.num_qubits = qubits;
    fleet.offchip_prob = q;
    fleet.threads = threads_from_flags(flags);
    fleet.cycles = 100000;
    const CountHistogram demand = fleet_demand_histogram(fleet);
    std::printf("off-chip demand distribution (decodes/cycle): mean "
                "%.2f, p50 %llu, p99 %llu, p99.99 %llu, max %llu\n\n",
                demand.mean(),
                static_cast<unsigned long long>(demand.percentile(0.5)),
                static_cast<unsigned long long>(demand.percentile(0.99)),
                static_cast<unsigned long long>(
                    demand.percentile(0.9999)),
                static_cast<unsigned long long>(demand.max_value()));

    fleet.cycles = 200000;
    Table table({"percentile", "bandwidth", "reduction_x",
                 "exec_increase_%", "within_budget"});
    uint64_t chosen = 0;
    double chosen_reduction = 0.0;
    for (const double percentile : {0.5, 0.9, 0.99, 0.999, 0.9999}) {
        const uint64_t bandwidth =
            std::max<uint64_t>(1, demand.percentile(percentile));
        const FleetRunResult run =
            run_fleet_with_bandwidth(fleet, bandwidth);
        const bool diverged = run.work_cycles < fleet.cycles;
        const bool ok = !diverged && run.exec_time_increase <= budget;
        if (ok && chosen == 0) {
            chosen = bandwidth;
            chosen_reduction = run.bandwidth_reduction;
        }
        table.add_row({Table::num(100.0 * percentile, 2),
                       std::to_string(bandwidth),
                       Table::num(run.bandwidth_reduction, 1),
                       diverged ? "diverges"
                                : Table::num(
                                      100.0 * run.exec_time_increase, 2),
                       ok ? "yes" : "no"});
    }
    table.print();

    if (chosen) {
        std::printf("\n=> provision %llu decodes/cycle: %.0fx less "
                    "off-chip bandwidth than shipping every syndrome, "
                    "within the %.0f%% runtime budget.\n",
                    static_cast<unsigned long long>(chosen),
                    chosen_reduction, 100.0 * budget);
    } else {
        std::printf("\n=> no swept percentile met the %.0f%% budget; "
                    "raise the budget or the provisioning.\n",
                    100.0 * budget);
    }
    return 0;
}
