/**
 * @file
 * Cryogenic hardware scenario: synthesize the Clique decoder to the
 * ERSFQ cell library for a chosen code distance and report what it
 * costs inside the fridge -- including the paper's "more measurement
 * rounds" extension (§4.3) and how many logical qubits fit a 1 W
 * 4 K cooling budget (§7.4).
 *
 *     ./hardware_report [--distance 9] [--max_rounds 4]
 */

#include <cstdio>

#include "api/json_output.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "sfq/clique_circuit.hpp"
#include "sfq/cost.hpp"
#include "sfq/synth.hpp"
#include "surface/lattice.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "hardware_report");
    const int distance = static_cast<int>(flags.get_int("distance", 9));
    const int max_rounds =
        static_cast<int>(flags.get_int("max_rounds", 4));

    const RotatedSurfaceCode code(distance);
    const ErsfqOperatingPoint op;

    std::printf("Clique decoder hardware report, d=%d (%d checks per "
                "type)\n\n",
                distance, code.num_checks(CheckType::Z));

    Table table({"filter_rounds", "cells", "JJs", "power_uW", "area_mm2",
                 "latency_ns", "qubits_per_watt"});
    for (int rounds = 1; rounds <= max_rounds; ++rounds) {
        const SynthesisResult synth =
            synthesize(build_clique_netlist(code, rounds));
        const double power_w = op.power_w(synth);
        table.add_row({std::to_string(rounds),
                       std::to_string(synth.total_cells),
                       std::to_string(synth.jj_count),
                       Table::num(op.power_uw(synth), 1),
                       Table::num(synth.area_mm2(), 2),
                       Table::num(synth.critical_path_ps / 1000.0, 3),
                       std::to_string(static_cast<long long>(
                           power_w > 0 ? 1.0 / power_w : 0))});
    }
    table.print();

    const SynthesisResult synth =
        synthesize(build_clique_netlist(code, 2));
    const NisqPlusReference &nisq = nisq_plus_reference();
    std::printf("\nwith the default 2-round filter:\n");
    std::printf("  a 1 W dilution-refrigerator budget hosts ~%lld "
                "logical qubits at d=%d\n",
                static_cast<long long>(1.0 / op.power_w(synth)),
                distance);
    if (distance == nisq.distance) {
        std::printf("  vs NISQ+ at d=9: %.0fx power, %.0fx area, %.0fx "
                    "latency advantage (modeled reference)\n",
                    nisq.power_uw / op.power_uw(synth),
                    nisq.area_mm2 / synth.area_mm2(),
                    nisq.latency_ns / (synth.critical_path_ps / 1000.0));
    }
    std::printf("\nExtra filter rounds buy measurement-error robustness "
                "(Fig. 14's d=9/11 gap) at the marginal cost shown "
                "above -- the paper's §4.3/§7.3 trade-off.\n");
    json.report().set("distance", distance);
    json.report().set("qubits_per_watt",
                      static_cast<int64_t>(1.0 / op.power_w(synth)));
    json.add_table("rounds_sweep", table);
    return json.finish();
}
