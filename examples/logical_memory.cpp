/**
 * @file
 * Logical-memory scenario: estimate the logical error rate of one
 * logical qubit held in memory for d rounds, comparing the off-chip
 * MWPM baseline, the BTWC Clique+MWPM hierarchy, and the Union-Find
 * decoder (the §8.1 mid-tier extension).
 *
 *     ./logical_memory [--distance 5] [--p 0.008] [--trials 20000]
 */

#include <cstdio>

#include "api/json_output.hpp"
#include "api/run.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/memory.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "logical_memory");

    MemoryConfig config;
    config.distance = static_cast<int>(flags.get_int("distance", 5));
    config.p = flags.get_double("p", 8e-3);
    config.max_trials =
        static_cast<uint64_t>(flags.get_int("trials", 20000));
    config.target_failures =
        static_cast<uint64_t>(flags.get_int("failures", 200));
    config.threads = threads_from_flags(flags);
    config.seed = static_cast<uint64_t>(flags.get_int("seed", 1));

    std::printf("logical memory: d=%d, p=%g, %d noisy rounds + 1 "
                "perfect round per trial\n\n",
                config.distance, config.p, config.distance);

    Table table({"decoder", "trials", "failures", "LER", "95%_CI",
                 "offchip_rounds_%"});
    for (const DecoderArm arm :
         {DecoderArm::MwpmOnly, DecoderArm::CliqueMwpm,
          DecoderArm::UnionFindOnly}) {
        const MemoryResult result = run_memory_experiment(config, arm);
        json.report().child(decoder_arm_name(arm)) =
            memory_metrics_report(result);
        const auto [lo, hi] = result.ler_interval();
        const double offchip =
            result.total_rounds == 0
                ? 0.0
                : 100.0 * static_cast<double>(result.offchip_rounds) /
                      static_cast<double>(result.total_rounds);
        std::string ci = "[";
        ci += Table::sci(lo, 1);
        ci += ",";
        ci += Table::sci(hi, 1);
        ci += "]";
        table.add_row({decoder_arm_name(arm),
                       std::to_string(result.trials),
                       std::to_string(result.failures),
                       Table::sci(result.ler(), 2), std::move(ci),
                       arm == DecoderArm::CliqueMwpm
                           ? Table::num(offchip, 2)
                           : "-"});
    }
    table.print();
    std::printf("\nThe clique+mwpm row should sit on top of the mwpm "
                "row (Fig. 14) while keeping most rounds on-chip.\n");
    json.add_table("arms", table);
    return json.finish();
}
