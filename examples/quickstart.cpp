/**
 * @file
 * Quickstart: walk one logical qubit through the BTWC decode pipeline.
 *
 * Builds a distance-5 rotated surface code, shows how a trivial error
 * signature is resolved on-chip by the Clique decoder, how a complex
 * signature is flagged and handed to the off-chip MWPM decoder, how a
 * deeper Clique -> Union-Find -> MWPM tier chain absorbs it on-chip
 * instead, and runs a short noisy lifetime through the full
 * `BtwcSystem`.
 *
 *     ./quickstart [--distance 5] [--p 0.003] [--cycles 2000]
 *                  [--offchip-latency 0] [--offchip-bandwidth 0]
 */

#include <cstdio>

#include "api/json_output.hpp"
#include "common/flags.hpp"
#include "core/clique.hpp"
#include "core/system.hpp"
#include "decoders/tier_chain.hpp"
#include "matching/mwpm.hpp"
#include "surface/frame.hpp"
#include "surface/lattice.hpp"

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    JsonOutput json(flags, "quickstart");
    const int d = static_cast<int>(flags.get_int("distance", 5));
    const double p = flags.get_double("p", 3e-3);
    const int cycles = static_cast<int>(flags.get_int("cycles", 2000));

    const RotatedSurfaceCode code(d);
    std::printf("rotated surface code: d=%d, %d data qubits, %d+%d "
                "checks\n\n",
                d, code.num_data(), code.num_checks(CheckType::X),
                code.num_checks(CheckType::Z));

    // --- 1. A trivial (Local-1s) signature, resolved on-chip. ---
    const CliqueDecoder clique(code, CheckType::Z);
    ErrorFrame frame(code, CheckType::X);
    const int lone_qubit = code.data_id(d / 2, d / 2);
    frame.flip(lone_qubit);
    std::vector<uint8_t> syndrome;
    frame.measure_perfect(syndrome);
    CliqueOutcome outcome = clique.decode(syndrome);
    std::printf("single X error on data qubit %d -> verdict %s, "
                "correction:",
                lone_qubit,
                outcome.verdict == CliqueVerdict::Trivial ? "TRIVIAL"
                                                          : "complex");
    for (const int q : outcome.corrections) {
        std::printf(" %d", q);
    }
    frame.apply(outcome.corrections);
    std::printf("  (syndrome clear: %s)\n\n",
                frame.syndrome_clear() ? "yes" : "no");

    // --- 2. A complex signature, handed off-chip to MWPM. ---
    frame.reset();
    // A 2-chain: two errors sharing a check leave lonely endpoints.
    const Check &mid = code.check(CheckType::Z,
                                  code.num_checks(CheckType::Z) / 2);
    frame.flip(mid.data[0]);
    frame.flip(mid.data[3 % mid.data.size()]);
    frame.measure_perfect(syndrome);
    outcome = clique.decode(syndrome);
    std::printf("2-chain through check %d -> verdict %s\n", mid.id,
                outcome.verdict == CliqueVerdict::Complex ? "COMPLEX"
                                                          : "trivial");
    if (outcome.verdict == CliqueVerdict::Complex) {
        const MwpmDecoder mwpm(code, CheckType::Z);
        const auto fix = mwpm.decode_syndrome(syndrome);
        frame.apply_mask(fix.correction);
        std::printf("off-chip MWPM matched %d defects at weight %lld "
                    "(syndrome clear: %s)\n\n",
                    fix.defects, static_cast<long long>(fix.weight),
                    frame.syndrome_clear() ? "yes" : "no");
    }

    // --- 3. The same complex signature through a deep tier chain. ---
    // §8.1: a Union-Find mid-tier absorbs most COMPLEX hand-offs
    // before anything has to leave the chip.
    const TierChain chain(code, CheckType::Z, TierChainConfig::deep());
    ErrorFrame chain_frame(code, CheckType::X);
    chain_frame.flip(mid.data[0]);
    chain_frame.flip(mid.data[3 % mid.data.size()]);
    chain_frame.measure_perfect(syndrome);
    const TierChain::Result chained = chain.decode_syndrome(syndrome);
    chain_frame.apply_mask(chained.decode.correction);
    std::printf("tier chain %s resolved it at tier '%s' (%s, growth "
                "effort %d, syndrome clear: %s)\n\n",
                chain.config().describe().c_str(),
                decoder_tier_name(chained.tier),
                chained.offchip ? "off-chip" : "on-chip",
                chained.effort,
                chain_frame.syndrome_clear() ? "yes" : "no");

    // --- 4. The full pipeline under phenomenological noise. ---
    // Escalations ride the async off-chip service: with the default
    // zero-latency unlimited-bandwidth link this is exactly the
    // synchronous model; --offchip-latency / --offchip-bandwidth make
    // corrections land cycles late over a narrow link.
    const OffchipServiceFlags offchip = offchip_from_flags(flags);
    SystemConfig config;
    config.offchip = OffchipPolicy::Mwpm;
    config.offchip_latency = offchip.latency;
    config.offchip_bandwidth = offchip.bandwidth;
    config.offchip_batch = offchip.batch;
    BtwcSystem system(code, NoiseParams::uniform(p), config, 42);
    int zeros = 0;
    int trivial = 0;
    int complex_cycles = 0;
    for (int i = 0; i < cycles; ++i) {
        switch (system.step().verdict) {
          case CliqueVerdict::AllZeros:
            ++zeros;
            break;
          case CliqueVerdict::Trivial:
            ++trivial;
            break;
          case CliqueVerdict::Complex:
            ++complex_cycles;
            break;
        }
    }
    std::printf("%d noisy cycles at p=%g: %.1f%% all-zeros, %.1f%% "
                "trivial (on-chip), %.2f%% complex (off-chip)\n",
                cycles, p, 100.0 * zeros / cycles,
                100.0 * trivial / cycles,
                100.0 * complex_cycles / cycles);
    std::printf("=> off-chip bandwidth eliminated: %.2f%%\n",
                100.0 * (1.0 - static_cast<double>(complex_cycles) /
                                   cycles));
    const OffchipQueue &queue = system.offchip_queue();
    std::printf("=> off-chip service: %llu decodes landed, mean "
                "enqueue-to-landing delay %.2f cycles (latency %llu, "
                "bandwidth %s)\n",
                static_cast<unsigned long long>(queue.landed()),
                queue.delay_histogram().mean(),
                static_cast<unsigned long long>(offchip.latency),
                offchip.bandwidth == 0
                    ? "unlimited"
                    : std::to_string(offchip.bandwidth).c_str());
    Report &report = json.report();
    report.set("distance", d);
    report.set("p", p);
    report.set("cycles", cycles);
    Report &pipeline = report.child("pipeline");
    pipeline.set("all_zero_cycles", zeros);
    pipeline.set("trivial_cycles", trivial);
    pipeline.set("complex_cycles", complex_cycles);
    pipeline.set("offchip_bandwidth_eliminated",
                 1.0 - static_cast<double>(complex_cycles) / cycles);
    Report &service = report.child("service");
    service.set("landed", queue.landed());
    service.set("mean_queue_delay", queue.delay_histogram().mean());
    service.set("latency", offchip.latency);
    service.set("bandwidth", offchip.bandwidth);
    return json.finish();
}
