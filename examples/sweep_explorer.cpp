/**
 * @file
 * Unified experiment driver: run any of the library's experiment types
 * from the command line with full parameter control. Useful for
 * exploring operating points that the fixed-figure benches don't
 * sweep.
 *
 * The lifetime / memory / fleet / exact-fleet commands are thin
 * wrappers over the src/api layer: flags build a `ScenarioSpec`
 * (`ScenarioSpec::from_flags`), `run_scenario` runs it, and the
 * uniform `Report` is rendered as a metric table (and as JSON with
 * `--json PATH`). `btwc_run` accepts the same grammar plus named
 * registry scenarios; this binary keeps the historical per-experiment
 * defaults and the hierarchy / hardware extras.
 *
 *     ./sweep_explorer lifetime  --distance 9 --p 0.005 --cycles 50000
 *     ./sweep_explorer lifetime  --distance 21 --p 0.001 --cycles 200000
 *                                --tiers clique,uf,mwpm --threads 8
 *     ./sweep_explorer lifetime  --pipeline --real_offchip
 *                                --offchip-latency 4 --offchip-bandwidth 1
 *     ./sweep_explorer memory    --distance 7 --p 0.008 --p_meas 0.016
 *                                --weighted --trials 20000
 *     ./sweep_explorer fleet     --qubits 2000 --q 0.004 --bandwidth 12
 *     ./sweep_explorer exact-fleet --fleet-size 12 --shared-link
 *                                --offchip-bandwidth 1 --cycles 3000
 *     ./sweep_explorer hierarchy --distance 11 --p 0.01 --threshold 2
 *     ./sweep_explorer hardware  --distance 13 --filter_rounds 3
 */

#include <cstdio>
#include <string>

#include "api/json_output.hpp"
#include "api/run.hpp"
#include "api/scenario.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "decoders/tier_chain.hpp"
#include "sfq/clique_circuit.hpp"
#include "sfq/cost.hpp"
#include "sfq/synth.hpp"
#include "sim/memory.hpp"
#include "surface/frame.hpp"

namespace {

using namespace btwc;

/**
 * Build the command's spec: per-command historical defaults, then
 * every recognized flag layered on top. Exits(2) on a malformed
 * value — the CLI counterpart of the library's status contract.
 */
ScenarioSpec
spec_or_exit(const Flags &flags, const ScenarioSpec &defaults)
{
    ScenarioSpec spec = defaults;
    std::string error;
    if (!spec.apply_flags(flags, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        std::exit(2);
    }
    return spec;
}

/** Run a spec, print the uniform metric table, honor --json. */
int
run_and_render(const Flags &flags, const ScenarioSpec &spec)
{
    JsonOutput json(flags, "sweep_explorer");
    Report report = run_scenario(spec);
    if (flags.get_bool("csv")) {
        std::fputs(report.csv().c_str(), stdout);
    } else {
        std::printf("== %s ==\n\n", spec.to_string().c_str());
        report.to_table().print();
    }
    json.report().child("result") = std::move(report);
    return json.finish();
}

int
run_lifetime_cmd(const Flags &flags)
{
    ScenarioSpec defaults;
    defaults.kind = ScenarioKind::Lifetime;
    defaults.code.distance = 9;
    defaults.code.p = 5e-3;
    defaults.engine.cycles = 50000;
    return run_and_render(flags, spec_or_exit(flags, defaults));
}

int
run_memory_cmd(const Flags &flags)
{
    ScenarioSpec defaults;
    defaults.kind = ScenarioKind::Memory;
    defaults.code.distance = 7;
    defaults.code.p = 8e-3;
    defaults.engine.trials = 20000;
    defaults.engine.target_failures = 200;
    ScenarioSpec spec = spec_or_exit(flags, defaults);
    if (flags.has("arm")) {
        // A single named arm: the uniform single-scenario rendering.
        return run_and_render(flags, spec);
    }

    // Historical behavior: compare all three decoder arms on the same
    // configuration (the adapter keeps them bit-identical with a
    // direct legacy-config call).
    JsonOutput json(flags, "sweep_explorer");
    const MemoryConfig config = spec.to_memory_config();
    Table table({"decoder", "trials", "failures", "LER", "95%_CI"});
    for (const DecoderArm arm :
         {DecoderArm::MwpmOnly, DecoderArm::CliqueMwpm,
          DecoderArm::UnionFindOnly}) {
        const MemoryResult result = run_memory_experiment(config, arm);
        const auto [lo, hi] = result.ler_interval();
        std::string ci = "[";
        ci += Table::sci(lo, 1);
        ci += ",";
        ci += Table::sci(hi, 1);
        ci += "]";
        table.add_row({decoder_arm_name(arm),
                       std::to_string(result.trials),
                       std::to_string(result.failures),
                       Table::sci(result.ler(), 2), std::move(ci)});
        json.report().child(decoder_arm_name(arm)) =
            memory_metrics_report(result);
    }
    if (flags.get_bool("csv")) {
        std::fputs(table.to_csv().c_str(), stdout);
    } else {
        table.print();
    }
    json.add_table("arms", table);
    return json.finish();
}

int
run_fleet_cmd(const Flags &flags)
{
    ScenarioSpec defaults;
    defaults.kind = ScenarioKind::Fleet;
    defaults.service.offchip_prob = 4e-3;
    defaults.service.bandwidth = 10;  // historical provisioned default
    defaults.engine.cycles = 200000;
    ScenarioSpec spec = spec_or_exit(flags, defaults);
    // Historical contract of this command: "0 = unlimited" has no
    // counterpart in the provisioned-link stall model, so an explicit
    // --bandwidth 0 falls back to the default like an absent flag
    // (use `btwc_run "kind=fleet,..."` for a demand-only histogram).
    if (spec.service.bandwidth == 0) {
        spec.service.bandwidth = defaults.service.bandwidth;
    }
    return run_and_render(flags, spec);
}

int
run_exact_fleet_cmd(const Flags &flags)
{
    ScenarioSpec defaults;
    defaults.kind = ScenarioKind::ExactFleet;
    defaults.service.fleet_size = 10;
    defaults.engine.cycles = 5000;
    return run_and_render(flags, spec_or_exit(flags, defaults));
}

int
run_hierarchy_cmd(const Flags &flags)
{
    JsonOutput json(flags, "sweep_explorer");
    const int distance = static_cast<int>(flags.get_int("distance", 11));
    const double p = flags.get_double("p", 1e-2);
    const uint64_t cycles =
        static_cast<uint64_t>(flags.get_int("cycles", 20000));
    const int uf_threshold =
        static_cast<int>(flags.get_int("threshold", 2));
    const TierChainConfig chain_config =
        tiers_from_flags(flags, "clique,uf,mwpm", uf_threshold);

    const RotatedSurfaceCode code(distance);
    const TierChain chain(code, CheckType::Z, chain_config);
    Rng rng(static_cast<uint64_t>(flags.get_int("seed", 1)));
    ErrorFrame frame(code, CheckType::X);
    std::vector<uint8_t> syndrome;
    std::vector<uint64_t> tiers(chain.size(), 0);
    for (uint64_t i = 0; i < cycles; ++i) {
        frame.reset();
        frame.inject(p, rng);
        frame.measure_perfect(syndrome);
        ++tiers[static_cast<size_t>(
            chain.decode_syndrome(syndrome).tier_index)];
    }
    std::printf("chain: %s\n\n", chain_config.describe().c_str());
    Table table({"tier", "decodes", "%"});
    for (size_t t = 0; t < chain.size(); ++t) {
        table.add_row({decoder_tier_name(chain.spec(t).kind),
                       std::to_string(tiers[t]),
                       Table::num(100.0 * tiers[t] / cycles, 3)});
    }
    table.print();
    json.report().set("chain", chain_config.describe());
    json.report().set("cycles", cycles);
    json.add_table("tiers", table);
    return json.finish();
}

int
run_hardware_cmd(const Flags &flags)
{
    JsonOutput json(flags, "sweep_explorer");
    const int distance = static_cast<int>(flags.get_int("distance", 9));
    const int rounds = static_cast<int>(flags.get_int("filter_rounds", 2));
    const RotatedSurfaceCode code(distance);
    const SynthesisResult synth =
        synthesize(build_clique_netlist(code, rounds));
    const ErsfqOperatingPoint op;

    Table table({"metric", "value"});
    table.add_row({"cells", std::to_string(synth.total_cells)});
    table.add_row({"splitters", std::to_string(synth.splitters)});
    table.add_row({"balancing_dffs", std::to_string(synth.balancing_dffs)});
    table.add_row({"jj_count", std::to_string(synth.jj_count)});
    table.add_row({"power_uW", Table::num(op.power_uw(synth), 2)});
    table.add_row({"area_mm2", Table::num(synth.area_mm2(), 3)});
    table.add_row({"latency_ns",
                   Table::num(synth.critical_path_ps / 1000.0, 4)});
    table.add_row({"logic_depth", std::to_string(synth.logic_depth)});
    table.print();
    json.add_table("hardware", table);
    return json.finish();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags = flags_or_exit(argc, argv);
    const std::string experiment =
        flags.positional().empty() ? "lifetime" : flags.positional()[0];
    if (experiment == "lifetime") {
        return run_lifetime_cmd(flags);
    }
    if (experiment == "memory") {
        return run_memory_cmd(flags);
    }
    if (experiment == "fleet") {
        return run_fleet_cmd(flags);
    }
    if (experiment == "exact-fleet") {
        return run_exact_fleet_cmd(flags);
    }
    if (experiment == "hierarchy") {
        return run_hierarchy_cmd(flags);
    }
    if (experiment == "hardware") {
        return run_hardware_cmd(flags);
    }
    std::fprintf(stderr,
                 "unknown experiment '%s'; one of: lifetime, memory, "
                 "fleet, exact-fleet, hierarchy, hardware\n",
                 experiment.c_str());
    return 1;
}
