/**
 * @file
 * Unified experiment driver: run any of the library's experiment types
 * from the command line with full parameter control. Useful for
 * exploring operating points that the fixed-figure benches don't
 * sweep.
 *
 *     ./sweep_explorer lifetime  --distance 9 --p 0.005 --cycles 50000
 *     ./sweep_explorer lifetime  --distance 21 --p 0.001 --cycles 200000
 *                                --tiers clique,uf,mwpm --threads 8
 *     ./sweep_explorer lifetime  --pipeline --real_offchip
 *                                --offchip-latency 4 --offchip-bandwidth 1
 *     ./sweep_explorer memory    --distance 7 --p 0.008 --p_meas 0.016
 *                                --weighted --trials 20000
 *     ./sweep_explorer fleet     --qubits 2000 --q 0.004 --bandwidth 12
 *     ./sweep_explorer hierarchy --distance 11 --p 0.01 --threshold 2
 *     ./sweep_explorer hardware  --distance 13 --filter_rounds 3
 */

#include <cstdio>
#include <string>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/hierarchy.hpp"
#include "sfq/clique_circuit.hpp"
#include "sfq/cost.hpp"
#include "sfq/synth.hpp"
#include "sim/fleet.hpp"
#include "sim/lifetime.hpp"
#include "sim/memory.hpp"
#include "surface/frame.hpp"

namespace {

using namespace btwc;

int
run_lifetime_cmd(const Flags &flags)
{
    LifetimeConfig config;
    config.distance = static_cast<int>(flags.get_int("distance", 9));
    config.p = flags.get_double("p", 5e-3);
    config.p_meas = flags.get_double("p_meas", -1.0);
    config.cycles = static_cast<uint64_t>(flags.get_int("cycles", 50000));
    config.filter_rounds =
        static_cast<int>(flags.get_int("filter_rounds", 2));
    config.mode = flags.get_bool("pipeline") ? LifetimeMode::Pipeline
                                             : LifetimeMode::Signature;
    config.tiers = tiers_from_flags(
        flags, "clique,mwpm",
        static_cast<int>(flags.get_int("uf_threshold", 2)));
    config.offchip = flags.get_bool("real_offchip") ? OffchipPolicy::Mwpm
                                                    : OffchipPolicy::Oracle;
    const OffchipServiceFlags offchip = offchip_from_flags(flags);
    config.offchip_latency = offchip.latency;
    config.offchip_bandwidth = offchip.bandwidth;
    config.offchip_batch = offchip.batch;
    config.threads = threads_from_flags(flags);
    config.seed = static_cast<uint64_t>(flags.get_int("seed", 1));
    const LifetimeStats stats = run_lifetime(config);

    Table table({"metric", "value"});
    table.add_row({"mode", flags.get_bool("pipeline") ? "pipeline"
                                                      : "signature"});
    table.add_row({"tiers", config.tiers.describe()});
    table.add_row({"threads", std::to_string(config.threads)});
    table.add_row({"cycles", std::to_string(stats.cycles)});
    table.add_row({"coverage_per_decode_%",
                   Table::num(100.0 * stats.coverage_per_decode(), 3)});
    table.add_row({"coverage_per_qubit_cycle_%",
                   Table::num(100.0 * stats.coverage(), 3)});
    table.add_row({"onchip_nonzero_%",
                   Table::num(100.0 * stats.onchip_nonzero_fraction(), 3)});
    table.add_row({"offchip_per_cycle_%",
                   Table::num(100.0 * stats.offchip_fraction(), 4)});
    table.add_row({"midtier_absorption_%",
                   Table::num(100.0 * stats.midtier_absorption(), 3)});
    table.add_row({"clique_data_reduction_x",
                   Table::num(stats.clique_data_reduction(), 1)});
    table.add_row({"mean_raw_syndrome_weight",
                   Table::num(stats.raw_weight.mean(), 3)});
    if (config.mode == LifetimeMode::Pipeline &&
        (offchip.latency > 0 || offchip.bandwidth > 0)) {
        // Async off-chip service observables (queued escalations).
        table.add_row({"offchip_landed",
                       std::to_string(stats.offchip_queue_delay.total())});
        table.add_row({"offchip_suppressed",
                       std::to_string(stats.suppressed_escalations)});
        table.add_row({"offchip_pending_at_end",
                       std::to_string(stats.pending_offchip)});
        table.add_row({"mean_queue_delay_cycles",
                       Table::num(stats.offchip_queue_delay.mean(), 2)});
        table.add_row(
            {"p99_queue_delay_cycles",
             std::to_string(stats.offchip_queue_delay.percentile(0.99))});
        table.add_row({"mean_link_batch",
                       Table::num(stats.offchip_batch_sizes.mean(), 2)});
    }
    table.print();
    return 0;
}

int
run_memory_cmd(const Flags &flags)
{
    MemoryConfig config;
    config.distance = static_cast<int>(flags.get_int("distance", 7));
    config.p = flags.get_double("p", 8e-3);
    config.p_meas = flags.get_double("p_meas", -1.0);
    config.max_trials =
        static_cast<uint64_t>(flags.get_int("trials", 20000));
    config.target_failures =
        static_cast<uint64_t>(flags.get_int("failures", 200));
    config.filter_rounds =
        static_cast<int>(flags.get_int("filter_rounds", 2));
    config.weighted_matching = flags.get_bool("weighted");
    config.seed = static_cast<uint64_t>(flags.get_int("seed", 1));

    Table table({"decoder", "trials", "failures", "LER", "95%_CI"});
    for (const DecoderArm arm :
         {DecoderArm::MwpmOnly, DecoderArm::CliqueMwpm,
          DecoderArm::UnionFindOnly}) {
        const MemoryResult result = run_memory_experiment(config, arm);
        const auto [lo, hi] = result.ler_interval();
        std::string ci = "[";
        ci += Table::sci(lo, 1);
        ci += ",";
        ci += Table::sci(hi, 1);
        ci += "]";
        table.add_row({decoder_arm_name(arm),
                       std::to_string(result.trials),
                       std::to_string(result.failures),
                       Table::sci(result.ler(), 2), std::move(ci)});
    }
    table.print();
    return 0;
}

int
run_fleet_cmd(const Flags &flags)
{
    FleetConfig config;
    config.num_qubits = static_cast<int>(flags.get_int("qubits", 1000));
    config.offchip_prob = flags.get_double("q", 4e-3);
    config.cycles =
        static_cast<uint64_t>(flags.get_int("cycles", 200000));
    config.threads = threads_from_flags(flags);
    config.seed = static_cast<uint64_t>(flags.get_int("seed", 1));
    const OffchipServiceFlags offchip = offchip_from_flags(flags);
    config.offchip_latency = offchip.latency;
    config.offchip_batch = offchip.batch;
    // --bandwidth is this command's historical spelling; the shared
    // --offchip-bandwidth convention (common/flags.hpp) is honored
    // when it is the only one given. Its "0 = unlimited" meaning has
    // no counterpart in the provisioned-link stall model, so an
    // explicit 0 falls back to the default like an absent flag.
    uint64_t bandwidth = 10;
    if (flags.has("bandwidth")) {
        bandwidth = static_cast<uint64_t>(flags.get_int("bandwidth", 10));
    } else if (offchip.bandwidth > 0) {
        bandwidth = offchip.bandwidth;
    }
    const FleetRunResult run = run_fleet_with_bandwidth(config, bandwidth);

    Table table({"metric", "value"});
    table.add_row({"bandwidth_decodes_per_cycle",
                   std::to_string(run.bandwidth)});
    table.add_row({"bandwidth_reduction_x",
                   Table::num(run.bandwidth_reduction, 1)});
    table.add_row({"work_cycles", std::to_string(run.work_cycles)});
    table.add_row({"stall_cycles", std::to_string(run.stall_cycles)});
    table.add_row({"max_backlog", std::to_string(run.max_backlog)});
    table.add_row({"exec_time_increase_%",
                   run.work_cycles < config.cycles
                       ? "diverges"
                       : Table::num(100.0 * run.exec_time_increase, 3)});
    table.add_row({"mean_queue_delay_cycles",
                   Table::num(run.mean_queue_delay, 2)});
    table.add_row({"p99_queue_delay_cycles",
                   std::to_string(run.p99_queue_delay)});
    table.add_row({"mean_link_batch", Table::num(run.mean_batch, 2)});
    table.print();
    return 0;
}

int
run_hierarchy_cmd(const Flags &flags)
{
    const int distance = static_cast<int>(flags.get_int("distance", 11));
    const double p = flags.get_double("p", 1e-2);
    const uint64_t cycles =
        static_cast<uint64_t>(flags.get_int("cycles", 20000));
    const int uf_threshold =
        static_cast<int>(flags.get_int("threshold", 2));
    const TierChainConfig chain_config =
        tiers_from_flags(flags, "clique,uf,mwpm", uf_threshold);

    const RotatedSurfaceCode code(distance);
    const TierChain chain(code, CheckType::Z, chain_config);
    Rng rng(static_cast<uint64_t>(flags.get_int("seed", 1)));
    ErrorFrame frame(code, CheckType::X);
    std::vector<uint8_t> syndrome;
    std::vector<uint64_t> tiers(chain.size(), 0);
    for (uint64_t i = 0; i < cycles; ++i) {
        frame.reset();
        frame.inject(p, rng);
        frame.measure_perfect(syndrome);
        ++tiers[static_cast<size_t>(
            chain.decode_syndrome(syndrome).tier_index)];
    }
    std::printf("chain: %s\n\n", chain_config.describe().c_str());
    Table table({"tier", "decodes", "%"});
    for (size_t t = 0; t < chain.size(); ++t) {
        table.add_row({decoder_tier_name(chain.spec(t).kind),
                       std::to_string(tiers[t]),
                       Table::num(100.0 * tiers[t] / cycles, 3)});
    }
    table.print();
    return 0;
}

int
run_hardware_cmd(const Flags &flags)
{
    const int distance = static_cast<int>(flags.get_int("distance", 9));
    const int rounds = static_cast<int>(flags.get_int("filter_rounds", 2));
    const RotatedSurfaceCode code(distance);
    const SynthesisResult synth =
        synthesize(build_clique_netlist(code, rounds));
    const ErsfqOperatingPoint op;

    Table table({"metric", "value"});
    table.add_row({"cells", std::to_string(synth.total_cells)});
    table.add_row({"splitters", std::to_string(synth.splitters)});
    table.add_row({"balancing_dffs", std::to_string(synth.balancing_dffs)});
    table.add_row({"jj_count", std::to_string(synth.jj_count)});
    table.add_row({"power_uW", Table::num(op.power_uw(synth), 2)});
    table.add_row({"area_mm2", Table::num(synth.area_mm2(), 3)});
    table.add_row({"latency_ns",
                   Table::num(synth.critical_path_ps / 1000.0, 4)});
    table.add_row({"logic_depth", std::to_string(synth.logic_depth)});
    table.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace btwc;
    const Flags flags(argc, argv);
    const std::string experiment =
        flags.positional().empty() ? "lifetime" : flags.positional()[0];
    if (experiment == "lifetime") {
        return run_lifetime_cmd(flags);
    }
    if (experiment == "memory") {
        return run_memory_cmd(flags);
    }
    if (experiment == "fleet") {
        return run_fleet_cmd(flags);
    }
    if (experiment == "hierarchy") {
        return run_hierarchy_cmd(flags);
    }
    if (experiment == "hardware") {
        return run_hardware_cmd(flags);
    }
    std::fprintf(stderr,
                 "unknown experiment '%s'; one of: lifetime, memory, "
                 "fleet, hierarchy, hardware\n",
                 experiment.c_str());
    return 1;
}
