#include "afs/compression.hpp"

#include <algorithm>
#include <cstddef>

#include "common/check.hpp"

namespace btwc {

int
ceil_log2(int x)
{
    int bits = 0;
    while ((1 << bits) < x) {
        ++bits;
    }
    return bits;
}

namespace {

/** Append `width` bits of `value` (LSB first) to a bit vector. */
void
put_bits(std::vector<uint8_t> &out, uint64_t value, int width)
{
    for (int b = 0; b < width; ++b) {
        out.push_back(static_cast<uint8_t>((value >> b) & 1));
    }
}

/** Read `width` bits (LSB first) starting at `pos`. */
uint64_t
get_bits(const std::vector<uint8_t> &in, size_t &pos, int width)
{
    uint64_t value = 0;
    for (int b = 0; b < width; ++b) {
        value |= static_cast<uint64_t>(in[pos++] & 1) << b;
    }
    return value;
}

} // namespace

AfsCompressor::AfsCompressor(int syndrome_bits)
    : n_(syndrome_bits), index_bits_(ceil_log2(syndrome_bits)),
      count_bits_(ceil_log2(syndrome_bits + 1))
{
    BTWC_CHECK(syndrome_bits >= 1);
}

int
AfsCompressor::sparse_rep_bits(int k) const
{
    if (k == 0) {
        return 1;  // the Sparse Representation Bit alone
    }
    return 1 + count_bits_ + k * index_bits_;
}

int
AfsCompressor::run_length_bits(const std::vector<int> &ones) const
{
    // Zero-run lengths between set bits, each as a fixed-width field,
    // plus a leading all-zero flag and a run count.
    if (ones.empty()) {
        return 1;
    }
    return 1 + count_bits_ +
           static_cast<int>(ones.size() + 1) * index_bits_;
}

int
AfsCompressor::dynamic_bits(const std::vector<int> &ones) const
{
    const int sparse = sparse_rep_bits(static_cast<int>(ones.size()));
    const int rle = run_length_bits(ones);
    const int raw = n_;
    return 2 + std::min(raw, std::min(sparse, rle));
}

int
AfsCompressor::compressed_bits(Scheme scheme,
                               const std::vector<int> &ones) const
{
    switch (scheme) {
      case Scheme::Raw:
        return n_;
      case Scheme::SparseRep:
        return sparse_rep_bits(static_cast<int>(ones.size()));
      case Scheme::RunLength:
        return run_length_bits(ones);
      case Scheme::Dynamic:
        return dynamic_bits(ones);
    }
    return n_;
}

std::vector<uint8_t>
AfsCompressor::compress_sparse(const std::vector<uint8_t> &syndrome) const
{
    BTWC_CHECK(static_cast<int>(syndrome.size()) == n_);
    std::vector<int> ones;
    for (int i = 0; i < n_; ++i) {
        if (syndrome[i] & 1) {
            ones.push_back(i);
        }
    }
    std::vector<uint8_t> out;
    if (ones.empty()) {
        out.push_back(0);  // all-zero flag
        return out;
    }
    out.push_back(1);
    put_bits(out, ones.size(), count_bits_);
    for (const int idx : ones) {
        put_bits(out, static_cast<uint64_t>(idx), index_bits_);
    }
    return out;
}

std::vector<uint8_t>
AfsCompressor::decompress_sparse(const std::vector<uint8_t> &bitstream) const
{
    std::vector<uint8_t> syndrome(static_cast<size_t>(n_), 0);
    size_t pos = 0;
    const uint8_t nonzero = bitstream[pos++] & 1;
    if (!nonzero) {
        return syndrome;
    }
    const uint64_t k = get_bits(bitstream, pos, count_bits_);
    for (uint64_t i = 0; i < k; ++i) {
        const uint64_t idx = get_bits(bitstream, pos, index_bits_);
        syndrome[idx] = 1;
    }
    return syndrome;
}

} // namespace btwc
