#pragma once

#include <cstdint>
#include <vector>

namespace btwc {

/**
 * Syndrome compression schemes modeled after AFS [17] (§7.2).
 *
 * AFS ships every cycle's syndrome off-chip but compresses it first.
 * Its most effective scheme is the *sparse representation*: a leading
 * flag bit marks the all-zero syndrome; otherwise the indices of the
 * set bits are transmitted, costing 1 + O(k log2 N) bits for k set
 * bits out of N. AFS additionally proposes choosing dynamically among
 * several schemes per cycle; we model the dynamic choice among sparse
 * representation, zero-run-length coding, and the raw bitmap, paying
 * a 2-bit selector.
 *
 * The decompression routines exist so the codec can be round-trip
 * tested; Fig. 13 consumes only `*_bits` sizes.
 */
class AfsCompressor
{
  public:
    /** Scheme selector. */
    enum class Scheme : uint8_t { Raw, SparseRep, RunLength, Dynamic };

    /** @param syndrome_bits N, the uncompressed syndrome width */
    explicit AfsCompressor(int syndrome_bits);

    /** Uncompressed syndrome width N. */
    int syndrome_bits() const { return n_; }

    /** Bits needed to address one syndrome position, ceil(log2 N). */
    int index_bits() const { return index_bits_; }

    /** Sparse-representation size for a syndrome with k set bits. */
    int sparse_rep_bits(int k) const;

    /** Zero-run-length size for the given set-bit positions (sorted). */
    int run_length_bits(const std::vector<int> &ones) const;

    /** Dynamic best-of-three size (2 selector bits + minimum). */
    int dynamic_bits(const std::vector<int> &ones) const;

    /** Size under an explicit scheme. */
    int compressed_bits(Scheme scheme, const std::vector<int> &ones) const;

    /** Encode a syndrome under the sparse representation. */
    std::vector<uint8_t> compress_sparse(
        const std::vector<uint8_t> &syndrome) const;

    /** Invert `compress_sparse`. */
    std::vector<uint8_t> decompress_sparse(
        const std::vector<uint8_t> &bitstream) const;

  private:
    int n_;
    int index_bits_;
    int count_bits_;
};

/** ceil(log2(x)) for x >= 1 (0 maps to 0). */
int ceil_log2(int x);

} // namespace btwc
