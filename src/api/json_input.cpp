#include "api/json_input.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace btwc {

bool
JsonValue::is_integer_token() const
{
    if (kind != Kind::Number || raw.empty()) {
        return false;
    }
    for (const char c : raw) {
        if (c == '.' || c == 'e' || c == 'E') {
            return false;
        }
    }
    return true;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object) {
        return nullptr;
    }
    for (const auto &member : object) {
        if (member.first == key) {
            return &member.second;
        }
    }
    return nullptr;
}

const JsonValue *
JsonValue::find_path(const std::string &dotted_path) const
{
    const JsonValue *cur = this;
    size_t start = 0;
    while (start < dotted_path.size()) {
        size_t end = dotted_path.find('.', start);
        if (end == std::string::npos) {
            end = dotted_path.size();
        }
        cur = cur->find(dotted_path.substr(start, end - start));
        if (cur == nullptr) {
            return nullptr;
        }
        start = end + 1;
    }
    return cur;
}

const char *
JsonValue::kind_name(Kind kind)
{
    switch (kind) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return "bool";
      case Kind::Number:
        return "number";
      case Kind::String:
        return "string";
      case Kind::Array:
        return "array";
      case Kind::Object:
        return "object";
    }
    return "?";
}

namespace {

/** Recursive-descent parser over the whole document. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool parse(JsonValue *out)
    {
        skip_ws();
        if (!parse_value(out)) {
            return false;
        }
        skip_ws();
        if (pos_ != text_.size()) {
            return fail("trailing content after JSON document");
        }
        return true;
    }

  private:
    bool fail(const std::string &message)
    {
        if (error_ != nullptr) {
            size_t line = 1;
            for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
                line += text_[i] == '\n' ? 1 : 0;
            }
            std::ostringstream out;
            out << "JSON parse error at line " << line << ": " << message;
            *error_ = out.str();
        }
        return false;
    }

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool parse_value(JsonValue *out)
    {
        if (pos_ >= text_.size()) {
            return fail("unexpected end of input");
        }
        const char c = text_[pos_];
        if (c == '{') {
            return parse_object(out);
        }
        if (c == '[') {
            return parse_array(out);
        }
        if (c == '"') {
            out->kind = JsonValue::Kind::String;
            return parse_string(&out->s);
        }
        if (c == 't' || c == 'f') {
            return parse_keyword(c == 't' ? "true" : "false", out);
        }
        if (c == 'n') {
            return parse_keyword("null", out);
        }
        return parse_number(out);
    }

    bool parse_keyword(const std::string &word, JsonValue *out)
    {
        if (text_.compare(pos_, word.size(), word) != 0) {
            return fail("unrecognized literal");
        }
        pos_ += word.size();
        if (word == "null") {
            out->kind = JsonValue::Kind::Null;
        } else {
            out->kind = JsonValue::Kind::Bool;
            out->b = word == "true";
        }
        return true;
    }

    bool parse_number(JsonValue *out)
    {
        const size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            return fail("expected a value");
        }
        out->kind = JsonValue::Kind::Number;
        out->raw = text_.substr(start, pos_ - start);
        char *end = nullptr;
        out->number = std::strtod(out->raw.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            return fail("malformed number '" + out->raw + "'");
        }
        return true;
    }

    bool parse_string(std::string *out)
    {
        if (!consume('"')) {
            return fail("expected '\"'");
        }
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') {
                return true;
            }
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) {
                break;
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out->push_back(esc);
                break;
              case 'b':
                out->push_back('\b');
                break;
              case 'f':
                out->push_back('\f');
                break;
              case 'n':
                out->push_back('\n');
                break;
              case 'r':
                out->push_back('\r');
                break;
              case 't':
                out->push_back('\t');
                break;
              case 'u': {
                // Report emitters never produce \u escapes; decode the
                // code point naively as UTF-8 for completeness.
                if (pos_ + 4 > text_.size()) {
                    return fail("truncated \\u escape");
                }
                const std::string hex = text_.substr(pos_, 4);
                pos_ += 4;
                char *end = nullptr;
                const long cp = std::strtol(hex.c_str(), &end, 16);
                if (end == nullptr || *end != '\0') {
                    return fail("malformed \\u escape");
                }
                if (cp < 0x80) {
                    out->push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
                    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                } else {
                    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
                    out->push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                }
                break;
              }
              default:
                return fail("unknown escape sequence");
            }
        }
        return fail("unterminated string");
    }

    bool parse_object(JsonValue *out)
    {
        consume('{');
        out->kind = JsonValue::Kind::Object;
        skip_ws();
        if (consume('}')) {
            return true;
        }
        for (;;) {
            skip_ws();
            std::string key;
            if (!parse_string(&key)) {
                return false;
            }
            skip_ws();
            if (!consume(':')) {
                return fail("expected ':' after object key");
            }
            skip_ws();
            JsonValue value;
            if (!parse_value(&value)) {
                return false;
            }
            out->object.emplace_back(std::move(key), std::move(value));
            skip_ws();
            if (consume(',')) {
                continue;
            }
            if (consume('}')) {
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool parse_array(JsonValue *out)
    {
        consume('[');
        out->kind = JsonValue::Kind::Array;
        skip_ws();
        if (consume(']')) {
            return true;
        }
        for (;;) {
            skip_ws();
            JsonValue value;
            if (!parse_value(&value)) {
                return false;
            }
            out->array.push_back(std::move(value));
            skip_ws();
            if (consume(',')) {
                continue;
            }
            if (consume(']')) {
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

bool
json_parse(const std::string &text, JsonValue *out, std::string *error)
{
    JsonValue value;
    JsonParser parser(text, error);
    if (!parser.parse(&value)) {
        return false;
    }
    *out = std::move(value);
    return true;
}

bool
json_parse_file(const std::string &path, JsonValue *out,
                std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr) {
            *error = "cannot open '" + path + "'";
        }
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) {
        if (error != nullptr) {
            *error = "read error on '" + path + "'";
        }
        return false;
    }
    return json_parse(buffer.str(), out, error);
}

} // namespace btwc
