#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace btwc {

/**
 * Minimal JSON reader for Report artifacts (`Report::to_json` output
 * and google-benchmark's `--benchmark_out` files) — the input side of
 * the BENCH_* perf-trajectory tooling. Supports the full JSON value
 * grammar (objects, arrays, strings with escapes, numbers, booleans,
 * null); object key order is preserved so diffs print in emission
 * order. Numbers keep their raw token text: integer-valued tokens can
 * be compared exactly (counters) while float tokens go through a
 * tolerance (see api/report_diff.hpp).
 *
 * No external dependency: the repo builds in containers without a
 * JSON library, and the subset needed here is small.
 */
class JsonValue
{
  public:
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool b = false;
    double number = 0.0;
    std::string raw;     ///< number token as written ("3", "0.25", "1e-3")
    std::string s;       ///< string payload (unescaped)
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** True when the number token has no fraction/exponent part. */
    bool is_integer_token() const;

    /** Object member by key, or nullptr (first match; objects keep order). */
    const JsonValue *find(const std::string &key) const;

    /**
     * Descend a dotted path ("metrics.service.landed") through nested
     * objects; nullptr when any component is missing. An empty path
     * returns `this`.
     */
    const JsonValue *find_path(const std::string &dotted_path) const;

    /** Display name of a kind ("object", "number", ...). */
    static const char *kind_name(Kind kind);
};

/**
 * Parse a complete JSON document. Returns false on malformed input,
 * leaving `out` untouched and storing a line-annotated diagnostic in
 * `error` (when non-null); never terminates the process.
 */
bool json_parse(const std::string &text, JsonValue *out,
                std::string *error);

/**
 * Read and parse a JSON file. Returns false with a diagnostic in
 * `error` (when non-null) on I/O or parse failure.
 */
bool json_parse_file(const std::string &path, JsonValue *out,
                     std::string *error);

} // namespace btwc
