#pragma once

#include <cstdio>
#include <string>

#include "api/report.hpp"
#include "common/flags.hpp"

namespace btwc {

/**
 * The shared `--json <path>` convention of every bench and example
 * binary: the binary keeps printing its human-readable tables to
 * stdout and, when the flag is given, additionally accumulates a
 * Report (scalars + its Tables) and writes it as JSON on exit.
 *
 *     JsonOutput json(flags, "fig04");
 *     ...
 *     json.report().set("q", q);
 *     json.add_table("distribution", table);
 *     return json.finish();   // 0, or 1 on an unwritable path
 *
 * Construction is cheap and accumulation is unconditional (the
 * Report doubles as the machine-readable result even when unwritten),
 * so call sites need no `if (json.enabled())` guards.
 */
class JsonOutput
{
  public:
    JsonOutput(const Flags &flags, const char *binary)
        : path_(flags.get("json", ""))
    {
        report_.set("binary", binary);
    }

    /** The accumulating report (top-level "binary" key preset). */
    Report &report() { return report_; }

    /** Shorthand for report().add_table(key, table). */
    void add_table(const std::string &key, const Table &table)
    {
        report_.add_table(key, table);
    }

    /** True when `--json` was given. */
    bool enabled() const { return !path_.empty(); }

    /**
     * Write the report if `--json` was given. Returns the process
     * exit code: 0; 1 with a stderr diagnostic when the path is
     * unwritable; 2 for a bare `--json` with no path (the valueless
     * flag parses as the string "true", which would otherwise
     * silently create a file literally named `true`). So
     * `return json.finish();` ends every main.
     */
    int finish() const
    {
        if (path_.empty()) {
            return 0;
        }
        if (path_ == "true") {
            std::fprintf(stderr, "--json requires a path "
                                 "(e.g. --json out.json)\n");
            return 2;
        }
        std::string error;
        if (!write_report_json(report_, path_, &error)) {
            std::fprintf(stderr, "--json: %s\n", error.c_str());
            return 1;
        }
        return 0;
    }

  private:
    Report report_;
    std::string path_;
};

} // namespace btwc
