#include "api/registry.hpp"

namespace btwc {

const std::vector<NamedScenario> &
scenario_registry()
{
    // Every spec here must parse and stay fast at its default volume:
    // tests/test_api.cpp runs each entry (budget-clamped) against the
    // legacy config path, and ci.sh runs "quick" end-to-end for the
    // BENCH_scenario.json artifact.
    static const std::vector<NamedScenario> kRegistry = {
        {"quick",
         "fast smoke point: d=5 signature sampling",
         "kind=lifetime,d=5,p=3e-3,cycles=2000"},
        {"fig04",
         "Fig. 4 headline column: d=21 @ p=1e-3 signature distribution",
         "kind=lifetime,d=21,p=1e-3,cycles=20000"},
        {"fig04-d81",
         "Fig. 4 extreme column: d=81 @ p=5e-3 (slow; raise cycles=)",
         "kind=lifetime,d=81,p=5e-3,cycles=1000"},
        {"fig11",
         "Clique coverage probe: d=11 @ p=5e-3",
         "kind=lifetime,d=11,p=5e-3,cycles=20000"},
        {"fig12",
         "on-chip non-zero fraction near threshold: d=13 @ p=1e-2",
         "kind=lifetime,d=13,p=1e-2,cycles=20000"},
        {"deep-chain",
         "§8.1 three-tier hierarchy: Clique -> UF(2) -> MWPM",
         "kind=lifetime,d=9,p=5e-3,tiers=clique,uf:2,mwpm,cycles=20000"},
        {"pipeline-latency",
         "closed-loop pipeline on a narrow latency-4 off-chip link",
         "kind=lifetime,d=7,p=8e-3,mode=pipeline,policy=mwpm,latency=4,"
         "bandwidth=1,batch=8,cycles=20000"},
        {"fig14-d5",
         "Fig. 14 memory experiment: Clique+MWPM arm at d=5",
         "kind=memory,d=5,p=8e-3,arm=clique,trials=6000,failures=50"},
        {"fig14-d5-baseline",
         "Fig. 14 memory experiment: MWPM-only baseline at d=5",
         "kind=memory,d=5,p=8e-3,arm=mwpm,trials=6000,failures=50"},
        {"memory-weighted",
         "asymmetric-noise memory point with log-likelihood weights",
         "kind=memory,d=7,p=8e-3,p_meas=0.016,weighted,arm=mwpm,"
         "trials=4000,failures=50"},
        {"fig16-provisioned",
         "Fig. 16 binomial fleet on a provisioned 8-decode link",
         "kind=fleet,qubits=1000,q=4e-3,bandwidth=8,cycles=100000"},
        {"fleet-demand",
         "binomial demand histogram of a 1000-qubit machine",
         "kind=fleet,qubits=1000,q=4e-3,cycles=100000"},
        {"fleet-hotspot",
         "Poisson-binomial demand: 10% of qubits at 8x q",
         "kind=fleet,qubits=1000,q=4e-3,hot_fraction=0.1,hot_mult=8,"
         "cycles=100000"},
        {"fleet-shared-narrow",
         "12 real pipelines contending for one narrow shared link",
         "kind=exact-fleet,d=5,p=6e-3,shared,fleet=12,latency=2,"
         "bandwidth=1,cycles=3000"},
        {"fleet-private",
         "exact fleet with per-qubit private synchronous queues",
         "kind=exact-fleet,d=5,p=6e-3,fleet=8,cycles=3000"},
        {"fabric-quick",
         "2-link priority fabric with a hot tenant quartile (CI gate)",
         "kind=fabric,d=3,p=6e-3,policy=mwpm,fleet=6,links=2,"
         "scheduler=priority,placement=least-loaded,hot_fraction=0.25,"
         "hot_mult=4,latency=2,bandwidth=1,deadline=6,cycles=2000"},
        {"fabric-chaos",
         "chaos fabric: flapping link, drops, surges, full degradation "
         "stack (CI gate)",
         "kind=fabric,d=3,p=6e-3,policy=mwpm,fleet=6,links=2,"
         "scheduler=deadline,placement=least-loaded,hot_fraction=0.25,"
         "hot_mult=4,latency=2,bandwidth=1,deadline=8,timeout=12,"
         "retries=2,shed=true,migrate=32,"
         "faults=outage:500:60:0;spike:150:24:6;drop:0.04;dup:0.03;"
         "corrupt:0.04;surge:300:60:2:1,cycles=2000"},
        {"fabric-contention",
         "12 tenants EDF-scheduled on one narrow link under hot-spot load",
         "kind=fabric,d=5,p=8e-3,policy=mwpm,fleet=12,links=1,"
         "scheduler=deadline,deadline=8,hot_fraction=0.25,hot_mult=3,"
         "latency=2,bandwidth=1,cycles=4000"},
        {"stream-quick",
         "sliding-window streaming decode with a UF screening tier",
         "kind=stream,d=5,p=3e-3,window=8,overlap=2,cycles=4000,"
         "tiers=uf:2,stream"},
        {"stream-soak",
         "long bare-MWPM stream at d=7 (bounded-memory soak point)",
         "kind=stream,d=7,p=2e-3,window=10,overlap=3,cycles=20000"},
    };
    return kRegistry;
}

bool
find_scenario(const std::string &name, ScenarioSpec *out,
              std::string *error)
{
    for (const NamedScenario &entry : scenario_registry()) {
        if (name == entry.name) {
            return ScenarioSpec::try_parse(entry.spec, out, error);
        }
    }
    if (error != nullptr) {
        std::string known;
        for (const NamedScenario &entry : scenario_registry()) {
            known += known.empty() ? "" : ", ";
            known += entry.name;
        }
        *error = "unknown scenario '" + name + "'; known: " + known;
    }
    return false;
}

} // namespace btwc
