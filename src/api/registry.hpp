#pragma once

#include <string>
#include <vector>

#include "api/scenario.hpp"

namespace btwc {

/**
 * One named, curated operating point of the paper's evaluation grid.
 * The spec string is the full description (ScenarioSpec grammar);
 * `btwc_run <name>` runs it, CLI flags layer overrides on top, and
 * tests/test_api.cpp proves every entry bit-exact with the legacy
 * config path. Registry entries default to laptop-scale Monte-Carlo
 * volumes; raise `cycles=` / `trials=` for paper-scale statistics.
 */
struct NamedScenario
{
    const char *name;
    const char *description;
    const char *spec;
};

/** All named scenarios, in display order. */
const std::vector<NamedScenario> &scenario_registry();

/**
 * Resolve `name` against the registry and parse its spec. Returns
 * false with a diagnostic (unknown name, listing the known ones) when
 * absent; never terminates the process.
 */
bool find_scenario(const std::string &name, ScenarioSpec *out,
                   std::string *error);

} // namespace btwc
