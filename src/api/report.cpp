#include "api/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace btwc {

namespace {

/** JSON string escaping (quotes, backslashes, control characters). */
std::string
json_escape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 2);
    for (const char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
format_double(double v)
{
    if (std::isnan(v)) {
        return "nan";
    }
    if (std::isinf(v)) {
        return v > 0 ? "inf" : "-inf";
    }
    char buf[64];
    // Shortest %g form that survives a round-trip: most metric values
    // are "nice" (0.001, 42, 0.25) and should print that way, but
    // bit-exactness matters for the spec round-trip and the golden
    // JSON, so fall back to the full 17 significant digits.
    for (const int precision : {15, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v) {
            break;
        }
    }
    return buf;
}

std::string
Report::Value::scalar_string() const
{
    switch (kind) {
      case Kind::Bool:
        return b ? "true" : "false";
      case Kind::Uint:
        return std::to_string(u);
      case Kind::Int:
        return std::to_string(i);
      case Kind::Double:
        return format_double(d);
      case Kind::String:
        return s;
      case Kind::Object:
      case Kind::TableValue:
        break;
    }
    return "";
}

Report::Value &
Report::slot(const std::string &key)
{
    for (auto &entry : entries_) {
        if (entry.first == key) {
            entry.second = Value();
            return entry.second;
        }
    }
    entries_.emplace_back(key, Value());
    return entries_.back().second;
}

void
Report::set(const std::string &key, const std::string &v)
{
    Value &value = slot(key);
    value.kind = Value::Kind::String;
    value.s = v;
}

void
Report::set(const std::string &key, const char *v)
{
    set(key, std::string(v));
}

void
Report::set(const std::string &key, double v)
{
    Value &value = slot(key);
    value.kind = Value::Kind::Double;
    value.d = v;
}

void
Report::set(const std::string &key, uint64_t v)
{
    Value &value = slot(key);
    value.kind = Value::Kind::Uint;
    value.u = v;
}

void
Report::set(const std::string &key, int64_t v)
{
    Value &value = slot(key);
    value.kind = Value::Kind::Int;
    value.i = v;
}

void
Report::set(const std::string &key, int v)
{
    set(key, static_cast<int64_t>(v));
}

void
Report::set(const std::string &key, unsigned v)
{
    set(key, static_cast<uint64_t>(v));
}

void
Report::set(const std::string &key, bool v)
{
    Value &value = slot(key);
    value.kind = Value::Kind::Bool;
    value.b = v;
}

void
Report::add_table(const std::string &key, const Table &table)
{
    Value &value = slot(key);
    value.kind = Value::Kind::TableValue;
    value.table_headers = table.headers();
    value.table_rows = table.rows();
}

Report &
Report::child(const std::string &key)
{
    for (auto &entry : entries_) {
        if (entry.first == key) {
            if (entry.second.kind != Value::Kind::Object) {
                entry.second = Value();
                entry.second.kind = Value::Kind::Object;
                entry.second.object = std::make_unique<Report>();
            }
            return *entry.second.object;
        }
    }
    entries_.emplace_back(key, Value());
    Value &value = entries_.back().second;
    value.kind = Value::Kind::Object;
    value.object = std::make_unique<Report>();
    return *value.object;
}

bool
Report::has(const std::string &key) const
{
    for (const auto &entry : entries_) {
        if (entry.first == key) {
            return true;
        }
    }
    return false;
}

const Report::Value *
Report::find(const std::string &dotted_path) const
{
    const size_t dot = dotted_path.find('.');
    const std::string head = dotted_path.substr(0, dot);
    for (const auto &entry : entries_) {
        if (entry.first != head) {
            continue;
        }
        if (dot == std::string::npos) {
            return &entry.second;
        }
        if (entry.second.kind != Value::Kind::Object) {
            return nullptr;
        }
        return entry.second.object->find(dotted_path.substr(dot + 1));
    }
    return nullptr;
}

bool
Report::lookup_uint(const std::string &dotted_path, uint64_t *out) const
{
    const Value *value = find(dotted_path);
    if (value == nullptr) {
        return false;
    }
    if (value->kind == Value::Kind::Uint) {
        *out = value->u;
        return true;
    }
    if (value->kind == Value::Kind::Int && value->i >= 0) {
        *out = static_cast<uint64_t>(value->i);
        return true;
    }
    return false;
}

bool
Report::lookup_double(const std::string &dotted_path, double *out) const
{
    const Value *value = find(dotted_path);
    if (value == nullptr) {
        return false;
    }
    switch (value->kind) {
      case Value::Kind::Double:
        *out = value->d;
        return true;
      case Value::Kind::Uint:
        *out = static_cast<double>(value->u);
        return true;
      case Value::Kind::Int:
        *out = static_cast<double>(value->i);
        return true;
      default:
        return false;
    }
}

bool
Report::lookup_string(const std::string &dotted_path,
                      std::string *out) const
{
    const Value *value = find(dotted_path);
    if (value == nullptr || value->kind != Value::Kind::String) {
        return false;
    }
    *out = value->s;
    return true;
}

namespace {

/** Scalar / table leaves only; objects recurse in Report::to_json. */
void
emit_json_value(const Report::Value &value, std::ostringstream &out,
                int indent, int depth)
{
    using Kind = Report::Value::Kind;
    const std::string pad(static_cast<size_t>(indent) * (depth + 1), ' ');
    const std::string close_pad(static_cast<size_t>(indent) * depth, ' ');
    switch (value.kind) {
      case Kind::Bool:
        out << (value.b ? "true" : "false");
        break;
      case Kind::Uint:
        out << value.u;
        break;
      case Kind::Int:
        out << value.i;
        break;
      case Kind::Double: {
        // JSON has no inf/nan literals; keep the output parseable.
        if (std::isnan(value.d) || std::isinf(value.d)) {
            out << '"' << format_double(value.d) << '"';
        } else {
            out << format_double(value.d);
        }
        break;
      }
      case Kind::String:
        out << '"' << json_escape(value.s) << '"';
        break;
      case Kind::Object:
        break;  // handled by Report::to_json's recursion
      case Kind::TableValue: {
        out << "{\n" << pad << "\"headers\": [";
        for (size_t c = 0; c < value.table_headers.size(); ++c) {
            out << (c == 0 ? "" : ", ") << '"'
                << json_escape(value.table_headers[c]) << '"';
        }
        out << "],\n" << pad << "\"rows\": [";
        for (size_t r = 0; r < value.table_rows.size(); ++r) {
            out << (r == 0 ? "" : ",") << '\n' << pad
                << std::string(static_cast<size_t>(indent), ' ') << '[';
            const auto &row = value.table_rows[r];
            for (size_t c = 0; c < row.size(); ++c) {
                out << (c == 0 ? "" : ", ") << '"' << json_escape(row[c])
                    << '"';
            }
            out << ']';
        }
        if (!value.table_rows.empty()) {
            out << '\n' << pad;
        }
        out << "]\n" << close_pad << '}';
        break;
      }
    }
}

} // namespace

std::string
Report::to_json(int indent) const
{
    std::ostringstream out;
    // Recursive emitter over the entry vector (member access).
    struct Emitter
    {
        int indent;
        void operator()(const Report &report, std::ostringstream &out,
                        int depth) const
        {
            if (report.entries_.empty()) {
                out << "{}";
                return;
            }
            const std::string pad(
                static_cast<size_t>(indent) * (depth + 1), ' ');
            const std::string close_pad(
                static_cast<size_t>(indent) * depth, ' ');
            out << "{\n";
            for (size_t e = 0; e < report.entries_.size(); ++e) {
                const auto &entry = report.entries_[e];
                out << pad << '"' << json_escape(entry.first) << "\": ";
                if (entry.second.kind == Value::Kind::Object) {
                    (*this)(*entry.second.object, out, depth + 1);
                } else {
                    emit_json_value(entry.second, out, indent, depth + 1);
                }
                out << (e + 1 < report.entries_.size() ? ",\n" : "\n");
            }
            out << close_pad << '}';
        }
    };
    Emitter{indent}(*this, out, 0);
    return out.str();
}

std::vector<std::pair<std::string, std::string>>
Report::flat() const
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto &entry : entries_) {
        switch (entry.second.kind) {
          case Value::Kind::Object: {
            for (auto &sub : entry.second.object->flat()) {
                out.emplace_back(entry.first + "." + sub.first,
                                 std::move(sub.second));
            }
            break;
          }
          case Value::Kind::TableValue:
            break;  // tables are JSON-only
          default:
            out.emplace_back(entry.first, entry.second.scalar_string());
        }
    }
    return out;
}

std::string
Report::csv() const
{
    const auto pairs = flat();
    std::ostringstream header;
    std::ostringstream row;
    for (size_t i = 0; i < pairs.size(); ++i) {
        header << (i == 0 ? "" : ",") << Table::csv_field(pairs[i].first);
        row << (i == 0 ? "" : ",") << Table::csv_field(pairs[i].second);
    }
    return header.str() + "\n" + row.str() + "\n";
}

Table
Report::to_table() const
{
    Table table({"metric", "value"});
    for (auto &pair : flat()) {
        table.add_row({pair.first, pair.second});
    }
    return table;
}

bool
write_report_json(const Report &report, const std::string &path,
                  std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        if (error != nullptr) {
            *error = "cannot open '" + path + "' for writing";
        }
        return false;
    }
    const std::string json = report.to_json() + "\n";
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = std::fclose(f) == 0 && written == json.size();
    if (!ok && error != nullptr) {
        *error = "short write to '" + path + "'";
    }
    return ok;
}

} // namespace btwc
