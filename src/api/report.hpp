#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"

namespace btwc {

/**
 * Typed, ordered metric tree — the uniform machine-readable result of
 * every simulation harness (the counterpart of `ScenarioSpec` on the
 * output side).
 *
 * A `Report` is an ordered map from string keys to values; a value is
 * a scalar (bool / unsigned / signed / double / string), a nested
 * `Report`, or an embedded `Table` (headers + string rows). Key order
 * is insertion order and is preserved by `to_json()`, so the JSON key
 * sequence is stable across runs — the golden-file test in
 * tests/test_api.cpp pins it, and the BENCH_* perf-trajectory tooling
 * relies on it.
 *
 * Renderings:
 *   - `to_json()`      pretty-printed JSON (non-finite doubles become
 *                      the strings "inf" / "-inf" / "nan" so the
 *                      output always parses);
 *   - `flat()`         dotted-path scalar list ("metrics.ler", ...),
 *                      the CSV row / lookup backbone (tables are
 *                      skipped);
 *   - `csv()`          two CSV lines (header + row) over `flat()`;
 *   - `to_table()`     a two-column metric/value Table for humans.
 */
class Report
{
  public:
    class Value;

    Report() = default;
    Report(Report &&) = default;
    Report &operator=(Report &&) = default;

    /** Set a scalar (replaces an existing value under the key). */
    void set(const std::string &key, const std::string &v);
    void set(const std::string &key, const char *v);
    void set(const std::string &key, double v);
    void set(const std::string &key, uint64_t v);
    void set(const std::string &key, int64_t v);
    void set(const std::string &key, int v);
    void set(const std::string &key, unsigned v);
    void set(const std::string &key, bool v);

    /** Embed a copy of `table` (headers + rows) under `key`. */
    void add_table(const std::string &key, const Table &table);

    /**
     * The nested report under `key`, created empty on first use.
     * A non-object value under the same key is replaced.
     */
    Report &child(const std::string &key);

    /** True if a value (of any kind) exists under `key`. */
    bool has(const std::string &key) const;

    /** Number of entries. */
    size_t size() const { return entries_.size(); }

    /**
     * Look up a value by dotted path ("metrics.service.landed").
     * Returns nullptr when any component is missing.
     */
    const Value *find(const std::string &dotted_path) const;

    /** Scalar lookups by dotted path (false when absent/mistyped). */
    bool lookup_uint(const std::string &dotted_path, uint64_t *out) const;
    bool lookup_double(const std::string &dotted_path, double *out) const;
    bool lookup_string(const std::string &dotted_path,
                       std::string *out) const;

    /** Pretty-printed JSON (always parseable; see class comment). */
    std::string to_json(int indent = 2) const;

    /** Dotted-path scalar pairs in tree order (tables skipped). */
    std::vector<std::pair<std::string, std::string>> flat() const;

    /** CSV header + row over `flat()`. */
    std::string csv() const;

    /** Two-column metric/value rendering of `flat()`. */
    Table to_table() const;

  private:
    Value &slot(const std::string &key);

    std::vector<std::pair<std::string, Value>> entries_;
};

/** One value of a Report entry (see Report). */
class Report::Value
{
  public:
    enum class Kind : uint8_t
    {
        Bool,
        Uint,
        Int,
        Double,
        String,
        Object,
        TableValue,
    };

    Value() = default;

    Kind kind = Kind::Uint;
    bool b = false;
    uint64_t u = 0;
    int64_t i = 0;
    double d = 0.0;
    std::string s;
    std::unique_ptr<Report> object;
    std::vector<std::string> table_headers;
    std::vector<std::vector<std::string>> table_rows;

    /** The value rendered the way `to_json` renders a scalar leaf
        (without quotes for strings); objects/tables yield "". */
    std::string scalar_string() const;
};

/**
 * Render a double the way every Report emitter does: the shortest
 * `%g` form that parses back to the same value (non-finite values
 * become "inf" / "-inf" / "nan").
 */
std::string format_double(double v);

/**
 * Write `report.to_json()` to `path` (with a trailing newline).
 * Returns false and stores a diagnostic in `error` (when non-null) on
 * I/O failure; never terminates the process.
 */
bool write_report_json(const Report &report, const std::string &path,
                       std::string *error);

} // namespace btwc
