#include "api/report_diff.hpp"

#include <cmath>
#include <cstdlib>
#include <set>

namespace btwc {

namespace {

std::string
render(const JsonValue &value)
{
    switch (value.kind) {
      case JsonValue::Kind::Null:
        return "null";
      case JsonValue::Kind::Bool:
        return value.b ? "true" : "false";
      case JsonValue::Kind::Number:
        return value.raw;
      case JsonValue::Kind::String:
        return "\"" + value.s + "\"";
      case JsonValue::Kind::Array:
        return "<array[" + std::to_string(value.array.size()) + "]>";
      case JsonValue::Kind::Object:
        return "<object{" + std::to_string(value.object.size()) + "}>";
    }
    return "?";
}

std::string
join(const std::string &path, const std::string &key)
{
    return path.empty() ? key : path + "." + key;
}

void
add_diff(std::vector<ReportDiff> &diffs, const std::string &path,
         const std::string &baseline, const std::string &fresh)
{
    diffs.push_back(ReportDiff{path, baseline, fresh});
}

/**
 * Canonical form of an integer token: sign stripped of "+"/"-0",
 * leading zeros dropped. Token comparison stays exact at any width —
 * strtoll would saturate at INT64_MAX (ERANGE) and silently equate
 * distinct uint64-range counters.
 */
std::string
normalized_integer_token(const std::string &raw)
{
    size_t start = 0;
    bool negative = false;
    if (start < raw.size() && (raw[start] == '-' || raw[start] == '+')) {
        negative = raw[start] == '-';
        ++start;
    }
    while (start + 1 < raw.size() && raw[start] == '0') {
        ++start;
    }
    const std::string digits = raw.substr(start);
    if (digits == "0") {
        return "0";
    }
    return negative ? "-" + digits : digits;
}

bool
numbers_match(const JsonValue &a, const JsonValue &b, double rel_tol)
{
    if (a.is_integer_token() && b.is_integer_token()) {
        // Counters: exact at any width (64-bit counters exceed what
        // double — and int64 for the top bit — can hold).
        return normalized_integer_token(a.raw) ==
               normalized_integer_token(b.raw);
    }
    const double x = a.number;
    const double y = b.number;
    if (x == y) {
        return true;
    }
    return std::abs(x - y) <=
           rel_tol * std::max(std::abs(x), std::abs(y));
}

void
diff_value(const JsonValue &a, const JsonValue &b, const std::string &path,
           const ReportDiffOptions &options,
           std::vector<ReportDiff> &diffs)
{
    if (a.kind != b.kind) {
        add_diff(diffs, path, render(a) + " <" +
                                  JsonValue::kind_name(a.kind) + ">",
                 render(b) + " <" + JsonValue::kind_name(b.kind) + ">");
        return;
    }
    switch (a.kind) {
      case JsonValue::Kind::Object: {
        // Key union in baseline-then-fresh order, each key once.
        std::set<std::string> seen;
        auto visit = [&](const std::string &key) {
            if (!seen.insert(key).second) {
                return;
            }
            const JsonValue *av = a.find(key);
            const JsonValue *bv = b.find(key);
            const std::string child = join(path, key);
            if (av == nullptr) {
                add_diff(diffs, child, "<missing>", render(*bv));
            } else if (bv == nullptr) {
                add_diff(diffs, child, render(*av), "<missing>");
            } else {
                diff_value(*av, *bv, child, options, diffs);
            }
        };
        for (const auto &member : a.object) {
            visit(member.first);
        }
        for (const auto &member : b.object) {
            visit(member.first);
        }
        break;
      }
      case JsonValue::Kind::Array: {
        if (a.array.size() != b.array.size()) {
            add_diff(diffs, path, render(a), render(b));
            return;
        }
        for (size_t i = 0; i < a.array.size(); ++i) {
            diff_value(a.array[i], b.array[i],
                       path + "[" + std::to_string(i) + "]", options,
                       diffs);
        }
        break;
      }
      case JsonValue::Kind::Number:
        if (!numbers_match(a, b, options.rel_tol)) {
            add_diff(diffs, path, render(a), render(b));
        }
        break;
      default:
        if (render(a) != render(b)) {
            add_diff(diffs, path, render(a), render(b));
        }
        break;
    }
}

} // namespace

std::vector<ReportDiff>
diff_reports(const JsonValue &baseline, const JsonValue &fresh,
             const ReportDiffOptions &options)
{
    std::vector<ReportDiff> diffs;
    const JsonValue *a = baseline.find_path(options.subtree);
    const JsonValue *b = fresh.find_path(options.subtree);
    if (a == nullptr || b == nullptr) {
        if (a != b) {
            add_diff(diffs, options.subtree,
                     a == nullptr ? "<missing>" : "<present>",
                     b == nullptr ? "<missing>" : "<present>");
        } else {
            add_diff(diffs, options.subtree, "<missing>", "<missing>");
        }
        return diffs;
    }
    diff_value(*a, *b, options.subtree, options, diffs);
    return diffs;
}

} // namespace btwc
