#pragma once

#include <string>
#include <vector>

#include "api/json_input.hpp"

namespace btwc {

/** One difference found between two Report JSON documents. */
struct ReportDiff
{
    std::string path;      ///< dotted path of the differing value
    std::string baseline;  ///< rendered baseline value ("<missing>")
    std::string fresh;     ///< rendered fresh value
};

/** Comparison policy for `diff_reports` (the btwc_diff gate). */
struct ReportDiffOptions
{
    /**
     * Subtree compared (dotted path into both documents). The default
     * pins exactly the deterministic observables: `metrics` never
     * contains wall-clock values — `run_scenario` emits those under
     * the sibling `walltime` subtree for precisely this reason (see
     * src/api/README.md). Empty = compare whole documents.
     */
    std::string subtree = "metrics";

    /**
     * Relative tolerance for float-token numbers:
     * |a - b| <= rel_tol * max(|a|, |b|). Integer-token numbers
     * (Monte-Carlo counters) always compare exactly — a seeded run is
     * bit-reproducible, so any counter drift is a real behavior
     * change. The default absorbs only printf round-trip noise.
     */
    double rel_tol = 1e-9;
};

/**
 * Structural comparison of two parsed Report JSON documents under the
 * policy above: objects compare by key union (a key missing on either
 * side is a difference — schema drift should fail the gate loudly),
 * arrays element-wise, bools/strings/nulls exactly, numbers per the
 * integer/float rule. Returns every difference in emission order;
 * empty result == reports agree.
 */
std::vector<ReportDiff> diff_reports(const JsonValue &baseline,
                                     const JsonValue &fresh,
                                     const ReportDiffOptions &options);

} // namespace btwc
