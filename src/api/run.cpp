#include "api/run.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "common/check.hpp"

namespace btwc {

namespace {

/**
 * Wall-clock of the harness call proper (config adaptation and Report
 * assembly excluded). Lives in its own top-level subtree — a sibling
 * of `metrics`, never inside it — so the bit-exactness tests and the
 * `btwc_diff` regression gate can compare `metrics` subtrees without
 * tripping over timing noise (see src/api/README.md).
 */
class HarnessTimer
{
  public:
    HarnessTimer() : t0_(std::chrono::steady_clock::now()) {}

    /** Stop and record: walltime_ms plus `count/sec` under `rate_key`. */
    void fill(Report &report, const char *rate_key, uint64_t count) const
    {
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0_)
                .count();
        Report &wall = report.child("walltime");
        wall.set("walltime_ms", ms);
        wall.set(rate_key,
                 ms > 0.0 ? static_cast<double>(count) / (ms / 1000.0)
                          : 0.0);
    }

  private:
    std::chrono::steady_clock::time_point t0_;
};

/** Histogram summary with the percentiles the provisioning story uses. */
void
add_histogram(Report &parent, const std::string &key,
              const CountHistogram &histogram)
{
    Report &node = parent.child(key);
    node.set("total", histogram.total());
    node.set("mean", histogram.mean());
    node.set("p50", histogram.percentile(0.50));
    node.set("p90", histogram.percentile(0.90));
    node.set("p99", histogram.percentile(0.99));
    node.set("p999", histogram.percentile(0.999));
    node.set("max", histogram.max_value());
}

void
fill_scenario(Report &report, const ScenarioSpec &spec)
{
    Report &scenario = report.child("scenario");
    scenario.set("kind", scenario_kind_name(spec.kind));
    scenario.set("spec", spec.to_string());
    scenario.set("tiers", spec.tiers.describe());
}

void
fill_engine(Report &config, int threads, uint64_t seed)
{
    config.set("threads", threads);
    config.set("seed", seed);
}

} // namespace

Report
lifetime_metrics_report(const LifetimeStats &stats)
{
    Report metrics;
    metrics.set("cycles", stats.cycles);
    metrics.set("all_zero_cycles", stats.all_zero_cycles);
    metrics.set("trivial_cycles", stats.trivial_cycles);
    metrics.set("complex_cycles", stats.complex_cycles);
    metrics.set("offchip_cycles", stats.offchip_cycles);
    metrics.set("clique_corrections", stats.clique_corrections);
    metrics.set("all_zero_halves", stats.all_zero_halves);
    metrics.set("trivial_halves", stats.trivial_halves);
    metrics.set("complex_halves", stats.complex_halves);
    metrics.set("offchip_halves", stats.offchip_halves);
    Report &tiers = metrics.child("tier_halves");
    tiers.set("clique", stats.tier_halves[0]);
    tiers.set("union_find", stats.tier_halves[1]);
    tiers.set("mwpm", stats.tier_halves[2]);
    tiers.set("exact", stats.tier_halves[3]);
    tiers.set("lut", stats.tier_halves[4]);
    metrics.set("coverage_per_decode", stats.coverage_per_decode());
    metrics.set("coverage_per_cycle", stats.coverage());
    metrics.set("onchip_nonzero_fraction",
                stats.onchip_nonzero_fraction());
    metrics.set("offchip_fraction", stats.offchip_fraction());
    metrics.set("midtier_absorption", stats.midtier_absorption());
    metrics.set("clique_data_reduction", stats.clique_data_reduction());
    metrics.set("mean_raw_weight", stats.raw_weight.mean());
    Report &service = metrics.child("service");
    service.set("landed", stats.offchip_queue_delay.total());
    service.set("suppressed", stats.suppressed_escalations);
    service.set("pending", stats.pending_offchip);
    service.set("mean_queue_delay", stats.offchip_queue_delay.mean());
    service.set("p99_queue_delay",
                stats.offchip_queue_delay.percentile(0.99));
    service.set("mean_link_batch", stats.offchip_batch_sizes.mean());
    return metrics;
}

Report
memory_metrics_report(const MemoryResult &result)
{
    Report metrics;
    metrics.set("trials", result.trials);
    metrics.set("failures", result.failures);
    metrics.set("ler", result.ler());
    const auto [lo, hi] = result.ler_interval();
    metrics.set("ler_ci_lo", lo);
    metrics.set("ler_ci_hi", hi);
    metrics.set("offchip_rounds", result.offchip_rounds);
    metrics.set("total_rounds", result.total_rounds);
    metrics.set("offchip_round_fraction",
                result.total_rounds == 0
                    ? 0.0
                    : static_cast<double>(result.offchip_rounds) /
                          static_cast<double>(result.total_rounds));
    metrics.set("unclear_syndromes", result.unclear_syndromes);
    return metrics;
}

Report
fleet_run_report(const FleetRunResult &run, uint64_t total_cycles)
{
    Report link;
    link.set("bandwidth", run.bandwidth);
    link.set("bandwidth_reduction", run.bandwidth_reduction);
    link.set("work_cycles", run.work_cycles);
    link.set("stall_cycles", run.stall_cycles);
    link.set("max_backlog", run.max_backlog);
    link.set("exec_time_increase", run.exec_time_increase);
    link.set("diverged", run.work_cycles < total_cycles);
    link.set("mean_queue_delay", run.mean_queue_delay);
    link.set("p99_queue_delay", run.p99_queue_delay);
    link.set("max_queue_delay", run.max_queue_delay);
    link.set("mean_batch", run.mean_batch);
    return link;
}

Report
exact_fleet_metrics_report(const ExactFleetStats &stats, bool with_faults)
{
    Report metrics;
    add_histogram(metrics, "demand", stats.demand);
    metrics.set("enqueued", stats.enqueued);
    metrics.set("served", stats.served);
    metrics.set("landed", stats.landed);
    metrics.set("suppressed", stats.suppressed);
    metrics.set("pending", stats.pending);
    metrics.set("stall_cycles", stats.stall_cycles);
    metrics.set("work_cycles", stats.work_cycles);
    metrics.set("max_backlog", stats.max_backlog);
    metrics.set("exec_time_increase", stats.exec_time_increase());
    metrics.set("backlog_mean", stats.backlog.mean());
    Report &delay = metrics.child("queue_delay");
    delay.set("mean", stats.queue_delay.mean());
    delay.set("p99", stats.queue_delay.percentile(0.99));
    delay.set("max", stats.queue_delay.max_value());
    metrics.set("batch_mean", stats.batch_sizes.mean());
    if (with_faults) {
        Report &faults = metrics.child("faults");
        faults.set("outage_cycles", stats.outage_cycles);
        faults.set("dropped", stats.dropped);
        faults.set("duplicated", stats.duplicated);
        faults.set("corrupted", stats.corrupted);
        faults.set("surge_enqueued", stats.surge_enqueued);
        faults.set("surge_landed", stats.surge_landed);
    }
    return metrics;
}

Report
fabric_metrics_report(const FabricStats &stats, bool with_faults)
{
    // Fleet-level block: shape-for-shape the exact-fleet schema, so a
    // FIFO/K=1/uniform fabric report is field-by-field comparable with
    // the legacy exact-fleet report (pinned in tests).
    Report metrics;
    add_histogram(metrics, "demand", stats.demand);
    metrics.set("enqueued", stats.enqueued);
    metrics.set("served", stats.served);
    metrics.set("landed", stats.landed);
    metrics.set("suppressed", stats.suppressed);
    metrics.set("pending", stats.pending);
    metrics.set("stall_cycles", stats.stall_cycles);
    metrics.set("work_cycles", stats.work_cycles);
    metrics.set("max_backlog", stats.max_backlog);
    metrics.set("exec_time_increase", stats.exec_time_increase());
    metrics.set("backlog_mean", stats.backlog.mean());
    Report &delay = metrics.child("queue_delay");
    delay.set("mean", stats.queue_delay.mean());
    delay.set("p99", stats.queue_delay.percentile(0.99));
    delay.set("max", stats.queue_delay.max_value());
    metrics.set("batch_mean", stats.batch_sizes.mean());
    // Fabric block: the SLO observables — deadline misses, the probed
    // logical error rate, and the per-link / per-tenant breakdowns.
    // Everything is a scalar leaf so the btwc_diff BENCH gate covers
    // the whole subtree.
    Report &fabric = metrics.child("fabric");
    fabric.set("deadline_misses", stats.deadline_misses);
    fabric.set("probes", stats.probes);
    fabric.set("probe_failures", stats.probe_failures);
    fabric.set("ler", stats.probes == 0
                          ? 0.0
                          : static_cast<double>(stats.probe_failures) /
                                static_cast<double>(stats.probes));
    Report &links = fabric.child("links");
    for (size_t k = 0; k < stats.per_link.size(); ++k) {
        const LinkFabricStats &mine = stats.per_link[k];
        Report &node = links.child("link" + std::to_string(k));
        node.set("enqueued", mine.enqueued);
        node.set("served", mine.served);
        node.set("landed", mine.landed);
        node.set("stall_cycles", mine.stall_cycles);
        node.set("max_backlog", mine.max_backlog);
        node.set("deadline_misses", mine.deadline_misses);
        node.set("mean_delay", mine.delay.mean());
        node.set("p99_delay", mine.delay.percentile(0.99));
        if (with_faults) {
            node.set("outage_cycles", mine.outage_cycles);
            node.set("dropped", mine.dropped);
            node.set("duplicated", mine.duplicated);
            node.set("corrupted", mine.corrupted);
            node.set("shed", mine.shed);
            node.set("canceled", mine.canceled);
            node.set("stale_discards", mine.stale_discards);
            node.set("surge_enqueued", mine.surge_enqueued);
            node.set("surge_landed", mine.surge_landed);
        }
    }
    Report &tenants = fabric.child("tenants");
    for (size_t q = 0; q < stats.per_tenant.size(); ++q) {
        const TenantFabricStats &mine = stats.per_tenant[q];
        Report &node = tenants.child("t" + std::to_string(q));
        node.set("link", mine.link);
        node.set("enqueued", mine.enqueued);
        node.set("landed", mine.landed);
        node.set("suppressed", mine.suppressed);
        node.set("deadline_misses", mine.deadline_misses);
        node.set("mean_delay", mine.delay.mean());
        node.set("p99_delay", mine.delay.percentile(0.99));
        node.set("probes", mine.probes);
        node.set("failures", mine.failures);
        node.set("ler", mine.probes == 0
                            ? 0.0
                            : static_cast<double>(mine.failures) /
                                  static_cast<double>(mine.probes));
        if (with_faults) {
            node.set("retried", mine.retried);
            node.set("degraded", mine.degraded);
            node.set("dropped", mine.dropped);
            node.set("shed", mine.shed);
            node.set("canceled", mine.canceled);
        }
    }
    if (with_faults) {
        // Chaos-mode aggregate: every injected fault and every
        // degradation response, one scalar each, so the BENCH_chaos
        // btwc_diff gate pins the full injection/response ledger.
        Report &faults = metrics.child("faults");
        faults.set("outage_cycles", stats.faults.outage_cycles);
        faults.set("dropped", stats.faults.dropped);
        faults.set("duplicated", stats.faults.duplicated);
        faults.set("corrupted", stats.faults.corrupted);
        faults.set("shed", stats.faults.shed);
        faults.set("canceled", stats.faults.canceled);
        faults.set("stale_discards", stats.faults.stale_discards);
        faults.set("surge_enqueued", stats.faults.surge_enqueued);
        faults.set("surge_landed", stats.faults.surge_landed);
        faults.set("retried", stats.faults.retried);
        faults.set("degraded", stats.faults.degraded);
        faults.set("nacks", stats.faults.nacks);
        faults.set("duplicate_drops", stats.faults.duplicate_drops);
        faults.set("migrations", stats.faults.migrations);
    }
    return metrics;
}

Report
stream_metrics_report(const StreamStats &stats)
{
    Report metrics;
    metrics.set("rounds", stats.window.rounds);
    metrics.set("streams", stats.streams);
    metrics.set("windows", stats.window.windows);
    metrics.set("all_zero_windows", stats.window.all_zero_windows);
    metrics.set("screened_windows", stats.window.screened_windows);
    metrics.set("matched_windows", stats.window.matched_windows);
    metrics.set("committed_rounds", stats.window.committed_rounds);
    metrics.set("defects_in", stats.window.defects_in);
    metrics.set("defects_committed", stats.window.defects_committed);
    metrics.set("defects_carried", stats.window.defects_carried);
    metrics.set("max_carried", stats.window.max_carried);
    metrics.set("committed_weight", stats.window.committed_weight);
    add_histogram(metrics, "commit_lag", stats.window.commit_lag);
    add_histogram(metrics, "window_defects", stats.window.window_defects);
    metrics.set("unclear_syndromes", stats.unclear_syndromes);
    metrics.set("logical_failures", stats.logical_failures);
    return metrics;
}

namespace {

Report
run_lifetime_scenario(const ScenarioSpec &spec)
{
    const LifetimeConfig config = spec.to_lifetime_config();
    Report report;
    fill_scenario(report, spec);
    Report &conf = report.child("config");
    conf.set("distance", config.distance);
    conf.set("p", config.p);
    conf.set("p_meas", config.meas_probability());
    conf.set("filter_rounds", config.filter_rounds);
    conf.set("mode", config.mode == LifetimeMode::Pipeline
                         ? "pipeline"
                         : "signature");
    conf.set("policy", config.offchip == OffchipPolicy::Mwpm ? "mwpm"
                                                             : "oracle");
    conf.set("cycles", config.cycles);
    conf.set("offchip_latency", config.offchip_latency);
    conf.set("offchip_bandwidth", config.offchip_bandwidth);
    conf.set("offchip_batch", config.offchip_batch);
    fill_engine(conf, config.threads, config.seed);
    const HarnessTimer timer;
    const LifetimeStats stats = run_lifetime(config);
    report.child("metrics") = lifetime_metrics_report(stats);
    timer.fill(report, "cycles_per_sec", stats.cycles);
    return report;
}

Report
run_memory_scenario(const ScenarioSpec &spec)
{
    const MemoryConfig config = spec.to_memory_config();
    Report report;
    fill_scenario(report, spec);
    Report &conf = report.child("config");
    conf.set("distance", config.distance);
    conf.set("p", config.p);
    conf.set("p_meas", config.meas_probability());
    conf.set("rounds", config.rounds > 0 ? config.rounds
                                         : config.distance);
    conf.set("filter_rounds", config.filter_rounds);
    conf.set("arm", decoder_arm_name(spec.arm));
    conf.set("weighted", config.weighted_matching);
    conf.set("error_type",
             config.error_type == CheckType::X ? "x" : "z");
    conf.set("max_trials", config.max_trials);
    conf.set("target_failures", config.target_failures);
    fill_engine(conf, config.threads, config.seed);
    const HarnessTimer timer;
    const MemoryResult result = run_memory_experiment(config, spec.arm);
    report.child("metrics") = memory_metrics_report(result);
    timer.fill(report, "decodes_per_sec", result.trials);
    return report;
}

Report
run_fleet_scenario(const ScenarioSpec &spec)
{
    const FleetConfig config = spec.to_fleet_config();
    Report report;
    fill_scenario(report, spec);
    Report &conf = report.child("config");
    conf.set("num_qubits", config.num_qubits);
    conf.set("q", config.offchip_prob);
    conf.set("hot_fraction", spec.service.hot_fraction);
    conf.set("hot_mult", spec.service.hot_mult);
    conf.set("cycles", config.cycles);
    conf.set("offchip_latency", config.offchip_latency);
    conf.set("offchip_batch", config.offchip_batch);
    conf.set("bandwidth", spec.service.bandwidth);
    fill_engine(conf, config.threads, config.seed);
    Report &metrics = report.child("metrics");
    const HarnessTimer timer;
    if (spec.service.bandwidth > 0) {
        // A provisioned link: the Fig. 16 stall/backlog observables.
        // The demand stream is consumed by the link run itself, so an
        // unprovisioned (`bandwidth=0`) scenario is the way to get
        // the raw demand percentiles — running both here would draw
        // the whole Monte-Carlo trace twice.
        metrics.child("link") = fleet_run_report(
            run_fleet_with_bandwidth(config, spec.service.bandwidth),
            config.cycles);
    } else {
        add_histogram(metrics, "demand", fleet_demand_histogram(config));
    }
    timer.fill(report, "cycles_per_sec", config.cycles);
    return report;
}

Report
run_exact_fleet_scenario(const ScenarioSpec &spec)
{
    const ExactFleetConfig config = spec.to_exact_fleet_config();
    Report report;
    fill_scenario(report, spec);
    Report &conf = report.child("config");
    conf.set("distance", config.distance);
    conf.set("p", config.p);
    conf.set("fleet_size", config.num_qubits);
    conf.set("shared_link", config.shared_link);
    conf.set("policy", config.offchip == OffchipPolicy::Mwpm ? "mwpm"
                                                             : "oracle");
    conf.set("cycles", config.cycles);
    conf.set("offchip_latency", config.offchip_latency);
    conf.set("offchip_bandwidth", config.offchip_bandwidth);
    conf.set("offchip_batch", config.offchip_batch);
    if (config.faults.enabled) {
        conf.set("faults", config.faults.to_string());
    }
    fill_engine(conf, config.threads, config.seed);
    const HarnessTimer timer;
    const ExactFleetStats stats = fleet_demand_exact_stats(config);
    report.child("metrics") =
        exact_fleet_metrics_report(stats, config.faults.enabled);
    timer.fill(report, "cycles_per_sec", config.cycles);
    return report;
}

Report
run_fabric_scenario(const ScenarioSpec &spec)
{
    const FabricFleetConfig config = spec.to_fabric_config();
    Report report;
    fill_scenario(report, spec);
    Report &conf = report.child("config");
    conf.set("distance", config.fleet.distance);
    conf.set("p", config.fleet.p);
    conf.set("fleet_size", config.fleet.num_qubits);
    conf.set("policy", config.fleet.offchip == OffchipPolicy::Mwpm
                           ? "mwpm"
                           : "oracle");
    conf.set("links", config.topology.links);
    conf.set("scheduler", scheduler_kind_name(config.topology.scheduler));
    conf.set("placement", placement_kind_name(config.topology.placement));
    conf.set("deadline", config.topology.deadline);
    conf.set("hot_fraction", spec.service.hot_fraction);
    conf.set("hot_mult", spec.service.hot_mult);
    conf.set("probe_interval", config.probe_interval);
    conf.set("cycles", config.fleet.cycles);
    conf.set("offchip_latency", config.fleet.offchip_latency);
    conf.set("offchip_bandwidth", config.fleet.offchip_bandwidth);
    conf.set("offchip_batch", config.fleet.offchip_batch);
    // Chaos keys appear only when configured: a fault-free fabric
    // report (and the BENCH baselines diffed against it) stays
    // byte-identical with the pre-chaos schema.
    const bool chaos = config.faults.enabled || config.timeout > 0 ||
                       config.retries > 0 || config.shed ||
                       config.topology.migrate_threshold > 0;
    if (chaos) {
        conf.set("faults", config.faults.to_string());
        conf.set("timeout", config.timeout);
        conf.set("retries", config.retries);
        conf.set("shed", config.shed);
        conf.set("migrate", config.topology.migrate_threshold);
    }
    fill_engine(conf, config.fleet.threads, config.fleet.seed);
    const HarnessTimer timer;
    const FabricStats stats = run_fabric(config);
    report.child("metrics") = fabric_metrics_report(stats, chaos);
    timer.fill(report, "cycles_per_sec", config.fleet.cycles);
    return report;
}

Report
run_stream_scenario(const ScenarioSpec &spec)
{
    const StreamConfig config = spec.to_stream_config();
    Report report;
    fill_scenario(report, spec);
    Report &conf = report.child("config");
    conf.set("distance", config.distance);
    conf.set("p", config.p);
    conf.set("p_meas", config.meas_probability());
    conf.set("window", config.window);
    conf.set("overlap", config.overlap);
    conf.set("rounds", config.rounds);
    conf.set("error_type",
             config.error_type == CheckType::X ? "x" : "z");
    fill_engine(conf, config.threads, config.seed);
    const HarnessTimer timer;
    const StreamStats stats = run_stream(config);
    report.child("metrics") = stream_metrics_report(stats);
    // decodes/sec counts window decodes (the decoder's unit of work);
    // rounds/sec is the sustained stream throughput headline.
    timer.fill(report, "decodes_per_sec", stats.window.windows);
    Report &wall = report.child("walltime");
    double ms = 0.0;
    report.lookup_double("walltime.walltime_ms", &ms);
    wall.set("rounds_per_sec",
             ms > 0.0 ? static_cast<double>(stats.window.rounds) /
                            (ms / 1000.0)
                      : 0.0);
    return report;
}

} // namespace

Report
run_scenario(const ScenarioSpec &spec)
{
    // An audit= setting holds for exactly this run: the scope restores
    // whatever level the process (env / previous set_audit_level) had.
    std::unique_ptr<ScopedAuditLevel> audit_scope;
    if (spec.engine.audit >= 0) {
        audit_scope = std::make_unique<ScopedAuditLevel>(
            static_cast<AuditLevel>(spec.engine.audit));
    }
    switch (spec.kind) {
      case ScenarioKind::Lifetime:
        return run_lifetime_scenario(spec);
      case ScenarioKind::Memory:
        return run_memory_scenario(spec);
      case ScenarioKind::Fleet:
        return run_fleet_scenario(spec);
      case ScenarioKind::ExactFleet:
        return run_exact_fleet_scenario(spec);
      case ScenarioKind::Stream:
        return run_stream_scenario(spec);
      case ScenarioKind::Fabric:
        return run_fabric_scenario(spec);
    }
    return Report();
}

Report
run_scenario_repeated(const ScenarioSpec &spec, int repeat)
{
    if (repeat < 1) {
        repeat = 1;
    }
    std::vector<Report> runs;
    runs.reserve(static_cast<size_t>(repeat));
    std::vector<double> walltimes;
    walltimes.reserve(static_cast<size_t>(repeat));
    for (int r = 0; r < repeat; ++r) {
        runs.push_back(run_scenario(spec));
        double ms = 0.0;
        runs.back().lookup_double("walltime.walltime_ms", &ms);
        walltimes.push_back(ms);
    }
    // Index of the lower-median walltime (sort indices, not Reports:
    // Report is move-only and the metrics subtrees are identical).
    std::vector<size_t> order(walltimes.size());
    for (size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&walltimes](size_t a, size_t b) {
        return walltimes[a] < walltimes[b];
    });
    const size_t median = order[(order.size() - 1) / 2];
    Report report = std::move(runs[median]);
    report.child("walltime").set("repeat", repeat);
    return report;
}

} // namespace btwc
