#pragma once

#include "api/report.hpp"
#include "api/scenario.hpp"

namespace btwc {

/**
 * Run one scenario through its harness and return the uniform Report:
 *
 *   {
 *     "scenario": { "kind", "spec", "tiers" },
 *     "config":   { resolved harness configuration },
 *     "metrics":  { harness observables (schema per kind, see
 *                   src/api/README.md) }
 *   }
 *
 * The dispatch is a thin, lossless wrapper: the spec is adapted to
 * the legacy config struct (ScenarioSpec::to_*_config) and handed to
 * the existing harness (`run_lifetime`, `run_memory_experiment`,
 * `fleet_demand_histogram` / `run_fleet_with_bandwidth`,
 * `fleet_demand_exact_stats`), so every metric is bit-exact with a
 * direct legacy-config call — enforced by tests/test_api.cpp for
 * every registry scenario.
 */
Report run_scenario(const ScenarioSpec &spec);

/**
 * Run the scenario `repeat` times and return the run with the median
 * wall-clock (the lower median for even `repeat`), its `walltime`
 * subtree annotated with the repeat count under "repeat". The metrics
 * subtrees of all runs are identical (the RNG stream is a function of
 * the spec alone), so taking the median walltime changes nothing the
 * btwc_diff gate compares while de-noising the BENCH trajectory's
 * timing sidecar. `repeat <= 1` degrades to a single annotated run.
 */
Report run_scenario_repeated(const ScenarioSpec &spec, int repeat);

/**
 * Metric subtrees of `run_scenario`, exposed so bench binaries can
 * embed the same stable schema in their own `--json` reports next to
 * their figure tables.
 */
Report lifetime_metrics_report(const LifetimeStats &stats);
Report memory_metrics_report(const MemoryResult &result);
Report fleet_run_report(const FleetRunResult &run, uint64_t total_cycles);
/** `with_faults` as in `fabric_metrics_report`, for the shared link. */
Report exact_fleet_metrics_report(const ExactFleetStats &stats,
                                  bool with_faults = false);
Report stream_metrics_report(const StreamStats &stats);
/**
 * `with_faults` adds the chaos-mode `faults` subtree
 * (src/api/README.md). Kept opt-in (the scenario runner sets it only
 * when the spec configures chaos) so fault-free reports — and the
 * committed BENCH baselines diffed against them — stay byte-identical
 * with the pre-chaos schema.
 */
Report fabric_metrics_report(const FabricStats &stats,
                             bool with_faults = false);

} // namespace btwc
