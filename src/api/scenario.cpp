#include "api/scenario.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "api/report.hpp"
#include "common/check.hpp"
#include "common/parse.hpp"

namespace btwc {

const char *
scenario_kind_name(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::Lifetime:
        return "lifetime";
      case ScenarioKind::Memory:
        return "memory";
      case ScenarioKind::Fleet:
        return "fleet";
      case ScenarioKind::ExactFleet:
        return "exact-fleet";
      case ScenarioKind::Stream:
        return "stream";
      case ScenarioKind::Fabric:
        return "fabric";
    }
    return "?";
}

std::string
tiers_spec_string(const TierChainConfig &config)
{
    std::string out;
    for (const TierSpec &tier : config.tiers) {
        if (!out.empty()) {
            out += ',';
        }
        switch (tier.kind) {
          case DecoderTier::Clique:
            out += "clique";
            break;
          case DecoderTier::UnionFind:
            out += "uf";
            break;
          case DecoderTier::Mwpm:
            out += "mwpm";
            break;
          case DecoderTier::Exact:
            out += "exact";
            break;
          case DecoderTier::Lut:
            out += "lut";
            break;
          case DecoderTier::Stream:
            out += "stream";
            break;
        }
        // Union-Find thresholds are always explicit (a bare "uf" would
        // re-parse under the caller's uf_threshold default); the other
        // tiers default to -1 (never escalate on effort).
        if (tier.kind == DecoderTier::UnionFind ||
            tier.escalation_threshold != -1) {
            out += ':';
            out += std::to_string(tier.escalation_threshold);
        }
    }
    return out;
}

namespace {

void
set_error(std::string *error, const std::string &message)
{
    if (error != nullptr) {
        *error = message;
    }
}

/**
 * Field setters shared by the grammar parser and `apply_flags`, so
 * validation can never diverge between the two entry points. Each
 * returns false with a diagnostic on a bad value.
 */
struct SpecBuilder
{
    ScenarioSpec spec;
    int uf_threshold = 2;  ///< default for bare "uf" tiers
    bool uf_threshold_set = false;
    std::string tiers_value;
    bool tiers_set = false;

    bool kind(const std::string &v, std::string *error)
    {
        if (v == "lifetime") {
            spec.kind = ScenarioKind::Lifetime;
        } else if (v == "memory") {
            spec.kind = ScenarioKind::Memory;
        } else if (v == "fleet") {
            spec.kind = ScenarioKind::Fleet;
        } else if (v == "exact-fleet" || v == "exact_fleet" ||
                   v == "exactfleet") {
            spec.kind = ScenarioKind::ExactFleet;
        } else if (v == "stream") {
            spec.kind = ScenarioKind::Stream;
        } else if (v == "fabric") {
            spec.kind = ScenarioKind::Fabric;
        } else {
            set_error(error, "unknown scenario kind '" + v +
                                 "'; expected lifetime | memory | "
                                 "fleet | exact-fleet | stream | "
                                 "fabric");
            return false;
        }
        return true;
    }

    bool distance(const std::string &v, std::string *error)
    {
        int64_t d = 0;
        if (!parse_i64(v, &d) || d < 3) {
            set_error(error, "bad distance '" + v +
                                 "'; expected an integer >= 3");
            return false;
        }
        spec.code.distance = static_cast<int>(d);
        return true;
    }

    bool probability(const char *key, const std::string &v, double *out,
                     std::string *error)
    {
        double p = 0.0;
        // Negated-range form so NaN (which fails every comparison)
        // is rejected too.
        if (!parse_f64(v, &p) || !(p >= 0.0 && p <= 1.0)) {
            set_error(error, std::string("bad ") + key + " '" + v +
                                 "'; expected a probability in [0, 1]");
            return false;
        }
        *out = p;
        return true;
    }

    bool p_meas(const std::string &v, std::string *error)
    {
        double p = 0.0;
        if (!parse_f64(v, &p) || std::isnan(p) || p > 1.0) {
            set_error(error, "bad p_meas '" + v +
                                 "'; expected a probability in [0, 1] "
                                 "(negative = use p)");
            return false;
        }
        spec.code.p_meas = p;
        return true;
    }

    bool positive_int(const char *key, const std::string &v, int *out,
                      std::string *error)
    {
        int64_t n = 0;
        if (!parse_i64(v, &n) || n < 1) {
            set_error(error, std::string("bad ") + key + " '" + v +
                                 "'; expected an integer >= 1");
            return false;
        }
        *out = static_cast<int>(n);
        return true;
    }

    bool u64(const char *key, const std::string &v, uint64_t *out,
             std::string *error)
    {
        int64_t n = 0;
        if (!parse_i64(v, &n) || n < 0) {
            set_error(error, std::string("bad ") + key + " '" + v +
                                 "'; expected a non-negative integer");
            return false;
        }
        *out = static_cast<uint64_t>(n);
        return true;
    }

    bool error_type(const std::string &v, std::string *error)
    {
        if (v == "x" || v == "X") {
            spec.code.error_type = CheckType::X;
        } else if (v == "z" || v == "Z") {
            spec.code.error_type = CheckType::Z;
        } else {
            set_error(error, "bad error_type '" + v +
                                 "'; expected x | z");
            return false;
        }
        return true;
    }

    bool mode(const std::string &v, std::string *error)
    {
        if (v == "signature") {
            spec.mode = LifetimeMode::Signature;
        } else if (v == "pipeline") {
            spec.mode = LifetimeMode::Pipeline;
        } else {
            set_error(error, "bad mode '" + v +
                                 "'; expected signature | pipeline");
            return false;
        }
        return true;
    }

    bool policy(const std::string &v, std::string *error)
    {
        if (v == "oracle") {
            spec.service.policy = OffchipPolicy::Oracle;
        } else if (v == "mwpm" || v == "real") {
            spec.service.policy = OffchipPolicy::Mwpm;
        } else {
            set_error(error, "bad policy '" + v +
                                 "'; expected oracle | mwpm");
            return false;
        }
        return true;
    }

    bool arm(const std::string &v, std::string *error)
    {
        if (v == "mwpm") {
            spec.arm = DecoderArm::MwpmOnly;
        } else if (v == "clique" || v == "clique+mwpm") {
            spec.arm = DecoderArm::CliqueMwpm;
        } else if (v == "uf" || v == "union-find") {
            spec.arm = DecoderArm::UnionFindOnly;
        } else {
            set_error(error, "bad arm '" + v +
                                 "'; expected mwpm | clique | uf");
            return false;
        }
        return true;
    }

    bool boolean(const char *key, const std::string &v, bool *out,
                 std::string *error)
    {
        if (!parse_bool(v, out)) {
            set_error(error, std::string("bad ") + key + " '" + v +
                                 "'; expected a boolean");
            return false;
        }
        return true;
    }

    bool fraction(const char *key, const std::string &v, double *out,
                  std::string *error)
    {
        return probability(key, v, out, error);
    }

    bool non_negative_double(const char *key, const std::string &v,
                             double *out, std::string *error)
    {
        double d = 0.0;
        if (!parse_f64(v, &d) || !(d >= 0.0)) {
            set_error(error, std::string("bad ") + key + " '" + v +
                                 "'; expected a non-negative number");
            return false;
        }
        *out = d;
        return true;
    }

    bool threads(const std::string &v, std::string *error)
    {
        int64_t n = 0;
        if (!parse_i64(v, &n)) {
            set_error(error, "bad threads '" + v +
                                 "'; expected an integer (0 = all "
                                 "hardware threads)");
            return false;
        }
        spec.engine.threads = n < 0 ? 0 : static_cast<int>(n);
        return true;
    }

    /** Resolve the accumulated tier spec (must run after parsing). */
    bool finish_tiers(std::string *error)
    {
        if (!tiers_set) {
            // No new tier list, but an explicit uf_threshold still
            // re-thresholds the already-resolved chain's Union-Find
            // tiers (e.g. `btwc_run deep-chain --uf_threshold 5`) —
            // an accepted override must never be silently dropped.
            if (uf_threshold_set) {
                for (TierSpec &tier : spec.tiers.tiers) {
                    if (tier.kind == DecoderTier::UnionFind) {
                        tier.escalation_threshold = uf_threshold;
                    }
                }
            }
            return true;
        }
        TierChainConfig config;
        std::string tier_error;
        if (!TierChainConfig::try_parse(tiers_value, uf_threshold,
                                        &config, &tier_error)) {
            set_error(error, "tiers: " + tier_error);
            return false;
        }
        spec.tiers = config;
        return true;
    }
};

/** True if `token` (e.g. "uf:3") names a tier of the --tiers grammar. */
bool
is_tier_token(const std::string &token)
{
    std::string name = token;
    const size_t colon = token.find(':');
    if (colon != std::string::npos) {
        int64_t threshold = 0;
        if (!parse_i64(token.substr(colon + 1), &threshold)) {
            return false;
        }
        name = token.substr(0, colon);
    }
    return name == "clique" || name == "uf" || name == "union-find" ||
           name == "unionfind" || name == "mwpm" || name == "matching" ||
           name == "exact" || name == "lut" || name == "stream";
}

/**
 * Flag spellings `apply_flags` feeds through the grammar's `apply_key`
 * validation. Every spec-grammar key has its own-name spelling here
 * (so an override can be copied straight off a printed spec string)
 * next to the historical CLI spelling; when both are present the
 * later row wins.
 */
const struct FlagKeyMapping
{
    const char *flag;
    const char *key;
} kFlagKeyMappings[] = {
    {"kind", "kind"},
    {"d", "d"},                 {"distance", "d"},
    {"p", "p"},                 {"p_meas", "p_meas"},
    {"filter", "filter"},       {"filter_rounds", "filter"},
    {"rounds", "rounds"},       {"error_type", "error_type"},
    {"uf_threshold", "uf_threshold"},
    {"mode", "mode"},           {"policy", "policy"},
    {"arm", "arm"},
    {"latency", "latency"},     {"offchip-latency", "latency"},
    {"offchip-bandwidth", "bandwidth"},
    {"bandwidth", "bandwidth"}, {"batch", "batch"},
    {"fleet", "fleet"},         {"fleet-size", "fleet"},
    {"qubits", "qubits"},       {"q", "q"},
    {"hot_fraction", "hot_fraction"}, {"hot-fraction", "hot_fraction"},
    {"hot_mult", "hot_mult"},   {"hot-mult", "hot_mult"},
    {"links", "links"},         {"scheduler", "scheduler"},
    {"placement", "placement"}, {"deadline", "deadline"},
    {"faults", "faults"},       {"timeout", "timeout"},
    {"retries", "retries"},     {"migrate", "migrate"},
    {"window", "window"},       {"overlap", "overlap"},
    {"cycles", "cycles"},       {"trials", "trials"},
    {"failures", "failures"},   {"threads", "threads"},
    {"seed", "seed"},           {"audit", "audit"},
};

/** Boolean / shortcut flags with their own historical spellings. */
const char *const kBoolFlagSpellings[] = {
    "weighted", "shared", "shared-link", "pipeline", "real_offchip",
    "shed",
};

/** Dispatch one `key=value` token into the builder. */
bool
apply_key(SpecBuilder &builder, const std::string &key,
          const std::string &value, std::string *error)
{
    ScenarioSpec &spec = builder.spec;
    if (key == "kind") {
        return builder.kind(value, error);
    }
    if (key == "d" || key == "distance") {
        return builder.distance(value, error);
    }
    if (key == "p") {
        return builder.probability("p", value, &spec.code.p, error);
    }
    if (key == "p_meas") {
        return builder.p_meas(value, error);
    }
    if (key == "filter" || key == "filter_rounds") {
        return builder.positive_int("filter", value,
                                    &spec.code.filter_rounds, error);
    }
    if (key == "rounds") {
        int64_t n = 0;
        if (!parse_i64(value, &n) || n < 0) {
            set_error(error, "bad rounds '" + value +
                                 "'; expected an integer >= 0 (0 = d)");
            return false;
        }
        spec.code.rounds = static_cast<int>(n);
        return true;
    }
    if (key == "error_type") {
        return builder.error_type(value, error);
    }
    if (key == "tiers") {
        builder.tiers_value = value;
        builder.tiers_set = true;
        return true;
    }
    if (key == "uf_threshold") {
        int64_t n = 0;
        if (!parse_i64(value, &n)) {
            set_error(error, "bad uf_threshold '" + value +
                                 "'; expected an integer");
            return false;
        }
        builder.uf_threshold = static_cast<int>(n);
        builder.uf_threshold_set = true;
        return true;
    }
    if (key == "mode") {
        return builder.mode(value, error);
    }
    if (key == "policy") {
        return builder.policy(value, error);
    }
    if (key == "arm") {
        return builder.arm(value, error);
    }
    if (key == "weighted") {
        return builder.boolean("weighted", value,
                               &spec.weighted_matching, error);
    }
    if (key == "latency") {
        return builder.u64("latency", value, &spec.service.latency,
                           error);
    }
    if (key == "bandwidth") {
        return builder.u64("bandwidth", value, &spec.service.bandwidth,
                           error);
    }
    if (key == "batch") {
        return builder.u64("batch", value, &spec.service.batch, error);
    }
    if (key == "shared") {
        return builder.boolean("shared", value,
                               &spec.service.shared_link, error);
    }
    if (key == "fleet" || key == "fleet_size") {
        return builder.positive_int("fleet", value,
                                    &spec.service.fleet_size, error);
    }
    if (key == "qubits") {
        return builder.positive_int("qubits", value,
                                    &spec.service.num_qubits, error);
    }
    if (key == "q") {
        return builder.probability("q", value,
                                   &spec.service.offchip_prob, error);
    }
    if (key == "hot_fraction" || key == "hot-fraction") {
        return builder.fraction("hot_fraction", value,
                                &spec.service.hot_fraction, error);
    }
    if (key == "hot_mult" || key == "hot-mult") {
        return builder.non_negative_double(
            "hot_mult", value, &spec.service.hot_mult, error);
    }
    if (key == "links") {
        return builder.positive_int("links", value, &spec.service.links,
                                    error);
    }
    if (key == "scheduler") {
        if (!parse_scheduler_kind(value, &spec.service.scheduler)) {
            set_error(error, "bad scheduler '" + value +
                                 "'; expected fifo | priority | "
                                 "deadline | wfq");
            return false;
        }
        return true;
    }
    if (key == "placement") {
        if (!parse_placement_kind(value, &spec.service.placement)) {
            set_error(error, "bad placement '" + value +
                                 "'; expected hash | least-loaded | "
                                 "isolate");
            return false;
        }
        return true;
    }
    if (key == "deadline") {
        return builder.u64("deadline", value, &spec.service.deadline,
                           error);
    }
    if (key == "faults") {
        std::string plan_error;
        if (!FaultPlan::try_parse(value, &spec.service.faults,
                                  &plan_error)) {
            set_error(error, "faults: " + plan_error);
            return false;
        }
        return true;
    }
    if (key == "timeout") {
        return builder.u64("timeout", value, &spec.service.timeout,
                           error);
    }
    if (key == "retries") {
        int64_t n = 0;
        if (!parse_i64(value, &n) || n < 0) {
            set_error(error, "bad retries '" + value +
                                 "'; expected an integer >= 0");
            return false;
        }
        spec.service.retries = static_cast<int>(n);
        return true;
    }
    if (key == "shed") {
        return builder.boolean("shed", value, &spec.service.shed, error);
    }
    if (key == "migrate") {
        return builder.u64("migrate", value, &spec.service.migrate,
                           error);
    }
    if (key == "window") {
        return builder.positive_int("window", value, &spec.stream.window,
                                    error);
    }
    if (key == "overlap") {
        int64_t n = 0;
        if (!parse_i64(value, &n) || n < 0) {
            set_error(error, "bad overlap '" + value +
                                 "'; expected an integer >= 0 smaller "
                                 "than window");
            return false;
        }
        spec.stream.overlap = static_cast<int>(n);
        return true;
    }
    if (key == "cycles") {
        return builder.u64("cycles", value, &spec.engine.cycles, error);
    }
    if (key == "trials") {
        return builder.u64("trials", value, &spec.engine.trials, error);
    }
    if (key == "failures") {
        return builder.u64("failures", value,
                           &spec.engine.target_failures, error);
    }
    if (key == "threads") {
        return builder.threads(value, error);
    }
    if (key == "seed") {
        return builder.u64("seed", value, &spec.engine.seed, error);
    }
    if (key == "audit") {
        AuditLevel level = AuditLevel::Off;
        if (!parse_audit_level(value, &level)) {
            set_error(error, "bad audit '" + value +
                                 "'; expected off | basic | deep");
            return false;
        }
        spec.engine.audit = static_cast<int>(level);
        return true;
    }
    set_error(error, "unknown scenario key '" + key +
                         "' (see src/api/README.md for the grammar)");
    return false;
}

/**
 * Cross-field validation shared by `try_parse` and `apply_flags`:
 * stream window geometry and the stream-tier placement rules. Keeping
 * it here (not only in the harness) turns a mis-specified scenario
 * into a parse-time diagnostic instead of a CheckFailure mid-run.
 */
bool
validate_spec(const ScenarioSpec &spec, std::string *error)
{
    if (spec.kind != ScenarioKind::Fabric) {
        const ScenarioSpec defaults;
        if (spec.service.links != defaults.service.links ||
            spec.service.scheduler != defaults.service.scheduler ||
            spec.service.placement != defaults.service.placement ||
            spec.service.deadline != defaults.service.deadline) {
            set_error(error,
                      "links= / scheduler= / placement= / deadline= "
                      "are only valid in kind=fabric scenarios (the "
                      "decode fabric); add the bare token 'fabric'");
            return false;
        }
        if (spec.service.timeout != defaults.service.timeout ||
            spec.service.retries != defaults.service.retries ||
            spec.service.shed != defaults.service.shed ||
            spec.service.migrate != defaults.service.migrate) {
            set_error(error,
                      "timeout= / retries= / shed= / migrate= are only "
                      "valid in kind=fabric scenarios (the graceful-"
                      "degradation knobs of the decode fabric); add "
                      "the bare token 'fabric'");
            return false;
        }
    }
    if (spec.service.faults.enabled) {
        // Fault plans inject into the shared off-chip service, so they
        // need one: every fabric link has one; an exact fleet only
        // with shared=true; the remaining kinds have nowhere to inject.
        if (spec.kind == ScenarioKind::ExactFleet) {
            if (!spec.service.shared_link) {
                set_error(error,
                          "faults= on kind=exact-fleet needs the "
                          "shared link (add the bare token 'shared'); "
                          "private per-qubit queues have no fault "
                          "injection point");
                return false;
            }
        } else if (spec.kind != ScenarioKind::Fabric) {
            set_error(error,
                      "faults= is only valid in kind=fabric and "
                      "shared-link kind=exact-fleet scenarios (the "
                      "off-chip link fault injectors)");
            return false;
        }
    }
    if (spec.stream.overlap >= spec.stream.window) {
        set_error(error,
                  "bad stream window geometry: overlap (" +
                      std::to_string(spec.stream.overlap) +
                      ") must be smaller than window (" +
                      std::to_string(spec.stream.window) +
                      ") so the commit region is non-empty");
        return false;
    }
    const bool has_stream = spec.tiers.contains_stream();
    if (spec.kind != ScenarioKind::Stream) {
        if (has_stream) {
            set_error(error,
                      "tier 'stream' is only valid in kind=stream "
                      "scenarios (sliding-window decoding); drop the "
                      "tier or add the bare token 'stream' before "
                      "tiers=");
            return false;
        }
        return true;
    }
    if (!has_stream) {
        // The untouched default chain denotes the bare sliding-window
        // MWPM; any other explicit chain is a mistake.
        if (spec.tiers.describe() != TierChainConfig::legacy().describe()) {
            set_error(error,
                      "a kind=stream chain must end with the stream "
                      "tier (e.g. tiers=uf:2,stream)");
            return false;
        }
        return true;
    }
    const std::vector<TierSpec> &tiers = spec.tiers.tiers;
    for (size_t i = 0; i < tiers.size(); ++i) {
        if (tiers[i].kind == DecoderTier::Stream) {
            if (i + 1 != tiers.size()) {
                set_error(error,
                          "the stream tier must be the final tier of "
                          "a kind=stream chain");
                return false;
            }
        } else if (tiers[i].kind != DecoderTier::UnionFind) {
            set_error(error,
                      std::string("kind=stream chains admit only "
                                  "union-find screening tiers before "
                                  "the final stream tier; got '") +
                          decoder_tier_name(tiers[i].kind) + "'");
            return false;
        }
    }
    return true;
}

} // namespace

const std::vector<std::string> &
scenario_override_flags()
{
    static const std::vector<std::string> kFlags = [] {
        std::vector<std::string> flags;
        for (const auto &mapping : kFlagKeyMappings) {
            flags.push_back(mapping.flag);
        }
        for (const char *flag : kBoolFlagSpellings) {
            flags.push_back(flag);
        }
        flags.push_back("tiers");
        return flags;
    }();
    return kFlags;
}

bool
ScenarioSpec::try_parse(const std::string &spec, ScenarioSpec *out,
                        std::string *error)
{
    SpecBuilder builder;
    bool tiers_accumulating = false;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t end = spec.find(',', start);
        if (end == std::string::npos) {
            end = spec.size();
        }
        const std::string token = spec.substr(start, end - start);
        const bool at_end = end == spec.size();
        start = end + 1;
        if (token.empty()) {
            if (at_end) {
                break;
            }
            continue;
        }
        const size_t eq = token.find('=');
        if (eq != std::string::npos) {
            const std::string key = token.substr(0, eq);
            const std::string value = token.substr(eq + 1);
            if (!apply_key(builder, key, value, error)) {
                return false;
            }
            tiers_accumulating = key == "tiers";
        } else if (tiers_accumulating && is_tier_token(token)) {
            builder.tiers_value += ',';
            builder.tiers_value += token;
        } else if (token == "lifetime" || token == "memory" ||
                   token == "fleet" || token == "exact-fleet" ||
                   token == "exact_fleet" || token == "stream" ||
                   token == "fabric") {
            tiers_accumulating = false;
            if (!builder.kind(token, error)) {
                return false;
            }
        } else if (token == "pipeline" || token == "signature") {
            tiers_accumulating = false;
            if (!builder.mode(token, error)) {
                return false;
            }
        } else if (token == "shared") {
            tiers_accumulating = false;
            builder.spec.service.shared_link = true;
        } else if (token == "weighted") {
            tiers_accumulating = false;
            builder.spec.weighted_matching = true;
        } else {
            set_error(error,
                      "unknown scenario token '" + token + "' in '" +
                          spec +
                          "'; expected key=value, a kind (lifetime | "
                          "memory | fleet | exact-fleet | stream | "
                          "fabric), "
                          "pipeline | signature | shared | weighted, "
                          "or a tier continuation after tiers=");
            return false;
        }
        if (at_end) {
            break;
        }
    }
    if (!builder.finish_tiers(error)) {
        return false;
    }
    if (!validate_spec(builder.spec, error)) {
        return false;
    }
    *out = std::move(builder.spec);
    return true;
}

ScenarioSpec
ScenarioSpec::parse(const std::string &spec)
{
    ScenarioSpec out;
    std::string error;
    if (!try_parse(spec, &out, &error)) {
        throw std::invalid_argument(error);
    }
    return out;
}

std::string
ScenarioSpec::to_string() const
{
    const ScenarioSpec defaults;
    std::string out = "kind=";
    out += scenario_kind_name(kind);
    const auto emit = [&out](const char *key, const std::string &value) {
        out += ',';
        out += key;
        out += '=';
        out += value;
    };
    if (code.distance != defaults.code.distance) {
        emit("d", std::to_string(code.distance));
    }
    if (code.p != defaults.code.p) {
        emit("p", format_double(code.p));
    }
    if (code.p_meas != defaults.code.p_meas) {
        emit("p_meas", format_double(code.p_meas));
    }
    if (code.filter_rounds != defaults.code.filter_rounds) {
        emit("filter", std::to_string(code.filter_rounds));
    }
    if (code.rounds != defaults.code.rounds) {
        emit("rounds", std::to_string(code.rounds));
    }
    if (code.error_type != defaults.code.error_type) {
        emit("error_type", code.error_type == CheckType::X ? "x" : "z");
    }
    if (stream.window != defaults.stream.window) {
        emit("window", std::to_string(stream.window));
    }
    if (stream.overlap != defaults.stream.overlap) {
        emit("overlap", std::to_string(stream.overlap));
    }
    if (tiers.describe() != defaults.tiers.describe()) {
        emit("tiers", tiers_spec_string(tiers));
    }
    if (mode != defaults.mode) {
        emit("mode", mode == LifetimeMode::Pipeline ? "pipeline"
                                                    : "signature");
    }
    if (service.policy != defaults.service.policy) {
        emit("policy", service.policy == OffchipPolicy::Mwpm ? "mwpm"
                                                             : "oracle");
    }
    if (arm != defaults.arm) {
        emit("arm", arm == DecoderArm::MwpmOnly
                        ? "mwpm"
                        : (arm == DecoderArm::UnionFindOnly ? "uf"
                                                            : "clique"));
    }
    if (weighted_matching != defaults.weighted_matching) {
        emit("weighted", weighted_matching ? "true" : "false");
    }
    if (service.latency != defaults.service.latency) {
        emit("latency", std::to_string(service.latency));
    }
    if (service.bandwidth != defaults.service.bandwidth) {
        emit("bandwidth", std::to_string(service.bandwidth));
    }
    if (service.batch != defaults.service.batch) {
        emit("batch", std::to_string(service.batch));
    }
    if (service.shared_link != defaults.service.shared_link) {
        emit("shared", service.shared_link ? "true" : "false");
    }
    if (service.scheduler != defaults.service.scheduler) {
        emit("scheduler", scheduler_kind_name(service.scheduler));
    }
    if (service.links != defaults.service.links) {
        emit("links", std::to_string(service.links));
    }
    if (service.placement != defaults.service.placement) {
        emit("placement", placement_kind_name(service.placement));
    }
    if (service.deadline != defaults.service.deadline) {
        emit("deadline", std::to_string(service.deadline));
    }
    if (service.faults.enabled) {
        emit("faults", service.faults.to_string());
    }
    if (service.timeout != defaults.service.timeout) {
        emit("timeout", std::to_string(service.timeout));
    }
    if (service.retries != defaults.service.retries) {
        emit("retries", std::to_string(service.retries));
    }
    if (service.shed != defaults.service.shed) {
        emit("shed", service.shed ? "true" : "false");
    }
    if (service.migrate != defaults.service.migrate) {
        emit("migrate", std::to_string(service.migrate));
    }
    if (service.fleet_size != defaults.service.fleet_size) {
        emit("fleet", std::to_string(service.fleet_size));
    }
    if (service.num_qubits != defaults.service.num_qubits) {
        emit("qubits", std::to_string(service.num_qubits));
    }
    if (service.offchip_prob != defaults.service.offchip_prob) {
        emit("q", format_double(service.offchip_prob));
    }
    if (service.hot_fraction != defaults.service.hot_fraction) {
        emit("hot_fraction", format_double(service.hot_fraction));
    }
    if (service.hot_mult != defaults.service.hot_mult) {
        emit("hot_mult", format_double(service.hot_mult));
    }
    if (engine.cycles != defaults.engine.cycles) {
        emit("cycles", std::to_string(engine.cycles));
    }
    if (engine.trials != defaults.engine.trials) {
        emit("trials", std::to_string(engine.trials));
    }
    if (engine.target_failures != defaults.engine.target_failures) {
        emit("failures", std::to_string(engine.target_failures));
    }
    if (engine.threads != defaults.engine.threads) {
        emit("threads", std::to_string(engine.threads));
    }
    if (engine.seed != defaults.engine.seed) {
        emit("seed", std::to_string(engine.seed));
    }
    if (engine.audit >= 0) {
        emit("audit",
             audit_level_name(static_cast<AuditLevel>(engine.audit)));
    }
    return out;
}

bool
ScenarioSpec::from_flags(const Flags &flags, ScenarioSpec *out,
                         std::string *error)
{
    ScenarioSpec spec;
    if (!spec.apply_flags(flags, error)) {
        return false;
    }
    *out = std::move(spec);
    return true;
}

bool
ScenarioSpec::apply_flags(const Flags &flags, std::string *error)
{
    SpecBuilder builder;
    builder.spec = *this;

    // `key=value` grammar keys fed straight from flags (validation
    // shared with try_parse via apply_key; see kFlagKeyMappings).
    for (const auto &mapping : kFlagKeyMappings) {
        if (!flags.has(mapping.flag)) {
            continue;
        }
        if (!apply_key(builder, mapping.key,
                       flags.get(mapping.flag, ""), error)) {
            return false;
        }
    }

    // Boolean / shortcut flags (kBoolFlagSpellings).
    if (flags.has("weighted")) {
        builder.spec.weighted_matching = flags.get_bool("weighted");
    }
    if (flags.has("shared")) {
        builder.spec.service.shared_link = flags.get_bool("shared");
    }
    if (flags.has("shared-link")) {
        builder.spec.service.shared_link = flags.get_bool("shared-link");
    }
    if (flags.has("pipeline") && flags.get_bool("pipeline")) {
        builder.spec.mode = LifetimeMode::Pipeline;
    }
    if (flags.has("real_offchip") && flags.get_bool("real_offchip")) {
        builder.spec.service.policy = OffchipPolicy::Mwpm;
    }
    if (flags.has("shed")) {
        builder.spec.service.shed = flags.get_bool("shed");
    }
    if (flags.has("tiers")) {
        builder.tiers_value = flags.get("tiers", "");
        builder.tiers_set = true;
    }
    if (!builder.finish_tiers(error)) {
        return false;
    }
    if (!validate_spec(builder.spec, error)) {
        return false;
    }
    if (!flags.ok()) {
        set_error(error, flags.error());
        return false;
    }
    *this = std::move(builder.spec);
    return true;
}

LifetimeConfig
ScenarioSpec::to_lifetime_config() const
{
    LifetimeConfig config;
    config.distance = code.distance;
    config.p = code.p;
    config.p_meas = code.p_meas;
    if (engine.cycles != 0) {
        config.cycles = engine.cycles;
    }
    config.filter_rounds = code.filter_rounds;
    config.mode = mode;
    config.offchip = service.policy;
    config.offchip_latency = service.latency;
    config.offchip_bandwidth = service.bandwidth;
    config.offchip_batch = service.batch;
    config.tiers = tiers;
    config.threads = engine.threads;
    config.seed = engine.seed;
    return config;
}

MemoryConfig
ScenarioSpec::to_memory_config() const
{
    MemoryConfig config;
    config.distance = code.distance;
    config.p = code.p;
    config.p_meas = code.p_meas;
    if (engine.trials != 0) {
        config.max_trials = engine.trials;
    }
    if (engine.target_failures != 0) {
        config.target_failures = engine.target_failures;
    }
    config.rounds = code.rounds;
    config.filter_rounds = code.filter_rounds;
    config.weighted_matching = weighted_matching;
    config.error_type = code.error_type;
    config.threads = engine.threads;
    config.seed = engine.seed;
    return config;
}

FleetConfig
ScenarioSpec::to_fleet_config() const
{
    FleetConfig config;
    config.num_qubits = service.num_qubits;
    if (engine.cycles != 0) {
        config.cycles = engine.cycles;
    }
    config.offchip_prob = service.offchip_prob;
    if (service.hot_fraction > 0.0) {
        config.qubit_probs =
            hotspot_probs(service.num_qubits, service.offchip_prob,
                          service.hot_fraction, service.hot_mult);
    }
    config.threads = engine.threads;
    config.seed = engine.seed;
    config.offchip_latency = service.latency;
    config.offchip_batch = service.batch;
    return config;
}

StreamConfig
ScenarioSpec::to_stream_config() const
{
    StreamConfig config;
    config.distance = code.distance;
    config.p = code.p;
    config.p_meas = code.p_meas;
    config.window = stream.window;
    config.overlap = stream.overlap;
    if (engine.cycles != 0) {
        config.rounds = engine.cycles;
    }
    config.error_type = code.error_type;
    // The untouched default (legacy) chain denotes the bare
    // sliding-window MWPM (StreamConfig's empty-chain meaning); an
    // explicit stream chain passes through verbatim.
    if (tiers.contains_stream()) {
        config.tiers = tiers;
    }
    config.threads = engine.threads;
    config.seed = engine.seed;
    return config;
}

ExactFleetConfig
ScenarioSpec::to_exact_fleet_config() const
{
    ExactFleetConfig config;
    config.distance = code.distance;
    config.p = code.p;
    config.num_qubits = service.fleet_size;
    if (engine.cycles != 0) {
        config.cycles = engine.cycles;
    }
    config.seed = engine.seed;
    config.threads = engine.threads;
    config.shared_link = service.shared_link;
    config.offchip = service.policy;
    config.tiers = tiers;
    config.offchip_latency = service.latency;
    config.offchip_bandwidth = service.bandwidth;
    config.offchip_batch = service.batch;
    // Hot-spot heterogeneity becomes real per-tenant decode work
    // (so hot tenants genuinely contend): the first hot_fraction
    // of the fleet runs at hot_mult * p, like the binomial model's
    // hotspot_probs profile but on the physical error rate.
    if (service.hot_fraction > 0.0) {
        config.tenant_probs =
            hotspot_probs(service.fleet_size, code.p,
                          service.hot_fraction, service.hot_mult);
    }
    config.faults = service.faults;
    return config;
}

FabricFleetConfig
ScenarioSpec::to_fabric_config() const
{
    FabricFleetConfig config;
    config.fleet = to_exact_fleet_config();
    config.fleet.shared_link = true;  // implied by the fabric
    config.fleet.faults = FaultPlan{};  // plan lives fabric-side
    config.topology.links = service.links;
    config.topology.scheduler = service.scheduler;
    config.topology.placement = service.placement;
    config.topology.deadline = service.deadline;
    config.topology.migrate_threshold = service.migrate;
    config.faults = service.faults;
    config.timeout = service.timeout;
    config.retries = service.retries;
    config.shed = service.shed;
    return config;
}

} // namespace btwc
