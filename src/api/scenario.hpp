#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "core/system.hpp"
#include "decoders/tier_chain.hpp"
#include "fabric/harness.hpp"
#include "faults/fault_plan.hpp"
#include "sim/fleet.hpp"
#include "sim/lifetime.hpp"
#include "sim/memory.hpp"
#include "sim/stream.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Which simulation harness a scenario drives (see run_scenario):
 *
 *   Lifetime   run_lifetime              — signature / pipeline modes
 *   Memory     run_memory_experiment     — logical error rate trials
 *   Fleet      fleet_demand_histogram +  — binomial machine model,
 *              run_fleet_with_bandwidth    optional provisioned link
 *   ExactFleet fleet_demand_exact_stats  — fully simulated pipelines,
 *                                          private or shared link
 *   Stream     run_stream                — sliding-window streaming
 *                                          decode of one syndrome
 *                                          stream
 *   Fabric     run_fabric                — exact fleet against a
 *                                          K-link decode fabric with
 *                                          pluggable schedulers and
 *                                          per-tenant SLO probes
 */
enum class ScenarioKind : uint8_t
{
    Lifetime = 0,
    Memory = 1,
    Fleet = 2,
    ExactFleet = 3,
    Stream = 4,
    Fabric = 5,
};

/** Canonical name of a kind ("lifetime" | "memory" | ...). */
const char *scenario_kind_name(ScenarioKind kind);

/** The code / noise operating point of a scenario. */
struct CodeSpec
{
    int distance = 5;
    double p = 1e-3;       ///< data-error probability per cycle/round
    double p_meas = -1.0;  ///< measurement-flip probability; <0 -> p
    int filter_rounds = 2; ///< Fig. 7 persistence window
    int rounds = 0;        ///< memory-only: noisy rounds; 0 = d
    CheckType error_type = CheckType::X;  ///< memory-only: which half
};

/** The off-chip service / fleet side of a scenario. */
struct ServiceSpec
{
    OffchipPolicy policy = OffchipPolicy::Oracle;
    uint64_t latency = 0;    ///< decode round-trip latency in cycles
    uint64_t bandwidth = 0;  ///< served decodes per cycle; 0 = unlimited
                             ///< (Fleet kind: 0 = demand histogram only)
    uint64_t batch = 0;      ///< decode_batch grouping cap
    bool shared_link = false;  ///< ExactFleet: one multi-tenant link
    int fleet_size = 10;       ///< ExactFleet: fully simulated tenants
    int num_qubits = 1000;     ///< Fleet: binomial machine size
    double offchip_prob = 0.01;  ///< Fleet: per-qubit per-cycle q
    double hot_fraction = 0.0;   ///< Fleet/ExactFleet/Fabric: hot fraction
    double hot_mult = 1.0;       ///< hot-spot multiplier (on q resp. p)
    // Fabric kind only (grammar keys `links=` / `scheduler=` /
    // `placement=` / `deadline=`; non-defaults rejected elsewhere):
    int links = 1;  ///< off-chip links in the decode fabric
    SchedulerKind scheduler = SchedulerKind::Fifo;
    PlacementKind placement = PlacementKind::StaticHash;
    uint64_t deadline = 0;  ///< per-request deadline budget in cycles
    /**
     * Chaos mode (src/faults/). `faults=` installs a fault plan (the
     * grammar of FaultPlan::try_parse, with its ';'/':' separators —
     * no commas, so it nests in the scenario grammar verbatim); valid
     * in kind=fabric, and in kind=exact-fleet only with the shared
     * link. The degradation knobs are fabric-only: `timeout=` /
     * `retries=` (tenant give-up budget and retry count, see
     * SystemConfig::offchip_timeout), `shed=` (link-side deadline load
     * shedding), and `migrate=` (failover threshold,
     * FabricTopology::migrate_threshold).
     */
    FaultPlan faults;
    uint64_t timeout = 0;  ///< tenant give-up budget in cycles; 0 = off
    int retries = 0;       ///< re-escalations before the UF fallback
    bool shed = false;     ///< link-side deadline load shedding
    uint64_t migrate = 0;  ///< failover threshold in cycles/requests; 0 = off
};

/**
 * The sliding-window geometry of a Stream scenario (grammar keys
 * `window=` / `overlap=`; ignored by the batch kinds). Cross-field
 * validation — a non-empty commit region needs overlap < window — is
 * enforced by the spec parser with a diagnostic.
 */
struct StreamSpec
{
    int window = 8;   ///< W: rounds per decode window
    int overlap = 2;  ///< V: rounds re-decoded next window
};

/** The Monte-Carlo engine side of a scenario. */
struct EngineSpec
{
    int threads = 1;    ///< worker shards (sim/engine.hpp); 0 = all cores
    uint64_t seed = 1;
    uint64_t cycles = 0;  ///< simulated cycles; 0 = the harness default
    uint64_t trials = 0;  ///< memory-only: trial cap; 0 = default
    uint64_t target_failures = 0;  ///< memory-only early stop; 0 = default
    /**
     * Contract-audit level for the run (common/check.hpp): 0 = off,
     * 1 = basic, 2 = deep; negative = leave the process default
     * (BTWC_AUDIT env / build type) untouched. Grammar key
     * `audit=off|basic|deep`; `run_scenario` applies it for the
     * duration of the run via ScopedAuditLevel. Audits consume no
     * randomness and alter no metrics, so reports are bit-identical
     * across levels.
     */
    int audit = -1;
};

/**
 * One experiment, fully described — the single front door to every
 * simulation harness. A `ScenarioSpec` round-trips through a compact
 * comma-separated grammar:
 *
 *     d=21,p=1e-3,tiers=clique,uf:3,mwpm,latency=2,bandwidth=1,fleet=50
 *
 * Tokens are `key=value` pairs; a bare token is a scenario kind
 * (`lifetime` | `memory` | `fleet` | `exact-fleet` | `stream` |
 * `fabric`), a
 * mode / boolean shortcut (`pipeline`, `signature`, `shared`,
 * `weighted`), or — immediately after a `tiers=` assignment — a
 * continuation of the tier list (`uf:3`, `mwpm`, ... as in
 * TierChainConfig::parse; `stream` right after `tiers=` is a tier,
 * elsewhere the kind).
 * Full grammar: src/api/README.md. `to_string()` emits the canonical
 * ordering with defaulted fields omitted, and
 * `parse(spec.to_string()) == spec` for every valid spec.
 */
struct ScenarioSpec
{
    ScenarioKind kind = ScenarioKind::Lifetime;
    CodeSpec code;
    TierChainConfig tiers = TierChainConfig::legacy();
    LifetimeMode mode = LifetimeMode::Signature;  ///< Lifetime kind
    DecoderArm arm = DecoderArm::CliqueMwpm;      ///< Memory kind
    bool weighted_matching = false;               ///< Memory kind
    ServiceSpec service;
    StreamSpec stream;                            ///< Stream kind
    EngineSpec engine;

    /**
     * Parse the scenario grammar. Returns false on a malformed spec,
     * leaving `out` untouched and storing a diagnostic in `error`
     * (when non-null); never terminates the process (the CLI
     * exit-on-error behavior lives in btwc_run's main).
     */
    static bool try_parse(const std::string &spec, ScenarioSpec *out,
                          std::string *error);

    /** As `try_parse`, but throws std::invalid_argument. */
    static ScenarioSpec parse(const std::string &spec);

    /** Canonical spec string (see class comment; parse round-trips). */
    std::string to_string() const;

    /**
     * Build a spec from the shared CLI flag conventions
     * (common/flags.hpp) — the consolidation of the per-binary flag
     * plumbing. Equivalent to `apply_flags` on a default spec.
     */
    static bool from_flags(const Flags &flags, ScenarioSpec *out,
                           std::string *error);

    /**
     * Override this spec with every recognized flag present in
     * `flags` (absent flags leave fields untouched) — how btwc_run
     * layers CLI overrides over a registry scenario. Recognized:
     * --kind --distance --p --p_meas --filter_rounds --rounds
     * --error_type --tiers --uf_threshold --mode --pipeline
     * --real_offchip --policy --arm --weighted --offchip-latency
     * --offchip-bandwidth --batch --shared-link --fleet-size --qubits
     * --q --hot-fraction --hot-mult --bandwidth --links --scheduler
     * --placement --deadline --faults --timeout --retries --shed
     * --migrate --cycles --trials --failures --threads
     * --seed. Returns false with a diagnostic on a malformed value.
     */
    bool apply_flags(const Flags &flags, std::string *error);

    /** Lossless adapters to the legacy per-harness config structs. */
    LifetimeConfig to_lifetime_config() const;
    MemoryConfig to_memory_config() const;
    FleetConfig to_fleet_config() const;
    ExactFleetConfig to_exact_fleet_config() const;
    /**
     * Stream-kind adapter: `cycles` maps to the stream's total round
     * budget. The untouched default (legacy) chain denotes the bare
     * sliding-window MWPM; an explicitly set chain must end with the
     * `stream` tier (parse-time diagnostic otherwise).
     */
    StreamConfig to_stream_config() const;
    /**
     * Fabric-kind adapter: the exact-fleet operating point (including
     * the hot-spot per-tenant noise profile) plus the fabric topology
     * keys. `shared_link` is implied by the fabric.
     */
    FabricFleetConfig to_fabric_config() const;

    /** Specs are equal iff their canonical strings are. */
    bool operator==(const ScenarioSpec &other) const
    {
        return to_string() == other.to_string();
    }
    bool operator!=(const ScenarioSpec &other) const
    {
        return !(*this == other);
    }
};

/**
 * Spec-grammar rendering of a tier chain, the inverse of
 * `TierChainConfig::try_parse`: "clique,uf:3,mwpm". Thresholds are
 * explicit wherever they are set, so the result re-parses identically
 * under any `uf_threshold` default.
 */
std::string tiers_spec_string(const TierChainConfig &config);

/**
 * Every flag spelling `ScenarioSpec::apply_flags` recognizes (grammar
 * keys, historical CLI spellings, boolean shortcuts, "tiers"). CLIs
 * whose whole flag surface is the override set (btwc_run) use this to
 * reject unknown flags instead of silently dropping them.
 */
const std::vector<std::string> &scenario_override_flags();

} // namespace btwc
