#include "common/check.hpp"

#include <cstdlib>

namespace btwc {

namespace {

std::string
format_failure(const char *file, int line, const char *expression,
               const std::string &message)
{
    std::string out;
    out += file;
    out += ':';
    out += std::to_string(line);
    out += ": check failed: ";
    out += expression;
    if (!message.empty()) {
        out += " (";
        out += message;
        out += ')';
    }
    return out;
}

AuditLevel
initial_audit_level()
{
#ifdef NDEBUG
    AuditLevel level = AuditLevel::Off;
#else
    AuditLevel level = AuditLevel::Basic;
#endif
    if (const char *env = std::getenv("BTWC_AUDIT")) {
        parse_audit_level(env, &level); // unknown text keeps the default
    }
    return level;
}

std::atomic<int> &
audit_level_slot()
{
    static std::atomic<int> level{static_cast<int>(initial_audit_level())};
    return level;
}

} // namespace

CheckFailure::CheckFailure(const char *file, int line, const char *expression,
                           const std::string &message)
    : std::logic_error(format_failure(file, line, expression, message)),
      file_(file), line_(line), expression_(expression)
{
}

void
check_failed(const char *file, int line, const char *expression,
             const std::string &message)
{
    throw CheckFailure(file, line, expression, message);
}

AuditLevel
audit_level()
{
    return static_cast<AuditLevel>(
        audit_level_slot().load(std::memory_order_relaxed));
}

void
set_audit_level(AuditLevel level)
{
    audit_level_slot().store(static_cast<int>(level),
                             std::memory_order_relaxed);
}

bool
parse_audit_level(const std::string &text, AuditLevel *out)
{
    if (text == "off" || text == "0") {
        *out = AuditLevel::Off;
    } else if (text == "basic" || text == "1") {
        *out = AuditLevel::Basic;
    } else if (text == "deep" || text == "2") {
        *out = AuditLevel::Deep;
    } else {
        return false;
    }
    return true;
}

const char *
audit_level_name(AuditLevel level)
{
    switch (level) {
    case AuditLevel::Off:
        return "off";
    case AuditLevel::Basic:
        return "basic";
    case AuditLevel::Deep:
        return "deep";
    }
    return "off";
}

} // namespace btwc
