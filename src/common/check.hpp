#pragma once

// Contract-check subsystem: three enforcement tiers for the repo's
// load-bearing invariants.
//
//   BTWC_CHECK(cond)       always on, survives -DNDEBUG. For cheap
//                          preconditions on cold paths (constructors,
//                          config parsing, per-decode entry points).
//   BTWC_DCHECK(cond)      compiled out under -DNDEBUG. For bounds
//                          checks inside hot inner loops where even a
//                          predictable branch is measurable.
//   BTWC_AUDIT(cond)       compiled in always, evaluated only when
//                          audit_level() >= Basic. For per-element
//                          validation that is too costly to run by
//                          default but must be runnable in release CI.
//
// Structural audit() methods (PackedBits, TierChain, OffchipQueue,
// SharedOffchipService, ...) are gated by audit_deep(): they walk
// whole containers or re-derive results, so callers invoke them only
// at AuditLevel::Deep.
//
// Failures throw CheckFailure (never abort), carrying file, line and
// the failed expression so tests can assert on contract violations
// without death tests.
//
// The audit level is a process-wide knob: env BTWC_AUDIT=off|basic|deep
// at startup, or --audit / audit= via ScenarioSpec (run_scenario
// applies it for the duration of the run), or set_audit_level() from
// code. Default: Off under -DNDEBUG, Basic in debug builds.

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>

namespace btwc {

/// Thrown by every failed BTWC_CHECK / BTWC_DCHECK / BTWC_AUDIT and by
/// failed audit() methods. Carries the source location and expression
/// text so tests can pinpoint which contract fired.
class CheckFailure : public std::logic_error {
  public:
    CheckFailure(const char *file, int line, const char *expression,
                 const std::string &message);

    const char *file() const { return file_; }
    int line() const { return line_; }
    const char *expression() const { return expression_; }

  private:
    const char *file_;
    int line_;
    const char *expression_;
};

/// Throws CheckFailure. Out of line so the macros stay tiny at every
/// call site (the failure path never inlines into hot code).
[[noreturn]] void check_failed(const char *file, int line,
                               const char *expression,
                               const std::string &message = std::string());

enum class AuditLevel : int {
    Off = 0,   ///< contracts only (BTWC_CHECK / BTWC_DCHECK)
    Basic = 1, ///< + inline BTWC_AUDIT assertions, thread-owner guard
    Deep = 2,  ///< + structural audit() scans and cross-path re-decodes
};

/// Current process-wide audit level. First call latches the
/// BTWC_AUDIT environment variable (off|basic|deep or 0|1|2).
AuditLevel audit_level();

/// Override the process-wide audit level (e.g. from --audit).
void set_audit_level(AuditLevel level);

/// Parse "off"/"basic"/"deep" (or "0"/"1"/"2"). Returns false and
/// leaves *out untouched on unknown text.
bool parse_audit_level(const std::string &text, AuditLevel *out);

/// Canonical name for a level: "off", "basic", "deep".
const char *audit_level_name(AuditLevel level);

inline bool
audit_basic()
{
    return audit_level() >= AuditLevel::Basic;
}

inline bool
audit_deep()
{
    return audit_level() >= AuditLevel::Deep;
}

/// RAII override of the global audit level; restores the previous
/// level on destruction. run_scenario uses this so a ScenarioSpec
/// audit= setting never clobbers the environment default for the
/// rest of the process.
class ScopedAuditLevel {
  public:
    explicit ScopedAuditLevel(AuditLevel level)
        : previous_(audit_level())
    {
        set_audit_level(level);
    }
    ~ScopedAuditLevel() { set_audit_level(previous_); }
    ScopedAuditLevel(const ScopedAuditLevel &) = delete;
    ScopedAuditLevel &operator=(const ScopedAuditLevel &) = delete;

  private:
    AuditLevel previous_;
};

/// Enforces the "decoder instances are not concurrency-safe" rule
/// from src/decoders/README.md: pooled scratch (events_scratch_,
/// matcher slots, attempt results) belongs to exactly one thread.
///
/// Ownership binds at the first guarded call, not at construction:
/// harnesses build decoder stacks on the main thread and hand each
/// stack to one worker shard. The guard is active at
/// AuditLevel::Basic and above (so debug builds and --audit runs
/// check it; release defaults pay one relaxed load).
class SingleThreadOwner {
  public:
    SingleThreadOwner() = default;

    // Copying or moving a guarded object starts a fresh ownership
    // binding (the atomic itself is neither copyable nor movable, and
    // the new/assigned instance belongs to whoever decodes with it
    // first). This keeps decoder stacks movable — vector<TierChain>
    // reallocation, harness setup returning stacks by value.
    SingleThreadOwner(const SingleThreadOwner &) noexcept {}
    SingleThreadOwner &operator=(const SingleThreadOwner &) noexcept
    {
        release_thread_owner();
        return *this;
    }

    void assert_single_thread_owner() const
    {
        if (audit_level() == AuditLevel::Off) {
            return;
        }
        const std::thread::id self = std::this_thread::get_id();
        std::thread::id expected{};
        if (owner_.compare_exchange_strong(expected, self,
                                           std::memory_order_relaxed)) {
            return; // first guarded call: bind ownership to this thread
        }
        if (expected != self) {
            check_failed(__FILE__, __LINE__,
                         "assert_single_thread_owner",
                         "pooled decoder scratch used from a second "
                         "thread; decoder instances are single-owner "
                         "(see src/decoders/README.md)");
        }
    }

    /// Forget the bound owner (e.g. when a harness legitimately moves
    /// a decoder stack between sequential phases on different
    /// threads). Not thread-safe against concurrent guarded calls.
    void release_thread_owner() const
    {
        owner_.store(std::thread::id{}, std::memory_order_relaxed);
    }

  private:
    mutable std::atomic<std::thread::id> owner_{};
};

} // namespace btwc

// Always-on contract check. Throws CheckFailure on violation.
#define BTWC_CHECK(expr)                                                \
    do {                                                                \
        if (!(expr)) {                                                  \
            ::btwc::check_failed(__FILE__, __LINE__, #expr);            \
        }                                                               \
    } while (false)

// Always-on contract check with an explanatory message.
#define BTWC_CHECK_MSG(expr, message)                                   \
    do {                                                                \
        if (!(expr)) {                                                  \
            ::btwc::check_failed(__FILE__, __LINE__, #expr, (message)); \
        }                                                               \
    } while (false)

// Debug-only check: compiled out (expression unevaluated) under
// -DNDEBUG. The sizeof keeps the expression parsed so variables it
// references still count as used under -Werror.
#ifdef NDEBUG
#define BTWC_DCHECK(expr) static_cast<void>(sizeof(!(expr)))
#else
#define BTWC_DCHECK(expr) BTWC_CHECK(expr)
#endif

// Runtime-gated check: evaluated only when audit_level() >= Basic.
// Off costs one relaxed atomic load per call site.
#define BTWC_AUDIT(expr)                                                \
    do {                                                                \
        if (::btwc::audit_basic() && !(expr)) {                         \
            ::btwc::check_failed(__FILE__, __LINE__, #expr);            \
        }                                                               \
    } while (false)

#define BTWC_AUDIT_MSG(expr, message)                                   \
    do {                                                                \
        if (::btwc::audit_basic() && !(expr)) {                         \
            ::btwc::check_failed(__FILE__, __LINE__, #expr, (message)); \
        }                                                               \
    } while (false)
