#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace btwc {

/**
 * Vector-backed FIFO: consumed entries advance a head index and the
 * dead prefix is compacted once it dominates the buffer, so pops are
 * amortized O(1) without deque's segmented storage.
 *
 * Why not std::deque: its move constructor is not noexcept in
 * libstdc++, which would silently turn vector<Owner>::reserve into a
 * copy for any move-only Owner holding one (and `BtwcSystem` is
 * move-only). This is the one queue idiom shared by the off-chip
 * service machinery: `OffchipQueue`'s counting FIFOs, the payload
 * FIFOs of `BtwcSystem` and `SharedOffchipService`.
 */
template <typename T>
class HeadFifo
{
  public:
    bool empty() const { return head_ == items_.size(); }

    size_t size() const { return items_.size() - head_; }

    T &front() { return items_[head_]; }
    const T &front() const { return items_[head_]; }

    /** Peek live entry i (0 = oldest) without consuming it — the
     * read-only walk the audit() methods use to verify FIFO order. */
    const T &at(size_t i) const { return items_[head_ + i]; }

    /** Mutable peek (0 = oldest) — for in-place edits that preserve
     * FIFO order, e.g. `OffchipQueue` postponing every due in-service
     * group by one cycle during a link outage. */
    T &at(size_t i) { return items_[head_ + i]; }

    void push_back(T value) { items_.push_back(std::move(value)); }

    /** Remove and return the oldest entry (FIFO order). */
    T pop_front()
    {
        T out = std::move(items_[head_]);
        ++head_;
        if (head_ > 64 && head_ * 2 > items_.size()) {
            items_.erase(items_.begin(),
                         items_.begin() + static_cast<long>(head_));
            head_ = 0;
        }
        return out;
    }

  private:
    std::vector<T> items_;
    size_t head_ = 0;
};

} // namespace btwc
