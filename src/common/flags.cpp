#include "common/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "decoders/tier_chain.hpp"

namespace btwc {

Flags::Flags(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = "true";
        }
    }
}

bool
Flags::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Flags::get(const std::string &name, const std::string &def) const
{
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

int64_t
Flags::get_int(const std::string &name, int64_t def) const
{
    const auto it = values_.find(name);
    if (it == values_.end()) {
        return def;
    }
    return std::strtoll(it->second.c_str(), nullptr, 10);
}

double
Flags::get_double(const std::string &name, double def) const
{
    const auto it = values_.find(name);
    if (it == values_.end()) {
        return def;
    }
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Flags::get_bool(const std::string &name, bool def) const
{
    const auto it = values_.find(name);
    if (it == values_.end()) {
        return def;
    }
    return it->second != "false" && it->second != "0";
}

std::vector<int64_t>
Flags::get_int_list(const std::string &name, std::vector<int64_t> def) const
{
    const auto it = values_.find(name);
    if (it == values_.end()) {
        return def;
    }
    std::vector<int64_t> out;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty()) {
            out.push_back(std::strtoll(item.c_str(), nullptr, 10));
        }
    }
    return out;
}

std::vector<double>
Flags::get_double_list(const std::string &name, std::vector<double> def) const
{
    const auto it = values_.find(name);
    if (it == values_.end()) {
        return def;
    }
    std::vector<double> out;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty()) {
            out.push_back(std::strtod(item.c_str(), nullptr));
        }
    }
    return out;
}

int
threads_from_flags(const Flags &flags, int def)
{
    const int64_t raw = flags.get_int("threads", def);
    return raw < 0 ? 0 : static_cast<int>(raw);
}

TierChainConfig
tiers_from_flags(const Flags &flags, const std::string &def,
                 int uf_threshold)
{
    TierChainConfig config;
    std::string error;
    if (!TierChainConfig::try_parse(flags.get("tiers", def), uf_threshold,
                                    &config, &error)) {
        std::fprintf(stderr, "--tiers: %s\n", error.c_str());
        std::exit(2);
    }
    return config;
}

namespace {

uint64_t
non_negative(const Flags &flags, const std::string &name)
{
    const int64_t raw = flags.get_int(name, 0);
    return raw < 0 ? 0 : static_cast<uint64_t>(raw);
}

} // namespace

OffchipServiceFlags
offchip_from_flags(const Flags &flags)
{
    OffchipServiceFlags offchip;
    offchip.latency = non_negative(flags, "offchip-latency");
    offchip.bandwidth = non_negative(flags, "offchip-bandwidth");
    offchip.batch = non_negative(flags, "batch");
    return offchip;
}

FleetLinkFlags
fleet_link_from_flags(const Flags &flags, int default_fleet_size)
{
    FleetLinkFlags link;
    link.shared_link = flags.get_bool("shared-link");
    const int64_t size = flags.get_int("fleet-size", default_fleet_size);
    link.fleet_size =
        size <= 0 ? default_fleet_size : static_cast<int>(size);
    return link;
}

} // namespace btwc
