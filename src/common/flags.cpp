#include "common/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/parse.hpp"
#include "decoders/tier_chain.hpp"

namespace btwc {

bool
Flags::try_parse(int argc, const char *const *argv, Flags *out,
                 std::string *error)
{
    Flags flags;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            flags.positional_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        const std::string name =
            eq == std::string::npos ? arg : arg.substr(0, eq);
        if (name.empty()) {
            if (error != nullptr) {
                *error = std::string("malformed argument '") + argv[i] +
                         "': empty flag name";
            }
            return false;
        }
        if (eq != std::string::npos) {
            flags.values_[name] = arg.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            flags.values_[name] = argv[++i];
        } else {
            flags.values_[name] = "true";
        }
    }
    *out = std::move(flags);
    return true;
}

Flags::Flags(int argc, const char *const *argv)
{
    std::string error;
    if (!try_parse(argc, argv, this, &error)) {
        throw std::invalid_argument(error);
    }
}

Flags
flags_or_exit(int argc, const char *const *argv)
{
    Flags flags;
    std::string error;
    if (!Flags::try_parse(argc, argv, &flags, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        std::exit(2);
    }
    flags.exit_on_error_ = true;
    return flags;
}

void
Flags::fail(const std::string &diagnostic) const
{
    if (exit_on_error_) {
        std::fprintf(stderr, "%s\n", diagnostic.c_str());
        std::exit(2);
    }
    if (error_.empty()) {
        error_ = diagnostic;
    }
}

bool
Flags::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::vector<std::string>
Flags::names() const
{
    std::vector<std::string> names;
    names.reserve(values_.size());
    for (const auto &entry : values_) {
        names.push_back(entry.first);  // std::map: already sorted
    }
    return names;
}

std::string
Flags::get(const std::string &name, const std::string &def) const
{
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

int64_t
Flags::get_int(const std::string &name, int64_t def) const
{
    const auto it = values_.find(name);
    if (it == values_.end()) {
        return def;
    }
    int64_t value = 0;
    if (!parse_i64(it->second, &value)) {
        fail("--" + name + ": expected an integer, got '" + it->second +
             "'");
        return def;
    }
    return value;
}

double
Flags::get_double(const std::string &name, double def) const
{
    const auto it = values_.find(name);
    if (it == values_.end()) {
        return def;
    }
    double value = 0.0;
    if (!parse_f64(it->second, &value)) {
        fail("--" + name + ": expected a number, got '" + it->second +
             "'");
        return def;
    }
    return value;
}

bool
Flags::get_bool(const std::string &name, bool def) const
{
    const auto it = values_.find(name);
    if (it == values_.end()) {
        return def;
    }
    bool value = false;
    if (!parse_bool(it->second, &value)) {
        fail("--" + name + ": expected a boolean, got '" + it->second +
             "'");
        return def;
    }
    return value;
}

std::vector<int64_t>
Flags::get_int_list(const std::string &name, std::vector<int64_t> def) const
{
    const auto it = values_.find(name);
    if (it == values_.end()) {
        return def;
    }
    std::vector<int64_t> out;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty()) {
            continue;
        }
        int64_t value = 0;
        if (!parse_i64(item, &value)) {
            fail("--" + name + ": expected an integer list, got '" +
                 item + "' in '" + it->second + "'");
            return def;
        }
        out.push_back(value);
    }
    return out;
}

std::vector<double>
Flags::get_double_list(const std::string &name, std::vector<double> def) const
{
    const auto it = values_.find(name);
    if (it == values_.end()) {
        return def;
    }
    std::vector<double> out;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty()) {
            continue;
        }
        double value = 0.0;
        if (!parse_f64(item, &value)) {
            fail("--" + name + ": expected a number list, got '" + item +
                 "' in '" + it->second + "'");
            return def;
        }
        out.push_back(value);
    }
    return out;
}

int
threads_from_flags(const Flags &flags, int def)
{
    const int64_t raw = flags.get_int("threads", def);
    return raw < 0 ? 0 : static_cast<int>(raw);
}

TierChainConfig
tiers_from_flags(const Flags &flags, const std::string &def,
                 int uf_threshold)
{
    TierChainConfig config;
    std::string error;
    if (!TierChainConfig::try_parse(flags.get("tiers", def), uf_threshold,
                                    &config, &error)) {
        std::fprintf(stderr, "--tiers: %s\n", error.c_str());
        std::exit(2);
    }
    return config;
}

namespace {

uint64_t
non_negative(const Flags &flags, const std::string &name)
{
    const int64_t raw = flags.get_int(name, 0);
    return raw < 0 ? 0 : static_cast<uint64_t>(raw);
}

} // namespace

OffchipServiceFlags
offchip_from_flags(const Flags &flags)
{
    OffchipServiceFlags offchip;
    offchip.latency = non_negative(flags, "offchip-latency");
    offchip.bandwidth = non_negative(flags, "offchip-bandwidth");
    offchip.batch = non_negative(flags, "batch");
    return offchip;
}

FleetLinkFlags
fleet_link_from_flags(const Flags &flags, int default_fleet_size)
{
    FleetLinkFlags link;
    link.shared_link = flags.get_bool("shared-link");
    const int64_t size = flags.get_int("fleet-size", default_fleet_size);
    link.fleet_size =
        size <= 0 ? default_fleet_size : static_cast<int>(size);
    return link;
}

} // namespace btwc
