#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace btwc {

struct TierChainConfig;

/**
 * Minimal command line flag parser for bench and example binaries.
 *
 * Accepts `--name=value`, `--name value` and boolean `--name` forms.
 * Unknown positional arguments are collected and can be inspected by
 * the caller.
 *
 * Error contract (mirrors `TierChainConfig::try_parse`): the library
 * never terminates the process on malformed input.
 *   - `try_parse` reports structural argv errors (an empty flag name)
 *     through a status + diagnostic;
 *   - the throwing constructor wraps it for exception-style callers;
 *   - typed accessors validate their value strictly (`--cycles=10k`
 *     is an error, not 10) and record the first diagnostic, readable
 *     via `ok()` / `error()`, while returning the caller's default.
 * Binary `main`s use `flags_or_exit`, the *only* place that prints
 * the diagnostic and calls `exit(2)` — there a malformed value also
 * exits immediately at the accessor, so a typo can never silently
 * fall back to a default mid-run.
 */
class Flags
{
  public:
    Flags() = default;

    /**
     * Parse argv; throws std::invalid_argument on a malformed argv
     * structure (see `try_parse`). Value errors surface lazily at the
     * typed accessors.
     */
    Flags(int argc, const char *const *argv);

    /**
     * Status-style parse: returns false on a malformed argv structure,
     * leaving `out` untouched and storing a diagnostic in `error`
     * (when non-null). Never terminates the process.
     */
    static bool try_parse(int argc, const char *const *argv, Flags *out,
                          std::string *error);

    /** True if the flag was present on the command line. */
    bool has(const std::string &name) const;

    /** String flag with default. */
    std::string get(const std::string &name, const std::string &def) const;

    /** Integer flag with default (strict: the whole value must parse). */
    int64_t get_int(const std::string &name, int64_t def) const;

    /** Floating point flag with default (strict). */
    double get_double(const std::string &name, double def) const;

    /**
     * Boolean flag: present without value, or with an explicit
     * true/false/1/0/yes/no value (anything else is a diagnostic).
     */
    bool get_bool(const std::string &name, bool def = false) const;

    /** Comma-separated list of integers (strict per element). */
    std::vector<int64_t> get_int_list(const std::string &name,
                                      std::vector<int64_t> def) const;

    /** Comma-separated list of doubles (strict per element). */
    std::vector<double> get_double_list(const std::string &name,
                                        std::vector<double> def) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /**
     * Names of every flag present on the command line (sorted). Lets
     * a CLI with a closed flag surface reject unknown flags instead
     * of silently ignoring a typo.
     */
    std::vector<std::string> names() const;

    /** False once any typed accessor saw a malformed value. */
    bool ok() const { return error_.empty(); }

    /** First recorded accessor diagnostic ("" while ok()). */
    const std::string &error() const { return error_; }

  private:
    friend Flags flags_or_exit(int argc, const char *const *argv);

    /** Record a diagnostic — or print it and exit(2) in CLI mode. */
    void fail(const std::string &diagnostic) const;

    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
    mutable std::string error_;
    bool exit_on_error_ = false;  ///< set only by flags_or_exit
};

/**
 * The CLI entry point every binary `main` uses: parse argv and, on a
 * malformed structure *or any later malformed value*, print the
 * diagnostic to stderr and exit(2). This is the only process-exit
 * path of the flag layer (cf. `tiers_from_flags` for `--tiers`).
 */
Flags flags_or_exit(int argc, const char *const *argv);

/**
 * Shared `--threads` convention for every bench and example binary:
 * N >= 1 requests exactly N Monte-Carlo worker shards, 0 requests all
 * hardware threads (resolved by sim/engine.hpp), and the default is
 * the historical single-threaded behavior. Negative values clamp
 * to 0 (= auto).
 */
int threads_from_flags(const Flags &flags, int def = 1);

/**
 * Shared `--tiers` convention: parse the flag's tier-chain spec via
 * `TierChainConfig::try_parse` and, on a malformed spec, print the
 * diagnostic to stderr and exit(2). This is the *only* place the CLI
 * exit-on-parse-error contract lives; the library parser itself
 * reports errors to the caller (status/throw) and never terminates
 * the process.
 */
TierChainConfig tiers_from_flags(const Flags &flags,
                                 const std::string &def = "clique,mwpm",
                                 int uf_threshold = 2);

/**
 * Shared off-chip service flags for bench and example binaries
 * (cf. core/offchip_queue.hpp):
 *
 *   --offchip-latency N    decode round-trip latency in cycles
 *   --offchip-bandwidth N  served decodes per cycle (0 = unlimited)
 *   --batch N              decode_batch grouping cap (0 = per cycle)
 *
 * All default to 0, the synchronous model. Negative values clamp to 0.
 */
struct OffchipServiceFlags
{
    uint64_t latency = 0;
    uint64_t bandwidth = 0;
    uint64_t batch = 0;
};

OffchipServiceFlags offchip_from_flags(const Flags &flags);

/**
 * Shared fleet-link flags for bench and example binaries
 * (cf. core/offchip_service.hpp and sim/fleet.hpp):
 *
 *   --shared-link    route every simulated qubit's escalations
 *                    through one shared off-chip service instead of
 *                    per-qubit private queues
 *   --fleet-size N   number of fully simulated pipelines in the
 *                    exact fleet (default per binary; N <= 0 clamps
 *                    to the default)
 */
struct FleetLinkFlags
{
    bool shared_link = false;
    int fleet_size = 0;
};

FleetLinkFlags fleet_link_from_flags(const Flags &flags,
                                     int default_fleet_size);

} // namespace btwc
