#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace btwc {

/**
 * Minimal command line flag parser for bench and example binaries.
 *
 * Accepts `--name=value`, `--name value` and boolean `--name` forms.
 * Unknown positional arguments are collected and can be inspected by
 * the caller. Every bench binary documents its flags via `usage()`.
 */
class Flags
{
  public:
    /** Parse argv; aborts with a usage message on malformed input. */
    Flags(int argc, const char *const *argv);

    /** True if the flag was present on the command line. */
    bool has(const std::string &name) const;

    /** String flag with default. */
    std::string get(const std::string &name, const std::string &def) const;

    /** Integer flag with default. */
    int64_t get_int(const std::string &name, int64_t def) const;

    /** Floating point flag with default. */
    double get_double(const std::string &name, double def) const;

    /** Boolean flag: present without value, or with =true/=false. */
    bool get_bool(const std::string &name, bool def = false) const;

    /** Comma-separated list of integers. */
    std::vector<int64_t> get_int_list(const std::string &name,
                                      std::vector<int64_t> def) const;

    /** Comma-separated list of doubles. */
    std::vector<double> get_double_list(const std::string &name,
                                        std::vector<double> def) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

/**
 * Shared `--threads` convention for every bench and example binary:
 * N >= 1 requests exactly N Monte-Carlo worker shards, 0 requests all
 * hardware threads (resolved by sim/engine.hpp), and the default is
 * the historical single-threaded behavior. Negative values clamp
 * to 0 (= auto).
 */
int threads_from_flags(const Flags &flags, int def = 1);

} // namespace btwc
