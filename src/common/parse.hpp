#pragma once

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace btwc {

/**
 * Strict full-string numeric parsing, shared by the CLI flag layer
 * (common/flags.cpp) and the scenario grammar (api/scenario.cpp) so
 * "--cycles X" and "cycles=X" can never validate differently.
 *
 * "Strict" means: non-empty, the whole string consumed, and no
 * overflow — strtoll's silent ERANGE saturation would otherwise turn
 * a fat-fingered "cycles=99999999999999999999" into an INT64_MAX-cycle
 * run instead of a diagnostic.
 */
inline bool
parse_i64(const std::string &text, int64_t *out)
{
    if (text.empty()) {
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || errno == ERANGE) {
        return false;
    }
    *out = static_cast<int64_t>(value);
    return true;
}

/**
 * The one boolean spelling set of the CLI and the scenario grammar:
 * true/1/yes and false/0/no. Anything else returns false with `out`
 * untouched.
 */
inline bool
parse_bool(const std::string &text, bool *out)
{
    if (text == "true" || text == "1" || text == "yes") {
        *out = true;
        return true;
    }
    if (text == "false" || text == "0" || text == "no") {
        *out = false;
        return true;
    }
    return false;
}

/**
 * As `parse_i64` for doubles. Overflow (±HUGE_VAL under ERANGE) is
 * rejected; gradual underflow to a denormal or zero is accepted —
 * tiny probabilities are legitimate inputs.
 */
inline bool
parse_f64(const std::string &text, double *out)
{
    if (text.empty()) {
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0') {
        return false;
    }
    if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
        return false;
    }
    *out = value;
    return true;
}

} // namespace btwc
