#include "common/rng.hpp"

#include <limits>

namespace btwc {

namespace {

/** SplitMix64 step used for seeding and stream splitting. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : state_) {
        word = splitmix64(sm);
    }
    // xoshiro must not start from the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
        state_[0] = 1;
    }
}

uint64_t
Rng::next_u64()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::next_double()
{
    // 53 top bits -> uniform in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

uint64_t
Rng::next_below(uint64_t bound)
{
    if (bound <= 1) {
        return 0;
    }
    // Lemire's multiply-and-reject method.
    uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
        const uint64_t threshold = (0 - bound) % bound;
        while (l < threshold) {
            x = next_u64();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return next_double() < p;
}

uint64_t
Rng::geometric(double p)
{
    if (p >= 1.0) {
        return 0;
    }
    if (p <= 0.0) {
        return std::numeric_limits<uint64_t>::max();
    }
    // Inverse CDF: floor(log(U) / log(1-p)) with U in (0, 1].
    double u = 1.0 - next_double(); // (0, 1]
    double g = std::floor(std::log(u) / std::log1p(-p));
    if (g < 0.0) {
        g = 0.0;
    }
    if (g > 1e18) {
        return std::numeric_limits<uint64_t>::max();
    }
    return static_cast<uint64_t>(g);
}

uint64_t
Rng::binomial(uint64_t n, double p)
{
    if (n == 0 || p <= 0.0) {
        return 0;
    }
    if (p >= 1.0) {
        return n;
    }
    if (p > 0.5) {
        return n - binomial(n, 1.0 - p);
    }
    const double npq = static_cast<double>(n) * p * (1.0 - p);
    if (n >= 1000 && npq >= 100.0) {
        // Gaussian limit: by npq >= 100 the normal approximation is
        // accurate well past the 99.99th percentile, and it keeps
        // million-cycle fleet simulations O(1) per draw.
        const double u1 = 1.0 - next_double();
        const double u2 = next_double();
        const double z = std::sqrt(-2.0 * std::log(u1)) *
                         std::cos(6.283185307179586 * u2);
        double value = static_cast<double>(n) * p + std::sqrt(npq) * z;
        value = std::round(value);
        if (value < 0.0) {
            return 0;
        }
        if (value > static_cast<double>(n)) {
            return n;
        }
        return static_cast<uint64_t>(value);
    }
    if (p <= 0.1) {
        // Gap skipping: jump across runs of failures. Expected number
        // of iterations is n * p + 1.
        uint64_t count = 0;
        uint64_t i = geometric(p);
        while (i < n) {
            ++count;
            const uint64_t gap = geometric(p);
            if (gap >= n - i) {
                break;
            }
            i += gap + 1;
        }
        return count;
    }
    uint64_t count = 0;
    for (uint64_t i = 0; i < n; ++i) {
        count += bernoulli(p) ? 1 : 0;
    }
    return count;
}

Rng
Rng::split()
{
    return Rng(next_u64());
}

} // namespace btwc
