#pragma once

#include <cstdint>
#include <cmath>

namespace btwc {

/**
 * Deterministic xoshiro256** pseudo-random generator.
 *
 * All Monte-Carlo results in the repository are reproducible given a
 * seed because we do not rely on implementation-defined standard
 * library distributions. The generator is seeded through SplitMix64 so
 * that small consecutive seeds produce uncorrelated streams.
 */
class Rng
{
  public:
    /** Construct a generator from a 64-bit seed. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit output. */
    uint64_t next_u64();

    /** Uniform double in [0, 1). */
    double next_double();

    /** Uniform integer in [0, bound) using Lemire rejection. */
    uint64_t next_below(uint64_t bound);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Exact Binomial(n, p) sample.
     *
     * Uses geometric gap-skipping (expected cost O(n*p + 1)) so that
     * fleet simulations with small per-qubit event probabilities stay
     * cheap; falls back to per-trial Bernoulli draws when p is large.
     */
    uint64_t binomial(uint64_t n, double p);

    /**
     * Geometric sample: number of failures before the first success of
     * a Bernoulli(p) sequence. Returns a saturated large value for
     * p == 0.
     */
    uint64_t geometric(double p);

    /** Derive an independent child stream (for per-qubit streams). */
    Rng split();

  private:
    uint64_t state_[4];
};

} // namespace btwc
