#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace btwc {

void
RunningStats::add(double x)
{
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
}

void
CountHistogram::add(uint64_t v, uint64_t weight)
{
    if (v >= counts_.size()) {
        counts_.resize(v + 1, 0);
    }
    counts_[v] += weight;
    total_ += weight;
}

void
CountHistogram::merge(const CountHistogram &other)
{
    if (other.counts_.size() > counts_.size()) {
        counts_.resize(other.counts_.size(), 0);
    }
    for (size_t v = 0; v < other.counts_.size(); ++v) {
        counts_[v] += other.counts_[v];
    }
    total_ += other.total_;
}

uint64_t
CountHistogram::max_value() const
{
    for (size_t i = counts_.size(); i-- > 0;) {
        if (counts_[i] > 0) {
            return i;
        }
    }
    return 0;
}

double
CountHistogram::mean() const
{
    if (total_ == 0) {
        return 0.0;
    }
    double acc = 0.0;
    for (size_t v = 0; v < counts_.size(); ++v) {
        acc += static_cast<double>(v) * static_cast<double>(counts_[v]);
    }
    return acc / static_cast<double>(total_);
}

uint64_t
CountHistogram::percentile(double fraction) const
{
    if (total_ == 0) {
        return 0;
    }
    fraction = std::clamp(fraction, 0.0, 1.0);
    const double target = fraction * static_cast<double>(total_);
    uint64_t cumulative = 0;
    for (size_t v = 0; v < counts_.size(); ++v) {
        cumulative += counts_[v];
        if (static_cast<double>(cumulative) >= target && counts_[v] > 0) {
            return v;
        }
        if (static_cast<double>(cumulative) >= target) {
            // Mass reached between populated bins; keep scanning to the
            // next populated value.
            for (size_t w = v; w < counts_.size(); ++w) {
                if (counts_[w] > 0) {
                    return w;
                }
            }
        }
    }
    return max_value();
}

double
CountHistogram::cdf(uint64_t v) const
{
    if (total_ == 0) {
        return 0.0;
    }
    uint64_t cumulative = 0;
    const size_t limit = std::min<size_t>(counts_.size(), v + 1);
    for (size_t i = 0; i < limit; ++i) {
        cumulative += counts_[i];
    }
    return static_cast<double>(cumulative) / static_cast<double>(total_);
}

std::pair<double, double>
wilson_interval(uint64_t successes, uint64_t trials, double z)
{
    if (trials == 0) {
        return {0.0, 1.0};
    }
    const double n = static_cast<double>(trials);
    const double phat = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = phat + z2 / (2.0 * n);
    const double margin =
        z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
    return {(center - margin) / denom, (center + margin) / denom};
}

double
percentile_of(std::vector<double> values, double fraction)
{
    if (values.empty()) {
        return 0.0;
    }
    fraction = std::clamp(fraction, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    const size_t rank = static_cast<size_t>(
        std::ceil(fraction * static_cast<double>(values.size())));
    const size_t index = rank == 0 ? 0 : rank - 1;
    return values[std::min(index, values.size() - 1)];
}

} // namespace btwc
