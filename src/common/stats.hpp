#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace btwc {

/**
 * Streaming mean / variance accumulator (Welford's algorithm).
 *
 * Used by the Monte-Carlo harnesses to accumulate per-cycle metrics
 * without storing the full sample vector.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations added so far. */
    size_t count() const { return count_; }

    /** Sample mean (0 if empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 if fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /**
     * Fold another accumulator into this one (Chan et al.'s parallel
     * variance combination), as if every observation of `other` had
     * been `add`ed here. Backbone of the sharded Monte-Carlo engine
     * (sim/engine.hpp).
     */
    void merge(const RunningStats &other);

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Integer-valued histogram with exact percentile queries.
 *
 * The bandwidth-provisioning analysis needs exact percentiles of the
 * per-cycle off-chip decode counts, which are small non-negative
 * integers, so a dense count array is both exact and compact.
 */
class CountHistogram
{
  public:
    /** Record one observation of value v. */
    void add(uint64_t v, uint64_t weight = 1);

    /** Total number of recorded observations. */
    uint64_t total() const { return total_; }

    /** Largest recorded value (0 if empty). */
    uint64_t max_value() const;

    /** Mean of the recorded values. */
    double mean() const;

    /**
     * Smallest value v such that at least `fraction` of the recorded
     * mass is <= v. `fraction` is clamped to [0, 1]; an empty
     * histogram yields 0.
     */
    uint64_t percentile(double fraction) const;

    /** Fraction of observations with value <= v. */
    double cdf(uint64_t v) const;

    /** Raw counts indexed by value. */
    const std::vector<uint64_t> &counts() const { return counts_; }

    /**
     * Fold another histogram into this one (exact: bin-wise count
     * addition). Used to combine per-shard histograms from the
     * multi-threaded Monte-Carlo engine.
     */
    void merge(const CountHistogram &other);

  private:
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Wilson score interval for a binomial proportion.
 *
 * @param successes number of successes observed
 * @param trials    number of trials (must be > 0 for a useful result)
 * @param z         normal quantile (1.96 for 95% confidence)
 * @return {lower, upper} bounds on the true proportion
 */
std::pair<double, double> wilson_interval(uint64_t successes, uint64_t trials,
                                          double z = 1.96);

/**
 * Exact percentile of an unsorted sample (nearest-rank definition).
 * The input vector is copied; an empty input yields 0.
 */
double percentile_of(std::vector<double> values, double fraction);

} // namespace btwc
