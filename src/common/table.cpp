#include "common/table.hpp"

#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace btwc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::add_row(std::vector<std::string> cells)
{
    BTWC_CHECK(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::sci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

std::string
Table::to_string() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "" : "  ");
            out << row[c];
            for (size_t pad = row[c].size(); pad < widths[c]; ++pad) {
                out << ' ';
            }
        }
        out << '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c == 0 ? 0 : 2);
    }
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_) {
        emit_row(row);
    }
    return out.str();
}

std::string
Table::csv_field(const std::string &value)
{
    if (value.find_first_of(",\"\n") == std::string::npos) {
        return value;
    }
    std::string quoted = "\"";
    for (const char c : value) {
        if (c == '"') {
            quoted += '"';
        }
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

std::string
Table::to_csv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "" : ",") << csv_field(row[c]);
        }
        out << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_) {
        emit(row);
    }
    return out.str();
}

void
Table::print() const
{
    std::fputs(to_string().c_str(), stdout);
}

} // namespace btwc
