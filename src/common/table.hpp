#pragma once

#include <string>
#include <vector>

namespace btwc {

/**
 * Column-aligned plain-text table writer.
 *
 * Every bench binary prints the rows/series of the paper figure it
 * reproduces through this class so that the output format is uniform
 * and digestible both by humans and by the EXPERIMENTS.md tooling.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; the cell count must match the header count. */
    void add_row(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 4);

    /** Convenience: format a double in scientific notation. */
    static std::string sci(double v, int precision = 2);

    /** Render the table, column-aligned, with a header separator. */
    std::string to_string() const;

    /** Render the table as CSV. */
    std::string to_csv() const;

    /** Print `to_string()` to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace btwc
