#pragma once

#include <string>
#include <vector>

namespace btwc {

/**
 * Column-aligned plain-text table writer.
 *
 * Every bench binary prints the rows/series of the paper figure it
 * reproduces through this class so that the output format is uniform
 * and digestible both by humans and by the EXPERIMENTS.md tooling.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; the cell count must match the header count. */
    void add_row(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 4);

    /** Convenience: format a double in scientific notation. */
    static std::string sci(double v, int precision = 2);

    /**
     * RFC-4180 field quoting: values containing a comma, quote or
     * newline are wrapped in double quotes (with quotes doubled), so
     * cells like a "[lo,hi]" confidence interval survive a CSV
     * round-trip. Used by `to_csv` and `Report::csv`.
     */
    static std::string csv_field(const std::string &value);

    /** Render the table, column-aligned, with a header separator. */
    std::string to_string() const;

    /** Render the table as CSV. */
    std::string to_csv() const;

    /** Print `to_string()` to stdout. */
    void print() const;

    /** Column headers (for machine-readable re-renderings). */
    const std::vector<std::string> &headers() const { return headers_; }

    /** Rows in insertion order. */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace btwc
