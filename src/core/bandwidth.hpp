#pragma once

#include <cstdint>

#include "common/stats.hpp"

namespace btwc {

/**
 * Statistical off-chip bandwidth allocator (§5.1 of the paper).
 *
 * Collects the distribution of per-cycle off-chip decode requests
 * across the machine's logical qubits and provisions the off-chip link
 * for a chosen percentile of that distribution (in decodes per cycle).
 * Provisioning at the mean leads to an unbounded decode backlog; the
 * paper provisions at high percentiles (e.g. the 99th) and absorbs the
 * residual overflow with execution stalling.
 */
class BandwidthAllocator
{
  public:
    /** Record the off-chip decode demand of one cycle. */
    void record_cycle(uint64_t offchip_requests)
    {
        demand_.add(offchip_requests);
    }

    /** Number of recorded cycles. */
    uint64_t cycles() const { return demand_.total(); }

    /** Mean off-chip decodes per cycle. */
    double mean_demand() const { return demand_.mean(); }

    /**
     * Provisioned bandwidth, in decodes per cycle, covering
     * `percentile` (in [0, 1]) of the recorded cycles. Never returns
     * less than 1 so the backlog can always drain.
     */
    uint64_t provision(double percentile) const
    {
        const uint64_t level = demand_.percentile(percentile);
        return level == 0 ? 1 : level;
    }

    /** The raw demand histogram. */
    const CountHistogram &histogram() const { return demand_; }

  private:
    CountHistogram demand_;
};

} // namespace btwc
