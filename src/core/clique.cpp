#include "core/clique.hpp"

namespace btwc {

CliqueDecoder::CliqueDecoder(const RotatedSurfaceCode &code,
                             CheckType detector)
    : code_(code), detector_(detector),
      num_checks_(code.num_checks(detector)),
      syndrome_words_(packed_words(num_checks_))
{
    neighbor_masks_.assign(
        static_cast<size_t>(num_checks_) *
            static_cast<size_t>(syndrome_words_),
        0);
    first_boundary_data_.assign(static_cast<size_t>(num_checks_), -1);
    for (int c = 0; c < num_checks_; ++c) {
        uint64_t *mask =
            &neighbor_masks_[static_cast<size_t>(c) *
                             static_cast<size_t>(syndrome_words_)];
        for (const CliqueNeighbor &nb :
             code_.clique_neighbors(detector_, c)) {
            mask[nb.check >> 6] |= uint64_t(1) << (nb.check & 63);
        }
        const auto &bdata = code_.boundary_data(detector_, c);
        if (!bdata.empty()) {
            first_boundary_data_[c] = bdata.front();
        }
    }
}

bool
CliqueDecoder::clique_is_complex(int check,
                                 const std::vector<uint8_t> &syndrome) const
{
    if (!(syndrome[check] & 1)) {
        return false;  // inactive cliques never raise the flag
    }
    int fired = 0;
    for (const CliqueNeighbor &nb : code_.clique_neighbors(detector_, check)) {
        fired += syndrome[nb.check] & 1;
    }
    if (fired % 2 == 1) {
        return false;  // odd neighborhood parity: locally decodable
    }
    if (fired == 0 && !code_.boundary_data(detector_, check).empty()) {
        return false;  // boundary special case (1+1 / 1+2 cliques)
    }
    return true;
}

CliqueOutcome
CliqueDecoder::decode(const std::vector<uint8_t> &syndrome) const
{
    CliqueOutcome out;
    decode(syndrome, out);
    return out;
}

void
CliqueDecoder::decode(const std::vector<uint8_t> &syndrome,
                      CliqueOutcome &out) const
{
    out.verdict = CliqueVerdict::AllZeros;
    out.corrections.clear();
    bool any_fired = false;
    bool any_assert = false;
    // Correction wires are the AND of the two adjacent cliques' fired
    // bits, so a data qubit is asserted at most once even when two
    // cliques cover the same pair (Fig. 5, bottom).
    for (int c = 0; c < num_checks_; ++c) {
        if (!(syndrome[c] & 1)) {
            continue;
        }
        any_fired = true;
        int fired = 0;
        const auto &nbrs = code_.clique_neighbors(detector_, c);
        for (const CliqueNeighbor &nb : nbrs) {
            fired += syndrome[nb.check] & 1;
        }
        if (fired % 2 == 1) {
            if (!any_assert) {
                assert_scratch_.assign(
                    static_cast<size_t>(code_.num_data()), 0);
                any_assert = true;
            }
            for (const CliqueNeighbor &nb : nbrs) {
                if (syndrome[nb.check] & 1) {
                    assert_scratch_[nb.shared_data] = 1;
                }
            }
            continue;
        }
        const int bdata = first_boundary_data_[c];
        if (fired == 0 && bdata >= 0) {
            if (!any_assert) {
                assert_scratch_.assign(
                    static_cast<size_t>(code_.num_data()), 0);
                any_assert = true;
            }
            assert_scratch_[bdata] = 1;
            continue;
        }
        out.verdict = CliqueVerdict::Complex;
        out.corrections.clear();
        return;
    }

    if (!any_fired) {
        out.verdict = CliqueVerdict::AllZeros;
        return;
    }
    out.verdict = CliqueVerdict::Trivial;
    if (any_assert) {
        for (int q = 0; q < code_.num_data(); ++q) {
            if (assert_scratch_[q]) {
                out.corrections.push_back(q);
            }
        }
    }
}

CliqueVerdict
CliqueDecoder::decode_packed(const PackedSyndrome &syndrome,
                             PackedBits &correction) const
{
    correction.reset(code_.num_data());
    bool any_fired = false;
    // Ascending set-bit walk: the same check order as the byte path's
    // dense scan, so a Complex early-exit fires on the same clique.
    for (int w = 0; w < syndrome.num_words(); ++w) {
        uint64_t bits = syndrome.word(w);
        while (bits != 0) {
            const int c = w * 64 + __builtin_ctzll(bits);
            bits &= bits - 1;
            any_fired = true;
            const uint64_t *mask =
                &neighbor_masks_[static_cast<size_t>(c) *
                                 static_cast<size_t>(syndrome_words_)];
            const int fired =
                and_popcount(mask, syndrome.data(), syndrome_words_);
            if (fired & 1) {
                for (const CliqueNeighbor &nb :
                     code_.clique_neighbors(detector_, c)) {
                    if (syndrome.test(nb.check)) {
                        correction.set(nb.shared_data);
                    }
                }
                continue;
            }
            const int bdata = first_boundary_data_[c];
            if (fired == 0 && bdata >= 0) {
                correction.set(bdata);
                continue;
            }
            correction.clear();
            return CliqueVerdict::Complex;
        }
    }
    return any_fired ? CliqueVerdict::Trivial : CliqueVerdict::AllZeros;
}

bool
CliqueDecoder::would_raise_complex(const PackedSyndrome &syndrome) const
{
    for (int w = 0; w < syndrome.num_words(); ++w) {
        uint64_t bits = syndrome.word(w);
        while (bits != 0) {
            const int c = w * 64 + __builtin_ctzll(bits);
            bits &= bits - 1;
            const uint64_t *mask =
                &neighbor_masks_[static_cast<size_t>(c) *
                                 static_cast<size_t>(syndrome_words_)];
            const int fired =
                and_popcount(mask, syndrome.data(), syndrome_words_);
            if (fired & 1) {
                continue;
            }
            if (fired == 0 && first_boundary_data_[c] >= 0) {
                continue;
            }
            return true;
        }
    }
    return false;
}

} // namespace btwc
