#include "core/clique.hpp"

namespace btwc {

CliqueDecoder::CliqueDecoder(const RotatedSurfaceCode &code,
                             CheckType detector)
    : code_(code), detector_(detector)
{
}

bool
CliqueDecoder::clique_is_complex(int check,
                                 const std::vector<uint8_t> &syndrome) const
{
    if (!(syndrome[check] & 1)) {
        return false;  // inactive cliques never raise the flag
    }
    int fired = 0;
    for (const CliqueNeighbor &nb : code_.clique_neighbors(detector_, check)) {
        fired += syndrome[nb.check] & 1;
    }
    if (fired % 2 == 1) {
        return false;  // odd neighborhood parity: locally decodable
    }
    if (fired == 0 && !code_.boundary_data(detector_, check).empty()) {
        return false;  // boundary special case (1+1 / 1+2 cliques)
    }
    return true;
}

CliqueOutcome
CliqueDecoder::decode(const std::vector<uint8_t> &syndrome) const
{
    CliqueOutcome out;
    const int num_checks = code_.num_checks(detector_);
    bool any_fired = false;
    // Correction wires are the AND of the two adjacent cliques' fired
    // bits, so a data qubit is asserted at most once even when two
    // cliques cover the same pair (Fig. 5, bottom).
    std::vector<uint8_t> assert_mask;

    for (int c = 0; c < num_checks; ++c) {
        if (!(syndrome[c] & 1)) {
            continue;
        }
        any_fired = true;
        int fired = 0;
        const auto &nbrs = code_.clique_neighbors(detector_, c);
        for (const CliqueNeighbor &nb : nbrs) {
            fired += syndrome[nb.check] & 1;
        }
        if (fired % 2 == 1) {
            if (assert_mask.empty()) {
                assert_mask.assign(code_.num_data(), 0);
            }
            for (const CliqueNeighbor &nb : nbrs) {
                if (syndrome[nb.check] & 1) {
                    assert_mask[nb.shared_data] = 1;
                }
            }
            continue;
        }
        const auto &bdata = code_.boundary_data(detector_, c);
        if (fired == 0 && !bdata.empty()) {
            if (assert_mask.empty()) {
                assert_mask.assign(code_.num_data(), 0);
            }
            assert_mask[bdata.front()] = 1;
            continue;
        }
        out.verdict = CliqueVerdict::Complex;
        out.corrections.clear();
        return out;
    }

    if (!any_fired) {
        out.verdict = CliqueVerdict::AllZeros;
        return out;
    }
    out.verdict = CliqueVerdict::Trivial;
    for (int q = 0; q < code_.num_data(); ++q) {
        if (!assert_mask.empty() && assert_mask[q]) {
            out.corrections.push_back(q);
        }
    }
    return out;
}

} // namespace btwc
