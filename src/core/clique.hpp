#pragma once

#include <cstdint>
#include <vector>

#include "surface/lattice.hpp"

namespace btwc {

/** Classification of one cycle's (filtered) error signature. */
enum class CliqueVerdict : uint8_t
{
    AllZeros = 0,  ///< no check fired: nothing to do
    Trivial = 1,   ///< all fired cliques locally decodable (Local-1s)
    Complex = 2,   ///< at least one clique flagged COMPLEX: go off-chip
};

/** Outcome of one Clique decode. */
struct CliqueOutcome
{
    CliqueVerdict verdict = CliqueVerdict::AllZeros;
    /** Data qubits to flip; populated only for Trivial verdicts. */
    std::vector<int> corrections;
};

/**
 * The on-chip Clique decoder (§4 of the paper) for one check type.
 *
 * For every fired check `a` the decoder inspects the clique of
 * same-type neighbor checks N(a) (Fig. 5):
 *
 *  - odd |fired(N(a))|: trivial; for each fired neighbor the shared
 *    data qubit is corrected (the per-data-qubit AND of Fig. 5);
 *  - |fired(N(a))| == 0 and `a` owns a boundary half-edge: trivial;
 *    one boundary data qubit is corrected (this generalizes the 1+1
 *    and 1+2 corner/edge special cases in Fig. 5 -- flipping either
 *    boundary qubit of a 1+2 clique is equivalent up to a stabilizer);
 *  - otherwise: COMPLEX; the cycle's syndrome must go off-chip.
 *
 * The decision logic per clique is a handful of XOR/AND/NOT gates
 * (Fig. 6); `sfq/clique_circuit.hpp` emits exactly that netlist.
 */
class CliqueDecoder
{
  public:
    /**
     * @param code     the surface code lattice
     * @param detector which check type's syndromes are decoded
     */
    CliqueDecoder(const RotatedSurfaceCode &code, CheckType detector);

    /** The check type this instance decodes. */
    CheckType detector() const { return detector_; }

    /**
     * Decode one (filtered) syndrome: one byte per check of the
     * configured type, nonzero = fired.
     */
    CliqueOutcome decode(const std::vector<uint8_t> &syndrome) const;

    /**
     * Gate-level decision for a single clique: true when check `a`
     * would raise the COMPLEX flag given the syndrome. Exposed for the
     * hardware generator and the exhaustive unit tests.
     */
    bool clique_is_complex(int check,
                           const std::vector<uint8_t> &syndrome) const;

  private:
    const RotatedSurfaceCode &code_;
    CheckType detector_;
};

} // namespace btwc
