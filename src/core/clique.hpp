#pragma once

#include <cstdint>
#include <vector>

#include "surface/lattice.hpp"
#include "surface/packed.hpp"

namespace btwc {

/** Classification of one cycle's (filtered) error signature. */
enum class CliqueVerdict : uint8_t
{
    AllZeros = 0,  ///< no check fired: nothing to do
    Trivial = 1,   ///< all fired cliques locally decodable (Local-1s)
    Complex = 2,   ///< at least one clique flagged COMPLEX: go off-chip
};

/** Outcome of one Clique decode. */
struct CliqueOutcome
{
    CliqueVerdict verdict = CliqueVerdict::AllZeros;
    /** Data qubits to flip; populated only for Trivial verdicts. */
    std::vector<int> corrections;
};

/**
 * The on-chip Clique decoder (§4 of the paper) for one check type.
 *
 * For every fired check `a` the decoder inspects the clique of
 * same-type neighbor checks N(a) (Fig. 5):
 *
 *  - odd |fired(N(a))|: trivial; for each fired neighbor the shared
 *    data qubit is corrected (the per-data-qubit AND of Fig. 5);
 *  - |fired(N(a))| == 0 and `a` owns a boundary half-edge: trivial;
 *    one boundary data qubit is corrected (this generalizes the 1+1
 *    and 1+2 corner/edge special cases in Fig. 5 -- flipping either
 *    boundary qubit of a 1+2 clique is equivalent up to a stabilizer);
 *  - otherwise: COMPLEX; the cycle's syndrome must go off-chip.
 *
 * The decision logic per clique is a handful of XOR/AND/NOT gates
 * (Fig. 6); `sfq/clique_circuit.hpp` emits exactly that netlist.
 *
 * Two evaluation paths share that contract bit-exactly (property
 * tests): the legacy byte-per-check `decode`, and the word-parallel
 * packed path (`decode_packed` / `would_raise_complex`) that iterates
 * only the fired bits and evaluates each clique's neighborhood parity
 * as one popcount over a precomputed per-check neighbor mask.
 * Instances are not concurrency-safe (pooled byte-path scratch).
 */
class CliqueDecoder
{
  public:
    /**
     * @param code     the surface code lattice
     * @param detector which check type's syndromes are decoded
     */
    CliqueDecoder(const RotatedSurfaceCode &code, CheckType detector);

    /** The check type this instance decodes. */
    CheckType detector() const { return detector_; }

    /**
     * Decode one (filtered) syndrome: one byte per check of the
     * configured type, nonzero = fired.
     */
    CliqueOutcome decode(const std::vector<uint8_t> &syndrome) const;

    /**
     * As `decode`, but writing into a caller-owned outcome whose
     * corrections capacity is reused: the allocation-free spelling for
     * steady-state loops.
     */
    void decode(const std::vector<uint8_t> &syndrome,
                CliqueOutcome &out) const;

    /**
     * Packed fast path: decode one packed syndrome, writing the
     * correction as a per-data-qubit bit mask (resized/cleared here).
     * The verdict, and the set of corrected qubits, are bit-exact with
     * the byte `decode` — including the early exit on the first
     * COMPLEX clique in ascending check order (the correction mask is
     * all-zero then, like the byte path's cleared list).
     */
    CliqueVerdict decode_packed(const PackedSyndrome &syndrome,
                                PackedBits &correction) const;

    /**
     * Word-parallel screening predicate: true iff `decode` would
     * return a Complex verdict. The escalation decision alone, without
     * materializing corrections — what a tier needs to route a
     * signature off-chip.
     */
    bool would_raise_complex(const PackedSyndrome &syndrome) const;

    /**
     * Gate-level decision for a single clique: true when check `a`
     * would raise the COMPLEX flag given the syndrome. Exposed for the
     * hardware generator and the exhaustive unit tests.
     */
    bool clique_is_complex(int check,
                           const std::vector<uint8_t> &syndrome) const;

  private:
    const RotatedSurfaceCode &code_;
    CheckType detector_;
    int num_checks_;
    int syndrome_words_;
    /** Per-check neighbor bit mask, `syndrome_words_` words per check:
     * bit b of check c's mask is set iff b is a clique neighbor of c. */
    std::vector<uint64_t> neighbor_masks_;
    /** First boundary half-edge data qubit per check, or -1. */
    std::vector<int> first_boundary_data_;
    // Byte-path assert mask, pooled across decode calls.
    mutable std::vector<uint8_t> assert_scratch_;
};

} // namespace btwc
