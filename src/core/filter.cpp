#include "core/filter.hpp"

#include <cstddef>

#include "common/check.hpp"

namespace btwc {

MeasurementFilter::MeasurementFilter(int num_checks, int rounds)
    : rounds_(rounds),
      history_(static_cast<size_t>(rounds),
               std::vector<uint8_t>(static_cast<size_t>(num_checks), 0)),
      filtered_(static_cast<size_t>(num_checks), 0)
{
    BTWC_CHECK(rounds >= 1);
}

const std::vector<uint8_t> &
MeasurementFilter::push(const std::vector<uint8_t> &raw)
{
    BTWC_CHECK(raw.size() == filtered_.size());
    history_[head_] = raw;
    head_ = (head_ + 1) % rounds_;
    if (pushed_ < rounds_) {
        ++pushed_;
    }
    if (pushed_ < rounds_) {
        std::fill(filtered_.begin(), filtered_.end(), 0);
        return filtered_;
    }
    for (size_t c = 0; c < filtered_.size(); ++c) {
        uint8_t all = 1;
        for (const auto &round : history_) {
            all &= round[c];
        }
        filtered_[c] = all & 1;
    }
    return filtered_;
}

void
MeasurementFilter::reset()
{
    pushed_ = 0;
    head_ = 0;
    for (auto &round : history_) {
        std::fill(round.begin(), round.end(), 0);
    }
    std::fill(filtered_.begin(), filtered_.end(), 0);
}

PackedMeasurementFilter::PackedMeasurementFilter(int num_checks, int rounds)
    : rounds_(rounds),
      history_(static_cast<size_t>(rounds), PackedSyndrome(num_checks)),
      filtered_(num_checks)
{
    BTWC_CHECK(rounds >= 1);
}

const PackedSyndrome &
PackedMeasurementFilter::push(const PackedSyndrome &raw)
{
    BTWC_CHECK(raw.size() == filtered_.size());
    history_[static_cast<size_t>(head_)] = raw;
    head_ = (head_ + 1) % rounds_;
    if (pushed_ < rounds_) {
        ++pushed_;
    }
    if (pushed_ < rounds_) {
        filtered_.clear();
        return filtered_;
    }
    filtered_ = history_[0];
    for (size_t r = 1; r < history_.size(); ++r) {
        filtered_ &= history_[r];
    }
    return filtered_;
}

void
PackedMeasurementFilter::reset()
{
    pushed_ = 0;
    head_ = 0;
    for (PackedSyndrome &round : history_) {
        round.clear();
    }
    filtered_.clear();
}

} // namespace btwc
