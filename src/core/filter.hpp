#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "surface/packed.hpp"

namespace btwc {

/**
 * Multi-round measurement-error filter (Fig. 7 of the paper).
 *
 * A syndrome bit is forwarded to the Clique logic only when it has
 * been asserted in each of the last `rounds` measurement rounds, which
 * suppresses transient measurement flips. The paper's primary design
 * uses two rounds; more rounds raise robustness at extra hardware cost
 * (per additional round: one DFF plus a little glue per check, see
 * `sfq/clique_circuit.hpp`).
 *
 * Measurement errors that stick for `rounds` consecutive cycles pass
 * the filter as isolated detection events; the Clique logic then
 * flags them COMPLEX and they are resolved off-chip (Fig. 8d).
 */
class MeasurementFilter
{
  public:
    /**
     * @param num_checks syndrome width
     * @param rounds     persistence window (>= 1; 1 disables filtering)
     */
    explicit MeasurementFilter(int num_checks, int rounds = 2);

    /**
     * Push one raw measurement round and return the filtered syndrome
     * (AND over the last `rounds` raw rounds; rounds before the first
     * push count as all-zero).
     */
    const std::vector<uint8_t> &push(const std::vector<uint8_t> &raw);

    /** Most recent filtered syndrome. */
    const std::vector<uint8_t> &filtered() const { return filtered_; }

    /** Forget all history. */
    void reset();

    /** Configured persistence window. */
    int rounds() const { return rounds_; }

  private:
    int rounds_;
    int head_ = 0;
    int pushed_ = 0;
    std::vector<std::vector<uint8_t>> history_;
    std::vector<uint8_t> filtered_;
};

/**
 * Bit-packed counterpart of `MeasurementFilter`: the same persistence
 * window over `PackedSyndrome` rounds, with the per-check AND replaced
 * by one word-wide AND per 64 checks. Semantics are bit-exact with the
 * byte filter (property tests), including the all-zero output until
 * `rounds` rounds have been pushed. Allocation-free after
 * construction: `push` copies into a preallocated ring slot.
 */
class PackedMeasurementFilter
{
  public:
    explicit PackedMeasurementFilter(int num_checks, int rounds = 2);

    /**
     * Push one raw packed round and return the filtered syndrome (AND
     * over the last `rounds` raw rounds; rounds before the first push
     * count as all-zero).
     */
    const PackedSyndrome &push(const PackedSyndrome &raw);

    /** Most recent filtered syndrome. */
    const PackedSyndrome &filtered() const { return filtered_; }

    /** Forget all history. */
    void reset();

    /** Configured persistence window. */
    int rounds() const { return rounds_; }

  private:
    int rounds_;
    int head_ = 0;
    int pushed_ = 0;
    std::vector<PackedSyndrome> history_;
    PackedSyndrome filtered_;
};

} // namespace btwc
