#include "core/hierarchy.hpp"

namespace btwc {

HierarchicalDecoder::HierarchicalDecoder(const RotatedSurfaceCode &code,
                                         CheckType detector,
                                         HierarchyConfig config)
    : config_(config),
      chain_(code, detector,
             config.uf_growth_threshold > 0
                 ? TierChainConfig::deep(config.uf_growth_threshold)
                 : TierChainConfig::legacy())
{
}

HierarchicalDecoder::Result
HierarchicalDecoder::decode(const std::vector<uint8_t> &syndrome) const
{
    TierChain::Result chain_result = chain_.decode_syndrome(syndrome);
    Result result;
    result.tier = chain_result.tier;
    result.uf_growth_rounds = chain_result.effort;
    result.correction = std::move(chain_result.decode.correction);
    return result;
}

} // namespace btwc
