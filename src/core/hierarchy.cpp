#include "core/hierarchy.hpp"

namespace btwc {

const char *
decoder_tier_name(DecoderTier tier)
{
    switch (tier) {
      case DecoderTier::Clique:
        return "clique";
      case DecoderTier::UnionFind:
        return "union-find";
      case DecoderTier::Mwpm:
        return "mwpm";
    }
    return "?";
}

HierarchicalDecoder::HierarchicalDecoder(const RotatedSurfaceCode &code,
                                         CheckType detector,
                                         HierarchyConfig config)
    : code_(code), detector_(detector), config_(config),
      clique_(code, detector), union_find_(code, detector),
      mwpm_(code, detector)
{
}

HierarchicalDecoder::Result
HierarchicalDecoder::decode(const std::vector<uint8_t> &syndrome) const
{
    Result result;
    const CliqueOutcome outcome = clique_.decode(syndrome);
    if (outcome.verdict != CliqueVerdict::Complex) {
        result.tier = DecoderTier::Clique;
        result.correction.assign(code_.num_data(), 0);
        for (const int q : outcome.corrections) {
            result.correction[q] = 1;
        }
        return result;
    }

    if (config_.uf_growth_threshold > 0) {
        int growth = 0;
        MwpmDecoder::Result uf_fix =
            union_find_.decode_syndrome(syndrome, &growth);
        result.uf_growth_rounds = growth;
        if (growth <= config_.uf_growth_threshold) {
            result.tier = DecoderTier::UnionFind;
            result.correction = std::move(uf_fix.correction);
            return result;
        }
    }

    result.tier = DecoderTier::Mwpm;
    result.correction = mwpm_.decode_syndrome(syndrome).correction;
    return result;
}

} // namespace btwc
