#pragma once

#include <cstdint>
#include <vector>

#include "core/clique.hpp"
#include "matching/mwpm.hpp"
#include "matching/union_find.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/** Which tier of the decode hierarchy resolved a signature. */
enum class DecoderTier : uint8_t
{
    Clique = 0,     ///< on-chip combinational logic (tier 0)
    UnionFind = 1,  ///< mid-tier cluster decoder (tier 1)
    Mwpm = 2,       ///< full matching decoder (final tier)
};

/** Display name of a tier. */
const char *decoder_tier_name(DecoderTier tier);

/** Configuration of the decode hierarchy. */
struct HierarchyConfig
{
    /**
     * Escalate from Union-Find to MWPM when the cluster stage needs
     * more than this many half-edge growth iterations. Small clusters
     * (isolated 2-chains, sticky measurement errors) finish in <= 2
     * iterations; long chains and tangles keep growing. 0 disables
     * the Union-Find tier entirely (Clique -> MWPM, the paper's
     * baseline architecture).
     */
    int uf_growth_threshold = 2;
};

/**
 * The §8.1 "deeper hierarchy" extension: Clique -> Union-Find -> MWPM.
 *
 * The paper's architecture hands every COMPLEX signature to the
 * full-cost matching decoder. Its future-work section suggests
 * specializing a deeper hierarchy instead; the natural mid-tier is the
 * Union-Find decoder, which resolves *moderately* complex signatures
 * (short chains, sticky measurement errors) at almost-linear cost and
 * can itself detect -- via its cluster growth effort -- when a
 * signature deserves the exact matcher.
 *
 * Decode contract: the returned correction always clears the input
 * syndrome (perfect-measurement single round); the tier tells the
 * caller which stage paid for it. In the off-chip-bandwidth picture,
 * only the Mwpm tier leaves the chip.
 */
class HierarchicalDecoder
{
  public:
    /** Outcome of one hierarchical decode. */
    struct Result
    {
        DecoderTier tier = DecoderTier::Clique;
        std::vector<uint8_t> correction;  ///< per-data-qubit flip mask
        int uf_growth_rounds = 0;         ///< effort seen by the UF tier
    };

    HierarchicalDecoder(const RotatedSurfaceCode &code, CheckType detector,
                        HierarchyConfig config = {});

    /** The check type this hierarchy decodes. */
    CheckType detector() const { return detector_; }

    /** Active configuration. */
    const HierarchyConfig &config() const { return config_; }

    /** Decode one (filtered) syndrome through the hierarchy. */
    Result decode(const std::vector<uint8_t> &syndrome) const;

  private:
    const RotatedSurfaceCode &code_;
    CheckType detector_;
    HierarchyConfig config_;
    CliqueDecoder clique_;
    UnionFindDecoder union_find_;
    MwpmDecoder mwpm_;
};

} // namespace btwc
