#pragma once

#include <cstdint>
#include <vector>

#include "decoders/tier_chain.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/** Configuration of the decode hierarchy. */
struct HierarchyConfig
{
    /**
     * Escalate from Union-Find to MWPM when the cluster stage needs
     * more than this many half-edge growth iterations. Small clusters
     * (isolated 2-chains, sticky measurement errors) finish in <= 2
     * iterations; long chains and tangles keep growing. 0 disables
     * the Union-Find tier entirely (Clique -> MWPM, the paper's
     * baseline architecture).
     */
    int uf_growth_threshold = 2;
};

/**
 * The §8.1 "deeper hierarchy" extension: Clique -> Union-Find -> MWPM.
 *
 * The paper's architecture hands every COMPLEX signature to the
 * full-cost matching decoder. Its future-work section suggests
 * specializing a deeper hierarchy instead; the natural mid-tier is the
 * Union-Find decoder, which resolves *moderately* complex signatures
 * (short chains, sticky measurement errors) at almost-linear cost and
 * can itself detect -- via its cluster growth effort -- when a
 * signature deserves the exact matcher.
 *
 * This is a convenience facade over the fully configurable
 * `TierChain` (decoders/tier_chain.hpp), preserved for the common
 * three-tier shape; arbitrary hierarchies (e.g. Clique -> UF ->
 * Exact) are built directly from `TierChainConfig`.
 *
 * Decode contract: the returned correction always clears the input
 * syndrome (perfect-measurement single round); the tier tells the
 * caller which stage paid for it. In the off-chip-bandwidth picture,
 * only the Mwpm tier leaves the chip.
 */
class HierarchicalDecoder
{
  public:
    /** Outcome of one hierarchical decode. */
    struct Result
    {
        DecoderTier tier = DecoderTier::Clique;
        std::vector<uint8_t> correction;  ///< per-data-qubit flip mask
        int uf_growth_rounds = 0;         ///< effort seen by the UF tier
    };

    HierarchicalDecoder(const RotatedSurfaceCode &code, CheckType detector,
                        HierarchyConfig config = {});

    /** The check type this hierarchy decodes. */
    CheckType detector() const { return chain_.detector(); }

    /** Active configuration. */
    const HierarchyConfig &config() const { return config_; }

    /** The underlying tier chain. */
    const TierChain &chain() const { return chain_; }

    /** Decode one (filtered) syndrome through the hierarchy. */
    Result decode(const std::vector<uint8_t> &syndrome) const;

  private:
    HierarchyConfig config_;
    TierChain chain_;
};

} // namespace btwc
