#include "core/offchip_queue.hpp"

namespace btwc {

OffchipQueue::OffchipQueue(OffchipQueueConfig config) : config_(config) {}

OffchipQueue::StepResult
OffchipQueue::step(uint64_t new_requests)
{
    // Stall accounting mirrors StallController: a cycle stalls when
    // the *previous* cycle ended with unserved backlog.
    const bool was_stall = stall_next_;
    ++total_cycles_;
    if (was_stall) {
        ++stall_cycles_;
    } else {
        ++work_cycles_;
    }

    if (new_requests > 0) {
        waiting_.push_back(Group{cycle_, new_requests, 0});
        backlog_ += new_requests;
        enqueued_ += new_requests;
    }

    // Serve up to `bandwidth` requests FIFO; 0 means unlimited, the
    // synchronous model's implicit assumption.
    StepResult out;
    const uint64_t capacity =
        config_.bandwidth == 0 ? backlog_ : config_.bandwidth;
    uint64_t to_serve = backlog_ < capacity ? backlog_ : capacity;
    out.served = to_serve;
    const uint64_t land_cycle = cycle_ + config_.latency;
    while (to_serve > 0) {
        Group &group = waiting_.front();
        const uint64_t take =
            group.count < to_serve ? group.count : to_serve;
        const uint64_t delay = land_cycle - group.cycle;
        in_service_.push_back(Group{
            land_cycle, take,
            delay < kMaxRecordedDelay ? delay : kMaxRecordedDelay});
        group.count -= take;
        backlog_ -= take;
        to_serve -= take;
        if (group.count == 0) {
            waiting_.pop_front();
        }
    }
    if (out.served > 0) {
        served_ += out.served;
        in_flight_ += out.served;
        const uint64_t cap =
            config_.max_batch == 0 ? out.served : config_.max_batch;
        for (uint64_t left = out.served; left > 0;) {
            const uint64_t batch = left < cap ? left : cap;
            batch_.add(batch);
            left -= batch;
        }
    }

    // Land every in-flight result whose latency elapsed; land cycles
    // are monotone (service cycles advance, latency is fixed), so
    // only the front of the FIFO can be due. The delay histogram is
    // populated here, at landing: its total() is the landed count.
    while (!in_service_.empty() && in_service_.front().cycle <= cycle_) {
        out.landed += in_service_.front().count;
        delay_.add(in_service_.front().delay, in_service_.front().count);
        in_service_.pop_front();
    }
    in_flight_ -= out.landed;
    landed_ += out.landed;

    stall_next_ = backlog_ > 0;
    max_backlog_ = backlog_ > max_backlog_ ? backlog_ : max_backlog_;
    ++cycle_;
    return out;
}

} // namespace btwc
