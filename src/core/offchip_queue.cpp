#include "core/offchip_queue.hpp"

#include "common/check.hpp"

namespace btwc {

OffchipQueue::OffchipQueue(OffchipQueueConfig config) : config_(config) {}

OffchipQueue::StepResult
OffchipQueue::step(uint64_t new_requests)
{
    return step(new_requests, StepFaults{});
}

OffchipQueue::StepResult
OffchipQueue::step(uint64_t new_requests, const StepFaults &faults)
{
    // Stall accounting mirrors StallController: a cycle stalls when
    // the *previous* cycle ended with unserved backlog.
    const bool was_stall = stall_next_;
    ++total_cycles_;
    if (was_stall) {
        ++stall_cycles_;
    } else {
        ++work_cycles_;
    }

    if (new_requests > 0) {
        waiting_.push_back(Group{cycle_, new_requests, 0});
        backlog_ += new_requests;
        enqueued_ += new_requests;
    }

    if (faults.outage) {
        // The link is dead in both directions: nothing enters service
        // and nothing lands. Every due in-service result is postponed
        // by one cycle, its recorded delay stretching with it; non-due
        // groups are untouched, so land-cycle monotonicity survives
        // (postponed fronts move to cycle_ + 1, later groups already
        // land at or after that).
        ++outage_cycles_;
        StepResult out;
        for (size_t i = 0; i < in_service_.size(); ++i) {
            Group &group = in_service_.at(i);
            if (group.cycle > cycle_) {
                break;
            }
            group.cycle = cycle_ + 1;
            if (group.delay < kMaxRecordedDelay) {
                ++group.delay;
            }
        }
        stall_next_ = backlog_ > 0;
        max_backlog_ = backlog_ > max_backlog_ ? backlog_ : max_backlog_;
        ++cycle_;
        return out;
    }

    // Serve up to `bandwidth` requests FIFO; 0 means unlimited, the
    // synchronous model's implicit assumption.
    StepResult out;
    const uint64_t capacity =
        config_.bandwidth == 0 ? backlog_ : config_.bandwidth;
    uint64_t to_serve = backlog_ < capacity ? backlog_ : capacity;
    out.served = to_serve;
    uint64_t land_cycle =
        cycle_ + config_.latency + faults.extra_latency;
    // A FIFO link: a request served during a spike cannot be overtaken
    // by one served after the spike ends, so later land cycles are
    // clamped up to the last in-flight one.
    if (!in_service_.empty() &&
        land_cycle < in_service_.at(in_service_.size() - 1).cycle) {
        land_cycle = in_service_.at(in_service_.size() - 1).cycle;
    }
    while (to_serve > 0) {
        Group &group = waiting_.front();
        const uint64_t take =
            group.count < to_serve ? group.count : to_serve;
        const uint64_t delay = land_cycle - group.cycle;
        in_service_.push_back(Group{
            land_cycle, take,
            delay < kMaxRecordedDelay ? delay : kMaxRecordedDelay});
        group.count -= take;
        backlog_ -= take;
        to_serve -= take;
        if (group.count == 0) {
            waiting_.pop_front();
        }
    }
    if (out.served > 0) {
        served_ += out.served;
        in_flight_ += out.served;
        const uint64_t cap =
            config_.max_batch == 0 ? out.served : config_.max_batch;
        for (uint64_t left = out.served; left > 0;) {
            const uint64_t batch = left < cap ? left : cap;
            batch_.add(batch);
            left -= batch;
        }
    }

    // Land every in-flight result whose latency elapsed; land cycles
    // are monotone (service cycles advance, latency is fixed), so
    // only the front of the FIFO can be due. The delay histogram is
    // populated here, at landing: its total() is the landed count.
    while (!in_service_.empty() && in_service_.front().cycle <= cycle_) {
        out.landed += in_service_.front().count;
        delay_.add(in_service_.front().delay, in_service_.front().count);
        in_service_.pop_front();
    }
    in_flight_ -= out.landed;
    landed_ += out.landed;

    stall_next_ = backlog_ > 0;
    max_backlog_ = backlog_ > max_backlog_ ? backlog_ : max_backlog_;
    ++cycle_;
    return out;
}

void
OffchipQueue::shed(uint64_t count)
{
    BTWC_CHECK_MSG(count <= backlog_,
                   "only waiting requests can be shed");
    shed_ += count;
    backlog_ -= count;
    while (count > 0) {
        Group &group = waiting_.front();
        const uint64_t take = group.count < count ? group.count : count;
        group.count -= take;
        count -= take;
        if (group.count == 0) {
            waiting_.pop_front();
        }
    }
}

void
OffchipQueue::audit() const
{
    BTWC_CHECK_MSG(enqueued_ == served_ + shed_ + backlog_,
                   "request conservation: "
                   "enqueued == served + shed + backlog");
    BTWC_CHECK_MSG(served_ == landed_ + in_flight_,
                   "request conservation: served == landed + in flight");
    BTWC_CHECK_MSG(total_cycles_ == work_cycles_ + stall_cycles_,
                   "cycle conservation: total == work + stall");
    BTWC_CHECK_MSG(max_backlog_ >= backlog_,
                   "max backlog dominates the current backlog");
    BTWC_CHECK_MSG(stall_next_ == (backlog_ > 0),
                   "a cycle ending with backlog stalls the next one");

    uint64_t waiting_total = 0;
    for (size_t i = 0; i < waiting_.size(); ++i) {
        const Group &group = waiting_.at(i);
        BTWC_CHECK_MSG(group.count > 0, "waiting groups are non-empty");
        BTWC_CHECK_MSG(group.cycle < cycle_,
                       "waiting groups were enqueued in past cycles");
        if (i > 0) {
            BTWC_CHECK_MSG(group.cycle >= waiting_.at(i - 1).cycle,
                           "waiting FIFO enqueue cycles are monotone");
        }
        waiting_total += group.count;
    }
    BTWC_CHECK_MSG(waiting_total == backlog_,
                   "waiting group counts sum to the backlog");

    uint64_t in_service_total = 0;
    for (size_t i = 0; i < in_service_.size(); ++i) {
        const Group &group = in_service_.at(i);
        BTWC_CHECK_MSG(group.count > 0, "in-service groups are non-empty");
        BTWC_CHECK_MSG(group.cycle >= cycle_,
                       "every in-service group lands in the future "
                       "(due groups were popped by the last step)");
        if (i > 0) {
            BTWC_CHECK_MSG(group.cycle >= in_service_.at(i - 1).cycle,
                           "in-service FIFO land cycles are monotone");
        }
        in_service_total += group.count;
    }
    BTWC_CHECK_MSG(in_service_total == in_flight_,
                   "in-service group counts sum to the in-flight count");
}

} // namespace btwc
