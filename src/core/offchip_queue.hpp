#pragma once

#include <cstdint>
#include <vector>

#include "common/fifo.hpp"
#include "common/stats.hpp"
#include "core/stall.hpp"

namespace btwc {

/** Service parameters of the off-chip decode link (§5.2). */
struct OffchipQueueConfig
{
    /**
     * Decode requests entering service per cycle (the provisioned link
     * width of Fig. 16). 0 = unlimited: every queued request is served
     * the cycle it arrives, the implicit assumption of the synchronous
     * model.
     */
    uint64_t bandwidth = 0;
    /**
     * Cycles between a request entering service and its correction
     * landing back on-chip (decode compute + down-link). 0 reproduces
     * the synchronous model: corrections land in the cycle that
     * produced the request.
     */
    uint64_t latency = 0;
    /**
     * Largest group of same-cycle served requests handed to one
     * `Decoder::decode_batch` call (graph-setup amortization
     * granularity). 0 = one batch per serve cycle. Only affects the
     * batch-size accounting and how callers group decodes; scheduling
     * is independent of it.
     */
    uint64_t max_batch = 0;
};

/**
 * Asynchronous off-chip decode service: a latency-L, bandwidth-B FIFO
 * queue (§5.2 of the paper, generalizing `StallController`).
 *
 * Each cycle, up to `bandwidth` queued requests enter service and
 * their results land `latency` cycles later; excess demand carries
 * over as backlog, and a cycle that ends with backlog forces the next
 * cycle to stall exactly like `StallController` (with `latency == 0`
 * the two are step-for-step identical — tested). On top of the stall
 * accounting the queue tracks the end-to-end queueing delay of every
 * request (enqueue to landing) and the size of every served batch,
 * the two observables the synchronous model cannot express.
 *
 * This class only counts requests; callers that need to carry decode
 * payloads (e.g. `BtwcSystem`) keep them in parallel FIFOs and use the
 * returned `StepResult` to know how many entries to move per cycle.
 */
class OffchipQueue
{
  public:
    /** What the service did in one cycle. */
    struct StepResult
    {
        uint64_t served = 0;  ///< requests that entered service
        uint64_t landed = 0;  ///< corrections that landed on-chip
    };

    explicit OffchipQueue(OffchipQueueConfig config = OffchipQueueConfig());

    /**
     * Per-cycle fault condition of the link (src/faults/): what the
     * `FaultInjector` says this cycle looks like. The all-default
     * value is the healthy link, and `step(n)` forwards to
     * `step(n, StepFaults{})` — so the fault-aware path is byte-exact
     * with the legacy one when nothing fires.
     */
    struct StepFaults
    {
        /**
         * Link dead this cycle: nothing enters service and nothing
         * lands — every due in-service result is postponed by one
         * cycle (the down-link is dead in both directions), its
         * recorded delay stretching with it.
         */
        bool outage = false;
        /** Extra service latency this cycle (latency spike). */
        uint64_t extra_latency = 0;
    };

    /**
     * Advance one cycle with `new_requests` fresh escalations: enqueue
     * them, serve up to `bandwidth` queued requests (FIFO), and land
     * every in-flight result whose latency has elapsed.
     */
    StepResult step(uint64_t new_requests);

    /** As `step(new_requests)` under this cycle's fault condition. */
    StepResult step(uint64_t new_requests, const StepFaults &faults);

    /**
     * Remove `count` waiting requests from the backlog without serving
     * them — the accounting half of admission-control load shedding
     * and of tenant give-ups (core/offchip_service.hpp); the service
     * removes the matching payloads. Counts are taken from the oldest
     * waiting groups (the queue tracks only counts, not identities).
     * Shed requests move enqueued-conservation to the `shed()` column:
     * enqueued == served + shed + backlog.
     */
    void shed(uint64_t count);

    /** Active configuration. */
    const OffchipQueueConfig &config() const { return config_; }

    /** Cycles elapsed. */
    uint64_t total_cycles() const { return total_cycles_; }

    /** Cycles that made program progress. */
    uint64_t work_cycles() const { return work_cycles_; }

    /** Cycles spent stalled (previous cycle ended with backlog). */
    uint64_t stall_cycles() const { return stall_cycles_; }

    /** Whether the *upcoming* cycle is a stall. */
    bool stall_pending() const { return stall_next_; }

    /** Requests queued but not yet in service. */
    uint64_t backlog() const { return backlog_; }

    /** Largest backlog ever observed. */
    uint64_t max_backlog() const { return max_backlog_; }

    /** Requests in service whose correction has not landed yet. */
    uint64_t in_flight() const { return in_flight_; }

    /** Total requests ever enqueued. */
    uint64_t enqueued() const { return enqueued_; }

    /** Total requests that entered service. */
    uint64_t served() const { return served_; }

    /** Total corrections landed. */
    uint64_t landed() const { return landed_; }

    /** Total requests shed (admission control + give-ups). */
    uint64_t shed_total() const { return shed_; }

    /** Cycles this link spent inside an outage window. */
    uint64_t outage_cycles() const { return outage_cycles_; }

    /**
     * Relative execution-time increase caused by stalling (Fig. 16
     * x-axis); +inf for an all-stall run (see
     * `stall_execution_time_increase`).
     */
    double execution_time_increase() const
    {
        return stall_execution_time_increase(stall_cycles_, work_cycles_);
    }

    /**
     * Recorded delays saturate here: the histogram's dense count
     * array is sized by the largest value, and a saturated queue's
     * FIFO wait grows with run length (a diverging Fig. 16 point
     * would otherwise allocate run-length-sized arrays -- and a typo
     * latency, gigabytes). Any delay at the cap means "effectively
     * unbounded".
     */
    static constexpr uint64_t kMaxRecordedDelay = 1 << 16;

    /**
     * End-to-end delay of every landed correction in cycles (enqueue
     * to landing: queueing wait plus service latency), saturated at
     * `kMaxRecordedDelay`. All-zero with the synchronous
     * `latency == 0`, `bandwidth == 0` configuration.
     */
    const CountHistogram &delay_histogram() const { return delay_; }

    /**
     * Size of every served per-cycle group, sliced at
     * `OffchipQueueConfig::max_batch`: the granularity a decoder
     * serving this link amortizes `decode_batch` setup over. This is
     * a *link-level* statistic -- a single `BtwcSystem`'s own decode
     * batches are additionally bounded by its
     * one-outstanding-request-per-half contract (see system.hpp).
     */
    const CountHistogram &batch_histogram() const { return batch_; }

    /**
     * Verify the queue's internal consistency: conservation across
     * the counters (enqueued == served + shed + backlog,
     * served == landed + in_flight, total == work + stall cycles),
     * FIFO group order (enqueue cycles non-decreasing in the waiting
     * FIFO, land cycles non-decreasing and not yet due in the
     * in-service FIFO), group counts summing to the backlog /
     * in-flight counters, and the stall flag matching the backlog.
     * Called per cycle by its owners at AuditLevel::Deep; throws
     * CheckFailure.
     */
    void audit() const;

  private:
    /** A run of requests enqueued (or landing) in the same cycle. */
    struct Group
    {
        uint64_t cycle = 0;  ///< enqueue cycle (waiting) / land cycle
        uint64_t count = 0;
        /**
         * In-service groups only: the (saturated) enqueue-to-landing
         * delay, carried so the delay histogram is populated when the
         * correction actually lands (its total() is the landed
         * count), not when service starts.
         */
        uint64_t delay = 0;
    };

    OffchipQueueConfig config_;
    uint64_t cycle_ = 0;
    HeadFifo<Group> waiting_;     ///< enqueued, not yet in service
    HeadFifo<Group> in_service_;  ///< serving, keyed by land cycle
    uint64_t backlog_ = 0;
    uint64_t in_flight_ = 0;
    uint64_t enqueued_ = 0;
    uint64_t served_ = 0;
    uint64_t landed_ = 0;
    uint64_t shed_ = 0;
    uint64_t outage_cycles_ = 0;
    uint64_t max_backlog_ = 0;
    uint64_t total_cycles_ = 0;
    uint64_t work_cycles_ = 0;
    uint64_t stall_cycles_ = 0;
    bool stall_next_ = false;
    CountHistogram delay_;
    CountHistogram batch_;
};

} // namespace btwc
