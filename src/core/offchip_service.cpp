#include "core/offchip_service.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "decoders/decoder.hpp"

namespace btwc {

SharedOffchipService::SharedOffchipService(const RotatedSurfaceCode &code,
                                           const TierChainConfig &tiers,
                                           OffchipQueueConfig link)
    : queue_(link), tiers_(tiers), base_distance_(code.distance())
{
    const CheckType error_types[2] = {CheckType::X, CheckType::Z};
    chains_.reserve(2);
    for (const CheckType err : error_types) {
        chains_.emplace_back(code, detector_of_error(err), tiers);
    }
}

void
SharedOffchipService::set_scheduler(
    std::unique_ptr<FabricScheduler> scheduler)
{
    BTWC_CHECK_MSG(scheduler != nullptr,
                   "set_scheduler installs a discipline; the legacy "
                   "path is the no-scheduler default");
    BTWC_CHECK_MSG(next_seq_ == 0,
                   "the serve discipline is fixed before the first "
                   "enqueue (a mid-run swap would tear the audit "
                   "trail)");
    scheduler_ = std::move(scheduler);
}

void
SharedOffchipService::set_tenant_lane(int owner, TenantLane lane)
{
    BTWC_CHECK_MSG(owner >= 0, "lanes are keyed by tenant index");
    BTWC_CHECK_MSG(lane.weight >= 1,
                   "weighted-fair shares must be positive");
    if (static_cast<size_t>(owner) >= lanes_.size()) {
        lanes_.resize(static_cast<size_t>(owner) + 1);
    }
    lanes_[static_cast<size_t>(owner)] = lane;
}

TenantLane
SharedOffchipService::lane_of(int owner) const
{
    if (owner >= 0 && static_cast<size_t>(owner) < lanes_.size()) {
        return lanes_[static_cast<size_t>(owner)];
    }
    return TenantLane{};
}

LaneExtremes
SharedOffchipService::lane_extremes() const
{
    LaneExtremes out;
    for (int owner = 0; owner < owners_seen_; ++owner) {
        const TenantLane lane = lane_of(owner);
        if (owner == 0) {
            out.min_priority = out.max_priority = lane.priority;
            out.min_weight = out.max_weight = lane.weight;
            out.min_deadline = out.max_deadline = lane.deadline;
            continue;
        }
        out.min_priority = std::min(out.min_priority, lane.priority);
        out.max_priority = std::max(out.max_priority, lane.priority);
        out.min_weight = std::min(out.min_weight, lane.weight);
        out.max_weight = std::max(out.max_weight, lane.weight);
        out.min_deadline = std::min(out.min_deadline, lane.deadline);
        out.max_deadline = std::max(out.max_deadline, lane.deadline);
    }
    return out;
}

void
SharedOffchipService::register_code(const RotatedSurfaceCode &code)
{
    if (code.distance() == base_distance_) {
        return;
    }
    for (const ExtraChains &extra : extra_chains_) {
        if (extra.distance == code.distance()) {
            return;
        }
    }
    ExtraChains entry;
    entry.distance = code.distance();
    entry.chains.reserve(2);
    const CheckType error_types[2] = {CheckType::X, CheckType::Z};
    for (const CheckType err : error_types) {
        entry.chains.emplace_back(code, detector_of_error(err), tiers_);
    }
    extra_chains_.push_back(std::move(entry));
}

std::vector<TierChain> &
SharedOffchipService::chains_for(int distance)
{
    if (distance == 0 || distance == base_distance_) {
        return chains_;
    }
    for (ExtraChains &extra : extra_chains_) {
        if (extra.distance == distance) {
            return extra.chains;
        }
    }
    BTWC_CHECK_MSG(false, "request distances are registered via "
                          "register_code before they are served");
    return chains_;
}

void
SharedOffchipService::set_fault_injector(
    std::unique_ptr<FaultInjector> injector)
{
    BTWC_CHECK_MSG(injector != nullptr,
                   "set_fault_injector installs a chaos plan; the "
                   "healthy link is the no-injector default");
    BTWC_CHECK_MSG(next_seq_ == 0,
                   "the fault plan is fixed before the first enqueue "
                   "(a mid-run swap would tear the fault ledger)");
    injector_ = std::move(injector);
}

void
SharedOffchipService::enable_shedding(bool on)
{
    BTWC_CHECK_MSG(!on || scheduler_ != nullptr,
                   "load shedding needs deadline stamps, which only "
                   "scheduled mode records");
    shed_enabled_ = on;
}

SharedOffchipService::GiveUpResult
SharedOffchipService::give_up(int owner, int half)
{
    BTWC_CHECK_MSG(scheduler_ != nullptr,
                   "give-ups are a scheduled-mode (fabric) feature");
    for (size_t i = 0; i < sched_waiting_.size(); ++i) {
        const Request &request = sched_waiting_[i];
        if (request.synthetic || request.owner != owner ||
            request.half != half) {
            continue;
        }
        // Owners only time out requests enqueued in past cycles, so
        // the matching entry is in the queue's backlog (not fresh_).
        BTWC_CHECK_MSG(request.arrival_cycle < queue_.total_cycles(),
                       "give-ups target requests enqueued in past "
                       "cycles");
        sched_waiting_.erase(sched_waiting_.begin() +
                             static_cast<long>(i));
        queue_.shed(1);
        ++canceled_;
        ++tenant_slot(owner).canceled;
        return GiveUpResult::Canceled;
    }
    // In flight: count the half's entries not already claimed by an
    // earlier give-up; a surplus one is the live request to abandon.
    size_t inflight_matches = 0;
    for (size_t i = 0; i < inflight_.size(); ++i) {
        const Delivery &other = inflight_.at(i);
        if (!other.synthetic && other.owner == owner &&
            other.half == half) {
            ++inflight_matches;
        }
    }
    if (inflight_matches > stale_count(owner, half)) {
        stale_.emplace_back(owner, half);
        return GiveUpResult::Stale;
    }
    return GiveUpResult::Gone;
}

void
SharedOffchipService::enqueue_synthetic(int owner, uint64_t count)
{
    BTWC_CHECK_MSG(owner >= 0, "surges are charged to a tenant lane");
    for (uint64_t i = 0; i < count; ++i) {
        Request request;
        request.owner = owner;
        request.half = 0;
        request.oracle = true;  // empty payload, no decode
        request.synthetic = true;
        request.seq = next_seq_++;
        if (owner + 1 > owners_seen_) {
            owners_seen_ = owner + 1;
        }
        if (scheduler_) {
            // Deadline-stamped like real requests so admission control
            // can shed expired ballast too — otherwise a surge beyond
            // link bandwidth would grow the backlog without bound no
            // matter what the degradation machinery does.
            request.arrival_cycle = queue_.total_cycles();
            const uint64_t budget = lane_of(owner).deadline;
            request.deadline_cycle =
                budget > 0 ? request.arrival_cycle + budget : 0;
            sched_waiting_.push_back(std::move(request));
        } else {
            waiting_.push_back(std::move(request));
        }
        ++fresh_;
        ++surge_enqueued_;
        ++synthetic_pending_;
    }
}

void
SharedOffchipService::enqueue(Request request)
{
    BTWC_CHECK_MSG(request.owner >= 0 &&
                       (request.half == 0 || request.half == 1),
                   "requests carry a valid (owner, half) tag");
    BTWC_CHECK_MSG(!request.synthetic,
                   "synthetic surge ballast goes through "
                   "enqueue_synthetic");
    if (audit_basic()) {
        // The reconciliation contract (core/system.hpp): a half never
        // escalates while its previous request is outstanding — every
        // existing entry for this (owner, half) must be a stale
        // give-up leftover. The per-(owner, half) scan is bounded by
        // pending() <= 2 * owners (+ synthetics + stales).
        size_t outstanding = 0;
        for (size_t i = 0; i < waiting_count(); ++i) {
            const Request &other = waiting_at(i);
            if (!other.synthetic && other.owner == request.owner &&
                other.half == request.half) {
                ++outstanding;
            }
        }
        for (size_t i = 0; i < inflight_.size(); ++i) {
            const Delivery &other = inflight_.at(i);
            if (!other.synthetic && other.owner == request.owner &&
                other.half == request.half) {
                ++outstanding;
            }
        }
        BTWC_CHECK_MSG(outstanding <=
                           stale_count(request.owner, request.half),
                       "one outstanding off-chip request per "
                       "(owner, half) beyond stale give-up leftovers");
    }
    request.seq = next_seq_++;
    if (request.owner + 1 > owners_seen_) {
        owners_seen_ = request.owner + 1;
    }
    if (scheduler_) {
        // Arrival stamps: the queue enqueues this cycle's fresh batch
        // at its current cycle counter, which equals total_cycles()
        // here because the counter only advances at the end of step().
        request.arrival_cycle = queue_.total_cycles();
        const uint64_t budget = lane_of(request.owner).deadline;
        request.deadline_cycle =
            budget > 0 ? request.arrival_cycle + budget : 0;
        ++tenant_slot(request.owner).enqueued;
        sched_waiting_.push_back(std::move(request));
    } else {
        waiting_.push_back(std::move(request));
    }
    ++fresh_;
}

std::vector<SharedOffchipService::Request>
SharedOffchipService::take_served(uint64_t count)
{
    std::vector<Request> served;
    served.reserve(count);
    if (!scheduler_) {
        for (uint64_t i = 0; i < count; ++i) {
            served.push_back(waiting_.pop_front());
        }
        return served;
    }
    // Scheduled mode: the discipline picks which waiting request
    // enters service, one slot at a time; the serve *count* came from
    // the queue and is discipline-invariant (work conservation). The
    // serve happens in the cycle the queue just finished counting.
    const uint64_t serve_cycle = queue_.total_cycles() - 1;
    std::vector<SchedView> views;
    for (uint64_t slot = 0; slot < count; ++slot) {
        views.clear();
        views.reserve(sched_waiting_.size());
        for (const Request &request : sched_waiting_) {
            const TenantLane lane = lane_of(request.owner);
            views.push_back(SchedView{request.owner, request.seq,
                                      request.arrival_cycle,
                                      request.deadline_cycle,
                                      lane.priority, lane.weight});
        }
        const size_t pick = scheduler_->pick(views, serve_cycle);
        BTWC_CHECK_MSG(pick < sched_waiting_.size(),
                       "scheduler picks index a waiting request");
        if (scheduler_->kind() == SchedulerKind::Fifo) {
            // Lockstep with the legacy path: strict FIFO must serve
            // the arrival sequence with no gaps or reordering.
            if (audit_deep()) {
                BTWC_CHECK_MSG(sched_waiting_[pick].seq ==
                                   fifo_next_seq_,
                               "FIFO discipline serves the exact "
                               "arrival sequence (legacy lockstep)");
            }
            fifo_next_seq_ = sched_waiting_[pick].seq + 1;
        }
        served.push_back(std::move(sched_waiting_[pick]));
        sched_waiting_.erase(sched_waiting_.begin() +
                             static_cast<long>(pick));
    }
    return served;
}

void
SharedOffchipService::serve_decode(std::vector<Request> served)
{
    std::vector<std::vector<uint8_t>> corrections(served.size());
    std::vector<size_t> members;
    std::vector<uint8_t> grouped(served.size(), 0);
    for (size_t first = 0; first < served.size(); ++first) {
        if (grouped[first]) {
            continue;
        }
        if (served[first].oracle) {
            corrections[first] = std::move(served[first].payload);
            continue;
        }
        members.clear();
        for (size_t i = first; i < served.size(); ++i) {
            if (!grouped[i] && !served[i].oracle &&
                served[i].half == served[first].half &&
                served[i].tier_index == served[first].tier_index &&
                served[i].distance == served[first].distance) {
                members.push_back(i);
                grouped[i] = 1;
            }
        }
        std::vector<std::vector<DetectionEvent>> batch;
        batch.reserve(members.size());
        for (const size_t i : members) {
            batch.push_back(events_from_syndrome(served[i].payload));
        }
        std::vector<TierChain::Result> results =
            chains_for(served[first].distance)
                [static_cast<size_t>(served[first].half)]
                    .decode_batch_from(
                        static_cast<size_t>(served[first].tier_index),
                        batch, 1);
        for (size_t i = 0; i < members.size(); ++i) {
            corrections[members[i]] =
                std::move(results[i].decode.correction);
        }
    }
    for (size_t i = 0; i < served.size(); ++i) {
        if (scheduler_) {
            inflight_meta_.push_back(
                LandMeta{served[i].owner, served[i].arrival_cycle,
                         served[i].deadline_cycle});
        }
        inflight_.push_back(Delivery{served[i].owner, served[i].half,
                                     std::move(corrections[i]),
                                     served[i].synthetic});
    }
}

size_t
SharedOffchipService::stale_count(int owner, int half) const
{
    size_t count = 0;
    for (const std::pair<int, int> &key : stale_) {
        if (key.first == owner && key.second == half) {
            ++count;
        }
    }
    return count;
}

void
SharedOffchipService::shed_expired(uint64_t now)
{
    for (size_t i = 0; i < sched_waiting_.size();) {
        const Request &request = sched_waiting_[i];
        if (request.deadline_cycle == 0 ||
            request.deadline_cycle >= now) {
            ++i;
            continue;
        }
        // Past deadline: the decode could no longer land in time, so
        // spend zero link capacity on it. A real owner gets a nack
        // (delivered with this step's landings, unblocking the half);
        // expired surge ballast is dropped silently — nobody waits on
        // it, but shedding it is what keeps a beyond-bandwidth surge
        // from growing the backlog without bound.
        ++shed_;
        if (request.synthetic) {
            --synthetic_pending_;
        } else {
            ++tenant_slot(request.owner).shed;
            shed_nacks_.push_back(
                Delivery{request.owner, request.half, {}, false});
        }
        sched_waiting_.erase(sched_waiting_.begin() +
                             static_cast<long>(i));
        queue_.shed(1);
    }
}

SharedOffchipService::TenantLinkStats &
SharedOffchipService::tenant_slot(int owner)
{
    if (static_cast<size_t>(owner) >= tenant_stats_.size()) {
        tenant_stats_.resize(static_cast<size_t>(owner) + 1);
    }
    return tenant_stats_[static_cast<size_t>(owner)];
}

const std::vector<SharedOffchipService::Delivery> &
SharedOffchipService::step()
{
    // Admission control first: requests already past deadline are
    // shed before they can consume this cycle's bandwidth.
    if (shed_enabled_) {
        shed_expired(queue_.total_cycles());
    }
    OffchipQueue::StepFaults faults;
    if (injector_) {
        const uint64_t now = queue_.total_cycles();
        faults.outage = injector_->link_down(now);
        faults.extra_latency = injector_->extra_latency(now);
    }
    const OffchipQueue::StepResult sr = queue_.step(fresh_, faults);
    fresh_ = 0;

    // Serve: pop the requests entering service this cycle (FIFO across
    // owners, or per the installed discipline) and decode them.
    // Non-oracle requests are grouped per (distance, half, resume
    // tier) and decoded through one decode_batch_from call each -- the
    // fleet-scale amortization the shared link exists to expose: a
    // group mixes requests from every qubit that escalated recently,
    // not just the at-most-one a private queue could batch.
    // Corrections enter the in-flight FIFO in the original serve
    // order, matching the queue's landing order.
    if (sr.served > 0) {
        serve_decode(take_served(sr.served));
    }

    // Land: hand back every correction whose latency elapsed. In
    // scheduled mode, this is also where delays and deadline misses
    // are accounted (mirroring the queue's land-time delay recording,
    // but per request and per tenant, since the queue's FIFO delay
    // groups stop matching individual requests once a discipline
    // re-orders service).
    landed_now_.clear();
    for (uint64_t i = 0; i < sr.landed; ++i) {
        Delivery delivery = inflight_.pop_front();
        LandMeta meta;
        if (scheduler_) {
            meta = inflight_meta_.pop_front();
        }
        const uint64_t land_index = landed_index_++;

        // Synthetic surge ballast consumed its link slot; swallow it.
        if (delivery.synthetic) {
            ++surge_landed_;
            --synthetic_pending_;
            continue;
        }
        // A give-up leftover: the owner stopped waiting (and may have
        // re-escalated), so the correction is stale — discard it.
        if (!stale_.empty()) {
            bool discarded = false;
            for (size_t k = 0; k < stale_.size(); ++k) {
                if (stale_[k].first == delivery.owner &&
                    stale_[k].second == delivery.half) {
                    stale_.erase(stale_.begin() +
                                 static_cast<long>(k));
                    ++stale_discards_;
                    ++tenant_slot(delivery.owner).stale_discards;
                    discarded = true;
                    break;
                }
            }
            if (discarded) {
                continue;
            }
        }
        // Down-link loss: the correction never reaches the owner,
        // whose timeout machinery is what recovers the half.
        if (injector_ && injector_->drop_delivery(land_index)) {
            ++dropped_;
            ++tenant_slot(delivery.owner).dropped;
            continue;
        }
        if (injector_ && !delivery.correction.empty() &&
            injector_->corrupt_delivery(land_index)) {
            delivery.correction[injector_->corrupt_byte(
                land_index, delivery.correction.size())] ^= 1;
            ++corrupted_;
        }
        if (scheduler_) {
            const uint64_t land_cycle = queue_.total_cycles() - 1;
            uint64_t delay = land_cycle - meta.arrival_cycle;
            if (delay > OffchipQueue::kMaxRecordedDelay) {
                delay = OffchipQueue::kMaxRecordedDelay;
            }
            delay_.add(delay);
            TenantLinkStats &tenant = tenant_slot(meta.owner);
            ++tenant.landed;
            tenant.delay.add(delay);
            if (meta.deadline_cycle > 0 &&
                land_cycle > meta.deadline_cycle) {
                ++deadline_misses_;
                ++tenant.deadline_misses;
            }
        }
        ++delivered_;
        const bool duplicate =
            injector_ && injector_->duplicate_delivery(land_index);
        landed_now_.push_back(std::move(delivery));
        if (duplicate) {
            ++duplicated_;
            landed_now_.push_back(landed_now_.back());
        }
    }
    // Shed nacks ride out with this cycle's landings, after them (a
    // real correction always beats its own post-hoc nack).
    for (Delivery &nack : shed_nacks_) {
        landed_now_.push_back(std::move(nack));
    }
    shed_nacks_.clear();
    if (audit_deep()) {
        audit();
    }
    return landed_now_;
}

void
SharedOffchipService::audit() const
{
    queue_.audit();
    BTWC_CHECK_MSG(waiting_count() == queue_.backlog() + fresh_,
                   "payload waiting entries track the counting "
                   "queue's backlog plus the not-yet-stepped fresh "
                   "demand");
    BTWC_CHECK_MSG(inflight_.size() == queue_.in_flight(),
                   "payload in-flight FIFO tracks the counting queue");
    if (scheduler_) {
        BTWC_CHECK_MSG(inflight_meta_.size() == inflight_.size(),
                       "landing metadata rides in lockstep with the "
                       "in-flight payloads");
    }

    for (size_t i = 0; i < waiting_count(); ++i) {
        const Request &request = waiting_at(i);
        if (i > 0) {
            BTWC_CHECK_MSG(request.seq > waiting_at(i - 1).seq,
                           "waiting requests stay in arrival order "
                           "(picks remove entries, never re-order)");
        }
        if (request.synthetic) {
            continue;
        }
        // <= 1 live outstanding per (owner, half): every other entry
        // for this half (earlier waiting, or in flight) is covered by
        // a stale give-up key. With no give-ups this is exactly the
        // legacy "no duplicate waiting, nothing in flight" pair.
        size_t others = 0;
        for (size_t j = 0; j < i; ++j) {
            const Request &other = waiting_at(j);
            if (!other.synthetic && other.owner == request.owner &&
                other.half == request.half) {
                ++others;
            }
        }
        for (size_t j = 0; j < inflight_.size(); ++j) {
            const Delivery &other = inflight_.at(j);
            if (!other.synthetic && other.owner == request.owner &&
                other.half == request.half) {
                ++others;
            }
        }
        BTWC_CHECK_MSG(others <= stale_count(request.owner,
                                             request.half),
                       "at most one live outstanding request per "
                       "(owner, half) beyond stale give-up leftovers");
    }
    if (scheduler_ && owners_seen_ > 0 &&
        !(injector_ && injector_->plan().any_faults())) {
        // No starvation beyond the discipline's aging bound: every
        // waiting request's age stays under the sound (loose) bound
        // the scheduler declares for this link's tenant population.
        // Skipped under a live fault plan: outages freeze service and
        // surge ballast inflates demand, so ages can exceed any bound
        // the discipline could soundly declare — chaos-mode liveness
        // is instead covered by the timeout/shedding machinery and
        // pinned by the bounded-p99 acceptance tests.
        const uint64_t bound = scheduler_->starvation_bound(
            owners_seen_, queue_.config().bandwidth, lane_extremes());
        const uint64_t now = queue_.total_cycles();
        for (const Request &request : sched_waiting_) {
            const uint64_t age = now >= request.arrival_cycle
                                     ? now - request.arrival_cycle
                                     : 0;
            BTWC_CHECK_MSG(age <= bound,
                           "no waiting request starves beyond the "
                           "discipline's declared aging bound");
        }
    }
    for (size_t i = 0; i < inflight_.size(); ++i) {
        const Delivery &delivery = inflight_.at(i);
        if (delivery.synthetic) {
            continue;
        }
        size_t others = 0;
        for (size_t j = i + 1; j < inflight_.size(); ++j) {
            const Delivery &other = inflight_.at(j);
            if (!other.synthetic && other.owner == delivery.owner &&
                other.half == delivery.half) {
                ++others;
            }
        }
        BTWC_CHECK_MSG(others <= stale_count(delivery.owner,
                                             delivery.half),
                       "at most one live in-flight correction per "
                       "(owner, half) beyond stale give-up leftovers");
    }
    BTWC_CHECK_MSG(pending() <= 2 * static_cast<size_t>(owners_seen_) +
                                    synthetic_pending_ + stale_.size(),
                   "the one-request-per-half contract bounds the link "
                   "backlog at two entries per tenant (plus surge "
                   "ballast and stale give-up leftovers)");

    // The fault ledger: every queue landing is exactly one of
    // delivered / dropped / stale-discarded / synthetic-swallowed,
    // and every queue shed is deadline-shed or give-up-canceled.
    // Together with the queue's enqueued == served + shed + backlog
    // this closes the generalized conservation: every request is
    // exactly one of served, shed, or pending. All-zero extras on the
    // healthy path collapse it to landed == delivered.
    BTWC_CHECK_MSG(queue_.landed() == delivered_ + dropped_ +
                                          stale_discards_ +
                                          surge_landed_,
                   "landing ledger: landed == delivered + dropped + "
                   "stale + surge");
    BTWC_CHECK_MSG(queue_.shed_total() == shed_ + canceled_,
                   "shed ledger: shed_total == deadline-shed + "
                   "give-up-canceled");
}

} // namespace btwc
