#include "core/offchip_service.hpp"

#include <utility>

#include "common/check.hpp"
#include "decoders/decoder.hpp"

namespace btwc {

SharedOffchipService::SharedOffchipService(const RotatedSurfaceCode &code,
                                           const TierChainConfig &tiers,
                                           OffchipQueueConfig link)
    : queue_(link)
{
    const CheckType error_types[2] = {CheckType::X, CheckType::Z};
    chains_.reserve(2);
    for (const CheckType err : error_types) {
        chains_.emplace_back(code, detector_of_error(err), tiers);
    }
}

void
SharedOffchipService::enqueue(Request request)
{
    BTWC_CHECK_MSG(request.owner >= 0 &&
                       (request.half == 0 || request.half == 1),
                   "requests carry a valid (owner, half) tag");
    if (audit_basic()) {
        // The reconciliation contract (core/system.hpp): a half never
        // escalates while its previous request is outstanding. The
        // per-(owner, half) scan is bounded by pending() <= 2 * owners.
        for (size_t i = 0; i < waiting_.size(); ++i) {
            const Request &other = waiting_.at(i);
            BTWC_CHECK_MSG(other.owner != request.owner ||
                               other.half != request.half,
                           "one outstanding off-chip request per "
                           "(owner, half): already waiting");
        }
        for (size_t i = 0; i < inflight_.size(); ++i) {
            const Delivery &other = inflight_.at(i);
            BTWC_CHECK_MSG(other.owner != request.owner ||
                               other.half != request.half,
                           "one outstanding off-chip request per "
                           "(owner, half): already in flight");
        }
    }
    request.seq = next_seq_++;
    if (request.owner + 1 > owners_seen_) {
        owners_seen_ = request.owner + 1;
    }
    waiting_.push_back(std::move(request));
    ++fresh_;
}

const std::vector<SharedOffchipService::Delivery> &
SharedOffchipService::step()
{
    const OffchipQueue::StepResult sr = queue_.step(fresh_);
    fresh_ = 0;

    // Serve: pop the requests entering service this cycle (FIFO across
    // owners) and decode them. Non-oracle requests are grouped per
    // (half, resume tier) and decoded through one decode_batch_from
    // call each -- the fleet-scale amortization the shared link
    // exists to expose: a group mixes requests from every qubit that
    // escalated recently, not just the at-most-one a private queue
    // could batch. Corrections enter the in-flight FIFO in the
    // original serve order, matching the queue's landing order.
    if (sr.served > 0) {
        std::vector<Request> served;
        served.reserve(sr.served);
        for (uint64_t i = 0; i < sr.served; ++i) {
            served.push_back(waiting_.pop_front());
        }
        std::vector<std::vector<uint8_t>> corrections(served.size());
        std::vector<size_t> members;
        std::vector<uint8_t> grouped(served.size(), 0);
        for (size_t first = 0; first < served.size(); ++first) {
            if (grouped[first]) {
                continue;
            }
            if (served[first].oracle) {
                corrections[first] = std::move(served[first].payload);
                continue;
            }
            members.clear();
            for (size_t i = first; i < served.size(); ++i) {
                if (!grouped[i] && !served[i].oracle &&
                    served[i].half == served[first].half &&
                    served[i].tier_index == served[first].tier_index) {
                    members.push_back(i);
                    grouped[i] = 1;
                }
            }
            std::vector<std::vector<DetectionEvent>> batch;
            batch.reserve(members.size());
            for (const size_t i : members) {
                batch.push_back(events_from_syndrome(served[i].payload));
            }
            std::vector<TierChain::Result> results =
                chains_[static_cast<size_t>(served[first].half)]
                    .decode_batch_from(
                        static_cast<size_t>(served[first].tier_index),
                        batch, 1);
            for (size_t i = 0; i < members.size(); ++i) {
                corrections[members[i]] =
                    std::move(results[i].decode.correction);
            }
        }
        for (size_t i = 0; i < served.size(); ++i) {
            inflight_.push_back(Delivery{served[i].owner, served[i].half,
                                         std::move(corrections[i])});
        }
    }

    // Land: hand back every correction whose latency elapsed.
    landed_now_.clear();
    for (uint64_t i = 0; i < sr.landed; ++i) {
        landed_now_.push_back(inflight_.pop_front());
    }
    if (audit_deep()) {
        audit();
    }
    return landed_now_;
}

void
SharedOffchipService::audit() const
{
    queue_.audit();
    BTWC_CHECK_MSG(waiting_.size() == queue_.backlog() + fresh_,
                   "payload waiting FIFO tracks the counting queue's "
                   "backlog plus the not-yet-stepped fresh demand");
    BTWC_CHECK_MSG(inflight_.size() == queue_.in_flight(),
                   "payload in-flight FIFO tracks the counting queue");

    for (size_t i = 0; i < waiting_.size(); ++i) {
        const Request &request = waiting_.at(i);
        if (i > 0) {
            BTWC_CHECK_MSG(request.seq > waiting_.at(i - 1).seq,
                           "waiting requests stay in arrival order "
                           "(strict FIFO across owners)");
        }
        // <= 1 outstanding per (owner, half): no duplicate later in
        // the waiting FIFO, and nothing in flight for the same half.
        for (size_t j = i + 1; j < waiting_.size(); ++j) {
            const Request &other = waiting_.at(j);
            BTWC_CHECK_MSG(other.owner != request.owner ||
                               other.half != request.half,
                           "at most one waiting request per "
                           "(owner, half)");
        }
        for (size_t j = 0; j < inflight_.size(); ++j) {
            const Delivery &other = inflight_.at(j);
            BTWC_CHECK_MSG(other.owner != request.owner ||
                               other.half != request.half,
                           "a half with an in-flight correction never "
                           "waits on a second request");
        }
    }
    for (size_t i = 0; i < inflight_.size(); ++i) {
        const Delivery &delivery = inflight_.at(i);
        for (size_t j = i + 1; j < inflight_.size(); ++j) {
            const Delivery &other = inflight_.at(j);
            BTWC_CHECK_MSG(other.owner != delivery.owner ||
                               other.half != delivery.half,
                           "at most one in-flight correction per "
                           "(owner, half)");
        }
    }
    BTWC_CHECK_MSG(pending() <=
                       2 * static_cast<size_t>(owners_seen_),
                   "the one-request-per-half contract bounds the link "
                   "backlog at two entries per tenant");
}

} // namespace btwc
