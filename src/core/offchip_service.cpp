#include "core/offchip_service.hpp"

#include <utility>

#include "decoders/decoder.hpp"

namespace btwc {

SharedOffchipService::SharedOffchipService(const RotatedSurfaceCode &code,
                                           const TierChainConfig &tiers,
                                           OffchipQueueConfig link)
    : queue_(link)
{
    const CheckType error_types[2] = {CheckType::X, CheckType::Z};
    chains_.reserve(2);
    for (const CheckType err : error_types) {
        chains_.emplace_back(code, detector_of_error(err), tiers);
    }
}

void
SharedOffchipService::enqueue(Request request)
{
    waiting_.push_back(std::move(request));
    ++fresh_;
}

const std::vector<SharedOffchipService::Delivery> &
SharedOffchipService::step()
{
    const OffchipQueue::StepResult sr = queue_.step(fresh_);
    fresh_ = 0;

    // Serve: pop the requests entering service this cycle (FIFO across
    // owners) and decode them. Non-oracle requests are grouped per
    // (half, resume tier) and decoded through one decode_batch_from
    // call each -- the fleet-scale amortization the shared link
    // exists to expose: a group mixes requests from every qubit that
    // escalated recently, not just the at-most-one a private queue
    // could batch. Corrections enter the in-flight FIFO in the
    // original serve order, matching the queue's landing order.
    if (sr.served > 0) {
        std::vector<Request> served;
        served.reserve(sr.served);
        for (uint64_t i = 0; i < sr.served; ++i) {
            served.push_back(waiting_.pop_front());
        }
        std::vector<std::vector<uint8_t>> corrections(served.size());
        std::vector<size_t> members;
        std::vector<uint8_t> grouped(served.size(), 0);
        for (size_t first = 0; first < served.size(); ++first) {
            if (grouped[first]) {
                continue;
            }
            if (served[first].oracle) {
                corrections[first] = std::move(served[first].payload);
                continue;
            }
            members.clear();
            for (size_t i = first; i < served.size(); ++i) {
                if (!grouped[i] && !served[i].oracle &&
                    served[i].half == served[first].half &&
                    served[i].tier_index == served[first].tier_index) {
                    members.push_back(i);
                    grouped[i] = 1;
                }
            }
            std::vector<std::vector<DetectionEvent>> batch;
            batch.reserve(members.size());
            for (const size_t i : members) {
                batch.push_back(events_from_syndrome(served[i].payload));
            }
            std::vector<TierChain::Result> results =
                chains_[static_cast<size_t>(served[first].half)]
                    .decode_batch_from(
                        static_cast<size_t>(served[first].tier_index),
                        batch, 1);
            for (size_t i = 0; i < members.size(); ++i) {
                corrections[members[i]] =
                    std::move(results[i].decode.correction);
            }
        }
        for (size_t i = 0; i < served.size(); ++i) {
            inflight_.push_back(Delivery{served[i].owner, served[i].half,
                                         std::move(corrections[i])});
        }
    }

    // Land: hand back every correction whose latency elapsed.
    landed_now_.clear();
    for (uint64_t i = 0; i < sr.landed; ++i) {
        landed_now_.push_back(inflight_.pop_front());
    }
    return landed_now_;
}

} // namespace btwc
