#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/fifo.hpp"
#include "common/stats.hpp"
#include "core/offchip_queue.hpp"
#include "decoders/tier_chain.hpp"
#include "fabric/scheduler.hpp"
#include "faults/fault_plan.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Multi-tenant off-chip decode service: one latency-L bandwidth-B
 * link (`OffchipQueue`) shared by a whole fleet of `BtwcSystem`
 * pipelines (§5 of the paper -- the machine has *one*
 * fridge-to-room-temperature decoder, not one per logical qubit).
 *
 * Ownership inversion: a stand-alone `BtwcSystem` owns a private
 * queue and services it inside its own `step()`; under the shared
 * service the systems only *enqueue* tagged requests during their
 * step, and the fleet harness advances the link exactly once per
 * machine cycle via `step()`, after every tenant has stepped. Served
 * batches therefore mix requests from different qubits, which is what
 * makes `TierChain::decode_batch_from` amortization measurable at
 * fleet scale: within one qubit, batches are bounded by the
 * one-outstanding-request-per-half reconciliation contract
 * (core/system.hpp), but N qubits escalating in the same cycle share
 * one decoder invocation per lattice half.
 *
 * The service owns one `TierChain` per lattice half (indexed by error
 * type, like `BtwcSystem`'s frames) for the code it was constructed
 * with; a heterogeneous fleet registers its other code distances via
 * `register_code`, and requests are batched per (distance, half,
 * resume tier) so every request decodes on chains matching its
 * owner's lattice. The chains' decoders are deterministic pure
 * functions of the events, so decoding a request on the service-side
 * chain is bit-identical to decoding it on the owner's private chain.
 * Oracle-policy requests carry their correction in the payload and
 * bypass the chains entirely.
 *
 * Scheduling is strict FIFO across owners by default. Combined with
 * the one-outstanding-request-per-half contract (no tenant can occupy
 * more than two link slots), this is round-robin fair: a narrow link
 * serves qubits in their escalation order and no tenant can starve
 * another (tested). `set_scheduler` swaps in one of the decode
 * fabric's disciplines (src/fabric/scheduler.hpp) -- the scheduler
 * re-orders *which* waiting requests enter service each cycle but
 * never *how many*, so the link's stall/backlog/served accounting is
 * discipline-invariant and only the per-request delay distribution
 * (tracked service-side, per tenant) moves. A `FifoScheduler` is
 * bit-exact with the legacy path and audited in lockstep with it.
 *
 * With zero latency and unlimited bandwidth the shared service is
 * bit-exact with the private-queue path: corrections land within the
 * cycle that escalated them, after every tenant has stepped -- and
 * since tenants never read each other's frames mid-cycle, the
 * end-of-cycle machine state is identical (tested).
 */
class SharedOffchipService
{
  public:
    /** One tagged escalation from a tenant pipeline. */
    struct Request
    {
        int owner = 0;       ///< tenant (qubit) index, echoed in Delivery
        int half = 0;        ///< tenant's frames_/halves_ index (error type)
        int tier_index = 0;  ///< first off-chip tier (decode resume point)
        /**
         * True when `payload` already is the correction (the Oracle
         * policy's escalation-time error snapshot); false when it is
         * the filtered syndrome to decode when served.
         */
        bool oracle = false;
        std::vector<uint8_t> payload;
        /**
         * Code distance of the owner's lattice, selecting the decode
         * chains (0 = the constructor code). Distances other than the
         * constructor code's must be registered via `register_code`
         * before the request is served.
         */
        int distance = 0;
        /**
         * Link-wide FIFO sequence number, assigned by `enqueue` (any
         * caller-provided value is overwritten). The audit tier uses
         * it to prove served order == arrival order across owners.
         */
        uint64_t seq = 0;
        /** Link cycle of the enqueue, stamped by `enqueue`. */
        uint64_t arrival_cycle = 0;
        /**
         * Arrival plus the owner lane's deadline budget, stamped by
         * `enqueue`; 0 = the lane has no deadline.
         */
        uint64_t deadline_cycle = 0;
        /**
         * Fault-plan surge ballast (`enqueue_synthetic`): consumes
         * real link capacity but is swallowed at landing instead of
         * being delivered, and is exempt from the
         * one-outstanding-per-half contract.
         */
        bool synthetic = false;
    };

    /** A correction routed back to its owning tenant half. */
    struct Delivery
    {
        int owner = 0;
        int half = 0;
        std::vector<uint8_t> correction;  ///< per-data-qubit flip mask
        bool synthetic = false;           ///< surge ballast (swallowed)
    };

    /**
     * Scheduled-mode per-tenant link accounting (indexed by owner in
     * `tenant_stats`). Empty until a scheduler is installed: the
     * legacy strict-FIFO path keeps its original, tenant-blind
     * accounting untouched.
     */
    struct TenantLinkStats
    {
        uint64_t enqueued = 0;
        uint64_t landed = 0;
        /** Landings past the lane deadline (deadline lanes only). */
        uint64_t deadline_misses = 0;
        /** Deliveries lost to the fault plan's drop clause. */
        uint64_t dropped = 0;
        /** Requests shed past deadline (admission control). */
        uint64_t shed = 0;
        /** Requests canceled by an owner give-up (timeout). */
        uint64_t canceled = 0;
        /** Landed corrections discarded as stale after a give-up. */
        uint64_t stale_discards = 0;
        /** Enqueue-to-landing delay, saturated like the queue's. */
        CountHistogram delay;

        void merge(const TenantLinkStats &other)
        {
            enqueued += other.enqueued;
            landed += other.landed;
            deadline_misses += other.deadline_misses;
            dropped += other.dropped;
            shed += other.shed;
            canceled += other.canceled;
            stale_discards += other.stale_discards;
            delay.merge(other.delay);
        }
    };

    SharedOffchipService(const RotatedSurfaceCode &code,
                         const TierChainConfig &tiers,
                         OffchipQueueConfig link);

    /**
     * Install a serve-selection discipline (decode fabric mode). Must
     * be called before the first `enqueue`; the discipline then owns
     * the serve order for the whole run (a mid-run swap would tear the
     * audit trail). Installing `FifoScheduler` keeps the serve order
     * bit-exact with the legacy path while enabling the scheduled-mode
     * per-tenant accounting (pinned in tests/test_fabric.cpp).
     */
    void set_scheduler(std::unique_ptr<FabricScheduler> scheduler);

    /** Installed discipline, or nullptr on the legacy FIFO path. */
    const FabricScheduler *scheduler() const { return scheduler_.get(); }

    /**
     * Register tenant `owner`'s scheduling lane. Priorities and
     * weights are read at every pick; the deadline budget stamps
     * requests at enqueue, so it applies to subsequent escalations.
     * Unregistered tenants run at the `TenantLane` defaults.
     */
    void set_tenant_lane(int owner, TenantLane lane);

    /** Lane of `owner` (the default lane when never registered). */
    TenantLane lane_of(int owner) const;

    /** Lane extremes across every tenant seen (audit bound input). */
    LaneExtremes lane_extremes() const;

    /**
     * Build decode chains for an additional code distance so a
     * heterogeneous fleet's requests decode on matching lattices.
     * Idempotent; the constructor code is implicitly registered.
     */
    void register_code(const RotatedSurfaceCode &code);

    /**
     * Install the per-link fault injector (chaos mode, src/faults/).
     * Must be installed before the first enqueue, like the scheduler.
     * An injector whose plan never fires leaves every observable
     * bit-exact with the uninjected service — the zero-fault contract
     * (pinned in tests/test_faults.cpp).
     */
    void set_fault_injector(std::unique_ptr<FaultInjector> injector);

    /** Installed injector, or nullptr on the healthy path. */
    const FaultInjector *fault_injector() const
    {
        return injector_.get();
    }

    /**
     * Enable admission-control load shedding (scheduled mode only):
     * each `step()` first sheds every waiting request already past its
     * lane deadline and delivers an empty-correction nack to its owner
     * in the same cycle, so the owner's half unblocks instead of
     * waiting on a decode that could no longer help. Expired synthetic
     * surge ballast is shed silently (counted, no nack) — that is what
     * bounds the backlog under a beyond-bandwidth surge.
     */
    void enable_shedding(bool on);

    /** What `give_up` found for the (owner, half) request. */
    enum class GiveUpResult
    {
        Canceled,  ///< still waiting: removed from the link, shed
        Stale,     ///< in flight: will land, but will be discarded
        Gone,      ///< nothing outstanding (e.g. the delivery dropped)
    };

    /**
     * Owner-side timeout: abandon the outstanding request of
     * (owner, half), freeing the half for a retry or an on-chip
     * fallback decode (core/system.hpp). A waiting request is removed
     * outright; an in-flight one cannot be recalled from the link, so
     * its eventual landing is marked stale and silently discarded.
     * Scheduled mode only.
     */
    GiveUpResult give_up(int owner, int half);

    /**
     * Fault-plan demand surge: enqueue `count` synthetic requests on
     * `owner`'s lane. They occupy real queue slots and bandwidth (that
     * is the whole point) but carry no payload, bypass the
     * one-outstanding-per-half contract, and are swallowed at landing
     * rather than delivered.
     */
    void enqueue_synthetic(int owner, uint64_t count);

    /**
     * Add one escalation to the current cycle's fresh demand. Tenants
     * call this from inside their `step()`; the request waits for
     * link capacity behind every earlier request from any tenant
     * (or per the installed scheduler's discipline).
     */
    void enqueue(Request request);

    /**
     * Advance the link one machine cycle: enqueue the fresh demand
     * accumulated since the previous step, serve up to `bandwidth`
     * waiting requests (decoding non-oracle ones batched per half
     * across owners), and return every correction whose latency
     * elapsed, in serve order. The caller routes each Delivery to
     * `BtwcSystem::deliver_offchip_correction` on the owning tenant.
     * The returned reference is valid until the next `step()`.
     */
    const std::vector<Delivery> &step();

    /** The underlying link (stall/backlog/delay/batch accounting). */
    const OffchipQueue &queue() const { return queue_; }

    /** Requests enqueued or in flight whose correction has not landed. */
    size_t pending() const { return waiting_count() + inflight_.size(); }

    /**
     * Scheduled-mode enqueue-to-landing delays, recorded service-side
     * because the counting queue's FIFO delay groups no longer match
     * individual requests once a discipline re-orders service. Under
     * `FifoScheduler` this is bin-for-bin equal to
     * `queue().delay_histogram()` (pinned in tests). Empty on the
     * legacy path.
     */
    const CountHistogram &delay_histogram() const { return delay_; }

    /** Scheduled-mode landings past their lane deadline. */
    uint64_t deadline_misses() const { return deadline_misses_; }

    /** Corrections actually delivered to owners (excludes dropped,
     * stale, synthetic; counts each landing once — duplicates extra). */
    uint64_t delivered() const { return delivered_; }

    /** Deliveries lost to the fault plan's drop clause. */
    uint64_t dropped() const { return dropped_; }

    /** Extra deliveries injected by the duplicate clause. */
    uint64_t duplicated() const { return duplicated_; }

    /** Deliveries whose correction landed with a flipped byte. */
    uint64_t corrupted() const { return corrupted_; }

    /** Requests shed past deadline (admission control). */
    uint64_t shed_requests() const { return shed_; }

    /** Requests canceled by owner give-ups (timeouts). */
    uint64_t canceled() const { return canceled_; }

    /** Landed corrections discarded as stale after a give-up. */
    uint64_t stale_discards() const { return stale_discards_; }

    /** Synthetic surge requests enqueued / swallowed at landing. */
    uint64_t surge_enqueued() const { return surge_enqueued_; }
    uint64_t surge_landed() const { return surge_landed_; }

    /** Scheduled-mode per-tenant accounting, indexed by owner. */
    const std::vector<TenantLinkStats> &tenant_stats() const
    {
        return tenant_stats_;
    }

    /**
     * Verify the shared-link contracts in place: the underlying
     * `OffchipQueue` audit, payload FIFOs in lockstep with the
     * counting FIFOs (waiting == backlog + fresh, in-flight counts
     * match), strictly increasing sequence numbers along the waiting
     * entries (arrival order), at most one outstanding request per
     * (owner, half) across waiting + in-flight — relaxed by the number
     * of stale give-up keys the half still has in flight — and the
     * resulting `pending() <= 2 * owners + synthetic + stale` backlog
     * bound (byte-exact with the legacy `2 * owners` bound when no
     * faults machinery is active). The fault ledger closes the
     * conservation generalization: every queue landing is exactly one
     * of delivered / dropped / stale-discarded / synthetic-swallowed
     * (landed == delivered + dropped + stale + surge_landed), and
     * every queue shed is deadline-shed or give-up-canceled
     * (shed_total == shed + canceled); with `OffchipQueue::audit`'s
     * enqueued == served + shed + backlog this pins "every request is
     * exactly one of served / shed / pending". With a scheduler
     * installed, additionally: the landing metadata FIFO tracks the
     * in-flight FIFO, and no waiting request has aged past the
     * discipline's `starvation_bound` (no starvation beyond the aging
     * bound). Runs automatically after every `step()` at
     * AuditLevel::Deep (enqueue additionally rejects double-enqueues
     * at AuditLevel::Basic); throws CheckFailure.
     */
    void audit() const;

  private:
    friend struct OffchipServiceTestPeer;  ///< test-only corruption hook

    /** Per-served-request landing metadata (scheduled mode only). */
    struct LandMeta
    {
        int owner = 0;
        uint64_t arrival_cycle = 0;
        uint64_t deadline_cycle = 0;
    };

    /** Decode chains of one registered extra code distance. */
    struct ExtraChains
    {
        int distance = 0;
        std::vector<TierChain> chains;  ///< per half, like chains_
    };

    /** Waiting entries regardless of mode (legacy FIFO or scheduled). */
    size_t waiting_count() const
    {
        return scheduler_ ? sched_waiting_.size() : waiting_.size();
    }

    const Request &waiting_at(size_t i) const
    {
        return scheduler_ ? sched_waiting_[i] : waiting_.at(i);
    }

    /** Chains serving `distance` (0 = the constructor code). */
    std::vector<TierChain> &chains_for(int distance);

    /** Pop the requests entering service this cycle, in serve order. */
    std::vector<Request> take_served(uint64_t count);

    /** Shed waiting requests past deadline; queue their nacks. */
    void shed_expired(uint64_t now);

    /** Outstanding stale give-up keys for (owner, half). */
    size_t stale_count(int owner, int half) const;

    /** Decode `served` (batched per distance/half/tier) into flight. */
    void serve_decode(std::vector<Request> served);

    TenantLinkStats &tenant_slot(int owner);

    OffchipQueue queue_;
    std::vector<TierChain> chains_;  ///< per half, indexed by error type
    TierChainConfig tiers_;          ///< for register_code
    int base_distance_ = 0;          ///< constructor code's distance
    std::vector<ExtraChains> extra_chains_;
    uint64_t fresh_ = 0;             ///< enqueued since the last step()
    uint64_t next_seq_ = 0;          ///< arrival stamp for Request::seq
    int owners_seen_ = 0;            ///< 1 + largest owner ever enqueued
    // Payload FIFOs in the same order as the queue's counting FIFOs:
    // the per-cycle served/landed counts say how many entries to move.
    HeadFifo<Request> waiting_;
    HeadFifo<Delivery> inflight_;
    std::vector<Delivery> landed_now_;
    // Scheduled mode (scheduler_ != nullptr): the waiting set lives in
    // a plain vector (arrival order) so picks can remove from the
    // middle, and landing metadata rides a FIFO parallel to inflight_.
    std::unique_ptr<FabricScheduler> scheduler_;
    std::vector<Request> sched_waiting_;
    HeadFifo<LandMeta> inflight_meta_;
    std::vector<TenantLane> lanes_;  ///< indexed by owner
    CountHistogram delay_;
    uint64_t deadline_misses_ = 0;
    uint64_t fifo_next_seq_ = 0;     ///< FIFO-lockstep audit cursor
    std::vector<TenantLinkStats> tenant_stats_;
    // Fault machinery (all inert — and every counter zero — until an
    // injector is installed, shedding enabled, or give_up called).
    std::unique_ptr<FaultInjector> injector_;
    bool shed_enabled_ = false;
    uint64_t landed_index_ = 0;      ///< monotone per-landing fault key
    /** (owner, half) keys whose next landing is a give-up leftover. */
    std::vector<std::pair<int, int>> stale_;
    std::vector<Delivery> shed_nacks_;  ///< nacks to append this step
    uint64_t delivered_ = 0;
    uint64_t dropped_ = 0;
    uint64_t duplicated_ = 0;
    uint64_t corrupted_ = 0;
    uint64_t shed_ = 0;
    uint64_t canceled_ = 0;
    uint64_t stale_discards_ = 0;
    uint64_t surge_enqueued_ = 0;
    uint64_t surge_landed_ = 0;
    uint64_t synthetic_pending_ = 0;
};

} // namespace btwc
