#pragma once

#include <cstdint>
#include <vector>

#include "common/fifo.hpp"
#include "core/offchip_queue.hpp"
#include "decoders/tier_chain.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Multi-tenant off-chip decode service: one latency-L bandwidth-B
 * link (`OffchipQueue`) shared by a whole fleet of `BtwcSystem`
 * pipelines (§5 of the paper -- the machine has *one*
 * fridge-to-room-temperature decoder, not one per logical qubit).
 *
 * Ownership inversion: a stand-alone `BtwcSystem` owns a private
 * queue and services it inside its own `step()`; under the shared
 * service the systems only *enqueue* tagged requests during their
 * step, and the fleet harness advances the link exactly once per
 * machine cycle via `step()`, after every tenant has stepped. Served
 * batches therefore mix requests from different qubits, which is what
 * makes `TierChain::decode_batch_from` amortization measurable at
 * fleet scale: within one qubit, batches are bounded by the
 * one-outstanding-request-per-half reconciliation contract
 * (core/system.hpp), but N qubits escalating in the same cycle share
 * one decoder invocation per lattice half.
 *
 * The service owns one `TierChain` per lattice half (indexed by error
 * type, like `BtwcSystem`'s frames): every tenant of one machine runs
 * the same code and chain configuration, and the chain's decoders are
 * deterministic pure functions of the events, so decoding a request
 * on the service-side chain is bit-identical to decoding it on the
 * owner's private chain. Oracle-policy requests carry their
 * correction in the payload and bypass the chains entirely.
 *
 * Scheduling is strict FIFO across owners. Combined with the
 * one-outstanding-request-per-half contract (no tenant can occupy
 * more than two link slots), this is round-robin fair: a narrow link
 * serves qubits in their escalation order and no tenant can starve
 * another (tested).
 *
 * With zero latency and unlimited bandwidth the shared service is
 * bit-exact with the private-queue path: corrections land within the
 * cycle that escalated them, after every tenant has stepped -- and
 * since tenants never read each other's frames mid-cycle, the
 * end-of-cycle machine state is identical (tested).
 */
class SharedOffchipService
{
  public:
    /** One tagged escalation from a tenant pipeline. */
    struct Request
    {
        int owner = 0;       ///< tenant (qubit) index, echoed in Delivery
        int half = 0;        ///< tenant's frames_/halves_ index (error type)
        int tier_index = 0;  ///< first off-chip tier (decode resume point)
        /**
         * True when `payload` already is the correction (the Oracle
         * policy's escalation-time error snapshot); false when it is
         * the filtered syndrome to decode when served.
         */
        bool oracle = false;
        std::vector<uint8_t> payload;
        /**
         * Link-wide FIFO sequence number, assigned by `enqueue` (any
         * caller-provided value is overwritten). The audit tier uses
         * it to prove served order == arrival order across owners.
         */
        uint64_t seq = 0;
    };

    /** A correction routed back to its owning tenant half. */
    struct Delivery
    {
        int owner = 0;
        int half = 0;
        std::vector<uint8_t> correction;  ///< per-data-qubit flip mask
    };

    SharedOffchipService(const RotatedSurfaceCode &code,
                         const TierChainConfig &tiers,
                         OffchipQueueConfig link);

    /**
     * Add one escalation to the current cycle's fresh demand. Tenants
     * call this from inside their `step()`; the request waits for
     * link capacity behind every earlier request from any tenant.
     */
    void enqueue(Request request);

    /**
     * Advance the link one machine cycle: enqueue the fresh demand
     * accumulated since the previous step, serve up to `bandwidth`
     * waiting requests (decoding non-oracle ones batched per half
     * across owners), and return every correction whose latency
     * elapsed, in FIFO order. The caller routes each Delivery to
     * `BtwcSystem::deliver_offchip_correction` on the owning tenant.
     * The returned reference is valid until the next `step()`.
     */
    const std::vector<Delivery> &step();

    /** The underlying link (stall/backlog/delay/batch accounting). */
    const OffchipQueue &queue() const { return queue_; }

    /** Requests enqueued or in flight whose correction has not landed. */
    size_t pending() const { return waiting_.size() + inflight_.size(); }

    /**
     * Verify the shared-link contracts in place: the underlying
     * `OffchipQueue` audit, payload FIFOs in lockstep with the
     * counting FIFOs (waiting == backlog + fresh, in-flight counts
     * match), strictly increasing sequence numbers along the waiting
     * FIFO (FIFO across owners), at most one outstanding request per
     * (owner, half) across waiting + in-flight, and the resulting
     * `pending() <= 2 * owners` backlog bound. Runs automatically
     * after every `step()` at AuditLevel::Deep (enqueue additionally
     * rejects double-enqueues at AuditLevel::Basic); throws
     * CheckFailure.
     */
    void audit() const;

  private:
    friend struct OffchipServiceTestPeer;  ///< test-only corruption hook

    OffchipQueue queue_;
    std::vector<TierChain> chains_;  ///< per half, indexed by error type
    uint64_t fresh_ = 0;             ///< enqueued since the last step()
    uint64_t next_seq_ = 0;          ///< arrival stamp for Request::seq
    int owners_seen_ = 0;            ///< 1 + largest owner ever enqueued
    // Payload FIFOs in the same order as the queue's counting FIFOs:
    // the per-cycle served/landed counts say how many entries to move.
    HeadFifo<Request> waiting_;
    HeadFifo<Delivery> inflight_;
    std::vector<Delivery> landed_now_;
};

} // namespace btwc
