#pragma once

#include <cstdint>
#include <limits>

namespace btwc {

/**
 * Relative execution-time increase of a stalled run: stall cycles per
 * work cycle (the paper's Fig. 16 x-axis). An all-stall run — stalls
 * recorded but zero work cycles — is an infinite slowdown, not a free
 * one, so it saturates to +inf instead of reading as 0.
 */
inline double
stall_execution_time_increase(uint64_t stall_cycles, uint64_t work_cycles)
{
    if (work_cycles == 0) {
        return stall_cycles == 0
                   ? 0.0
                   : std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(stall_cycles) /
           static_cast<double>(work_cycles);
}

/**
 * Decode-overflow execution stalling (§5.2 of the paper).
 *
 * Models the off-chip decode queue of a multi-logical-qubit machine
 * with a fixed provisioned bandwidth B (decodes per cycle). When the
 * pending demand of a cycle (fresh requests plus carryover from
 * previous overflows) exceeds B, the next cycle must be a stall cycle:
 * the waveform generator issues identity gates (Fig. 10), no program
 * progress is made, but qubits keep decohering, so fresh errors (and
 * fresh off-chip requests) still arrive during the stall.
 */
class StallController
{
  public:
    /** @param bandwidth provisioned off-chip decodes per cycle (>= 1) */
    explicit StallController(uint64_t bandwidth)
        : bandwidth_(bandwidth ? bandwidth : 1)
    {
    }

    /** Whether the *upcoming* cycle is a stall (no program progress). */
    bool stall_pending() const { return stall_next_; }

    /**
     * Advance one cycle.
     *
     * @param new_requests off-chip decode requests generated this cycle
     * @return true when the cycle made program progress (not a stall)
     */
    bool step(uint64_t new_requests)
    {
        const bool was_stall = stall_next_;
        ++total_cycles_;
        if (was_stall) {
            ++stall_cycles_;
        } else {
            ++work_cycles_;
        }
        const uint64_t demand = backlog_ + new_requests;
        const uint64_t served = demand < bandwidth_ ? demand : bandwidth_;
        backlog_ = demand - served;
        served_ += served;
        stall_next_ = backlog_ > 0;
        max_backlog_ = backlog_ > max_backlog_ ? backlog_ : max_backlog_;
        return !was_stall;
    }

    /** Provisioned bandwidth in decodes per cycle. */
    uint64_t bandwidth() const { return bandwidth_; }

    /** Cycles elapsed. */
    uint64_t total_cycles() const { return total_cycles_; }

    /** Cycles that made program progress. */
    uint64_t work_cycles() const { return work_cycles_; }

    /** Cycles spent stalled. */
    uint64_t stall_cycles() const { return stall_cycles_; }

    /** Requests still queued. */
    uint64_t backlog() const { return backlog_; }

    /** Largest backlog ever observed. */
    uint64_t max_backlog() const { return max_backlog_; }

    /** Total decodes shipped off-chip. */
    uint64_t served() const { return served_; }

    /**
     * Relative execution-time increase caused by stalling:
     * stall_cycles / work_cycles (the paper's Fig. 16 x-axis); +inf
     * for an all-stall run (see `stall_execution_time_increase`).
     */
    double execution_time_increase() const
    {
        return stall_execution_time_increase(stall_cycles_, work_cycles_);
    }

  private:
    uint64_t bandwidth_;
    uint64_t backlog_ = 0;
    uint64_t total_cycles_ = 0;
    uint64_t work_cycles_ = 0;
    uint64_t stall_cycles_ = 0;
    uint64_t max_backlog_ = 0;
    uint64_t served_ = 0;
    bool stall_next_ = false;
};

} // namespace btwc
