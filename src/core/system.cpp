#include "core/system.hpp"

namespace btwc {

BtwcSystem::BtwcSystem(const RotatedSurfaceCode &code, NoiseParams noise,
                       SystemConfig config, uint64_t seed)
    : code_(code), noise_(noise), config_(config), rng_(seed)
{
    const CheckType error_types[2] = {CheckType::X, CheckType::Z};
    for (const CheckType err : error_types) {
        frames_.emplace_back(code_, err);
        halves_.emplace_back(code_, detector_of_error(err),
                             config_.filter_rounds);
    }
}

CycleReport
BtwcSystem::step()
{
    CycleReport report;
    const int num_types = config_.track_both_types ? 2 : 1;

    // Phase 1: noise injection + noisy measurement + filtering +
    // Clique classification for each half.
    CliqueOutcome outcomes[2];
    for (int t = 0; t < num_types; ++t) {
        ErrorFrame &frame = frames_[t];
        Half &half = halves_[t];
        frame.inject(noise_.p_data, rng_);
        frame.measure(noise_.p_meas, rng_, half.raw);
        for (const uint8_t bit : half.raw) {
            report.raw_weight += bit & 1;
        }
        const std::vector<uint8_t> &filtered = half.filter.push(half.raw);
        outcomes[t] = half.clique.decode(filtered);
        report.type_verdict[static_cast<int>(frame.detector())] =
            outcomes[t].verdict;
    }

    // Combined verdict over both halves: the logical qubit's syndrome
    // goes off-chip when either half raises the COMPLEX flag.
    report.verdict = CliqueVerdict::AllZeros;
    for (int t = 0; t < num_types; ++t) {
        if (outcomes[t].verdict == CliqueVerdict::Complex) {
            report.verdict = CliqueVerdict::Complex;
        } else if (outcomes[t].verdict == CliqueVerdict::Trivial &&
                   report.verdict == CliqueVerdict::AllZeros) {
            report.verdict = CliqueVerdict::Trivial;
        }
    }
    report.offchip = report.verdict == CliqueVerdict::Complex;

    // Phase 2: apply corrections. Trivial halves are corrected on-chip
    // by Clique; complex halves are resolved off-chip.
    for (int t = 0; t < num_types; ++t) {
        ErrorFrame &frame = frames_[t];
        Half &half = halves_[t];
        switch (outcomes[t].verdict) {
          case CliqueVerdict::AllZeros:
            break;
          case CliqueVerdict::Trivial:
            frame.apply(outcomes[t].corrections);
            report.clique_corrections +=
                static_cast<int>(outcomes[t].corrections.size());
            break;
          case CliqueVerdict::Complex:
            if (config_.offchip == OffchipPolicy::Oracle) {
                frame.reset();
            } else {
                const MwpmDecoder::Result fix =
                    half.mwpm.decode_syndrome(half.filter.filtered());
                frame.apply_mask(fix.correction);
            }
            break;
        }
    }

    ++cycles_;
    return report;
}

} // namespace btwc
