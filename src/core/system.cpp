#include "core/system.hpp"

#include "common/check.hpp"

namespace btwc {

CliqueVerdict
classify_decode(const TierChain::Result &outcome)
{
    if (outcome.decode.defects == 0) {
        return CliqueVerdict::AllZeros;
    }
    if (outcome.tier_index == 0 && outcome.resolved) {
        return CliqueVerdict::Trivial;
    }
    return CliqueVerdict::Complex;
}

BtwcSystem::BtwcSystem(const RotatedSurfaceCode &code, NoiseParams noise,
                       SystemConfig config, uint64_t seed)
    : code_(code), noise_(noise), config_(std::move(config)), rng_(seed),
      queue_(OffchipQueueConfig{config_.offchip_bandwidth,
                                config_.offchip_latency,
                                config_.offchip_batch})
{
    const CheckType error_types[2] = {CheckType::X, CheckType::Z};
    for (const CheckType err : error_types) {
        frames_.emplace_back(code_, err);
        halves_.emplace_back(code_, detector_of_error(err), config_);
    }
}

CycleReport
BtwcSystem::step()
{
    CycleReport report;
    const int num_types = config_.track_both_types ? 2 : 1;
    const bool queued = config_.service == OffchipService::Queued;

    // Phase 0 (graceful degradation, shared tenants only): time out
    // halves whose off-chip request has been outstanding past the
    // backoff-scaled budget. The give-up frees the half; with retries
    // left the persisting signature re-escalates naturally in phase 2
    // (that re-enqueue *is* the retry), otherwise the on-chip UF
    // fallback resolves the half right now instead of waiting on a
    // dead link — a degraded decode, weaker than the off-chip tier
    // but bounded in time.
    if (shared_ != nullptr && config_.offchip_timeout > 0) {
        for (int t = 0; t < num_types; ++t) {
            if (!half_busy_[t]) {
                continue;
            }
            const uint64_t waited = cycles_ - half_busy_since_[t];
            const int shift =
                half_retries_[t] < 6 ? half_retries_[t] : 6;
            if (waited < (config_.offchip_timeout << shift)) {
                continue;
            }
            shared_->give_up(owner_, t);
            half_busy_[t] = false;
            if (half_retries_[t] < config_.offchip_retries) {
                ++half_retries_[t];
                ++retried_;
                ++report.retried;
                continue;
            }
            Half &half = halves_[t];
            half.fallback->decode_packed(half.filter.filtered(),
                                         half.fallback_result);
            frames_[t].apply_mask(half.fallback_result.correction);
            half_retries_[t] = 0;
            ++degraded_;
            ++report.degraded;
        }
    }

    // Off-chip tiers never run inside phase 1: under the Queued
    // service their input is enqueued and decoded when served, and
    // under the Inline Oracle policy the true error state is cleared
    // instead. Only the Inline Mwpm policy decodes off-chip tiers
    // synchronously here. On-chip tiers (Clique, a configured
    // Union-Find mid-tier) always run for real.
    TierChain::Options chain_options;
    chain_options.stop_before_offchip =
        queued || config_.offchip == OffchipPolicy::Oracle;

    // Phase 1: noise injection + noisy measurement + filtering + tier
    // chain classification for each half — all on the packed fast
    // path, so steady-state cycles allocate nothing here.
    for (int t = 0; t < num_types; ++t) {
        ErrorFrame &frame = frames_[t];
        Half &half = halves_[t];
        frame.inject(noise_.p_data, rng_);
        frame.measure_packed(noise_.p_meas, rng_, half.raw);
        report.raw_weight += half.raw.popcount();
        const PackedSyndrome &filtered = half.filter.push(half.raw);
        half.chain.decode_syndrome(filtered, chain_options, half.outcome);

        const int detector = static_cast<int>(frame.detector());
        report.type_verdict[detector] = classify_decode(half.outcome);
        report.tier_used[detector] = half.outcome.tier;
        report.type_offchip[detector] = half.outcome.offchip;
    }

    // Combined verdict over both halves: the logical qubit's syndrome
    // leaves the chip when either half consulted an off-chip tier.
    report.verdict = CliqueVerdict::AllZeros;
    for (int t = 0; t < num_types; ++t) {
        const int detector = static_cast<int>(frames_[t].detector());
        const CliqueVerdict verdict = report.type_verdict[detector];
        if (verdict == CliqueVerdict::Complex) {
            report.verdict = CliqueVerdict::Complex;
        } else if (verdict == CliqueVerdict::Trivial &&
                   report.verdict == CliqueVerdict::AllZeros) {
            report.verdict = CliqueVerdict::Trivial;
        }
        report.offchip |= halves_[t].outcome.offchip;
    }

    // Phase 2: apply on-chip corrections and hand escalations to the
    // off-chip transport. Halves resolved by an on-chip tier (or by a
    // synchronous Inline off-chip decode) apply that tier's
    // correction; escalated halves either enqueue (Queued) or resolve
    // immediately (Inline: oracle reset).
    uint64_t fresh = 0;
    for (int t = 0; t < num_types; ++t) {
        ErrorFrame &frame = frames_[t];
        TierChain::Result &outcome = halves_[t].outcome;
        if (outcome.decode.defects == 0) {
            continue;
        }
        if (outcome.resolved) {
            if (queued && half_busy_[t]) {
                // The half's off-chip request is still in flight, and
                // its signature is folded into this cycle's (the
                // escalated errors are still on the lattice). Applying
                // an on-chip correction now would make the landing
                // correction stale -- it would XOR already-fixed
                // errors back on. Defer: between enqueue and landing
                // the only frame changes are fresh noise, so the
                // landing removes exactly the escalation-time
                // component and the residual re-decodes normally.
                ++suppressed_;
                ++report.suppressed;
                continue;
            }
            frame.apply_mask(outcome.decode.correction);
            if (outcome.tier_index == 0) {
                // Clique emits each corrected qubit once, so the
                // decode weight is the mask popcount.
                report.clique_corrections +=
                    static_cast<int>(outcome.decode.weight);
            }
        } else if (outcome.offchip && !queued) {
            if (chain_options.stop_before_offchip) {
                frame.reset();  // oracle stands in for the off-chip tier
            }
            // Inline Mwpm with a declining off-chip tier: fall through
            // to the persist-and-re-escalate comment below.
        } else if (outcome.offchip) {
            if (half_busy_[t]) {
                // Reconciliation: the half's previous request is
                // still in flight; this signature is absorbed into
                // the residual that re-escalates after the landing.
                ++suppressed_;
                ++report.suppressed;
            } else if (shared_ != nullptr) {
                // Shared-link tenancy: tag the request and hand it to
                // the fleet's service; the link advances once per
                // machine cycle in the harness, not here.
                SharedOffchipService::Request request;
                request.owner = owner_;
                request.half = t;
                request.tier_index = outcome.tier_index;
                request.distance = code_.distance();
                request.oracle = config_.offchip == OffchipPolicy::Oracle;
                if (request.oracle) {
                    request.payload = frame.error();
                } else {
                    halves_[t].filter.filtered().to_bytes(request.payload);
                }
                shared_->enqueue(std::move(request));
                half_busy_[t] = true;
                half_busy_since_[t] = cycles_;
                ++report.queued;
            } else {
                PendingDecode request;
                request.half = t;
                request.tier_index = outcome.tier_index;
                if (config_.offchip == OffchipPolicy::Oracle) {
                    request.payload = frame.error();
                } else {
                    halves_[t].filter.filtered().to_bytes(request.payload);
                }
                waiting_.push_back(std::move(request));
                half_busy_[t] = true;
                ++fresh;
                ++report.queued;
            }
        }
        // Otherwise the chain's final tier declined (a degenerate
        // chain with no resolver for this signature, e.g. Clique
        // alone): the error persists and re-escalates next cycle --
        // no silent oracle fix under a real-decode policy.
    }

    // Phase 3: advance the off-chip service one cycle -- serve queued
    // escalations (batched per decoder) and apply every correction
    // whose latency elapsed. With the default zero-latency unlimited-
    // bandwidth link this lands this cycle's own corrections, which
    // reproduces the synchronous model bit-for-bit. A shared-link
    // tenant skips this: the fleet harness steps the shared service
    // once per machine cycle after every tenant stepped, and landed
    // corrections arrive via deliver_offchip_correction.
    if (queued && shared_ == nullptr) {
        service_offchip(fresh, report);
    }

    ++cycles_;
    if (audit_deep()) {
        audit_offchip_state();
    }
    return report;
}

void
BtwcSystem::audit_offchip_state() const
{
    for (const Half &half : halves_) {
        half.raw.audit();
        half.filter.filtered().audit();
    }
    if (config_.service != OffchipService::Queued) {
        return;
    }
    if (shared_ != nullptr) {
        // Shared-link tenancy: payloads live on the service (audited
        // there); locally only the busy flags track outstanding work.
        return;
    }
    queue_.audit();
    BTWC_CHECK_MSG(waiting_.size() == queue_.backlog(),
                   "payload waiting FIFO tracks the counting queue");
    BTWC_CHECK_MSG(inflight_.size() == queue_.in_flight(),
                   "payload in-flight FIFO tracks the counting queue");
    BTWC_CHECK_MSG(waiting_.size() + inflight_.size() <= 2,
                   "the one-request-per-half contract bounds pending "
                   "work at two entries");
    int outstanding[2] = {0, 0};
    for (size_t i = 0; i < waiting_.size(); ++i) {
        const int half = waiting_.at(i).half;
        BTWC_CHECK(half == 0 || half == 1);
        ++outstanding[half];
    }
    for (size_t i = 0; i < inflight_.size(); ++i) {
        const int half = inflight_.at(i).half;
        BTWC_CHECK(half == 0 || half == 1);
        ++outstanding[half];
    }
    for (int half = 0; half < 2; ++half) {
        BTWC_CHECK_MSG(outstanding[half] <= 1,
                       "at most one outstanding request per half");
        BTWC_CHECK_MSG((outstanding[half] == 1) == half_busy_[half],
                       "half_busy_ mirrors the outstanding request");
    }
}

void
BtwcSystem::attach_shared_service(SharedOffchipService *service, int owner)
{
    shared_ = service;
    owner_ = owner;
}

void
BtwcSystem::deliver_offchip_correction(
    int half, const std::vector<uint8_t> &correction)
{
    if (!half_busy_[half]) {
        // Nothing outstanding: a fault-plan duplicate of a correction
        // this half already consumed. On the healthy path halves are
        // always busy when a delivery arrives, so this never fires.
        ++duplicate_drops_;
        return;
    }
    half_busy_[half] = false;
    if (correction.empty()) {
        // Admission-control nack: the link shed the request past its
        // deadline. The half is free again and its persisting
        // signature re-escalates (or degrades) on the next cycle.
        ++shared_nacks_;
        half_retries_[half] = 0;
        return;
    }
    frames_[static_cast<size_t>(half)].apply_mask(correction);
    half_retries_[half] = 0;
    ++shared_landed_;
}

void
BtwcSystem::service_offchip(uint64_t fresh, CycleReport &report)
{
    const OffchipQueue::StepResult sr = queue_.step(fresh);

    // Serve: pop the requests entering service this cycle (FIFO) and
    // decode them, grouped per half through that half's
    // decode_batch_from path. Within one logical qubit the
    // one-outstanding-request-per-half contract bounds each group at
    // a single request -- real multi-request batches need a service
    // shared across qubits (see ROADMAP) -- but routing through the
    // batched API here means such a service amortizes for free.
    // Results enter the in-flight FIFO in the original serve order,
    // matching the queue's landing order.
    if (sr.served > 0) {
        std::vector<PendingDecode> served;
        served.reserve(sr.served);
        for (uint64_t i = 0; i < sr.served; ++i) {
            served.push_back(waiting_.pop_front());
        }
        std::vector<std::vector<uint8_t>> corrections(served.size());
        for (size_t h = 0; h < halves_.size(); ++h) {
            std::vector<size_t> members;
            for (size_t i = 0; i < served.size(); ++i) {
                if (served[i].half == static_cast<int>(h)) {
                    members.push_back(i);
                }
            }
            if (members.empty()) {
                continue;
            }
            if (config_.offchip == OffchipPolicy::Oracle) {
                // The payload already is the oracle's "correction":
                // the escalation-time error state.
                for (const size_t i : members) {
                    corrections[i] = std::move(served[i].payload);
                }
                continue;
            }
            std::vector<std::vector<DetectionEvent>> batch;
            batch.reserve(members.size());
            for (const size_t i : members) {
                batch.push_back(
                    events_from_syndrome(served[i].payload));
            }
            std::vector<TierChain::Result> results =
                halves_[h].chain.decode_batch_from(
                    static_cast<size_t>(served[members[0]].tier_index),
                    batch, 1);
            for (size_t i = 0; i < members.size(); ++i) {
                corrections[members[i]] =
                    std::move(results[i].decode.correction);
            }
        }
        for (size_t i = 0; i < served.size(); ++i) {
            inflight_.push_back(InflightCorrection{
                served[i].half, std::move(corrections[i])});
        }
    }

    // Land: apply every correction whose latency elapsed and free the
    // half for its next escalation.
    for (uint64_t i = 0; i < sr.landed; ++i) {
        const InflightCorrection landing = inflight_.pop_front();
        frames_[landing.half].apply_mask(landing.correction);
        half_busy_[landing.half] = false;
        ++report.landed;
    }
    report.queue_backlog = queue_.backlog();
}

} // namespace btwc
