#include "core/system.hpp"

namespace btwc {

BtwcSystem::BtwcSystem(const RotatedSurfaceCode &code, NoiseParams noise,
                       SystemConfig config, uint64_t seed)
    : code_(code), noise_(noise), config_(std::move(config)), rng_(seed)
{
    const CheckType error_types[2] = {CheckType::X, CheckType::Z};
    for (const CheckType err : error_types) {
        frames_.emplace_back(code_, err);
        halves_.emplace_back(code_, detector_of_error(err), config_);
    }
}

CycleReport
BtwcSystem::step()
{
    CycleReport report;
    const int num_types = config_.track_both_types ? 2 : 1;

    // Under the Oracle policy off-chip tiers never actually run: the
    // chain stops in front of them and the true error state is cleared
    // instead. On-chip tiers (Clique, a configured Union-Find
    // mid-tier) always run for real.
    TierChain::Options chain_options;
    chain_options.stop_before_offchip =
        config_.offchip == OffchipPolicy::Oracle;

    // Phase 1: noise injection + noisy measurement + filtering + tier
    // chain classification for each half.
    TierChain::Result outcomes[2];
    for (int t = 0; t < num_types; ++t) {
        ErrorFrame &frame = frames_[t];
        Half &half = halves_[t];
        frame.inject(noise_.p_data, rng_);
        frame.measure(noise_.p_meas, rng_, half.raw);
        for (const uint8_t bit : half.raw) {
            report.raw_weight += bit & 1;
        }
        const std::vector<uint8_t> &filtered = half.filter.push(half.raw);
        outcomes[t] = half.chain.decode_syndrome(filtered, chain_options);

        // Tier-0 classification, the Clique-verdict contract of the
        // paper: nothing fired / resolved locally / escalated. It is
        // identical for every chain sharing the same tier 0, deeper
        // tiers only change who pays for the COMPLEX signatures.
        CliqueVerdict verdict;
        if (outcomes[t].decode.defects == 0) {
            verdict = CliqueVerdict::AllZeros;
        } else if (outcomes[t].tier_index == 0 && outcomes[t].resolved) {
            verdict = CliqueVerdict::Trivial;
        } else {
            verdict = CliqueVerdict::Complex;
        }
        const int detector = static_cast<int>(frame.detector());
        report.type_verdict[detector] = verdict;
        report.tier_used[detector] = outcomes[t].tier;
        report.type_offchip[detector] = outcomes[t].offchip;
    }

    // Combined verdict over both halves: the logical qubit's syndrome
    // leaves the chip when either half consulted an off-chip tier.
    report.verdict = CliqueVerdict::AllZeros;
    for (int t = 0; t < num_types; ++t) {
        const int detector = static_cast<int>(frames_[t].detector());
        const CliqueVerdict verdict = report.type_verdict[detector];
        if (verdict == CliqueVerdict::Complex) {
            report.verdict = CliqueVerdict::Complex;
        } else if (verdict == CliqueVerdict::Trivial &&
                   report.verdict == CliqueVerdict::AllZeros) {
            report.verdict = CliqueVerdict::Trivial;
        }
        report.offchip |= outcomes[t].offchip;
    }

    // Phase 2: apply corrections. Halves resolved by an on-chip tier
    // (or by a real off-chip decode) apply that tier's correction;
    // oracle-substituted halves clear the true error state.
    for (int t = 0; t < num_types; ++t) {
        ErrorFrame &frame = frames_[t];
        TierChain::Result &outcome = outcomes[t];
        if (outcome.decode.defects == 0) {
            continue;
        }
        if (outcome.resolved) {
            frame.apply_mask(outcome.decode.correction);
            if (outcome.tier_index == 0) {
                // Clique emits each corrected qubit once, so the
                // decode weight is the mask popcount.
                report.clique_corrections +=
                    static_cast<int>(outcome.decode.weight);
            }
        } else if (chain_options.stop_before_offchip && outcome.offchip) {
            frame.reset();  // oracle stands in for the off-chip tier
        }
        // Otherwise the chain's final tier declined (a degenerate
        // chain with no resolver for this signature, e.g. Clique
        // alone): the error persists and re-escalates next cycle --
        // no silent oracle fix under a real-decode policy.
    }

    ++cycles_;
    return report;
}

} // namespace btwc
