#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/fifo.hpp"
#include "common/rng.hpp"
#include "core/clique.hpp"
#include "core/filter.hpp"
#include "core/offchip_queue.hpp"
#include "core/offchip_service.hpp"
#include "decoders/tier_chain.hpp"
#include "matching/union_find.hpp"
#include "surface/frame.hpp"
#include "surface/lattice.hpp"
#include "surface/noise.hpp"

namespace btwc {

/**
 * How the rare off-chip decodes are resolved inside the lifetime
 * simulator.
 *
 * `Mwpm` feeds the two-round-agreed (filtered) syndrome to the
 * chain's off-chip tiers, exactly the hand-over the paper describes.
 * `Oracle` clears the true error state instead of running an off-chip
 * tier; it is statistically indistinguishable for the
 * distribution/coverage/bandwidth metrics (validated by the test
 * suite) and orders of magnitude faster at the d = 81 configurations
 * of Fig. 4. On-chip tiers (Clique, and a Union-Find mid-tier when
 * configured) always really run.
 */
enum class OffchipPolicy : uint8_t { Oracle = 0, Mwpm = 1 };

/**
 * How escalated signatures reach the off-chip tier.
 *
 * `Queued` (the default) models the paper's actual machine: escalated
 * signatures are enqueued on a latency/bandwidth-limited link
 * (core/offchip_queue.hpp) and their corrections land cycles later.
 * With the default zero-latency unlimited-bandwidth service it
 * reproduces the synchronous results bit-for-bit (tested). `Inline`
 * is the historical synchronous model — escalations resolve within
 * their own cycle — kept as the bit-exactness reference and as an
 * escape hatch for harnesses that cannot tolerate queue state.
 */
enum class OffchipService : uint8_t { Queued = 0, Inline = 1 };

/** Configuration of a single-logical-qubit BTWC pipeline. */
struct SystemConfig
{
    int filter_rounds = 2;                       ///< Fig. 7 window
    OffchipPolicy offchip = OffchipPolicy::Oracle;
    bool track_both_types = true;                ///< decode X and Z halves
    /**
     * The decode hierarchy each half runs (tier 0 first). The default
     * is the paper's two-tier Clique -> MWPM architecture; §8.1-style
     * deeper chains (e.g. TierChainConfig::deep()) slot a Union-Find
     * mid-tier in between, and arbitrary chains come from the CLI via
     * TierChainConfig::parse.
     */
    TierChainConfig tiers = TierChainConfig::legacy();
    /** Escalation transport; see OffchipService. */
    OffchipService service = OffchipService::Queued;
    /**
     * Off-chip link model (Queued service only): round-trip decode
     * latency in cycles, served decodes per cycle (0 = unlimited) and
     * the link-batch grouping cap (OffchipQueueConfig::max_batch;
     * within one logical qubit actual decode_batch calls are bounded
     * by the one-outstanding-request-per-half contract). The defaults
     * reproduce the synchronous model exactly.
     */
    uint64_t offchip_latency = 0;
    uint64_t offchip_bandwidth = 0;
    uint64_t offchip_batch = 0;
    /**
     * Graceful degradation under link faults (shared-link tenants
     * only; 0 disables it, the bit-exact default). A half whose
     * off-chip request has been outstanding for `offchip_timeout`
     * cycles gives the request up (core/offchip_service.hpp) and
     * either re-escalates — up to `offchip_retries` times per
     * signature, each retry doubling the timeout budget (exponential
     * backoff) — or, with retries exhausted, decodes the half's
     * current filtered syndrome on an on-chip Union-Find fallback
     * instead of waiting on a dead link (a `degraded` decode).
     */
    uint64_t offchip_timeout = 0;
    int offchip_retries = 0;
};

/** What happened in one cycle of a BTWC pipeline. */
struct CycleReport
{
    /** Combined verdict: Complex dominates, then Trivial, then AllZeros. */
    CliqueVerdict verdict = CliqueVerdict::AllZeros;
    /** Verdict of each half (indexed by CheckType of the detector). */
    CliqueVerdict type_verdict[2] = {CliqueVerdict::AllZeros,
                                     CliqueVerdict::AllZeros};
    /**
     * Deepest tier consulted by each half (indexed like type_verdict).
     * Equals the tier that produced the correction, except under the
     * Oracle policy where it names the off-chip tier the oracle stood
     * in for.
     */
    DecoderTier tier_used[2] = {DecoderTier::Clique, DecoderTier::Clique};
    /** Whether each half's decode consulted an off-chip tier. */
    bool type_offchip[2] = {false, false};
    /** True when the cycle's syndrome had to go off-chip. */
    bool offchip = false;
    /** Fired bits in the cycle's raw syndrome, both halves (AFS input). */
    int raw_weight = 0;
    /** On-chip corrections applied by Clique this cycle. */
    int clique_corrections = 0;
    /** Escalations enqueued on the off-chip service this cycle. */
    int queued = 0;
    /** Queued corrections that landed (were applied) this cycle. */
    int landed = 0;
    /**
     * Decodes deferred to an already-outstanding request of the same
     * half (see BtwcSystem's reconciliation contract): off-chip
     * classifications absorbed rather than re-enqueued, and on-chip
     * resolutions held back rather than applied (either would make
     * the in-flight correction stale).
     */
    int suppressed = 0;
    /** Requests still waiting for link capacity after this cycle. */
    uint64_t queue_backlog = 0;
    /** Timed-out requests given up and re-escalated (backoff). */
    int retried = 0;
    /** Timed-out halves resolved by the on-chip UF fallback. */
    int degraded = 0;
};

/**
 * Tier-0 classification of one hierarchical decode, the Clique-verdict
 * contract of the paper: nothing fired / resolved locally by tier 0 /
 * escalated. Identical for every chain sharing the same tier 0 --
 * deeper tiers only change who pays for the COMPLEX signatures.
 * Shared by the closed-loop pipeline (BtwcSystem::step) and the
 * open-loop Signature-mode sampler (sim/lifetime.cpp) so the two
 * modes can never desynchronize on this mapping.
 */
CliqueVerdict classify_decode(const TierChain::Result &outcome);

/**
 * The full BTWC decode pipeline of one logical qubit (Fig. 2):
 * phenomenological noise -> noisy syndrome measurement -> multi-round
 * measurement filter -> configurable decoder tier chain (Clique
 * first, rare escalation to Union-Find and/or off-chip matching).
 *
 * `step()` advances one code cycle and reports the classification the
 * bandwidth allocator consumes. Under the default `Queued` service,
 * escalated signatures are enqueued on the off-chip link
 * (core/offchip_queue.hpp) and their corrections land
 * `offchip_latency` cycles later, persisting through the filter
 * window; intervening errors stay on the lattice and re-escalate
 * after the landing, which is how late corrections are reconciled
 * against syndromes that changed in flight.
 *
 * Reconciliation contract: each half has at most one outstanding
 * off-chip request, and while it is in flight the half applies no
 * corrections at all. A signature classified off-chip in that window
 * is *absorbed* (counted in `CycleReport::suppressed`): its errors
 * remain on the lattice, the landing correction removes the
 * escalation-time component, and the residual re-escalates as a
 * fresh request. A signature an on-chip tier could resolve in that
 * window is *deferred* (also counted as suppressed): the escalated
 * errors are folded into it, so correcting it now would leave the
 * landing correction stale and XOR already-fixed errors back on.
 * Either shortcut -- re-sending the stale syndrome every cycle, or
 * applying overlapping corrections from both paths -- would
 * double-correct and oscillate.
 *
 * The bandwidth/stall machinery lives in `core/bandwidth.hpp` /
 * `core/stall.hpp` / `core/offchip_queue.hpp` and the multi-qubit
 * machine model in `sim/fleet.hpp`.
 */
class BtwcSystem
{
  public:
    BtwcSystem(const RotatedSurfaceCode &code, NoiseParams noise,
               SystemConfig config, uint64_t seed);

    /** Advance one noisy cycle through the full pipeline. */
    CycleReport step();

    /**
     * Become tenant `owner` of a shared multi-tenant off-chip link
     * (core/offchip_service.hpp): escalations are enqueued on
     * `service` tagged with `owner` instead of on the private queue,
     * and phase 3 is skipped -- the fleet harness advances the shared
     * link once per machine cycle (after every tenant stepped) and
     * routes landed corrections back via
     * `deliver_offchip_correction`. The private `offchip_queue()`
     * stays idle; link accounting lives on the service. Only
     * meaningful under the Queued service, before the first step.
     * With a zero-latency unlimited-bandwidth shared link the cycle
     * statistics are bit-exact with the private-queue path (tested).
     */
    void attach_shared_service(SharedOffchipService *service, int owner);

    /**
     * Apply a correction the shared service routed back to `half`
     * (error-type index) and free that half for its next escalation.
     * Counterpart of the private path's landing step; the
     * reconciliation contract (one outstanding request per half, no
     * corrections while in flight) is identical.
     */
    void deliver_offchip_correction(int half,
                                    const std::vector<uint8_t> &correction);

    /** Number of cycles executed. */
    uint64_t cycles() const { return cycles_; }

    /** The underlying code. */
    const RotatedSurfaceCode &code() const { return code_; }

    /** Error frame of one half (by *error* type). */
    const ErrorFrame &frame(CheckType error_type) const
    {
        return frames_[static_cast<int>(error_type)];
    }

    /** Active configuration. */
    const SystemConfig &config() const { return config_; }

    /** The off-chip service queue (Queued service accounting). */
    const OffchipQueue &offchip_queue() const { return queue_; }

    /** Decodes deferred to an outstanding request (see above). */
    uint64_t suppressed_escalations() const { return suppressed_; }

    /** Requests enqueued or in flight whose correction has not landed. */
    size_t pending_offchip() const
    {
        if (shared_ != nullptr) {
            return (half_busy_[0] ? 1u : 0u) + (half_busy_[1] ? 1u : 0u);
        }
        return waiting_.size() + inflight_.size();
    }

    /** Corrections the shared service delivered to this tenant. */
    uint64_t shared_landed() const { return shared_landed_; }

    /** Timed-out requests given up and re-escalated (backoff). */
    uint64_t retried_decodes() const { return retried_; }

    /** Timed-out halves resolved by the on-chip UF fallback. */
    uint64_t degraded_decodes() const { return degraded_; }

    /** Empty-correction nacks received (shed requests). */
    uint64_t shared_nacks() const { return shared_nacks_; }

    /** Deliveries dropped because the half was no longer waiting
     * (the fault plan's duplicate clause). */
    uint64_t duplicate_drops() const { return duplicate_drops_; }

  private:
    struct Half
    {
        Half(const RotatedSurfaceCode &code, CheckType detector,
             const SystemConfig &config)
            : chain(code, detector, config.tiers),
              filter(code.num_checks(detector), config.filter_rounds)
        {
            if (config.offchip_timeout > 0) {
                fallback =
                    std::make_unique<UnionFindDecoder>(code, detector);
            }
        }

        TierChain chain;
        /** On-chip degraded-mode decoder (offchip_timeout > 0 only):
         * resolves a half whose link request timed out with retries
         * exhausted, instead of waiting on a dead link. */
        std::unique_ptr<UnionFindDecoder> fallback;
        /** Pooled fallback decode outcome (degraded path only). */
        Decoder::Result fallback_result;
        /** Packed per-cycle pipeline (measure_packed -> word-AND filter
         * -> packed tier walk): nothing on this path allocates in
         * steady state. */
        PackedMeasurementFilter filter;
        PackedSyndrome raw;
        /** Pooled decode outcome, overwritten in place each cycle. */
        TierChain::Result outcome;
    };

    /** An escalation waiting for link capacity. */
    struct PendingDecode
    {
        int half = 0;        ///< halves_/frames_ index
        int tier_index = 0;  ///< first off-chip tier (resume point)
        /**
         * Snapshot taken at escalation time: the filtered syndrome
         * (Mwpm policy, decoded when served) or the true error state
         * (Oracle policy, applied as-is when it lands — the oracle
         * stand-in for the off-chip result).
         */
        std::vector<uint8_t> payload;
    };

    /** A served decode whose correction is in flight back on-chip. */
    struct InflightCorrection
    {
        int half = 0;
        std::vector<uint8_t> correction;  ///< per-data-qubit flip mask
    };

    /** Serve and land queued escalations for one cycle (phase 3). */
    void service_offchip(uint64_t fresh, CycleReport &report);

    /**
     * Verify the reconciliation contract after a cycle: payload FIFOs
     * in lockstep with the counting queue, at most one outstanding
     * request per half (so waiting + in-flight <= 2), every
     * outstanding entry's half flagged busy and vice versa, and the
     * per-cycle syndrome/filter tail-word invariants. Runs at the end
     * of step() under AuditLevel::Deep; throws CheckFailure.
     */
    void audit_offchip_state() const;

    const RotatedSurfaceCode &code_;
    NoiseParams noise_;
    SystemConfig config_;
    Rng rng_;
    std::vector<ErrorFrame> frames_;  ///< indexed by error type
    std::vector<Half> halves_;        ///< indexed by error type
    uint64_t cycles_ = 0;

    // Queued off-chip service state. `queue_` does the counting and
    // scheduling; `waiting_` / `inflight_` carry the payloads in the
    // same FIFO order, so the queue's per-cycle served/landed counts
    // say exactly how many entries to move. (The at-most-one-
    // outstanding-request-per-half contract bounds both at two
    // entries.)
    OffchipQueue queue_;
    HeadFifo<PendingDecode> waiting_;
    HeadFifo<InflightCorrection> inflight_;
    bool half_busy_[2] = {false, false};
    uint64_t suppressed_ = 0;

    // Shared-link tenancy (attach_shared_service): non-null routes
    // every escalation to the external service instead of `queue_`.
    SharedOffchipService *shared_ = nullptr;
    int owner_ = 0;
    uint64_t shared_landed_ = 0;

    // Graceful degradation (offchip_timeout > 0, shared tenants): the
    // cycle each half's outstanding request was enqueued, its
    // consecutive-retry count (the backoff exponent), and the
    // outcome counters.
    uint64_t half_busy_since_[2] = {0, 0};
    int half_retries_[2] = {0, 0};
    uint64_t retried_ = 0;
    uint64_t degraded_ = 0;
    uint64_t shared_nacks_ = 0;
    uint64_t duplicate_drops_ = 0;
};

} // namespace btwc
