#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/clique.hpp"
#include "core/filter.hpp"
#include "decoders/tier_chain.hpp"
#include "surface/frame.hpp"
#include "surface/lattice.hpp"
#include "surface/noise.hpp"

namespace btwc {

/**
 * How the rare off-chip decodes are resolved inside the lifetime
 * simulator.
 *
 * `Mwpm` feeds the two-round-agreed (filtered) syndrome to the
 * chain's off-chip tiers, exactly the hand-over the paper describes.
 * `Oracle` clears the true error state instead of running an off-chip
 * tier; it is statistically indistinguishable for the
 * distribution/coverage/bandwidth metrics (validated by the test
 * suite) and orders of magnitude faster at the d = 81 configurations
 * of Fig. 4. On-chip tiers (Clique, and a Union-Find mid-tier when
 * configured) always really run.
 */
enum class OffchipPolicy : uint8_t { Oracle = 0, Mwpm = 1 };

/** Configuration of a single-logical-qubit BTWC pipeline. */
struct SystemConfig
{
    int filter_rounds = 2;                       ///< Fig. 7 window
    OffchipPolicy offchip = OffchipPolicy::Oracle;
    bool track_both_types = true;                ///< decode X and Z halves
    /**
     * The decode hierarchy each half runs (tier 0 first). The default
     * is the paper's two-tier Clique -> MWPM architecture; §8.1-style
     * deeper chains (e.g. TierChainConfig::deep()) slot a Union-Find
     * mid-tier in between, and arbitrary chains come from the CLI via
     * TierChainConfig::parse.
     */
    TierChainConfig tiers = TierChainConfig::legacy();
};

/** What happened in one cycle of a BTWC pipeline. */
struct CycleReport
{
    /** Combined verdict: Complex dominates, then Trivial, then AllZeros. */
    CliqueVerdict verdict = CliqueVerdict::AllZeros;
    /** Verdict of each half (indexed by CheckType of the detector). */
    CliqueVerdict type_verdict[2] = {CliqueVerdict::AllZeros,
                                     CliqueVerdict::AllZeros};
    /**
     * Deepest tier consulted by each half (indexed like type_verdict).
     * Equals the tier that produced the correction, except under the
     * Oracle policy where it names the off-chip tier the oracle stood
     * in for.
     */
    DecoderTier tier_used[2] = {DecoderTier::Clique, DecoderTier::Clique};
    /** Whether each half's decode consulted an off-chip tier. */
    bool type_offchip[2] = {false, false};
    /** True when the cycle's syndrome had to go off-chip. */
    bool offchip = false;
    /** Fired bits in the cycle's raw syndrome, both halves (AFS input). */
    int raw_weight = 0;
    /** On-chip corrections applied by Clique this cycle. */
    int clique_corrections = 0;
};

/**
 * The full BTWC decode pipeline of one logical qubit (Fig. 2):
 * phenomenological noise -> noisy syndrome measurement -> multi-round
 * measurement filter -> configurable decoder tier chain (Clique
 * first, rare escalation to Union-Find and/or off-chip matching).
 *
 * `step()` advances one code cycle and reports the classification the
 * bandwidth allocator consumes. The bandwidth/stall machinery lives in
 * `core/bandwidth.hpp` / `core/stall.hpp` and the multi-qubit machine
 * model in `sim/fleet.hpp`.
 */
class BtwcSystem
{
  public:
    BtwcSystem(const RotatedSurfaceCode &code, NoiseParams noise,
               SystemConfig config, uint64_t seed);

    /** Advance one noisy cycle through the full pipeline. */
    CycleReport step();

    /** Number of cycles executed. */
    uint64_t cycles() const { return cycles_; }

    /** The underlying code. */
    const RotatedSurfaceCode &code() const { return code_; }

    /** Error frame of one half (by *error* type). */
    const ErrorFrame &frame(CheckType error_type) const
    {
        return frames_[static_cast<int>(error_type)];
    }

    /** Active configuration. */
    const SystemConfig &config() const { return config_; }

  private:
    struct Half
    {
        Half(const RotatedSurfaceCode &code, CheckType detector,
             const SystemConfig &config)
            : chain(code, detector, config.tiers),
              filter(code.num_checks(detector), config.filter_rounds)
        {
        }

        TierChain chain;
        MeasurementFilter filter;
        std::vector<uint8_t> raw;
    };

    const RotatedSurfaceCode &code_;
    NoiseParams noise_;
    SystemConfig config_;
    Rng rng_;
    std::vector<ErrorFrame> frames_;  ///< indexed by error type
    std::vector<Half> halves_;        ///< indexed by error type
    uint64_t cycles_ = 0;
};

} // namespace btwc
