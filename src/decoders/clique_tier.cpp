#include "decoders/clique_tier.hpp"

#include <cstddef>

namespace btwc {

CliqueTierDecoder::Result
CliqueTierDecoder::decode(const std::vector<DetectionEvent> &events,
                          int rounds) const
{
    Result result;
    result.correction.assign(code_.num_data(), 0);
    result.defects = static_cast<int>(events.size());
    if (events.empty()) {
        return result;  // nothing fired: resolved, nothing to do
    }
    if (rounds != 1) {
        // Combinational logic sees one (filtered) round at a time.
        result.resolved = false;
        return result;
    }

    std::vector<uint8_t> syndrome(
        static_cast<size_t>(code_.num_checks(detector())), 0);
    for (const DetectionEvent &ev : events) {
        syndrome[ev.check] ^= 1;
    }
    const CliqueOutcome outcome = clique_.decode(syndrome);
    if (outcome.verdict == CliqueVerdict::Complex) {
        result.resolved = false;
        return result;
    }
    for (const int q : outcome.corrections) {
        result.correction[q] ^= 1;
        ++result.weight;
    }
    return result;
}

} // namespace btwc
