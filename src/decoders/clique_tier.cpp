#include "decoders/clique_tier.hpp"

#include <cstddef>

namespace btwc {

CliqueTierDecoder::Result
CliqueTierDecoder::decode(const std::vector<DetectionEvent> &events,
                          int rounds) const
{
    Result result;
    result.correction.assign(code_.num_data(), 0);
    result.defects = static_cast<int>(events.size());
    if (events.empty()) {
        return result;  // nothing fired: resolved, nothing to do
    }
    if (rounds != 1) {
        // Combinational logic sees one (filtered) round at a time.
        result.resolved = false;
        return result;
    }

    syndrome_scratch_.assign(
        static_cast<size_t>(code_.num_checks(detector())), 0);
    for (const DetectionEvent &ev : events) {
        syndrome_scratch_[ev.check] ^= 1;
    }
    clique_.decode(syndrome_scratch_, outcome_scratch_);
    if (outcome_scratch_.verdict == CliqueVerdict::Complex) {
        result.resolved = false;
        return result;
    }
    for (const int q : outcome_scratch_.corrections) {
        result.correction[q] ^= 1;
        ++result.weight;
    }
    return result;
}

void
CliqueTierDecoder::decode_packed(const PackedSyndrome &syndrome,
                                 Result &out) const
{
    out.correction.assign(static_cast<size_t>(code_.num_data()), 0);
    out.weight = 0;
    out.effort = 0;
    out.resolved = true;
    out.defects = syndrome.popcount();
    if (out.defects == 0) {
        return;  // nothing fired: resolved, nothing to do
    }
    const CliqueVerdict verdict =
        clique_.decode_packed(syndrome, correction_scratch_);
    if (verdict == CliqueVerdict::Complex) {
        out.resolved = false;
        return;
    }
    correction_scratch_.for_each_set([&out](int q) {
        out.correction[q] = 1;
        ++out.weight;
    });
}

} // namespace btwc
