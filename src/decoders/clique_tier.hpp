#pragma once

#include "core/clique.hpp"
#include "decoders/decoder.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Tier-0 adapter: the on-chip Clique decoder behind the abstract
 * `Decoder` interface.
 *
 * Clique is a single-round combinational circuit, so this tier only
 * accepts single-round inputs; multi-round event sets are declined
 * (`resolved == false`) and escalate. Within a round the adapter maps
 * Clique's verdicts onto the escalation contract:
 *
 *  - AllZeros / Trivial: resolved; the correction mask carries the
 *    per-clique local fixes (empty for AllZeros).
 *  - Complex: declined; the signature must escalate to the next tier.
 *
 * `effort` is always 0 -- Clique's decision is one pass of
 * combinational logic regardless of the signature (Fig. 6).
 */
class CliqueTierDecoder : public Decoder
{
  public:
    CliqueTierDecoder(const RotatedSurfaceCode &code, CheckType detector)
        : code_(code), clique_(code, detector)
    {
    }

    const char *name() const override { return "clique"; }

    CheckType detector() const override { return clique_.detector(); }

    Result decode(const std::vector<DetectionEvent> &events,
                  int rounds) const override;

    /**
     * Word-parallel single-round fast path: the packed syndrome feeds
     * `CliqueDecoder::decode_packed` directly (no event
     * materialization, no byte rebuild) and the Result — verdict
     * mapping included — is bit-identical to `decode` on the
     * equivalent single-round event list. Reuses `out`'s correction
     * capacity, so steady-state Trivial cycles allocate nothing.
     */
    void decode_packed(const PackedSyndrome &syndrome,
                       Result &out) const override;
    using Decoder::decode_packed;

    /** The wrapped combinational decoder. */
    const CliqueDecoder &clique() const { return clique_; }

  private:
    const RotatedSurfaceCode &code_;
    CliqueDecoder clique_;
    // Pooled per-instance scratch (instances are not concurrency-safe,
    // see Decoder::decode_packed).
    mutable std::vector<uint8_t> syndrome_scratch_;
    mutable CliqueOutcome outcome_scratch_;
    mutable PackedBits correction_scratch_;
};

} // namespace btwc
