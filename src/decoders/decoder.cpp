#include "decoders/decoder.hpp"

namespace btwc {

std::vector<DetectionEvent>
events_from_syndrome(const std::vector<uint8_t> &syndrome)
{
    std::vector<DetectionEvent> events;
    events_from_syndrome(syndrome, events);
    return events;
}

void
events_from_syndrome(const std::vector<uint8_t> &syndrome,
                     std::vector<DetectionEvent> &out)
{
    out.clear();
    for (int c = 0; c < static_cast<int>(syndrome.size()); ++c) {
        if (syndrome[c] & 1) {
            out.push_back(DetectionEvent{c, 0});
        }
    }
}

void
events_from_packed(const PackedSyndrome &syndrome,
                   std::vector<DetectionEvent> &out)
{
    out.clear();
    syndrome.for_each_set(
        [&out](int c) { out.push_back(DetectionEvent{c, 0}); });
}

std::vector<Decoder::Result>
Decoder::decode_batch(const std::vector<std::vector<DetectionEvent>> &batch,
                      int rounds) const
{
    std::vector<Result> results;
    results.reserve(batch.size());
    for (const std::vector<DetectionEvent> &events : batch) {
        results.push_back(decode(events, rounds));
    }
    return results;
}

Decoder::Result
Decoder::decode_syndrome(const std::vector<uint8_t> &syndrome) const
{
    thread_owner_.assert_single_thread_owner();
    events_from_syndrome(syndrome, events_scratch_);
    return decode(events_scratch_, 1);
}

void
Decoder::decode_packed(const PackedSyndrome &syndrome, Result &out) const
{
    thread_owner_.assert_single_thread_owner();
    events_from_packed(syndrome, events_scratch_);
    out = decode(events_scratch_, 1);
}

} // namespace btwc
