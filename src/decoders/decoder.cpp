#include "decoders/decoder.hpp"

namespace btwc {

std::vector<DetectionEvent>
events_from_syndrome(const std::vector<uint8_t> &syndrome)
{
    std::vector<DetectionEvent> events;
    for (int c = 0; c < static_cast<int>(syndrome.size()); ++c) {
        if (syndrome[c] & 1) {
            events.push_back(DetectionEvent{c, 0});
        }
    }
    return events;
}

std::vector<Decoder::Result>
Decoder::decode_batch(const std::vector<std::vector<DetectionEvent>> &batch,
                      int rounds) const
{
    std::vector<Result> results;
    results.reserve(batch.size());
    for (const std::vector<DetectionEvent> &events : batch) {
        results.push_back(decode(events, rounds));
    }
    return results;
}

Decoder::Result
Decoder::decode_syndrome(const std::vector<uint8_t> &syndrome) const
{
    return decode(events_from_syndrome(syndrome), 1);
}

} // namespace btwc
