#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "surface/lattice.hpp"
#include "surface/packed.hpp"

namespace btwc {

/**
 * A detection event: check `check` of the decoder's type reported a
 * syndrome *change* in measurement round `round` (0-based).
 */
struct DetectionEvent
{
    int check;
    int round;
};

/**
 * Detection events of a single perfect-measurement round: one event
 * (round 0) per fired syndrome byte. Shared by every decode_syndrome
 * convenience wrapper.
 */
std::vector<DetectionEvent>
events_from_syndrome(const std::vector<uint8_t> &syndrome);

/**
 * Allocation-free spelling: as above, but clearing and filling a
 * caller-owned vector whose capacity persists across calls.
 */
void events_from_syndrome(const std::vector<uint8_t> &syndrome,
                          std::vector<DetectionEvent> &out);

/**
 * Packed equivalent: one round-0 event per set syndrome bit, in
 * ascending check order — the same event list (order included) the
 * byte form produces for the equivalent byte syndrome.
 */
void events_from_packed(const PackedSyndrome &syndrome,
                        std::vector<DetectionEvent> &out);

/**
 * Abstract decoder-tier interface.
 *
 * Every backend of the decode hierarchy -- the on-chip Clique logic,
 * the Union-Find mid-tier, the blossom MWPM matcher, and the exact
 * brute-force matcher -- implements this interface so that
 * `TierChain` (tier_chain.hpp) can compose them into configurable
 * hierarchies and the Monte-Carlo harnesses can treat them uniformly.
 *
 * Escalation contract (see also src/decoders/README.md): a tier
 * communicates with the hierarchy exclusively through two fields of
 * its `Result`:
 *
 *  - `resolved == false` means the tier *declined*: it cannot produce
 *    a correction for this signature (e.g. Clique's COMPLEX verdict)
 *    and the next tier must run. The correction mask is all-zero.
 *  - `effort` is a cheap, hardware-friendly measure of how hard the
 *    tier had to work (the `growth_rounds_out`-style signal of
 *    union_find.hpp: Union-Find reports its half-edge growth
 *    iterations, combinational tiers report 0). The chain escalates
 *    past a *resolved* result when the effort exceeds the tier's
 *    configured threshold -- the resolution is cheap but possibly
 *    inaccurate, so a stronger decoder gets the final say.
 */
class Decoder
{
  public:
    /** Result of one decode call. */
    struct Result
    {
        std::vector<uint8_t> correction;  ///< per-data-qubit flip mask
        int64_t weight = 0;               ///< total matched weight
        int defects = 0;                  ///< number of detection events
        int effort = 0;      ///< tier-specific escalation signal
        bool resolved = true;  ///< false: tier declined; escalate
    };

    virtual ~Decoder() = default;

    /** Short display name ("clique", "union-find", "mwpm", "exact"). */
    virtual const char *name() const = 0;

    /** The check type whose detection events are decoded. */
    virtual CheckType detector() const = 0;

    /**
     * Decode a set of detection events observed over `rounds`
     * measurement rounds (all event rounds must lie in [0, rounds)).
     */
    virtual Result decode(const std::vector<DetectionEvent> &events,
                          int rounds) const = 0;

    /**
     * Decode a batch of independent event sets observed over the same
     * number of rounds, returning one Result per entry in order. The
     * base implementation is a plain loop over `decode`; backends with
     * per-call setup cost (graph scratch allocation in `MwpmDecoder` /
     * `ExactDecoder`) override it to amortize that setup across the
     * batch. Semantics are identical to the loop by contract: the
     * async off-chip service (core/offchip_queue.hpp) relies on
     * batched and per-item decoding being bit-identical.
     */
    virtual std::vector<Result>
    decode_batch(const std::vector<std::vector<DetectionEvent>> &batch,
                 int rounds) const;

    /**
     * Convenience for perfect-measurement decoding: treat a single
     * noiseless syndrome (one byte per check, nonzero = fired) as one
     * round of detection events. Shared by all backends.
     */
    Result decode_syndrome(const std::vector<uint8_t> &syndrome) const;

    /**
     * Packed single-round decode into a caller-owned Result whose
     * vector capacity is reused (the allocation-free steady-state
     * spelling: every field of `out` is overwritten). The base
     * implementation unpacks into the pooled event scratch and runs
     * `decode(events, 1)`, so the Result is bit-identical to
     * `decode_syndrome` on the equivalent byte syndrome for every
     * backend; word-parallel tiers (CliqueTierDecoder,
     * LookupTableDecoder) override it to skip event materialization
     * entirely. Like every pooled-scratch path in this codebase,
     * decoder instances are not concurrency-safe; concurrent shards
     * own their own instances.
     */
    virtual void decode_packed(const PackedSyndrome &syndrome,
                               Result &out) const;

    /** Convenience value-returning form of the above. */
    Result decode_packed(const PackedSyndrome &syndrome) const
    {
        Result out;
        decode_packed(syndrome, out);
        return out;
    }

  protected:
    /** Single-round event scratch shared by the decode_syndrome /
     * decode_packed wrappers (see the concurrency note above). */
    mutable std::vector<DetectionEvent> events_scratch_;

    /**
     * Machine-checks the concurrency note above: the pooled scratch
     * (events_scratch_, and every backend's private scratch) belongs
     * to the thread that first decodes with this instance. Backends
     * call `thread_owner_.assert_single_thread_owner()` on their
     * pooled-scratch entry points; the guard is active at
     * AuditLevel::Basic and above (debug builds, --audit runs) and a
     * single relaxed load otherwise. Ownership binds at first use,
     * not construction — harnesses build decoder stacks on the main
     * thread and hand each stack to one worker shard.
     */
    SingleThreadOwner thread_owner_;
};

} // namespace btwc
