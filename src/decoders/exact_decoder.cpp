#include "decoders/exact_decoder.hpp"

namespace btwc {

const char *
ExactDecoder::name() const
{
    return "exact";
}

} // namespace btwc
