#pragma once

#include "matching/mwpm.hpp"

namespace btwc {

/**
 * Brute-force exact matching decoder tier.
 *
 * Shares the spacetime graph construction, path recovery, and the
 * scratch-reusing `decode_batch` specialization with `MwpmDecoder`
 * but solves the defect pairing with the subset DP of
 * matching/exact.hpp (exact by construction, O(2^k * k) in the defect
 * count k). It is the correctness oracle for the blossom-backed
 * production tier and an alternative final tier for cross-validation
 * runs; above ~18 defects it transparently falls back to blossom.
 */
class ExactDecoder : public MwpmDecoder
{
  public:
    /**
     * Defaults to `FastPathConfig::oracle_only()`: O(1) oracle
     * distances (bit-exact with the Dijkstra), but the *complete*
     * defect graph in the rare > ~18-defect blossom fallback — a
     * cross-validation oracle must not prune candidates, even
     * provably-optimum-preserving ones.
     */
    ExactDecoder(const RotatedSurfaceCode &code, CheckType detector,
                 int space_weight = 1, int time_weight = 1,
                 FastPathConfig fast = FastPathConfig::oracle_only())
        : MwpmDecoder(code, detector, space_weight, time_weight,
                      Matcher::ExactDp, fast)
    {
    }

    const char *name() const override;
};

} // namespace btwc
