#include "decoders/lookup_table.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "decoders/exact_decoder.hpp"

namespace btwc {

LookupTableDecoder::LookupTableDecoder(const RotatedSurfaceCode &code,
                                       CheckType detector)
    : code_(code), detector_(detector),
      num_checks_(code.num_checks(detector)), num_data_(code.num_data())
{
    if (num_checks_ > kMaxTableChecks) {
        return;  // too large to tabulate; decode() declines everything
    }
    const size_t entries = size_t(1) << num_checks_;
    corrections_.assign(entries * static_cast<size_t>(num_data_), 0);
    weights_.assign(entries, 0);

    // One exact decode per syndrome. The oracle-backed exact matcher
    // makes this cheap (a few milliseconds at d = 5); the table is
    // exact because its teacher is.
    const ExactDecoder teacher(code, detector);
    std::vector<uint8_t> syndrome(static_cast<size_t>(num_checks_), 0);
    for (size_t s = 0; s < entries; ++s) {
        for (int c = 0; c < num_checks_; ++c) {
            syndrome[c] = (s >> c) & 1 ? 1 : 0;
        }
        const Result fix = teacher.decode_syndrome(syndrome);
        BTWC_CHECK(fix.resolved);
        std::copy(fix.correction.begin(), fix.correction.end(),
                  corrections_.begin() + s * static_cast<size_t>(num_data_));
        weights_[s] = fix.weight;
    }
}

LookupTableDecoder::Result
LookupTableDecoder::decode(const std::vector<DetectionEvent> &events,
                           int rounds) const
{
    Result result;
    result.correction.assign(static_cast<size_t>(num_data_), 0);
    result.defects = static_cast<int>(events.size());
    if (events.empty()) {
        return result;
    }
    // The table indexes single-round syndromes only; decline
    // multi-round windows (time-like pairings are not tabulated) and
    // codes too large to tabulate, so the chain escalates.
    if (!available() || rounds != 1) {
        result.resolved = false;
        return result;
    }
    size_t index = 0;
    for (const DetectionEvent &event : events) {
        BTWC_AUDIT(event.round == 0);
        BTWC_AUDIT(event.check >= 0 && event.check < num_checks_);
        index |= size_t(1) << event.check;
    }
    const uint8_t *entry =
        &corrections_[index * static_cast<size_t>(num_data_)];
    std::copy(entry, entry + num_data_, result.correction.begin());
    result.weight = weights_[index];
    return result;
}

void
LookupTableDecoder::decode_packed(const PackedSyndrome &syndrome,
                                  Result &out) const
{
    out.correction.assign(static_cast<size_t>(num_data_), 0);
    out.weight = 0;
    out.effort = 0;
    out.resolved = true;
    out.defects = syndrome.popcount();
    if (out.defects == 0) {
        return;
    }
    if (!available()) {
        out.resolved = false;
        return;
    }
    // num_checks_ <= kMaxTableChecks <= 64: the whole syndrome lives
    // in word 0, already in table-index bit order.
    const size_t index = static_cast<size_t>(syndrome.word(0));
    const uint8_t *entry =
        &corrections_[index * static_cast<size_t>(num_data_)];
    std::copy(entry, entry + num_data_, out.correction.begin());
    out.weight = weights_[index];
}

} // namespace btwc
