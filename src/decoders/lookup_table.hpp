#pragma once

#include <cstdint>
#include <vector>

#include "decoders/decoder.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Lookup-table decoder tier for small distances (the `lut` tier).
 *
 * For codes whose per-type check count fits a table index (d = 3: 4
 * checks / 16 entries, d = 5: 12 checks / 4096 entries), every
 * possible single-round syndrome is decoded once at construction by
 * the brute-force exact matcher (`ExactDecoder`, unit weights) and the
 * resulting correction mask + matched weight are stored. A decode is
 * then one table index — O(1), allocation-free, and exact by
 * construction, which makes `lut` the cheapest possible final tier for
 * tiny codes and an attractive on-chip stage: the hardware analogue is
 * a syndrome-addressed ROM.
 *
 * Applicability contract: the table covers single-round
 * (perfect-measurement) syndromes only. Multi-round event sets, and
 * any code whose check count exceeds `kMaxTableChecks`, make the tier
 * *decline* (`Result::resolved == false`, all-zero mask) so the chain
 * escalates — the same contract Clique uses for COMPLEX signatures
 * (see src/decoders/README.md). `BtwcSystem`'s per-cycle
 * classification decodes exactly one filtered round, so a `lut` tier
 * placed anywhere in the chain resolves every signature it is indexed
 * for.
 */
class LookupTableDecoder : public Decoder
{
  public:
    /**
     * Largest check count a table is built for: 12 checks (d = 5)
     * means 4096 entries x d^2 bytes — ~100 KB. d = 7 would already
     * need 2^24 entries, so larger codes construct an always-declining
     * tier instead (`available() == false`).
     */
    static constexpr int kMaxTableChecks = 12;

    LookupTableDecoder(const RotatedSurfaceCode &code, CheckType detector);

    const char *name() const override { return "lut"; }

    CheckType detector() const override { return detector_; }

    /** Whether a table was built (the code is small enough). */
    bool available() const { return !corrections_.empty(); }

    Result decode(const std::vector<DetectionEvent> &events,
                  int rounds) const override;

    /**
     * Packed fast path: the packed syndrome's first word *is* the
     * table index (`kMaxTableChecks` <= 64 guarantees a single word),
     * so a decode is one load with no event materialization. Declines
     * exactly when the event path would (table unavailable).
     */
    void decode_packed(const PackedSyndrome &syndrome,
                       Result &out) const override;
    using Decoder::decode_packed;

  private:
    const RotatedSurfaceCode &code_;
    CheckType detector_;
    int num_checks_;
    int num_data_;
    /** Entry s: correction mask for the syndrome with bit c == check c. */
    std::vector<uint8_t> corrections_;  ///< 2^num_checks x num_data, flat
    std::vector<int64_t> weights_;      ///< matched weight per entry
};

} // namespace btwc
