#include "decoders/stream_window.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "matching/union_find.hpp"

namespace btwc {

void
StreamWindowStats::merge(const StreamWindowStats &other)
{
    rounds += other.rounds;
    windows += other.windows;
    all_zero_windows += other.all_zero_windows;
    screened_windows += other.screened_windows;
    matched_windows += other.matched_windows;
    committed_rounds += other.committed_rounds;
    defects_in += other.defects_in;
    defects_committed += other.defects_committed;
    defects_carried += other.defects_carried;
    max_carried = std::max(max_carried, other.max_carried);
    committed_weight += other.committed_weight;
    commit_lag.merge(other.commit_lag);
    window_defects.merge(other.window_defects);
}

StreamWindowDecoder::StreamWindowDecoder(const RotatedSurfaceCode &code,
                                         CheckType detector,
                                         StreamWindowConfig config)
    : code_(code),
      detector_(detector),
      config_(std::move(config)),
      num_checks_(code.num_checks(detector)),
      matcher_(code, detector)
{
    BTWC_CHECK_MSG(config_.window >= 1,
                   "stream window must span at least one round");
    BTWC_CHECK_MSG(config_.overlap >= 0 &&
                       config_.overlap < config_.window,
                   "stream overlap must satisfy 0 <= overlap < window "
                   "(the commit region may not be empty)");
    for (const TierSpec &tier : config_.screen) {
        BTWC_CHECK_MSG(tier.kind == DecoderTier::UnionFind,
                       "stream screening tiers must be union-find (the "
                       "full-mask commit shortcut needs a resolving "
                       "whole-window decoder)");
    }
    if (!config_.screen.empty()) {
        screen_ = std::make_unique<UnionFindDecoder>(code, detector);
    }
    round_events_.resize(static_cast<size_t>(config_.window));
    prev_raw_.resize(num_checks_);
    committed_.resize(code.num_data());
    audit_mask_.resize(code.num_data());
}

StreamWindowDecoder::~StreamWindowDecoder() = default;

void
StreamWindowDecoder::push_round(const PackedSyndrome &raw)
{
    thread_owner_.assert_single_thread_owner();
    BTWC_CHECK_MSG(raw.size() == num_checks_,
                   "pushed syndrome width must match the detector's "
                   "check count");

    // Detection events of this round: the XOR against the previous
    // raw syndrome, word-parallel (the implicit round before the first
    // push is all zeros because prev_raw_ starts cleared).
    std::vector<int> &slot_events =
        round_events_[static_cast<size_t>(slot(buffered_))];
    slot_events.clear();
    const int words = prev_raw_.num_words();
    uint64_t *prev = prev_raw_.data();
    const uint64_t *cur = raw.data();
    for (int w = 0; w < words; ++w) {
        uint64_t bits = prev[w] ^ cur[w];
        prev[w] = cur[w];
        while (bits != 0) {
            slot_events.push_back(w * 64 + __builtin_ctzll(bits));
            bits &= bits - 1;
        }
    }

    stats_.defects_in += slot_events.size();
    ++stats_.rounds;
    ++buffered_;
    if (buffered_ == config_.window) {
        decode_window(config_.window, config_.commit_rounds());
    }
}

void
StreamWindowDecoder::flush()
{
    thread_owner_.assert_single_thread_owner();
    if (buffered_ == 0 && carried_.empty()) {
        return; // nothing pending
    }
    // Present the partial tail with the commit region covering every
    // presented round: all pairs' endpoints then lie in the commit
    // region, so everything (carried defects included) commits.
    decode_window(buffered_, buffered_ > 0 ? buffered_ : 1);
    BTWC_CHECK_MSG(buffered_ == 0 && carried_.empty() &&
                       stats_.defects_in == stats_.defects_committed,
                   "flush must commit every pending defect");
}

void
StreamWindowDecoder::reset()
{
    for (std::vector<int> &slot_events : round_events_) {
        slot_events.clear();
    }
    head_ = 0;
    buffered_ = 0;
    base_round_ = 0;
    prev_raw_.clear();
    committed_.clear();
    carried_.clear();
    carried_next_.clear();
    events_.clear();
    origin_.clear();
    matches_.clear();
    stats_ = StreamWindowStats();
}

uint64_t
StreamWindowDecoder::pending_defects() const
{
    uint64_t pending = carried_.size();
    for (int t = 0; t < buffered_; ++t) {
        pending += round_events_[static_cast<size_t>(slot(t))].size();
    }
    return pending;
}

size_t
StreamWindowDecoder::steady_state_bytes() const
{
    size_t bytes = 0;
    for (const std::vector<int> &slot_events : round_events_) {
        bytes += slot_events.capacity() * sizeof(int);
    }
    bytes += carried_.capacity() * sizeof(CarriedDefect);
    bytes += carried_next_.capacity() * sizeof(CarriedDefect);
    bytes += events_.capacity() * sizeof(DetectionEvent);
    bytes += origin_.capacity() * sizeof(uint64_t);
    bytes += matches_.pairs.capacity() * sizeof(MwpmMatches::Pair);
    bytes += matches_.path_data.capacity() * sizeof(int);
    bytes += static_cast<size_t>(prev_raw_.num_words() +
                                 committed_.num_words() +
                                 audit_mask_.num_words()) *
             sizeof(uint64_t);
    return bytes;
}

void
StreamWindowDecoder::audit() const
{
    BTWC_CHECK_MSG(buffered_ >= 0 && buffered_ <= config_.window,
                   "stream buffer occupancy out of range");
    BTWC_CHECK_MSG(head_ >= 0 && head_ < config_.window,
                   "stream ring head out of range");
    prev_raw_.audit();
    committed_.audit();
    BTWC_CHECK_MSG(committed_.size() == code_.num_data(),
                   "committed mask width must match the data-qubit "
                   "count");
    // Slots beyond the buffered prefix must be empty (pop_rounds
    // clears them), and every buffered event must name a valid check.
    for (int t = 0; t < config_.window; ++t) {
        const std::vector<int> &slot_events =
            round_events_[static_cast<size_t>(slot(t))];
        if (t >= buffered_) {
            BTWC_CHECK_MSG(slot_events.empty(),
                           "unoccupied stream ring slot holds events");
            continue;
        }
        for (const int check : slot_events) {
            BTWC_CHECK_MSG(check >= 0 && check < num_checks_,
                           "buffered stream event names an invalid "
                           "check");
        }
    }
    for (const CarriedDefect &c : carried_) {
        BTWC_CHECK_MSG(c.check >= 0 && c.check < num_checks_,
                       "carried defect names an invalid check");
        BTWC_CHECK_MSG(c.origin_round < base_round_,
                       "carried defect must originate before the "
                       "commit frontier");
    }
    BTWC_CHECK_MSG(stats_.committed_rounds == base_round_,
                   "commit frontier must equal the stream buffer base");
    // Defect conservation: everything that entered is exactly one of
    // committed, still buffered, or carried forward.
    BTWC_CHECK_MSG(stats_.defects_in ==
                       stats_.defects_committed + pending_defects(),
                   "stream defect conservation violated (dropped or "
                   "double-committed defect)");
}

void
StreamWindowDecoder::commit_full_mask(const std::vector<uint8_t> &mask)
{
    for (size_t i = 0; i < mask.size(); ++i) {
        if ((mask[i] & 1) != 0) {
            committed_.flip(static_cast<int>(i));
        }
    }
}

void
StreamWindowDecoder::pop_rounds(int n)
{
    for (int t = 0; t < n; ++t) {
        round_events_[static_cast<size_t>(slot(t))].clear();
    }
    head_ = (head_ + n) % config_.window;
    buffered_ -= n;
    base_round_ += static_cast<uint64_t>(n);
    stats_.committed_rounds = base_round_;
}

void
StreamWindowDecoder::decode_window(int avail, int commit)
{
    ++stats_.windows;
    const int rounds = std::max(avail, 1);

    // Present the carried defects at relative round 0 (sound under
    // unit weights; see the class comment) followed by the buffered
    // events at their relative rounds, tracking each event's absolute
    // origin round for the commit-lag histogram and re-carry.
    events_.clear();
    origin_.clear();
    for (const CarriedDefect &c : carried_) {
        events_.push_back({c.check, 0});
        origin_.push_back(c.origin_round);
    }
    for (int t = 0; t < avail; ++t) {
        for (const int check :
             round_events_[static_cast<size_t>(slot(t))]) {
            events_.push_back({check, t});
            origin_.push_back(base_round_ + static_cast<uint64_t>(t));
        }
    }
    stats_.window_defects.add(events_.size());
    // Commit instant: the newest buffered round has been observed, so
    // a defect committed now waited (now - origin) rounds.
    const uint64_t now = base_round_ + static_cast<uint64_t>(avail);

    if (events_.empty()) {
        ++stats_.all_zero_windows;
        pop_rounds(std::min(commit, buffered_));
        if (audit_deep()) {
            audit();
        }
        return;
    }

    // Screening fast path: when every presented defect lies in the
    // commit region, the next window sees no residue from this one, so
    // any resolved full-window mask is committable without pair
    // attribution — run the shared Union-Find backend once and accept
    // under any configured screen tier's escalation predicate.
    bool all_commit = true;
    for (const DetectionEvent &e : events_) {
        if (e.round >= commit) {
            all_commit = false;
            break;
        }
    }
    if (all_commit && screen_ != nullptr) {
        const Decoder::Result screened = screen_->decode(events_, rounds);
        bool accepted = false;
        for (const TierSpec &tier : config_.screen) {
            if (screened.resolved &&
                (tier.escalation_threshold < 0 ||
                 screened.effort <= tier.escalation_threshold)) {
                accepted = true;
                break;
            }
        }
        if (accepted) {
            ++stats_.screened_windows;
            commit_full_mask(screened.correction);
            stats_.committed_weight += screened.weight;
            stats_.defects_committed += events_.size();
            for (const uint64_t o : origin_) {
                stats_.commit_lag.add(now - o);
            }
            carried_.clear();
            pop_rounds(std::min(commit, buffered_));
            if (audit_deep()) {
                audit();
            }
            return;
        }
    }

    // Matched MWPM path: decode with pair attribution, then commit
    // exactly the pairs whose endpoints all lie in the commit region.
    ++stats_.matched_windows;
    const Decoder::Result result =
        matcher_.decode_matched(events_, rounds, matches_);
    if (audit_deep()) {
        // Machine-check the MwpmMatches contract: the XOR of the pair
        // paths reproduces the full correction mask bit for bit.
        audit_mask_.reset(code_.num_data());
        for (const MwpmMatches::Pair &p : matches_.pairs) {
            for (int i = p.path_begin; i < p.path_end; ++i) {
                audit_mask_.flip(matches_.path_data[static_cast<size_t>(i)]);
            }
        }
        for (int i = 0; i < code_.num_data(); ++i) {
            BTWC_CHECK_MSG(
                audit_mask_.test(i) ==
                    ((result.correction[static_cast<size_t>(i)] & 1) != 0),
                "matched-pair path XOR must reproduce the MWPM "
                "correction mask");
        }
    }

    carried_next_.clear();
    for (const MwpmMatches::Pair &p : matches_.pairs) {
        const bool a_commits = events_[static_cast<size_t>(p.a)].round < commit;
        const bool b_commits =
            p.b < 0 || events_[static_cast<size_t>(p.b)].round < commit;
        if (a_commits && b_commits) {
            // Commit: XOR the pair's full correction path and retire
            // its defects.
            for (int i = p.path_begin; i < p.path_end; ++i) {
                committed_.flip(matches_.path_data[static_cast<size_t>(i)]);
            }
            stats_.committed_weight += p.weight;
            stats_.commit_lag.add(now - origin_[static_cast<size_t>(p.a)]);
            ++stats_.defects_committed;
            if (p.b >= 0) {
                stats_.commit_lag.add(now -
                                      origin_[static_cast<size_t>(p.b)]);
                ++stats_.defects_committed;
            }
            continue;
        }
        // Seam pair: the commit-region endpoint carries forward into
        // the next window (origin preserved); overlap-region endpoints
        // stay buffered and are simply re-presented.
        if (a_commits) {
            carried_next_.push_back(
                {events_[static_cast<size_t>(p.a)].check,
                 origin_[static_cast<size_t>(p.a)]});
        }
        if (p.b >= 0 && b_commits) {
            carried_next_.push_back(
                {events_[static_cast<size_t>(p.b)].check,
                 origin_[static_cast<size_t>(p.b)]});
        }
    }
    std::swap(carried_, carried_next_);
    stats_.defects_carried += carried_.size();
    stats_.max_carried =
        std::max(stats_.max_carried, static_cast<uint64_t>(carried_.size()));
    pop_rounds(std::min(commit, buffered_));
    if (audit_deep()) {
        audit();
    }
}

} // namespace btwc
