#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "decoders/decoder.hpp"
#include "decoders/tier_chain.hpp"
#include "matching/mwpm.hpp"
#include "surface/lattice.hpp"
#include "surface/packed.hpp"

namespace btwc {

class UnionFindDecoder;

/** Sliding-window geometry and screening chain of a stream decoder. */
struct StreamWindowConfig
{
    int window = 8;   ///< W: rounds decoded per window (>= 1)
    int overlap = 2;  ///< V: trailing rounds re-decoded next window
                      ///< (0 <= V < W)

    /**
     * Leading screening tiers, evaluated under the standard
     * escalation contract (decoders/decoder.hpp) whenever a window
     * has no overlap-region defect — then any resolved full-window
     * mask is committable without pair attribution, so a cheap tier
     * can absorb the window before the matched MWPM runs. Union-Find
     * tiers only (the constructor checks); empty = every non-trivial
     * window goes straight to matched MWPM.
     */
    std::vector<TierSpec> screen;

    /** C = W - V: rounds committed (and retired) per window decode. */
    int commit_rounds() const { return window - overlap; }
};

/**
 * Counters and conservation ledger of one streaming decoder. Every
 * field is deterministic for a fixed syndrome stream (histograms count
 * rounds, not wall time), so stream metrics sit inside the `metrics`
 * Report subtree the btwc_diff gate compares.
 */
struct StreamWindowStats
{
    uint64_t rounds = 0;   ///< syndrome rounds pushed
    uint64_t windows = 0;  ///< window decodes (incl. the flush tail)
    uint64_t all_zero_windows = 0;  ///< windows with no defect at all
    uint64_t screened_windows = 0;  ///< absorbed by a screening tier
    uint64_t matched_windows = 0;   ///< decoded by matched MWPM
    uint64_t committed_rounds = 0;  ///< commit frontier (monotone)

    /**
     * Defect conservation ledger: every detection event entering the
     * stream (`defects_in`) is, at any instant, exactly one of
     * committed, still buffered, or carried forward — `audit()`
     * checks the equation, and after `flush()` it collapses to
     * defects_in == defects_committed (no defect dropped, none
     * double-committed).
     */
    uint64_t defects_in = 0;
    uint64_t defects_committed = 0;
    uint64_t defects_carried = 0;  ///< carry-forward events (cumulative)
    uint64_t max_carried = 0;      ///< peak carry list size
    int64_t committed_weight = 0;  ///< total matched weight committed

    CountHistogram commit_lag;      ///< rounds from detection to commit
    CountHistogram window_defects;  ///< presented defects per window

    /** Fold another stream's statistics in (sharded engine). */
    void merge(const StreamWindowStats &other);
};

/**
 * Sliding-window streaming MWPM decoder — the service-shaped front end
 * the ROADMAP's "streaming decode engine" item asks for. Consumes an
 * unbounded sequence of packed syndrome rounds (`push_round`) with
 * bounded, allocation-free steady-state memory, and maintains a
 * committed spatial correction mask that, after `flush()`, clears the
 * stream's syndrome exactly like a one-shot batch MWPM decode would.
 *
 * Window protocol (contract diagram: src/decoders/README.md):
 *
 *  - Rounds buffer until W are pending; the window [0, W) then
 *    decodes: the buffered detection events plus any carried defects
 *    (presented at relative round 0) go through the matched MWPM
 *    (`MwpmDecoder::decode_matched`), which exposes the solved
 *    pairing.
 *  - A pair whose endpoints all lie in the commit region [0, C),
 *    C = W - V, commits: its correction path is XORed into the
 *    committed mask and its defects retire. Since committed endpoints
 *    live only in rounds that are popped right after, no defect is
 *    ever re-presented once committed.
 *  - A commit-region endpoint matched across the commit/overlap seam
 *    carries forward: it re-enters the next window at relative round
 *    0 (sound under unit weights — the spatial correction path
 *    between two checks is independent of their rounds, so clamping
 *    the time coordinate preserves correction semantics; cf. the
 *    distance-oracle factorization, surface/distance.hpp).
 *  - Overlap-region events stay buffered and are re-decoded next
 *    window with C more rounds of lookahead.
 *  - The commit frontier then advances by C rounds. `flush()` decodes
 *    whatever remains with the commit region covering everything.
 *
 * Because the committed correction is the XOR of full pair paths over
 * a perfect matching of *all* stream events, applying it after flush
 * always clears the syndrome (each event's check is toggled exactly
 * once by its pair's path ends); the windowed pairing can differ from
 * the batch pairing only near window seams (the window<->batch
 * equivalence property tests in tests/test_stream.cpp pin both the
 * always-clear invariant and logical-outcome agreement).
 *
 * Escalation-contract reuse: when every presented defect lies in the
 * commit region, pair attribution is unnecessary (any full mask is
 * committable), so the configured Union-Find screening tiers run
 * first and absorb the window when they resolve within their
 * escalation thresholds — the same accept rule TierChain applies.
 *
 * Pooling: the round ring, carry lists, presented-event arrays, match
 * records and packed masks all hold their grown capacity, so after
 * warmup a steady-state stream allocates nothing in this class
 * (`steady_state_bytes()` exposes the pooled footprint for the
 * bounded-memory fuzz tests). Like every pooled-scratch decoder here,
 * instances are single-owner (Decoder's thread contract).
 */
class StreamWindowDecoder
{
  public:
    StreamWindowDecoder(const RotatedSurfaceCode &code, CheckType detector,
                        StreamWindowConfig config);
    ~StreamWindowDecoder();

    /** The check type whose syndrome stream this decoder consumes. */
    CheckType detector() const { return detector_; }

    /** Active window geometry / screening configuration. */
    const StreamWindowConfig &config() const { return config_; }

    /**
     * Feed one measurement round's packed raw syndrome (width =
     * num_checks of the detector type). Detection events are the XOR
     * against the previous round's raw syndrome (word-parallel), with
     * an implicit all-zero round before the first push. Triggers a
     * window decode whenever W rounds are pending.
     */
    void push_round(const PackedSyndrome &raw);

    /**
     * Decode and commit everything still pending (the partial tail
     * window plus carried defects). After flush,
     * stats().defects_in == stats().defects_committed and the
     * committed correction is a perfect matching of every stream
     * event — applying it clears the stream's syndrome whenever the
     * final pushed round was measured noiselessly.
     */
    void flush();

    /**
     * Restart for a new stream, keeping all pooled capacity. The
     * statistics restart too: pending (uncommitted) defects are
     * discarded, so carrying the ledger across streams would break
     * the conservation equation.
     */
    void reset();

    /**
     * The committed spatial correction mask (one bit per data qubit),
     * maintained incrementally as windows commit.
     */
    const PackedBits &committed_correction() const { return committed_; }

    /** Lifetime statistics (see StreamWindowStats). */
    const StreamWindowStats &stats() const { return stats_; }

    /** Rounds buffered but not yet committed. */
    int pending_rounds() const { return buffered_; }

    /** Defects currently buffered or carried (not yet committed). */
    uint64_t pending_defects() const;

    /**
     * Bytes of pooled capacity held by this instance's stream state
     * (ring buffer, carry lists, event/match scratch, packed masks).
     * Constant after warmup — the bounded-memory fuzz tests pin that
     * a 10k-round stream does not grow it past the first windows.
     */
    size_t steady_state_bytes() const;

    /**
     * Verify the window-state invariants: ring occupancy within
     * [0, W), packed masks well-formed, the commit frontier equal to
     * the buffer base, and the defect conservation equation
     * defects_in == defects_committed + buffered + carried. Runs
     * after every window decode at AuditLevel::Deep; throws
     * CheckFailure. Audits consume no randomness and alter no
     * metrics.
     */
    void audit() const;

  private:
    struct CarriedDefect
    {
        int check = 0;            ///< check whose defect carries over
        uint64_t origin_round = 0;  ///< absolute round it was detected in
    };

    int slot(int t) const { return (head_ + t) % config_.window; }

    /**
     * Decode the pending window: `avail` buffered rounds are
     * presented (plus carried defects at relative round 0) and the
     * first `commit` rounds' worth of matching commits; then `avail`
     * is reduced by min(commit, avail) rounds.
     */
    void decode_window(int avail, int commit);

    void commit_full_mask(const std::vector<uint8_t> &mask);
    void pop_rounds(int n);

    const RotatedSurfaceCode &code_;
    CheckType detector_;
    StreamWindowConfig config_;
    int num_checks_;

    MwpmDecoder matcher_;
    /** One shared screening backend: every screen tier is Union-Find
     * over the same code half, so the tiers differ only in their
     * escalation thresholds and share one decode per window. */
    std::unique_ptr<UnionFindDecoder> screen_;

    // --- stream state (all pooled) ---
    std::vector<std::vector<int>> round_events_;  ///< ring of W slots
    int head_ = 0;      ///< ring index of relative round 0
    int buffered_ = 0;  ///< rounds currently pending
    uint64_t base_round_ = 0;  ///< absolute round of relative round 0
    PackedSyndrome prev_raw_;  ///< last pushed raw syndrome
    PackedBits committed_;     ///< committed correction mask
    std::vector<CarriedDefect> carried_;
    std::vector<CarriedDefect> carried_next_;
    std::vector<DetectionEvent> events_;  ///< presented window events
    std::vector<uint64_t> origin_;  ///< absolute origin round per event
    MwpmMatches matches_;
    PackedBits audit_mask_;  ///< deep-audit path-XOR scratch

    StreamWindowStats stats_;
    SingleThreadOwner thread_owner_;
};

} // namespace btwc
