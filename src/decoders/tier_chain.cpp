#include "decoders/tier_chain.hpp"

#include <cstdio>
#include <cstdlib>

#include "decoders/clique_tier.hpp"
#include "decoders/exact_decoder.hpp"
#include "matching/mwpm.hpp"
#include "matching/union_find.hpp"

namespace btwc {

namespace {

std::unique_ptr<Decoder>
make_tier_decoder(DecoderTier kind, const RotatedSurfaceCode &code,
                  CheckType detector)
{
    switch (kind) {
      case DecoderTier::Clique:
        return std::make_unique<CliqueTierDecoder>(code, detector);
      case DecoderTier::UnionFind:
        return std::make_unique<UnionFindDecoder>(code, detector);
      case DecoderTier::Mwpm:
        return std::make_unique<MwpmDecoder>(code, detector);
      case DecoderTier::Exact:
        return std::make_unique<ExactDecoder>(code, detector);
    }
    return nullptr;
}

} // namespace

const char *
decoder_tier_name(DecoderTier tier)
{
    switch (tier) {
      case DecoderTier::Clique:
        return "clique";
      case DecoderTier::UnionFind:
        return "union-find";
      case DecoderTier::Mwpm:
        return "mwpm";
      case DecoderTier::Exact:
        return "exact";
    }
    return "?";
}

TierSpec
TierSpec::clique()
{
    return TierSpec{DecoderTier::Clique, -1, false};
}

TierSpec
TierSpec::union_find(int escalation_threshold)
{
    return TierSpec{DecoderTier::UnionFind, escalation_threshold, false};
}

TierSpec
TierSpec::mwpm()
{
    return TierSpec{DecoderTier::Mwpm, -1, true};
}

TierSpec
TierSpec::exact()
{
    return TierSpec{DecoderTier::Exact, -1, true};
}

TierChainConfig
TierChainConfig::legacy()
{
    return TierChainConfig{{TierSpec::clique(), TierSpec::mwpm()}};
}

TierChainConfig
TierChainConfig::deep(int uf_threshold)
{
    return TierChainConfig{{TierSpec::clique(),
                            TierSpec::union_find(uf_threshold),
                            TierSpec::mwpm()}};
}

TierChainConfig
TierChainConfig::parse(const std::string &spec, int uf_threshold)
{
    if (spec.empty()) {
        return legacy();
    }
    TierChainConfig config;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t end = spec.find(',', start);
        if (end == std::string::npos) {
            end = spec.size();
        }
        std::string token = spec.substr(start, end - start);
        start = end + 1;
        if (token.empty()) {
            continue;
        }
        bool has_threshold = false;
        long threshold = 0;
        const size_t colon = token.find(':');
        if (colon != std::string::npos) {
            const std::string suffix = token.substr(colon + 1);
            char *end = nullptr;
            threshold = std::strtol(suffix.c_str(), &end, 10);
            if (suffix.empty() || end == nullptr || *end != '\0') {
                std::fprintf(stderr,
                             "malformed tier threshold '%s' in spec "
                             "'%s'; expected an integer after ':'\n",
                             suffix.c_str(), spec.c_str());
                std::exit(2);
            }
            has_threshold = true;
            token = token.substr(0, colon);
        }
        TierSpec tier;
        if (token == "clique") {
            tier = TierSpec::clique();
        } else if (token == "uf" || token == "union-find" ||
                   token == "unionfind") {
            tier = TierSpec::union_find(uf_threshold);
        } else if (token == "mwpm" || token == "matching") {
            tier = TierSpec::mwpm();
        } else if (token == "exact") {
            tier = TierSpec::exact();
        } else {
            std::fprintf(stderr,
                         "unknown decoder tier '%s' in spec '%s'; "
                         "expected clique | uf | union-find | mwpm | "
                         "exact (optionally ':<threshold>')\n",
                         token.c_str(), spec.c_str());
            std::exit(2);
        }
        if (has_threshold) {
            tier.escalation_threshold = static_cast<int>(threshold);
        }
        config.tiers.push_back(tier);
    }
    if (config.tiers.empty()) {
        return legacy();
    }
    return config;
}

std::string
TierChainConfig::describe() const
{
    std::string out;
    for (const TierSpec &tier : tiers) {
        if (!out.empty()) {
            out += '>';
        }
        out += decoder_tier_name(tier.kind);
        if (tier.escalation_threshold >= 0) {
            out += '(';
            out += std::to_string(tier.escalation_threshold);
            out += ')';
        }
    }
    return out;
}

TierChain::TierChain(const RotatedSurfaceCode &code, CheckType detector,
                     TierChainConfig config)
    : detector_(detector), config_(std::move(config))
{
    if (config_.tiers.empty()) {
        // A default-constructed TierChainConfig means "no opinion";
        // fall back to the paper's architecture (matching parse("")).
        config_ = TierChainConfig::legacy();
    }
    tiers_.reserve(config_.tiers.size());
    for (const TierSpec &tier : config_.tiers) {
        tiers_.push_back(make_tier_decoder(tier.kind, code, detector));
    }
}

TierChain::Result
TierChain::decode(const std::vector<DetectionEvent> &events, int rounds,
                  const Options &options) const
{
    Result result;
    if (events.empty()) {
        // Nothing fired: tier 0 resolves trivially and nothing leaves
        // the chip, regardless of where the chain's tiers live (and
        // regardless of stop_before_offchip).
        result.tier = config_.tiers[0].kind;
        result.decode = tiers_[0]->decode(events, rounds);
        result.resolved = true;
        return result;
    }
    int observed_effort = 0;
    const size_t last = tiers_.size() - 1;
    for (size_t i = 0; i <= last; ++i) {
        const TierSpec &spec = config_.tiers[i];
        result.tier_index = static_cast<int>(i);
        result.tier = spec.kind;
        result.offchip = spec.offchip;
        if (options.stop_before_offchip && spec.offchip) {
            // The caller substitutes an oracle for this tier.
            result.resolved = false;
            result.effort = observed_effort;
            result.decode.defects = static_cast<int>(events.size());
            return result;
        }
        Decoder::Result attempt = tiers_[i]->decode(events, rounds);
        if (attempt.effort > observed_effort) {
            observed_effort = attempt.effort;
        }
        const bool accept =
            attempt.resolved && (spec.escalation_threshold < 0 ||
                                 attempt.effort <= spec.escalation_threshold);
        if (accept || i == last) {
            result.resolved = attempt.resolved;
            result.effort = observed_effort;
            result.decode = std::move(attempt);
            return result;
        }
    }
    return result;  // unreachable; the final tier always returns
}

TierChain::Result
TierChain::decode_syndrome(const std::vector<uint8_t> &syndrome,
                           const Options &options) const
{
    return decode(events_from_syndrome(syndrome), 1, options);
}

} // namespace btwc
