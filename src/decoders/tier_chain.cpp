#include "decoders/tier_chain.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"

#include "decoders/clique_tier.hpp"
#include "decoders/exact_decoder.hpp"
#include "decoders/lookup_table.hpp"
#include "matching/mwpm.hpp"
#include "matching/union_find.hpp"

namespace btwc {

namespace {

std::unique_ptr<Decoder>
make_tier_decoder(DecoderTier kind, const RotatedSurfaceCode &code,
                  CheckType detector)
{
    switch (kind) {
      case DecoderTier::Clique:
        return std::make_unique<CliqueTierDecoder>(code, detector);
      case DecoderTier::UnionFind:
        return std::make_unique<UnionFindDecoder>(code, detector);
      case DecoderTier::Mwpm:
        return std::make_unique<MwpmDecoder>(code, detector);
      case DecoderTier::Exact:
        return std::make_unique<ExactDecoder>(code, detector);
      case DecoderTier::Lut:
        return std::make_unique<LookupTableDecoder>(code, detector);
      case DecoderTier::Stream:
        // Unreachable: the TierChain constructor rejects stream tiers
        // before building decoders (see the check there).
        return nullptr;
    }
    return nullptr;
}

} // namespace

const char *
decoder_tier_name(DecoderTier tier)
{
    switch (tier) {
      case DecoderTier::Clique:
        return "clique";
      case DecoderTier::UnionFind:
        return "union-find";
      case DecoderTier::Mwpm:
        return "mwpm";
      case DecoderTier::Exact:
        return "exact";
      case DecoderTier::Lut:
        return "lut";
      case DecoderTier::Stream:
        return "stream";
    }
    return "?";
}

TierSpec
TierSpec::clique()
{
    return TierSpec{DecoderTier::Clique, -1, false};
}

TierSpec
TierSpec::union_find(int escalation_threshold)
{
    return TierSpec{DecoderTier::UnionFind, escalation_threshold, false};
}

TierSpec
TierSpec::mwpm()
{
    return TierSpec{DecoderTier::Mwpm, -1, true};
}

TierSpec
TierSpec::exact()
{
    return TierSpec{DecoderTier::Exact, -1, true};
}

TierSpec
TierSpec::lut()
{
    // One table index per decode: cheap enough to live on-chip (the
    // hardware analogue is a syndrome-addressed ROM).
    return TierSpec{DecoderTier::Lut, -1, false};
}

TierSpec
TierSpec::stream()
{
    // The sliding-window streaming matcher is the MWPM-class final
    // tier of a kind=stream chain; like mwpm it lives off-chip.
    return TierSpec{DecoderTier::Stream, -1, true};
}

TierChainConfig
TierChainConfig::legacy()
{
    return TierChainConfig{{TierSpec::clique(), TierSpec::mwpm()}};
}

TierChainConfig
TierChainConfig::deep(int uf_threshold)
{
    return TierChainConfig{{TierSpec::clique(),
                            TierSpec::union_find(uf_threshold),
                            TierSpec::mwpm()}};
}

bool
TierChainConfig::try_parse(const std::string &spec, int uf_threshold,
                           TierChainConfig *out, std::string *error)
{
    if (spec.empty()) {
        *out = legacy();
        return true;
    }
    TierChainConfig config;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t end = spec.find(',', start);
        if (end == std::string::npos) {
            end = spec.size();
        }
        std::string token = spec.substr(start, end - start);
        start = end + 1;
        if (token.empty()) {
            continue;
        }
        bool has_threshold = false;
        long threshold = 0;
        const size_t colon = token.find(':');
        if (colon != std::string::npos) {
            const std::string suffix = token.substr(colon + 1);
            char *suffix_end = nullptr;
            threshold = std::strtol(suffix.c_str(), &suffix_end, 10);
            if (suffix.empty() || suffix_end == nullptr ||
                *suffix_end != '\0') {
                if (error != nullptr) {
                    *error = "malformed tier threshold '" + suffix +
                             "' in spec '" + spec +
                             "'; expected an integer after ':'";
                }
                return false;
            }
            has_threshold = true;
            token = token.substr(0, colon);
        }
        TierSpec tier;
        if (token == "clique") {
            tier = TierSpec::clique();
        } else if (token == "uf" || token == "union-find" ||
                   token == "unionfind") {
            tier = TierSpec::union_find(uf_threshold);
        } else if (token == "mwpm" || token == "matching") {
            tier = TierSpec::mwpm();
        } else if (token == "exact") {
            tier = TierSpec::exact();
        } else if (token == "lut") {
            tier = TierSpec::lut();
        } else if (token == "stream") {
            tier = TierSpec::stream();
        } else {
            if (error != nullptr) {
                *error = "unknown decoder tier '" + token +
                         "' in spec '" + spec +
                         "'; expected clique | uf | union-find | mwpm "
                         "| exact | lut | stream (optionally "
                         "':<threshold>')";
            }
            return false;
        }
        if (has_threshold) {
            tier.escalation_threshold = static_cast<int>(threshold);
        }
        config.tiers.push_back(tier);
    }
    *out = config.tiers.empty() ? legacy() : std::move(config);
    return true;
}

TierChainConfig
TierChainConfig::parse(const std::string &spec, int uf_threshold)
{
    TierChainConfig config;
    std::string error;
    if (!try_parse(spec, uf_threshold, &config, &error)) {
        throw std::invalid_argument(error);
    }
    return config;
}

bool
TierChainConfig::contains_stream() const
{
    for (const TierSpec &tier : tiers) {
        if (tier.kind == DecoderTier::Stream) {
            return true;
        }
    }
    return false;
}

std::string
TierChainConfig::describe() const
{
    std::string out;
    for (const TierSpec &tier : tiers) {
        if (!out.empty()) {
            out += '>';
        }
        out += decoder_tier_name(tier.kind);
        if (tier.escalation_threshold >= 0) {
            out += '(';
            out += std::to_string(tier.escalation_threshold);
            out += ')';
        }
    }
    return out;
}

TierChain::TierChain(const RotatedSurfaceCode &code, CheckType detector,
                     TierChainConfig config)
    : detector_(detector), config_(std::move(config))
{
    if (config_.tiers.empty()) {
        // A default-constructed TierChainConfig means "no opinion";
        // fall back to the paper's architecture (matching parse("")).
        config_ = TierChainConfig::legacy();
    }
    // A clean diagnostic beats a null decoder: the stream tier is the
    // sliding-window mode of kind=stream scenarios, never a batch
    // chain member (scenario validation rejects it earlier with the
    // same message for parsed specs).
    BTWC_CHECK_MSG(!config_.contains_stream(),
                   "tier 'stream' is only valid in kind=stream "
                   "scenarios (sliding-window decoding); it cannot be "
                   "a batch TierChain member");
    tiers_.reserve(config_.tiers.size());
    for (const TierSpec &tier : config_.tiers) {
        tiers_.push_back(make_tier_decoder(tier.kind, code, detector));
    }
    if (audit_deep()) {
        audit();
    }
}

void
TierChain::audit() const
{
    BTWC_CHECK_MSG(!tiers_.empty() &&
                       tiers_.size() == config_.tiers.size(),
                   "one constructed decoder per configured tier");
    bool seen_offchip = false;
    for (size_t i = 0; i < tiers_.size(); ++i) {
        BTWC_CHECK_MSG(tiers_[i] != nullptr, "every tier has a decoder");
        BTWC_CHECK_MSG(tiers_[i]->detector() == detector_,
                       "every tier decodes this chain's detector type");
        if (seen_offchip) {
            BTWC_CHECK_MSG(config_.tiers[i].offchip,
                           "escalation monotonicity: on-chip tiers form "
                           "a prefix, a signature never returns on-chip");
        }
        seen_offchip = seen_offchip || config_.tiers[i].offchip;
    }
}

TierChain::Result
TierChain::decode(const std::vector<DetectionEvent> &events, int rounds,
                  const Options &options) const
{
    if (events.empty()) {
        // Nothing fired: tier 0 resolves trivially and nothing leaves
        // the chip, regardless of where the chain's tiers live (and
        // regardless of stop_before_offchip).
        Result result;
        result.tier = config_.tiers[0].kind;
        result.decode = tiers_[0]->decode(events, rounds);
        result.resolved = true;
        return result;
    }
    return decode_from(0, events, rounds, options, 0);
}

TierChain::Result
TierChain::decode_from(size_t first_tier,
                       const std::vector<DetectionEvent> &events,
                       int rounds, const Options &options,
                       int base_effort) const
{
    Result result;
    int observed_effort = base_effort;
    const size_t last = tiers_.size() - 1;
    for (size_t i = first_tier; i <= last; ++i) {
        const TierSpec &spec = config_.tiers[i];
        result.tier_index = static_cast<int>(i);
        result.tier = spec.kind;
        result.offchip = spec.offchip;
        if (options.stop_before_offchip && spec.offchip) {
            // The caller substitutes an oracle for this tier -- or,
            // under the queued service, enqueues the signature and
            // later resumes here via decode_from / decode_batch_from.
            result.resolved = false;
            result.effort = observed_effort;
            result.decode.defects = static_cast<int>(events.size());
            return result;
        }
        Decoder::Result attempt = tiers_[i]->decode(events, rounds);
        if (attempt.effort > observed_effort) {
            observed_effort = attempt.effort;
        }
        const bool accept =
            attempt.resolved && (spec.escalation_threshold < 0 ||
                                 attempt.effort <= spec.escalation_threshold);
        if (accept || i == last) {
            result.resolved = attempt.resolved;
            result.effort = observed_effort;
            result.decode = std::move(attempt);
            return result;
        }
    }
    return result;  // unreachable; the final tier always returns
}

std::vector<TierChain::Result>
TierChain::decode_batch_from(
    size_t first_tier,
    const std::vector<std::vector<DetectionEvent>> &batch,
    int rounds) const
{
    const TierSpec &spec = config_.tiers[first_tier];
    const size_t last = tiers_.size() - 1;
    std::vector<Decoder::Result> attempts =
        tiers_[first_tier]->decode_batch(batch, rounds);
    std::vector<Result> results(batch.size());
    for (size_t b = 0; b < batch.size(); ++b) {
        Decoder::Result &attempt = attempts[b];
        const bool accept =
            attempt.resolved && (spec.escalation_threshold < 0 ||
                                 attempt.effort <= spec.escalation_threshold);
        if (accept || first_tier == last) {
            Result &result = results[b];
            result.tier_index = static_cast<int>(first_tier);
            result.tier = spec.kind;
            result.offchip = spec.offchip;
            result.resolved = attempt.resolved;
            result.effort = attempt.effort;
            result.decode = std::move(attempt);
        } else {
            // Rare: the batched tier declined or escalated on effort;
            // finish this entry through the deeper tiers per-item.
            results[b] = decode_from(first_tier + 1, batch[b], rounds,
                                     Options(), attempt.effort);
        }
    }
    return results;
}

TierChain::Result
TierChain::decode_syndrome(const std::vector<uint8_t> &syndrome,
                           const Options &options) const
{
    thread_owner_.assert_single_thread_owner();
    events_from_syndrome(syndrome, events_scratch_);
    return decode(events_scratch_, 1, options);
}

void
TierChain::decode_syndrome(const PackedSyndrome &syndrome,
                           const Options &options, Result &out) const
{
    thread_owner_.assert_single_thread_owner();
    out.effort = 0;
    out.offchip = false;
    out.resolved = true;
    if (syndrome.none()) {
        // Nothing fired: tier 0 resolves trivially without running
        // (mirrors the byte walk's empty-events short-circuit, minus
        // the tier-0 call — its result is fully determined). The
        // correction stays empty, see the header note.
        out.tier_index = 0;
        out.tier = config_.tiers[0].kind;
        out.decode.correction.clear();
        out.decode.weight = 0;
        out.decode.effort = 0;
        out.decode.resolved = true;
        out.decode.defects = 0;
        return;
    }
    int observed_effort = 0;
    const size_t last = tiers_.size() - 1;
    for (size_t i = 0; i <= last; ++i) {
        const TierSpec &spec = config_.tiers[i];
        out.tier_index = static_cast<int>(i);
        out.tier = spec.kind;
        out.offchip = spec.offchip;
        if (options.stop_before_offchip && spec.offchip) {
            out.resolved = false;
            out.effort = observed_effort;
            out.decode.correction.clear();
            out.decode.weight = 0;
            out.decode.effort = 0;
            out.decode.resolved = true;
            out.decode.defects = syndrome.popcount();
            if (audit_deep()) {
                audit_packed_result(syndrome, options, out);
            }
            return;
        }
        tiers_[i]->decode_packed(syndrome, attempt_scratch_);
        if (attempt_scratch_.effort > observed_effort) {
            observed_effort = attempt_scratch_.effort;
        }
        const bool accept =
            attempt_scratch_.resolved &&
            (spec.escalation_threshold < 0 ||
             attempt_scratch_.effort <= spec.escalation_threshold);
        if (accept || i == last) {
            out.resolved = attempt_scratch_.resolved;
            out.effort = observed_effort;
            std::swap(out.decode, attempt_scratch_);
            if (audit_deep()) {
                audit_packed_result(syndrome, options, out);
            }
            return;
        }
    }
}

void
TierChain::audit_packed_result(const PackedSyndrome &syndrome,
                               const Options &options,
                               const Result &out) const
{
    syndrome.audit();
    std::vector<uint8_t> bytes;
    syndrome.to_bytes(bytes);
    const Result reference = decode_syndrome(bytes, options);
    BTWC_CHECK_MSG(reference.tier_index == out.tier_index &&
                       reference.tier == out.tier &&
                       reference.offchip == out.offchip &&
                       reference.resolved == out.resolved &&
                       reference.effort == out.effort,
                   "packed walk reaches the byte walk's escalation "
                   "decision");
    BTWC_CHECK_MSG(reference.decode.weight == out.decode.weight &&
                       reference.decode.defects == out.decode.defects &&
                       reference.decode.effort == out.decode.effort &&
                       reference.decode.resolved == out.decode.resolved,
                   "packed decode result matches the byte-path decode "
                   "(pooled-Result scratch reuse leaked state "
                   "otherwise)");
    BTWC_CHECK_MSG(reference.decode.correction == out.decode.correction,
                   "packed correction mask is bit-exact with the "
                   "byte path");
}

} // namespace btwc
