#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "decoders/decoder.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/** Which tier of the decode hierarchy resolved a signature. */
enum class DecoderTier : uint8_t
{
    Clique = 0,     ///< on-chip combinational logic (tier 0)
    UnionFind = 1,  ///< mid-tier cluster decoder (tier 1)
    Mwpm = 2,       ///< full matching decoder (final tier)
    Exact = 3,      ///< brute-force matching oracle (cross-validation)
    Lut = 4,        ///< syndrome-indexed lookup table (small d, O(1))
    /**
     * Sliding-window streaming MWPM (decoders/stream_window.hpp).
     * Stream-only: valid solely as the final tier of a `kind=stream`
     * scenario's chain (any Union-Find tiers before it screen whole
     * windows under the standard escalation contract). It is not a
     * batch `Decoder` backend, so `TierChain` refuses to construct a
     * chain containing it.
     */
    Stream = 5,
};

/** Number of DecoderTier enumerators (per-tier stats array size). */
constexpr int kNumDecoderTiers = 6;

/** Display name of a tier. */
const char *decoder_tier_name(DecoderTier tier);

/** One level of a decode hierarchy. */
struct TierSpec
{
    DecoderTier kind = DecoderTier::Clique;

    /**
     * Escalate past this tier when its decode reports
     * `Result::effort` above this value (even though it produced a
     * correction): the resolution was cheap but the signature was
     * non-local enough that a stronger decoder should confirm.
     * Negative = never escalate on effort. A tier that *declines*
     * (`Result::resolved == false`, e.g. Clique's COMPLEX verdict)
     * always escalates regardless of this threshold. The final tier
     * always has the last word.
     */
    int escalation_threshold = -1;

    /**
     * Whether the tier's decoder lives off-chip. Off-chip tiers are
     * what the bandwidth model provisions for; they are also the tiers
     * an `Oracle` off-chip policy may substitute (see
     * TierChain::Options::stop_before_offchip).
     */
    bool offchip = false;

    static TierSpec clique();
    static TierSpec union_find(int escalation_threshold = 2);
    static TierSpec mwpm();
    static TierSpec exact();
    static TierSpec lut();
    static TierSpec stream();
};

/** An ordered decode hierarchy configuration. */
struct TierChainConfig
{
    std::vector<TierSpec> tiers;

    /** The paper's baseline architecture: Clique -> MWPM. */
    static TierChainConfig legacy();

    /** The §8.1 deep hierarchy: Clique -> Union-Find -> MWPM. */
    static TierChainConfig deep(int uf_threshold = 2);

    /**
     * Parse a comma-separated tier spec, e.g. "clique,uf,mwpm" or
     * "clique,union-find:3,exact". Recognized tiers: clique | uf |
     * union-find | mwpm | exact | lut | stream; an optional ":<n>"
     * suffix sets the tier's escalation threshold (defaulting to
     * `uf_threshold` for Union-Find tiers). An empty spec yields the
     * legacy chain. The stream-only `stream` tier parses here so
     * kind=stream scenario specs can carry it, but a chain containing
     * it is rejected with a diagnostic at scenario validation
     * (non-stream kinds, api/scenario.cpp) and at TierChain
     * construction. Returns false on a malformed spec, leaving `out`
     * untouched and storing a diagnostic in `error` (when non-null).
     * Never terminates the process; the CLI exit-on-error behavior
     * lives in `tiers_from_flags` (common/flags.hpp).
     */
    static bool try_parse(const std::string &spec, int uf_threshold,
                          TierChainConfig *out, std::string *error);

    /**
     * As `try_parse`, but throws std::invalid_argument on a malformed
     * spec. Convenient for programmatic callers with exceptions.
     */
    static TierChainConfig parse(const std::string &spec,
                                 int uf_threshold = 2);

    /** Human-readable form, e.g. "clique>union-find(2)>mwpm". */
    std::string describe() const;

    /** True when any tier is the stream-only sliding-window tier. */
    bool contains_stream() const;
};

/**
 * A configurable decode hierarchy: ordered `Decoder` tiers with
 * per-tier escalation predicates (see TierSpec). This is the seam the
 * paper's §8.1 "deeper hierarchies" extension plugs into, and the one
 * `BtwcSystem` (core/system.hpp) and the Monte-Carlo harnesses
 * consume. File-level escalation contract: src/decoders/README.md.
 */
class TierChain
{
  public:
    /** Outcome of one hierarchical decode. */
    struct Result
    {
        int tier_index = 0;                     ///< chain position consulted last
        DecoderTier tier = DecoderTier::Clique; ///< its kind
        bool offchip = false;  ///< that tier lives off-chip
        /**
         * False only when the chain stopped before an off-chip tier
         * (Options::stop_before_offchip) or a trailing tier declined;
         * the caller owns the substitute resolution then.
         */
        bool resolved = true;
        /**
         * Largest `Decoder::Result::effort` observed across all
         * consulted tiers -- e.g. the Union-Find growth-iteration
         * count even when the chain escalated past it to MWPM.
         */
        int effort = 0;
        Decoder::Result decode;  ///< accepting tier's full result
    };

    struct Options
    {
        /**
         * Stop before *running* an off-chip tier: the caller will
         * substitute an oracle for it (OffchipPolicy::Oracle) or only
         * needs the on-chip classification. The returned Result names
         * the off-chip tier with `resolved == false`.
         */
        bool stop_before_offchip = false;
    };

    TierChain(const RotatedSurfaceCode &code, CheckType detector,
              TierChainConfig config);

    /** The check type this hierarchy decodes. */
    CheckType detector() const { return detector_; }

    /** Number of tiers. */
    size_t size() const { return tiers_.size(); }

    /** Spec of tier i. */
    const TierSpec &spec(size_t i) const { return config_.tiers[i]; }

    /** Decoder backend of tier i. */
    const Decoder &decoder(size_t i) const { return *tiers_[i]; }

    /** Active configuration. */
    const TierChainConfig &config() const { return config_; }

    /** Decode detection events through the hierarchy. */
    Result decode(const std::vector<DetectionEvent> &events, int rounds,
                  const Options &options) const;
    Result decode(const std::vector<DetectionEvent> &events,
                  int rounds) const
    {
        return decode(events, rounds, Options());
    }

    /**
     * Resume the hierarchy at tier `first_tier`: run tiers
     * [first_tier, last] with the normal escalation predicates. This
     * is how the async off-chip service (core/offchip_queue.hpp)
     * finishes a decode the on-chip walk stopped in front of
     * (`Options::stop_before_offchip` reports the stop position in
     * `Result::tier_index`): calling decode_from at that index with
     * default options yields exactly the result the synchronous
     * inline walk would have produced. `base_effort` seeds the
     * max-effort accumulator with what the earlier tiers observed.
     */
    Result decode_from(size_t first_tier,
                       const std::vector<DetectionEvent> &events,
                       int rounds, const Options &options,
                       int base_effort = 0) const;

    /**
     * Batched form of `decode_from` over independent event sets: tier
     * `first_tier` runs once via `Decoder::decode_batch` (amortizing
     * graph setup across the batch), and the rare entries it declines
     * or escalates-on-effort fall through to the deeper tiers
     * per-item. Results are bit-identical to calling `decode_from`
     * per entry.
     */
    std::vector<Result>
    decode_batch_from(size_t first_tier,
                      const std::vector<std::vector<DetectionEvent>> &batch,
                      int rounds) const;

    /** Single perfect-measurement round through the hierarchy. */
    Result decode_syndrome(const std::vector<uint8_t> &syndrome,
                           const Options &options) const;
    Result decode_syndrome(const std::vector<uint8_t> &syndrome) const
    {
        return decode_syndrome(syndrome, Options());
    }

    /**
     * Packed single-round walk — the per-cycle fast path. Tiers run
     * through `Decoder::decode_packed` (no event materialization;
     * Clique and LUT stay word-parallel end-to-end) with identical
     * escalation decisions to the byte walk, and `out` is overwritten
     * in place reusing its correction capacity, so steady-state cycles
     * allocate nothing. One packed-specific shape difference: when no
     * check fired, `out.decode.correction` is left *empty* rather than
     * num_data zeros (every consumer gates application on
     * `decode.defects > 0`). Not concurrency-safe on one instance
     * (pooled attempt scratch); concurrent shards own their chains.
     */
    void decode_syndrome(const PackedSyndrome &syndrome,
                         const Options &options, Result &out) const;
    Result decode_syndrome(const PackedSyndrome &syndrome,
                           const Options &options) const
    {
        Result out;
        decode_syndrome(syndrome, options, out);
        return out;
    }
    Result decode_syndrome(const PackedSyndrome &syndrome) const
    {
        return decode_syndrome(syndrome, Options());
    }

    /**
     * Verify the chain's structural invariants: a non-empty tier list
     * with one live decoder per spec, every decoder built for this
     * chain's detector, and escalation monotonicity — on-chip tiers
     * form a prefix, so once a signature leaves the chip it never
     * comes back (the assumption behind the off-chip resume contract
     * of decode_from and the queued service). Runs automatically from
     * the constructor at AuditLevel::Deep; throws CheckFailure.
     */
    void audit() const;

  private:
    /**
     * Deep-audit one packed decode: re-run the equivalent byte-path
     * walk and require a bit-identical Result. This machine-checks
     * both the packed/byte escalation equivalence and pooled-Result
     * statelessness (the swap-accept scratch reuse must not leak
     * state between cycles — a second decode of the same syndrome
     * through the other path yields the same answer).
     */
    void audit_packed_result(const PackedSyndrome &syndrome,
                             const Options &options,
                             const Result &out) const;

    CheckType detector_;
    TierChainConfig config_;
    std::vector<std::unique_ptr<Decoder>> tiers_;
    // Pooled scratch of the packed walk (swapped with out.decode on
    // accept so vector capacity ping-pongs between the two).
    mutable Decoder::Result attempt_scratch_;
    mutable std::vector<DetectionEvent> events_scratch_;
    /** Single-owner guard over the pooled scratch above (the
     * "concurrent shards own their chains" rule, machine-checked at
     * AuditLevel::Basic and above). */
    SingleThreadOwner thread_owner_;
};

} // namespace btwc
