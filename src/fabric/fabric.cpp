#include "fabric/fabric.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace btwc {

const char *
placement_kind_name(PlacementKind kind)
{
    switch (kind) {
      case PlacementKind::StaticHash:
        return "hash";
      case PlacementKind::LeastLoaded:
        return "least-loaded";
      case PlacementKind::HotIsolate:
        return "isolate";
    }
    return "?";
}

bool
parse_placement_kind(const std::string &value, PlacementKind *out)
{
    if (value == "hash" || value == "static-hash") {
        *out = PlacementKind::StaticHash;
    } else if (value == "least-loaded" || value == "least_loaded") {
        *out = PlacementKind::LeastLoaded;
    } else if (value == "isolate" || value == "hot-isolate" ||
               value == "hot_isolate") {
        *out = PlacementKind::HotIsolate;
    } else {
        return false;
    }
    return true;
}

namespace {

std::vector<int>
place_tenants(const FabricTopology &topology,
              const std::vector<double> &tenant_probs)
{
    const int num_links = topology.links;
    const int tenants = static_cast<int>(tenant_probs.size());
    std::vector<int> placement(static_cast<size_t>(tenants), 0);
    if (num_links <= 1) {
        return placement;
    }
    switch (topology.placement) {
      case PlacementKind::StaticHash:
        for (int q = 0; q < tenants; ++q) {
            placement[static_cast<size_t>(q)] = q % num_links;
        }
        break;
      case PlacementKind::LeastLoaded: {
        // Greedy static balancing on expected load: tenants placed in
        // index order onto the currently lightest link (ties to the
        // lowest index), using each tenant's p as its expected
        // escalation rate proxy.
        std::vector<double> load(static_cast<size_t>(num_links), 0.0);
        for (int q = 0; q < tenants; ++q) {
            int best = 0;
            for (int k = 1; k < num_links; ++k) {
                if (load[static_cast<size_t>(k)] <
                    load[static_cast<size_t>(best)]) {
                    best = k;
                }
            }
            placement[static_cast<size_t>(q)] = best;
            load[static_cast<size_t>(best)] +=
                tenant_probs[static_cast<size_t>(q)];
        }
        break;
      }
      case PlacementKind::HotIsolate: {
        const double min_p =
            tenants > 0 ? *std::min_element(tenant_probs.begin(),
                                            tenant_probs.end())
                        : 0.0;
        const int cold_links = num_links - 1;
        int cold_seen = 0;
        for (int q = 0; q < tenants; ++q) {
            if (tenant_probs[static_cast<size_t>(q)] > min_p) {
                placement[static_cast<size_t>(q)] = num_links - 1;
            } else {
                placement[static_cast<size_t>(q)] =
                    cold_seen % cold_links;
                ++cold_seen;
            }
        }
        break;
      }
    }
    return placement;
}

} // namespace

Fabric::Fabric(const FabricTopology &topology,
               const RotatedSurfaceCode &base_code,
               const TierChainConfig &tiers, OffchipQueueConfig link,
               const std::vector<double> &tenant_probs)
    : topology_(topology),
      placement_(place_tenants(topology, tenant_probs))
{
    BTWC_CHECK_MSG(topology.links >= 1,
                   "a fabric has at least one off-chip link");
    links_.reserve(static_cast<size_t>(topology.links));
    for (int k = 0; k < topology.links; ++k) {
        auto service = std::make_unique<SharedOffchipService>(
            base_code, tiers, link);
        service->set_scheduler(
            make_scheduler(topology.scheduler, topology.aging));
        links_.push_back(std::move(service));
    }
    // Lane derivation from the noise profile: cold tenants (at the
    // fleet-minimum p) get priority 1 / weight 2 / the full deadline
    // budget, hot ones priority 0 / weight 1 / a 2x budget -- so every
    // non-FIFO discipline (priority, EDF, weighted-fair) serves the
    // well-behaved majority ahead of the noisy patch flooding the
    // link. Uniform fleets have no hot tenants and every lane is
    // identical, keeping all disciplines order-equivalent to FIFO
    // there.
    const double min_p =
        tenant_probs.empty()
            ? 0.0
            : *std::min_element(tenant_probs.begin(),
                                tenant_probs.end());
    lanes_.reserve(tenant_probs.size());
    for (size_t q = 0; q < tenant_probs.size(); ++q) {
        TenantLane lane;
        const bool hot = tenant_probs[q] > min_p;
        lane.priority = hot ? 0 : 1;
        lane.weight = hot ? 1 : 2;
        lane.deadline = hot ? 2 * topology.deadline : topology.deadline;
        links_[static_cast<size_t>(placement_[q])]->set_tenant_lane(
            static_cast<int>(q), lane);
        lanes_.push_back(lane);  // kept for failover re-homing
    }
}

void
Fabric::set_fault_plan(const FaultPlan &plan)
{
    BTWC_CHECK_MSG(plan.enabled,
                   "set_fault_plan installs an enabled plan (possibly "
                   "the no-op 'none' plan)");
    plan_ = plan;
    for (size_t k = 0; k < links_.size(); ++k) {
        links_[k]->set_fault_injector(std::make_unique<FaultInjector>(
            plan, static_cast<int>(k)));
    }
    down_streak_.assign(links_.size(), 0);
}

void
Fabric::enable_shedding(bool on)
{
    for (const auto &service : links_) {
        service->enable_shedding(on);
    }
}

int
Fabric::link_of(int owner) const
{
    BTWC_CHECK_MSG(owner >= 0 &&
                       static_cast<size_t>(owner) < placement_.size(),
                   "placement covers every tenant of the fleet");
    return placement_[static_cast<size_t>(owner)];
}

void
Fabric::register_code(const RotatedSurfaceCode &code)
{
    for (const auto &service : links_) {
        service->register_code(code);
    }
}

TenantLane
Fabric::lane_of(int owner) const
{
    return links_[static_cast<size_t>(link_of(owner))]->lane_of(owner);
}

const std::vector<SharedOffchipService::Delivery> &
Fabric::step()
{
    landed_now_.clear();
    migrated_now_.clear();
    if (plan_.enabled && !plan_.surges.empty() && !placement_.empty()) {
        // Surge demand joins this cycle's fresh escalations, routed
        // through the live placement so each surge lands on exactly
        // one link (the one serving its tenant).
        surge_scratch_.clear();
        plan_.surges_at(links_[0]->queue().total_cycles(),
                        &surge_scratch_);
        for (const std::pair<int, uint64_t> &surge : surge_scratch_) {
            const int tenant =
                surge.first % static_cast<int>(placement_.size());
            links_[static_cast<size_t>(link_of(tenant))]
                ->enqueue_synthetic(tenant, surge.second);
        }
    }
    for (const auto &service : links_) {
        for (const SharedOffchipService::Delivery &landing :
             service->step()) {
            landed_now_.push_back(landing);
        }
    }
    if (topology_.migrate_threshold > 0) {
        maybe_migrate();
    }
    return landed_now_;
}

void
Fabric::maybe_migrate()
{
    // Update the per-link outage streaks for the cycle just stepped.
    for (size_t k = 0; k < links_.size(); ++k) {
        const FaultInjector *injector = links_[k]->fault_injector();
        const uint64_t stepped = links_[k]->queue().total_cycles() - 1;
        if (injector != nullptr && injector->link_down(stepped)) {
            ++down_streak_[k];
        } else {
            down_streak_[k] = 0;
        }
    }
    for (size_t k = 0; k < links_.size(); ++k) {
        if (down_streak_[k] < topology_.migrate_threshold &&
            links_[k]->queue().backlog() < topology_.migrate_threshold) {
            continue;
        }
        // Failover: re-home all of link k's tenants to the healthy
        // link with the least backlog (ties to the lowest index).
        // Outstanding requests stay on k and land from there; the
        // harness re-attaches the moved tenants before their next
        // escalation. Deterministic: purely a function of link state.
        int dest = -1;
        for (size_t j = 0; j < links_.size(); ++j) {
            if (j == k || down_streak_[j] > 0) {
                continue;
            }
            if (dest < 0 ||
                links_[j]->queue().backlog() <
                    links_[static_cast<size_t>(dest)]->queue().backlog()) {
                dest = static_cast<int>(j);
            }
        }
        if (dest < 0) {
            continue;  // nowhere healthy to go
        }
        for (size_t q = 0; q < placement_.size(); ++q) {
            if (placement_[q] != static_cast<int>(k)) {
                continue;
            }
            placement_[q] = dest;
            links_[static_cast<size_t>(dest)]->set_tenant_lane(
                static_cast<int>(q), lanes_[q]);
            migrated_now_.push_back(static_cast<int>(q));
            ++migrations_;
        }
    }
}

size_t
Fabric::pending() const
{
    size_t total = 0;
    for (const auto &service : links_) {
        total += service->pending();
    }
    return total;
}

uint64_t
Fabric::backlog() const
{
    uint64_t total = 0;
    for (const auto &service : links_) {
        total += service->queue().backlog();
    }
    return total;
}

void
Fabric::audit(uint64_t expected_enqueued) const
{
    uint64_t routed = 0;
    for (const auto &service : links_) {
        service->audit();
        // queue().enqueued() counts requests the link has stepped in;
        // fresh demand enqueued after the last step() is still only in
        // the payload FIFO, so add it for end-of-cycle conservation.
        routed += service->queue().enqueued();
        routed += service->pending() - service->queue().backlog() -
                  service->queue().in_flight();
        // Synthetic surge ballast was injected by the fault plan, not
        // shipped by the fleet; take it back out of the ledger.
        routed -= service->surge_enqueued();
    }
    BTWC_CHECK_MSG(routed == expected_enqueued,
                   "conservation across links: every escalation the "
                   "fleet shipped landed on exactly one link");
    for (const int k : placement_) {
        BTWC_CHECK_MSG(k >= 0 && static_cast<size_t>(k) < links_.size(),
                       "placement maps every tenant to a real link");
    }
}

} // namespace btwc
