#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/offchip_service.hpp"
#include "fabric/scheduler.hpp"
#include "faults/fault_plan.hpp"

namespace btwc {

/** Tenant-to-link placement policies of the decode fabric. */
enum class PlacementKind : uint8_t
{
    /** Link = tenant index mod K: oblivious, perfectly reproducible. */
    StaticHash = 0,
    /**
     * Assign tenants in index order to the link with the least
     * accumulated expected load (sum of placed tenants' p), ties to
     * the lowest link index. Static (decided at construction from the
     * noise profile), so placement stays deterministic and auditable.
     */
    LeastLoaded = 1,
    /**
     * Quarantine the hot tenants (p strictly above the fleet minimum)
     * on the last link and hash the cold rest over the others, so one
     * noisy patch cannot stall the whole machine's escalations. With
     * K = 1 everything shares the single link.
     */
    HotIsolate = 2,
};

/** Canonical name of a placement ("hash" | "least-loaded" | "isolate"). */
const char *placement_kind_name(PlacementKind kind);

/** Parse a placement name (accepts "static-hash"/"hot-isolate" too). */
bool parse_placement_kind(const std::string &value, PlacementKind *out);

/** Topology and policy of a decode fabric. */
struct FabricTopology
{
    int links = 1;  ///< number of off-chip links (K >= 1)
    SchedulerKind scheduler = SchedulerKind::Fifo;
    PlacementKind placement = PlacementKind::StaticHash;
    /**
     * Per-request deadline budget in cycles, applied to every tenant
     * lane (0 = no deadlines). Drives the EDF ordering and the
     * deadline-miss accounting of every discipline.
     */
    uint64_t deadline = 0;
    /** Priority-discipline aging parameter (make_scheduler). */
    uint64_t aging = 64;
    /**
     * Link-failover threshold (0 = static placement, the bit-exact
     * default): after `step()`, a link whose consecutive-outage streak
     * or end-of-cycle backlog reaches the threshold hands all its
     * tenants to the healthy link with the least backlog. Outstanding
     * requests stay on (and land from) the old link; only future
     * escalations move. The ROADMAP dynamic-placement residual.
     */
    uint64_t migrate_threshold = 0;
};

/**
 * A decode fabric: K `SharedOffchipService` links with a static
 * tenant-to-link placement and one scheduling discipline instance per
 * link. The single shared link of `fleet_demand_exact_stats` is the
 * K = 1, FIFO, uniform special case (bit-exact, pinned in tests).
 *
 * Tenant lanes are derived from the fleet's noise profile at
 * construction: cold tenants (p at the fleet minimum) ride a
 * higher-priority, heavier-weighted lane than hot ones, the deliberate
 * asymmetry that lets priority/weighted-fair disciplines shield
 * well-behaved tenants from a noisy patch's backlog (the SLO story of
 * the fig16-style provisioning curves). Every lane shares the
 * topology's deadline budget. The derivation is deterministic, so a
 * fabric run is reproducible for a fixed (cycles, threads, seed)
 * triple like every other harness.
 *
 * Tenants attach to their placed link via
 * `BtwcSystem::attach_shared_service(&fabric.link(fabric.link_of(q)), q)`
 * and keep their global tenant index as the owner tag, so deliveries
 * concatenated across links still route home unambiguously.
 */
class Fabric
{
  public:
    /**
     * Build the fabric for a fleet whose tenant q runs at
     * `tenant_probs[q]`. Every link gets `base_code` chains, the link
     * parameters, and its own discipline instance; heterogeneous
     * fleets additionally `register_code` their other distances.
     */
    Fabric(const FabricTopology &topology,
           const RotatedSurfaceCode &base_code,
           const TierChainConfig &tiers, OffchipQueueConfig link,
           const std::vector<double> &tenant_probs);

    const FabricTopology &topology() const { return topology_; }

    size_t num_links() const { return links_.size(); }

    /** Link serving tenant `owner` (static for the fabric's lifetime). */
    int link_of(int owner) const;

    SharedOffchipService &link(size_t k) { return *links_[k]; }
    const SharedOffchipService &link(size_t k) const { return *links_[k]; }

    /** Register an extra code distance on every link. */
    void register_code(const RotatedSurfaceCode &code);

    /** Lane assigned to tenant `owner` at construction. */
    TenantLane lane_of(int owner) const;

    /**
     * Install the chaos plan (src/faults/): one `FaultInjector` per
     * link (outages/spikes/drops keyed by link index) plus plan-level
     * surge routing through the placement. Must precede the first
     * enqueue. A plan with no firing clause leaves the fabric
     * bit-exact (the zero-fault contract).
     */
    void set_fault_plan(const FaultPlan &plan);

    /** Enable deadline load shedding on every link. */
    void enable_shedding(bool on);

    /** Tenants moved off a failed/overloaded link, cumulative. */
    uint64_t migrations() const { return migrations_; }

    /**
     * Tenants whose placement changed during the last `step()` — the
     * harness re-attaches each one to its new link before the next
     * cycle's escalations.
     */
    const std::vector<int> &migrated_now() const { return migrated_now_; }

    /**
     * Advance every link one machine cycle (in link order, after all
     * tenants stepped) and return the landings of all links
     * concatenated. The reference is valid until the next `step()`.
     */
    const std::vector<SharedOffchipService::Delivery> &step();

    /** Outstanding requests across every link. */
    size_t pending() const;

    /** End-of-cycle backlog summed across links. */
    uint64_t backlog() const;

    /**
     * Verify the fabric contracts: every per-link audit, placement
     * validity (each tenant's link in range, matching where its
     * requests actually went), and conservation across links -- the
     * links' enqueued totals sum to `expected_enqueued`, the
     * escalations the harness shipped, so no request is lost or
     * double-routed between links. Throws CheckFailure.
     */
    void audit(uint64_t expected_enqueued) const;

  private:
    /** Failover pass after a step (migrate_threshold > 0 only). */
    void maybe_migrate();

    FabricTopology topology_;
    // unique_ptr: SharedOffchipService is neither movable nor copyable
    // (TierChain holds lattice references), and links_ must not
    // invalidate the pointers tenants attach to.
    std::vector<std::unique_ptr<SharedOffchipService>> links_;
    std::vector<int> placement_;  ///< tenant -> link index
    std::vector<SharedOffchipService::Delivery> landed_now_;
    // Chaos mode (set_fault_plan / migrate_threshold).
    FaultPlan plan_;
    std::vector<TenantLane> lanes_;         ///< per tenant, for re-homing
    std::vector<uint64_t> down_streak_;     ///< per link, outage run length
    uint64_t migrations_ = 0;
    std::vector<int> migrated_now_;
    std::vector<std::pair<int, uint64_t>> surge_scratch_;
};

} // namespace btwc
