#include "fabric/harness.hpp"

#include <algorithm>
#include <array>
#include <map>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/stall.hpp"
#include "core/system.hpp"
#include "fabric/probe.hpp"
#include "sim/engine.hpp"
#include "surface/lattice.hpp"

namespace btwc {

void
TenantFabricStats::merge(const TenantFabricStats &other)
{
    link = other.link;  // placement is deterministic across shards
    enqueued += other.enqueued;
    landed += other.landed;
    suppressed += other.suppressed;
    deadline_misses += other.deadline_misses;
    probes += other.probes;
    failures += other.failures;
    retried += other.retried;
    degraded += other.degraded;
    dropped += other.dropped;
    shed += other.shed;
    canceled += other.canceled;
    delay.merge(other.delay);
}

void
LinkFabricStats::merge(const LinkFabricStats &other)
{
    enqueued += other.enqueued;
    served += other.served;
    landed += other.landed;
    stall_cycles += other.stall_cycles;
    work_cycles += other.work_cycles;
    max_backlog = std::max(max_backlog, other.max_backlog);
    deadline_misses += other.deadline_misses;
    outage_cycles += other.outage_cycles;
    dropped += other.dropped;
    duplicated += other.duplicated;
    corrupted += other.corrupted;
    shed += other.shed;
    canceled += other.canceled;
    stale_discards += other.stale_discards;
    surge_enqueued += other.surge_enqueued;
    surge_landed += other.surge_landed;
    delay.merge(other.delay);
}

void
FabricFaultStats::merge(const FabricFaultStats &other)
{
    outage_cycles += other.outage_cycles;
    dropped += other.dropped;
    duplicated += other.duplicated;
    corrupted += other.corrupted;
    shed += other.shed;
    canceled += other.canceled;
    stale_discards += other.stale_discards;
    surge_enqueued += other.surge_enqueued;
    surge_landed += other.surge_landed;
    retried += other.retried;
    degraded += other.degraded;
    nacks += other.nacks;
    duplicate_drops += other.duplicate_drops;
    migrations += other.migrations;
}

void
FabricStats::merge(const FabricStats &other)
{
    demand.merge(other.demand);
    queue_delay.merge(other.queue_delay);
    batch_sizes.merge(other.batch_sizes);
    backlog.merge(other.backlog);
    stall_cycles += other.stall_cycles;
    work_cycles += other.work_cycles;
    max_backlog = std::max(max_backlog, other.max_backlog);
    enqueued += other.enqueued;
    served += other.served;
    landed += other.landed;
    suppressed += other.suppressed;
    pending += other.pending;
    deadline_misses += other.deadline_misses;
    probes += other.probes;
    probe_failures += other.probe_failures;
    faults.merge(other.faults);
    if (per_link.size() < other.per_link.size()) {
        per_link.resize(other.per_link.size());
    }
    for (size_t k = 0; k < other.per_link.size(); ++k) {
        per_link[k].merge(other.per_link[k]);
    }
    if (per_tenant.size() < other.per_tenant.size()) {
        per_tenant.resize(other.per_tenant.size());
    }
    for (size_t q = 0; q < other.per_tenant.size(); ++q) {
        per_tenant[q].merge(other.per_tenant[q]);
    }
}

double
FabricStats::exec_time_increase() const
{
    return stall_execution_time_increase(stall_cycles, work_cycles);
}

FabricStats
run_fabric(const FabricFleetConfig &config)
{
    const ExactFleetConfig &fleet = config.fleet;
    validate_tenant_profile(fleet);
    // Codes are immutable and shared across shards, mirroring
    // fleet_demand_exact_stats (same construction order, same RNG
    // seeding) so the FIFO/K=1/uniform corner stays bit-exact with the
    // legacy shared-link path.
    const RotatedSurfaceCode code(fleet.distance);
    std::map<int, RotatedSurfaceCode> extra_codes;
    for (const int d : fleet.tenant_distances) {
        if (d != fleet.distance) {
            extra_codes.try_emplace(d, d);
        }
    }
    const auto code_of = [&](int q) -> const RotatedSurfaceCode & {
        const int d = tenant_distance(fleet, q);
        return d == fleet.distance ? code : extra_codes.at(d);
    };
    // The placement policies read the per-tenant noise profile.
    std::vector<double> probs;
    probs.reserve(static_cast<size_t>(fleet.num_qubits));
    for (int q = 0; q < fleet.num_qubits; ++q) {
        probs.push_back(tenant_prob(fleet, q));
    }
    return run_sharded<FabricStats>(
        fleet.cycles, fleet.threads, fleet.seed,
        [&](const Shard &shard) {
            Rng seeder(shard.seed);
            SystemConfig sconfig;
            sconfig.offchip = fleet.offchip;
            sconfig.tiers = fleet.tiers;
            sconfig.offchip_timeout = config.timeout;
            sconfig.offchip_retries = config.retries;
            std::vector<BtwcSystem> qubits;
            qubits.reserve(static_cast<size_t>(fleet.num_qubits));
            for (int q = 0; q < fleet.num_qubits; ++q) {
                qubits.emplace_back(
                    code_of(q),
                    NoiseParams::uniform(tenant_prob(fleet, q)),
                    sconfig, seeder.next_u64());
            }
            Fabric fabric(config.topology, code, fleet.tiers,
                          OffchipQueueConfig{fleet.offchip_bandwidth,
                                             fleet.offchip_latency,
                                             fleet.offchip_batch},
                          probs);
            for (const auto &[d, extra] : extra_codes) {
                fabric.register_code(extra);
            }
            if (config.faults.enabled) {
                fabric.set_fault_plan(config.faults);
            }
            if (config.shed) {
                fabric.enable_shedding(true);
            }
            for (size_t q = 0; q < qubits.size(); ++q) {
                qubits[q].attach_shared_service(
                    &fabric.link(static_cast<size_t>(
                        fabric.link_of(static_cast<int>(q)))),
                    static_cast<int>(q));
            }
            // One probe per code distance; probing copies frames, so
            // the run is bit-identical with probing off (tested).
            std::map<int, LogicalFailureProbe> probes_by_distance;
            probes_by_distance.try_emplace(fleet.distance, code);
            for (const auto &[d, extra] : extra_codes) {
                probes_by_distance.try_emplace(d, extra);
            }
            // Logical parity is cumulative (a flip persists in the
            // frame), so the failure indicator is the *change* since
            // the last probe: "a logical error happened in this
            // window". Frames start clean, hence parity false.
            std::vector<std::array<bool, 2>> last_parity(
                qubits.size(), {false, false});
            FabricStats stats;
            stats.per_link.resize(fabric.num_links());
            stats.per_tenant.resize(qubits.size());
            for (size_t q = 0; q < qubits.size(); ++q) {
                stats.per_tenant[q].link =
                    fabric.link_of(static_cast<int>(q));
            }
            uint64_t shipped = 0;  ///< escalations handed to the fabric
            for (uint64_t cycle = 0; cycle < shard.cycles; ++cycle) {
                // Demand counting matches fleet_demand_exact_stats:
                // qubits that *shipped* a fresh escalation this cycle;
                // re-flags of in-flight work count as suppressed.
                uint64_t offchip = 0;
                for (size_t q = 0; q < qubits.size(); ++q) {
                    const CycleReport report = qubits[q].step();
                    offchip += report.queued > 0 ? 1 : 0;
                    shipped += static_cast<uint64_t>(report.queued);
                    TenantFabricStats &mine = stats.per_tenant[q];
                    mine.enqueued +=
                        static_cast<uint64_t>(report.queued);
                    mine.suppressed +=
                        static_cast<uint64_t>(report.suppressed);
                }
                // All tenants stepped: advance every link one machine
                // cycle and route the landings home. Empty corrections
                // are shed nacks — delivered (they unblock the half)
                // but not counted as landings.
                for (const SharedOffchipService::Delivery &landing :
                     fabric.step()) {
                    qubits[static_cast<size_t>(landing.owner)]
                        .deliver_offchip_correction(landing.half,
                                                    landing.correction);
                    if (!landing.correction.empty()) {
                        ++stats
                              .per_tenant[static_cast<size_t>(
                                  landing.owner)]
                              .landed;
                    }
                }
                // Failover: re-attach migrated tenants so their next
                // escalation lands on the new link.
                for (const int q : fabric.migrated_now()) {
                    qubits[static_cast<size_t>(q)].attach_shared_service(
                        &fabric.link(
                            static_cast<size_t>(fabric.link_of(q))),
                        q);
                }
                stats.backlog.add(fabric.backlog());
                stats.demand.add(offchip);
                if (audit_deep()) {
                    fabric.audit(shipped);
                }
                if (config.probe_interval > 0 &&
                    (cycle + 1) % config.probe_interval == 0) {
                    for (size_t q = 0; q < qubits.size(); ++q) {
                        LogicalFailureProbe &probe =
                            probes_by_distance.at(tenant_distance(
                                fleet, static_cast<int>(q)));
                        const bool parity_x = probe.logical_parity(
                            qubits[q].frame(CheckType::X));
                        const bool parity_z = probe.logical_parity(
                            qubits[q].frame(CheckType::Z));
                        const bool flipped =
                            parity_x != last_parity[q][0] ||
                            parity_z != last_parity[q][1];
                        last_parity[q] = {parity_x, parity_z};
                        TenantFabricStats &mine = stats.per_tenant[q];
                        ++mine.probes;
                        ++stats.probes;
                        if (flipped) {
                            ++mine.failures;
                            ++stats.probe_failures;
                        }
                    }
                }
            }
            // Harvest the links and the per-tenant service stats.
            for (size_t k = 0; k < fabric.num_links(); ++k) {
                const SharedOffchipService &service = fabric.link(k);
                const OffchipQueue &link = service.queue();
                LinkFabricStats &mine = stats.per_link[k];
                mine.enqueued = link.enqueued();
                mine.served = link.served();
                mine.landed = link.landed();
                mine.stall_cycles = link.stall_cycles();
                mine.work_cycles = link.work_cycles();
                mine.max_backlog = link.max_backlog();
                mine.deadline_misses = service.deadline_misses();
                mine.outage_cycles = link.outage_cycles();
                mine.dropped = service.dropped();
                mine.duplicated = service.duplicated();
                mine.corrupted = service.corrupted();
                mine.shed = service.shed_requests();
                mine.canceled = service.canceled();
                mine.stale_discards = service.stale_discards();
                mine.surge_enqueued = service.surge_enqueued();
                mine.surge_landed = service.surge_landed();
                mine.delay = service.delay_histogram();
                stats.queue_delay.merge(service.delay_histogram());
                stats.batch_sizes.merge(link.batch_histogram());
                stats.stall_cycles += link.stall_cycles();
                stats.work_cycles += link.work_cycles();
                stats.max_backlog =
                    std::max(stats.max_backlog, link.max_backlog());
                stats.enqueued += link.enqueued();
                stats.served += link.served();
                stats.landed += link.landed();
                stats.deadline_misses += service.deadline_misses();
                stats.faults.outage_cycles += link.outage_cycles();
                stats.faults.dropped += service.dropped();
                stats.faults.duplicated += service.duplicated();
                stats.faults.corrupted += service.corrupted();
                stats.faults.shed += service.shed_requests();
                stats.faults.canceled += service.canceled();
                stats.faults.stale_discards += service.stale_discards();
                stats.faults.surge_enqueued += service.surge_enqueued();
                stats.faults.surge_landed += service.surge_landed();
                const std::vector<SharedOffchipService::TenantLinkStats>
                    &tenants = service.tenant_stats();
                for (size_t q = 0; q < tenants.size(); ++q) {
                    TenantFabricStats &mine_t = stats.per_tenant[q];
                    mine_t.deadline_misses +=
                        tenants[q].deadline_misses;
                    mine_t.dropped += tenants[q].dropped;
                    mine_t.shed += tenants[q].shed;
                    mine_t.canceled += tenants[q].canceled;
                    mine_t.delay.merge(tenants[q].delay);
                }
            }
            for (size_t q = 0; q < qubits.size(); ++q) {
                TenantFabricStats &mine = stats.per_tenant[q];
                mine.link = fabric.link_of(static_cast<int>(q));
                mine.retried = qubits[q].retried_decodes();
                mine.degraded = qubits[q].degraded_decodes();
                stats.faults.retried += mine.retried;
                stats.faults.degraded += mine.degraded;
                stats.faults.nacks += qubits[q].shared_nacks();
                stats.faults.duplicate_drops +=
                    qubits[q].duplicate_drops();
            }
            stats.faults.migrations = fabric.migrations();
            stats.pending = fabric.pending();
            for (const TenantFabricStats &mine : stats.per_tenant) {
                stats.suppressed += mine.suppressed;
            }
            return stats;
        });
}

} // namespace btwc
