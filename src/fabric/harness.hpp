#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "fabric/fabric.hpp"
#include "sim/fleet.hpp"

namespace btwc {

/**
 * Configuration of a fabric fleet run: an exact trace-driven fleet
 * (sim/fleet.hpp, including its per-tenant `(distance, p)` overrides)
 * whose escalations route through a decode `Fabric` instead of the
 * single shared link. `fleet.shared_link` is implied; the fleet's link
 * parameters (`offchip_latency` / `offchip_bandwidth` /
 * `offchip_batch`) apply to *each* of the fabric's links.
 */
struct FabricFleetConfig
{
    ExactFleetConfig fleet;
    FabricTopology topology;
    /**
     * Probe every tenant's logical failure state each `probe_interval`
     * cycles (0 = never): a memory-experiment-style MWPM closure on a
     * *copy* of each frame (fabric/probe.hpp), so probing never
     * perturbs the run. Per-tenant failures / probes is the logical
     * error rate the SLO curves report next to the delay percentiles.
     */
    uint64_t probe_interval = 32;
    /**
     * Chaos mode (src/faults/): the fault plan injected into every
     * link (`faults.enabled` gates installation — a disabled plan is
     * the bit-exact fault-free run), the tenants' give-up budget and
     * retry count (SystemConfig::offchip_timeout / offchip_retries),
     * and link-side deadline load shedding. Failover lives in
     * `topology.migrate_threshold`.
     */
    FaultPlan faults;
    uint64_t timeout = 0;
    int retries = 0;
    bool shed = false;
};

/** Per-tenant observables of a fabric run (index = tenant). */
struct TenantFabricStats
{
    int link = 0;  ///< placed link (identical across shards)
    uint64_t enqueued = 0;    ///< escalations handed to the fabric
    uint64_t landed = 0;      ///< corrections routed back
    uint64_t suppressed = 0;  ///< reconciliation-contract deferrals
    uint64_t deadline_misses = 0;
    uint64_t probes = 0;    ///< logical-failure probe closures taken
    uint64_t failures = 0;  ///< probes where either half had flipped
    // Chaos-mode outcomes (all zero on a fault-free run).
    uint64_t retried = 0;   ///< timed-out requests re-escalated
    uint64_t degraded = 0;  ///< on-chip UF fallback decodes
    uint64_t dropped = 0;   ///< deliveries lost on the down-link
    uint64_t shed = 0;      ///< requests shed past deadline
    uint64_t canceled = 0;  ///< requests canceled by give-ups
    /** Enqueue-to-landing delay of this tenant's corrections. */
    CountHistogram delay;

    void merge(const TenantFabricStats &other);
};

/** Per-link observables of a fabric run (index = link). */
struct LinkFabricStats
{
    uint64_t enqueued = 0;
    uint64_t served = 0;
    uint64_t landed = 0;
    uint64_t stall_cycles = 0;
    uint64_t work_cycles = 0;
    uint64_t max_backlog = 0;
    uint64_t deadline_misses = 0;
    // Chaos-mode accounting (all zero on a fault-free run).
    uint64_t outage_cycles = 0;
    uint64_t dropped = 0;
    uint64_t duplicated = 0;
    uint64_t corrupted = 0;
    uint64_t shed = 0;
    uint64_t canceled = 0;
    uint64_t stale_discards = 0;
    uint64_t surge_enqueued = 0;
    uint64_t surge_landed = 0;
    /** Service-side per-request delay of this link. */
    CountHistogram delay;

    void merge(const LinkFabricStats &other);
};

/**
 * Fleet-wide chaos-mode aggregate: the fault plan's injections and
 * the degradation machinery's responses, summed across links and
 * tenants. All-zero on a fault-free run (and omitted from reports
 * then), so the fault-free metrics stay byte-identical.
 */
struct FabricFaultStats
{
    uint64_t outage_cycles = 0;   ///< link-down cycles across links
    uint64_t dropped = 0;         ///< deliveries lost
    uint64_t duplicated = 0;      ///< deliveries duplicated
    uint64_t corrupted = 0;       ///< corrections byte-flipped
    uint64_t shed = 0;            ///< requests shed past deadline
    uint64_t canceled = 0;        ///< requests canceled by give-ups
    uint64_t stale_discards = 0;  ///< landings discarded after give-ups
    uint64_t surge_enqueued = 0;  ///< synthetic surge requests injected
    uint64_t surge_landed = 0;    ///< ... that consumed link service
    uint64_t retried = 0;         ///< tenant retries after timeouts
    uint64_t degraded = 0;        ///< on-chip UF fallback decodes
    uint64_t nacks = 0;           ///< shed nacks tenants received
    uint64_t duplicate_drops = 0; ///< duplicates tenants discarded
    uint64_t migrations = 0;      ///< tenants moved off failed links

    void merge(const FabricFaultStats &other);
};

/**
 * Aggregated observables of a fabric run. Counters are sums and
 * histograms bin-wise counts, so shard results `merge()` losslessly in
 * the sharded Monte-Carlo engine (deterministic for a fixed (cycles,
 * threads, seed) triple). The fleet-level fields mirror
 * `ExactFleetStats` shape-for-shape; with a FIFO scheduler, one link,
 * and a uniform fleet they are bit-exact with
 * `fleet_demand_exact_stats` on the equivalent `ExactFleetConfig`
 * (pinned in tests/test_fabric.cpp).
 */
struct FabricStats
{
    /** Per-cycle fresh demand (see ExactFleetStats::demand). */
    CountHistogram demand;
    /** Enqueue-to-landing delays, merged across links (service-side:
        per request even when a discipline re-orders service). */
    CountHistogram queue_delay;
    /** Served link-batch sizes, merged across links. */
    CountHistogram batch_sizes;
    /** End-of-cycle backlog summed across links, one sample/cycle. */
    CountHistogram backlog;
    uint64_t stall_cycles = 0;  ///< summed across links
    uint64_t work_cycles = 0;   ///< summed across links
    uint64_t max_backlog = 0;   ///< max single-link backlog observed
    uint64_t enqueued = 0;
    uint64_t served = 0;
    uint64_t landed = 0;
    uint64_t suppressed = 0;
    uint64_t pending = 0;  ///< outstanding when the run ended
    uint64_t deadline_misses = 0;
    uint64_t probes = 0;
    uint64_t probe_failures = 0;
    /** Chaos-mode aggregate (all zero on a fault-free run). */
    FabricFaultStats faults;
    std::vector<LinkFabricStats> per_link;
    std::vector<TenantFabricStats> per_tenant;

    void merge(const FabricStats &other);

    /** Fig. 16 x-axis across the fabric (stalls / work cycles). */
    double exec_time_increase() const;
};

/**
 * Run the fabric fleet: `fleet.num_qubits` full `BtwcSystem`
 * pipelines stepped in lockstep against a K-link decode fabric, with
 * periodic logical-failure probes. Shards the cycle budget over
 * `fleet.threads` workers, each simulating an independent fleet
 * instance; tenant construction order and RNG seeding mirror
 * `fleet_demand_exact_stats` exactly, which is what makes the
 * FIFO/K=1/uniform corner bit-exact with the legacy shared link.
 */
FabricStats run_fabric(const FabricFleetConfig &config);

} // namespace btwc
