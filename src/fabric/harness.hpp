#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "fabric/fabric.hpp"
#include "sim/fleet.hpp"

namespace btwc {

/**
 * Configuration of a fabric fleet run: an exact trace-driven fleet
 * (sim/fleet.hpp, including its per-tenant `(distance, p)` overrides)
 * whose escalations route through a decode `Fabric` instead of the
 * single shared link. `fleet.shared_link` is implied; the fleet's link
 * parameters (`offchip_latency` / `offchip_bandwidth` /
 * `offchip_batch`) apply to *each* of the fabric's links.
 */
struct FabricFleetConfig
{
    ExactFleetConfig fleet;
    FabricTopology topology;
    /**
     * Probe every tenant's logical failure state each `probe_interval`
     * cycles (0 = never): a memory-experiment-style MWPM closure on a
     * *copy* of each frame (fabric/probe.hpp), so probing never
     * perturbs the run. Per-tenant failures / probes is the logical
     * error rate the SLO curves report next to the delay percentiles.
     */
    uint64_t probe_interval = 32;
};

/** Per-tenant observables of a fabric run (index = tenant). */
struct TenantFabricStats
{
    int link = 0;  ///< placed link (identical across shards)
    uint64_t enqueued = 0;    ///< escalations handed to the fabric
    uint64_t landed = 0;      ///< corrections routed back
    uint64_t suppressed = 0;  ///< reconciliation-contract deferrals
    uint64_t deadline_misses = 0;
    uint64_t probes = 0;    ///< logical-failure probe closures taken
    uint64_t failures = 0;  ///< probes where either half had flipped
    /** Enqueue-to-landing delay of this tenant's corrections. */
    CountHistogram delay;

    void merge(const TenantFabricStats &other);
};

/** Per-link observables of a fabric run (index = link). */
struct LinkFabricStats
{
    uint64_t enqueued = 0;
    uint64_t served = 0;
    uint64_t landed = 0;
    uint64_t stall_cycles = 0;
    uint64_t work_cycles = 0;
    uint64_t max_backlog = 0;
    uint64_t deadline_misses = 0;
    /** Service-side per-request delay of this link. */
    CountHistogram delay;

    void merge(const LinkFabricStats &other);
};

/**
 * Aggregated observables of a fabric run. Counters are sums and
 * histograms bin-wise counts, so shard results `merge()` losslessly in
 * the sharded Monte-Carlo engine (deterministic for a fixed (cycles,
 * threads, seed) triple). The fleet-level fields mirror
 * `ExactFleetStats` shape-for-shape; with a FIFO scheduler, one link,
 * and a uniform fleet they are bit-exact with
 * `fleet_demand_exact_stats` on the equivalent `ExactFleetConfig`
 * (pinned in tests/test_fabric.cpp).
 */
struct FabricStats
{
    /** Per-cycle fresh demand (see ExactFleetStats::demand). */
    CountHistogram demand;
    /** Enqueue-to-landing delays, merged across links (service-side:
        per request even when a discipline re-orders service). */
    CountHistogram queue_delay;
    /** Served link-batch sizes, merged across links. */
    CountHistogram batch_sizes;
    /** End-of-cycle backlog summed across links, one sample/cycle. */
    CountHistogram backlog;
    uint64_t stall_cycles = 0;  ///< summed across links
    uint64_t work_cycles = 0;   ///< summed across links
    uint64_t max_backlog = 0;   ///< max single-link backlog observed
    uint64_t enqueued = 0;
    uint64_t served = 0;
    uint64_t landed = 0;
    uint64_t suppressed = 0;
    uint64_t pending = 0;  ///< outstanding when the run ended
    uint64_t deadline_misses = 0;
    uint64_t probes = 0;
    uint64_t probe_failures = 0;
    std::vector<LinkFabricStats> per_link;
    std::vector<TenantFabricStats> per_tenant;

    void merge(const FabricStats &other);

    /** Fig. 16 x-axis across the fabric (stalls / work cycles). */
    double exec_time_increase() const;
};

/**
 * Run the fabric fleet: `fleet.num_qubits` full `BtwcSystem`
 * pipelines stepped in lockstep against a K-link decode fabric, with
 * periodic logical-failure probes. Shards the cycle budget over
 * `fleet.threads` workers, each simulating an independent fleet
 * instance; tenant construction order and RNG seeding mirror
 * `fleet_demand_exact_stats` exactly, which is what makes the
 * FIFO/K=1/uniform corner bit-exact with the legacy shared link.
 */
FabricStats run_fabric(const FabricFleetConfig &config);

} // namespace btwc
