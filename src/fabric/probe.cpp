#include "fabric/probe.hpp"

#include "common/check.hpp"

namespace btwc {

LogicalFailureProbe::LogicalFailureProbe(const RotatedSurfaceCode &code)
{
    const CheckType error_types[2] = {CheckType::X, CheckType::Z};
    decoders_.reserve(2);
    for (const CheckType err : error_types) {
        decoders_.push_back(
            std::make_unique<MwpmDecoder>(code, detector_of_error(err)));
    }
}

bool
LogicalFailureProbe::logical_parity(const ErrorFrame &frame)
{
    frame.measure_perfect(syndrome_);
    if (frame.syndrome_clear()) {
        return frame.logical_flipped();
    }
    MwpmDecoder &decoder =
        *decoders_[static_cast<size_t>(frame.error_type())];
    const Decoder::Result result = decoder.decode_syndrome(syndrome_);
    ErrorFrame residual = frame;
    residual.apply_mask(result.correction);
    BTWC_CHECK_MSG(residual.syndrome_clear(),
                   "an MWPM correction clears the probed syndrome "
                   "(every defect is matched)");
    return residual.logical_flipped();
}

} // namespace btwc
