#pragma once

#include <memory>
#include <vector>

#include "matching/mwpm.hpp"
#include "surface/frame.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Memory-experiment-style logical readout for a running pipeline:
 * would this frame's residual error flip the logical operator if the
 * experiment ended now?
 *
 * The closure is the standard memory-experiment readout: measure the
 * frame's syndrome perfectly, decode it with full-accuracy MWPM, apply
 * the correction to a copy of the frame, and read the logical
 * indicator off the (now syndrome-clear) residual. Probing a *copy*
 * keeps the probe an observer: the live pipeline's frames, decoders,
 * and RNG streams are untouched, so a probed run is bit-identical to
 * an unprobed one — the property that lets the fabric harness report
 * per-tenant logical error rates alongside the queueing observables
 * without perturbing them (tested).
 *
 * The parity is cumulative over the run (a logical flip persists in
 * the frame), so a *rate* comes from differencing: the fabric harness
 * probes on a fixed interval and counts a failure whenever the parity
 * changed since the previous probe — "a logical error happened in this
 * window", the per-window failure indicator a memory experiment reads
 * at its final round.
 *
 * One probe instance serves every tenant of one code distance (it
 * holds an MWPM decoder per error type); like the decoders it wraps,
 * it is not concurrency-safe — each engine shard owns its own.
 */
class LogicalFailureProbe
{
  public:
    explicit LogicalFailureProbe(const RotatedSurfaceCode &code);

    /**
     * True when `frame`'s error, closed out by a perfect-measurement
     * MWPM decode, flips the logical operator. The frame must belong
     * to the probe's code.
     */
    bool logical_parity(const ErrorFrame &frame);

  private:
    // unique_ptr: MwpmDecoder is not movable (it owns per-lattice
    // matching state), and the probe needs one per error type.
    std::vector<std::unique_ptr<MwpmDecoder>> decoders_;
    std::vector<uint8_t> syndrome_;  ///< measurement scratch
};

} // namespace btwc
