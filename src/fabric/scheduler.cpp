#include "fabric/scheduler.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace btwc {

const char *
scheduler_kind_name(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Fifo:
        return "fifo";
      case SchedulerKind::Priority:
        return "priority";
      case SchedulerKind::Deadline:
        return "deadline";
      case SchedulerKind::WeightedFair:
        return "wfq";
    }
    return "?";
}

bool
parse_scheduler_kind(const std::string &value, SchedulerKind *out)
{
    if (value == "fifo") {
        *out = SchedulerKind::Fifo;
    } else if (value == "priority") {
        *out = SchedulerKind::Priority;
    } else if (value == "deadline" || value == "edf") {
        *out = SchedulerKind::Deadline;
    } else if (value == "wfq" || value == "weighted-fair" ||
               value == "weighted_fair") {
        *out = SchedulerKind::WeightedFair;
    } else {
        return false;
    }
    return true;
}

uint64_t
FabricScheduler::starvation_bound(int owners, uint64_t bandwidth,
                                  const LaneExtremes &lanes) const
{
    // Baseline bound shared by the order-preserving-ish disciplines:
    // the backlog never exceeds 2 * owners (one request per (owner,
    // half)), a work-conserving link drains >= bandwidth per cycle,
    // and a generous 2x + slack absorbs the fresh arrivals that may
    // jump ahead within the discipline's reordering window.
    const uint64_t backlog =
        2 * static_cast<uint64_t>(owners < 1 ? 1 : owners);
    const uint64_t drain = bandwidth < 1 ? 1 : bandwidth;
    uint64_t bound = 2 * ((backlog + drain - 1) / drain) + 16;
    // EDF: arrivals with shorter deadline budgets can overtake, but
    // only those arriving within the budget span of the victim's own
    // deadline — after that every later arrival's deadline is larger.
    bound += lanes.max_deadline - lanes.min_deadline;
    return bound;
}

namespace {

/**
 * Strict FIFO through the scheduler hook: always the oldest waiting
 * request. `waiting` is kept in arrival order by the service, so this
 * is index 0 — the lockstep reference the FIFO-vs-legacy equivalence
 * tests pin.
 */
class FifoScheduler final : public FabricScheduler
{
  public:
    SchedulerKind kind() const override { return SchedulerKind::Fifo; }

    size_t pick(const std::vector<SchedView> &waiting,
                uint64_t cycle) override
    {
        (void)cycle;
        BTWC_DCHECK(!waiting.empty());
        return 0;
    }
};

/**
 * Priority lanes with backlog-age aging: the effective priority of a
 * waiting request is its lane priority plus one level per
 * `aging_cycles` cycles waited, ties broken by arrival order. The
 * aging term is what bounds starvation: once a request has waited
 * aging_cycles * (priority span + 1) cycles its effective priority
 * exceeds every fresh arrival's, and only the similarly-aged (a
 * bounded set, backlog <= 2 * owners) can still precede it.
 */
class PriorityScheduler final : public FabricScheduler
{
  public:
    explicit PriorityScheduler(uint64_t aging_cycles)
        : aging_(aging_cycles < 1 ? 1 : aging_cycles)
    {
    }

    SchedulerKind kind() const override
    {
        return SchedulerKind::Priority;
    }

    size_t pick(const std::vector<SchedView> &waiting,
                uint64_t cycle) override
    {
        BTWC_DCHECK(!waiting.empty());
        size_t best = 0;
        int64_t best_key = effective(waiting[0], cycle);
        for (size_t i = 1; i < waiting.size(); ++i) {
            const int64_t key = effective(waiting[i], cycle);
            // Strict > keeps the earliest arrival on ties: `waiting`
            // is in ascending seq order.
            if (key > best_key) {
                best = i;
                best_key = key;
            }
        }
        return best;
    }

    uint64_t starvation_bound(int owners, uint64_t bandwidth,
                              const LaneExtremes &lanes) const override
    {
        const int64_t span = static_cast<int64_t>(lanes.max_priority) -
                             static_cast<int64_t>(lanes.min_priority);
        return aging_ * static_cast<uint64_t>(span + 1) +
               FabricScheduler::starvation_bound(owners, bandwidth,
                                                 lanes);
    }

  private:
    int64_t effective(const SchedView &view, uint64_t cycle) const
    {
        const uint64_t age =
            cycle >= view.arrival_cycle ? cycle - view.arrival_cycle : 0;
        return static_cast<int64_t>(view.priority) +
               static_cast<int64_t>(age / aging_);
    }

    uint64_t aging_;
};

/**
 * Earliest deadline first. A request's deadline is its arrival cycle
 * plus its lane's deadline budget; a lane without a budget (0) wants
 * service "as soon as possible" relative to its arrival, so its key
 * degrades to the arrival cycle — which makes EDF over deadline-free
 * lanes coincide with FIFO. EDF ages naturally (deadlines are fixed
 * at arrival while fresh arrivals' deadlines keep growing), so its
 * starvation bound is the baseline plus the deadline span.
 */
class DeadlineScheduler final : public FabricScheduler
{
  public:
    SchedulerKind kind() const override
    {
        return SchedulerKind::Deadline;
    }

    size_t pick(const std::vector<SchedView> &waiting,
                uint64_t cycle) override
    {
        (void)cycle;
        BTWC_DCHECK(!waiting.empty());
        size_t best = 0;
        uint64_t best_key = key_of(waiting[0]);
        for (size_t i = 1; i < waiting.size(); ++i) {
            const uint64_t key = key_of(waiting[i]);
            if (key < best_key) {
                best = i;
                best_key = key;
            }
        }
        return best;
    }

  private:
    static uint64_t key_of(const SchedView &view)
    {
        return view.deadline_cycle > 0 ? view.deadline_cycle
                                       : view.arrival_cycle;
    }
};

/**
 * Weighted-fair queuing over tenant lanes (start-time fair queuing
 * with integer virtual time): every tenant owns a virtual finish
 * time; serving one of its requests advances it by kWfqScale /
 * weight, and the scheduler always serves the waiting tenant with the
 * smallest virtual finish. The max(vfinish, vnow) catch-up stops an
 * idle tenant from banking unbounded credit, so a flooding tenant is
 * throttled to its weight share without starving anyone (audited
 * against the weight-ratio bound).
 */
class WeightedFairScheduler final : public FabricScheduler
{
  public:
    SchedulerKind kind() const override
    {
        return SchedulerKind::WeightedFair;
    }

    size_t pick(const std::vector<SchedView> &waiting,
                uint64_t cycle) override
    {
        (void)cycle;
        BTWC_DCHECK(!waiting.empty());
        // vnow = the smallest virtual finish among waiting tenants:
        // the catch-up floor for tenants returning from idle.
        uint64_t vnow = UINT64_MAX;
        for (const SchedView &view : waiting) {
            vnow = std::min(vnow, vfinish_of(view.owner));
        }
        size_t best = 0;
        uint64_t best_key = vfinish_of(waiting[0].owner);
        uint64_t best_seq = waiting[0].seq;
        for (size_t i = 1; i < waiting.size(); ++i) {
            const uint64_t key = vfinish_of(waiting[i].owner);
            // Tie-break on seq: two requests of one owner (its two
            // halves) share a vfinish, and distinct owners can
            // collide after a catch-up.
            if (key < best_key ||
                (key == best_key && waiting[i].seq < best_seq)) {
                best = i;
                best_key = key;
                best_seq = waiting[i].seq;
            }
        }
        const SchedView &chosen = waiting[best];
        const int weight = chosen.weight < 1 ? 1 : chosen.weight;
        uint64_t &vfinish = vfinish_slot(chosen.owner);
        vfinish = std::max(vfinish, vnow) + kWfqScale /
                  static_cast<uint64_t>(weight);
        return best;
    }

    uint64_t starvation_bound(int owners, uint64_t bandwidth,
                              const LaneExtremes &lanes) const override
    {
        // A waiting tenant is bypassed at most (max_weight /
        // min_weight) times per competitor before its own virtual
        // finish is minimal; scale the baseline by that ratio.
        const uint64_t min_weight =
            lanes.min_weight < 1 ? 1 : static_cast<uint64_t>(
                                           lanes.min_weight);
        const uint64_t max_weight =
            lanes.max_weight < 1 ? 1 : static_cast<uint64_t>(
                                           lanes.max_weight);
        const uint64_t ratio = (max_weight + min_weight - 1) / min_weight;
        return FabricScheduler::starvation_bound(owners, bandwidth,
                                                 lanes) *
               (ratio + 1);
    }

  private:
    /** Quantum of one weight-1 service (divisible by small weights). */
    static constexpr uint64_t kWfqScale = 720720;

    uint64_t vfinish_of(int owner) const
    {
        const size_t index = static_cast<size_t>(owner);
        return index < vfinish_.size() ? vfinish_[index] : 0;
    }

    uint64_t &vfinish_slot(int owner)
    {
        const size_t index = static_cast<size_t>(owner);
        if (index >= vfinish_.size()) {
            vfinish_.resize(index + 1, 0);
        }
        return vfinish_[index];
    }

    std::vector<uint64_t> vfinish_;
};

} // namespace

std::unique_ptr<FabricScheduler>
make_scheduler(SchedulerKind kind, uint64_t aging_cycles)
{
    switch (kind) {
      case SchedulerKind::Fifo:
        return std::make_unique<FifoScheduler>();
      case SchedulerKind::Priority:
        return std::make_unique<PriorityScheduler>(aging_cycles);
      case SchedulerKind::Deadline:
        return std::make_unique<DeadlineScheduler>();
      case SchedulerKind::WeightedFair:
        return std::make_unique<WeightedFairScheduler>();
    }
    return nullptr;
}

} // namespace btwc
