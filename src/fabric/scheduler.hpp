#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace btwc {

/**
 * Link scheduling disciplines of the decode fabric (src/fabric/).
 *
 * `Fifo` is the paper's baseline and the bit-exactness anchor: a
 * `SharedOffchipService` driving its serve selection through a
 * `FifoScheduler` behaves identically to the legacy strict-FIFO path
 * (pinned in tests/test_fabric.cpp). The other disciplines re-order
 * *which* waiting requests enter service; they never change *how
 * many* do (work conservation), so the link's backlog/stall/served
 * accounting is discipline-invariant and only the per-request delay
 * (and therefore per-tenant fidelity) moves.
 */
enum class SchedulerKind : uint8_t
{
    Fifo = 0,          ///< strict arrival order across owners
    Priority = 1,      ///< tenant priority lanes with backlog-age aging
    Deadline = 2,      ///< earliest deadline first (EDF)
    WeightedFair = 3,  ///< weighted-fair queuing over tenant lanes
};

/** Canonical name of a discipline ("fifo" | "priority" | ...). */
const char *scheduler_kind_name(SchedulerKind kind);

/** Parse a discipline name (accepts "edf" and "wfq" aliases). */
bool parse_scheduler_kind(const std::string &value, SchedulerKind *out);

/**
 * Per-tenant scheduling parameters, registered on the link via
 * `SharedOffchipService::set_tenant_lane`. The decode fabric derives
 * them from the fleet's noise profile (fabric.hpp); unregistered
 * tenants run at the defaults below.
 */
struct TenantLane
{
    /** Higher = served earlier under `Priority`. */
    int priority = 0;
    /** Relative service share under `WeightedFair` (>= 1). */
    int weight = 1;
    /**
     * Deadline budget in cycles: a request enqueued at cycle t wants
     * its correction landed by t + deadline. Drives the `Deadline`
     * ordering and the per-tenant deadline-miss accounting of every
     * discipline. 0 = no deadline (never counted as missed).
     */
    uint64_t deadline = 0;
};

/**
 * Scheduling metadata of one waiting request — what a scheduler may
 * legitimately look at. Payloads, halves, and corrections stay inside
 * the service; a discipline that inspected decode content would break
 * the accounting-only contract that keeps audits metrics-invariant.
 */
struct SchedView
{
    int owner = 0;
    uint64_t seq = 0;            ///< link-wide arrival stamp
    uint64_t arrival_cycle = 0;  ///< link cycle of the enqueue
    uint64_t deadline_cycle = 0; ///< arrival + lane deadline; 0 = none
    int priority = 0;            ///< lane priority
    int weight = 1;              ///< lane weight
};

/** Lane extremes across a link's registered tenants (audit input). */
struct LaneExtremes
{
    int min_priority = 0;
    int max_priority = 0;
    int min_weight = 1;
    int max_weight = 1;
    uint64_t min_deadline = 0;
    uint64_t max_deadline = 0;
};

/**
 * Pluggable serve-selection discipline of a `SharedOffchipService`
 * link (the ROADMAP's "priority/deadline scheduling hooks").
 *
 * Contract: each service cycle the link computes how many requests
 * enter service (`min(bandwidth, backlog)` — the discipline has no
 * say in the count, only the order) and calls `pick` that many times.
 * `waiting` is always non-empty and ordered by arrival (ascending
 * seq); the chosen entry is removed before the next call. A pick must
 * be a pure function of the views, the cycle, and the scheduler's own
 * deterministic state — no randomness, no payload access — so that a
 * fabric run stays bit-reproducible for a fixed (cycles, threads,
 * seed) triple like every other harness.
 */
class FabricScheduler
{
  public:
    virtual ~FabricScheduler() = default;

    virtual SchedulerKind kind() const = 0;

    /** Canonical discipline name (scheduler_kind_name(kind())). */
    const char *name() const { return scheduler_kind_name(kind()); }

    /**
     * Index into `waiting` of the request entering service next at
     * link cycle `cycle`. Ties break toward the smallest sequence
     * number (arrival order), keeping every discipline deterministic.
     */
    virtual size_t pick(const std::vector<SchedView> &waiting,
                        uint64_t cycle) = 0;

    /**
     * Sound upper bound, in cycles, on how long any request may wait
     * before entering service on a link with `bandwidth` served
     * requests per cycle (>= 1), `owners` tenants (so the backlog is
     * bounded at 2 * owners by the one-request-per-(owner, half)
     * contract), and tenant lanes within `lanes`. The service audit
     * checks every waiting request against this bound ("no starvation
     * beyond the aging bound"); the bounds are deliberately loose —
     * sound, not tight — so they hold for adversarial arrival
     * patterns (tested with one tenant flooding a narrow link).
     */
    virtual uint64_t starvation_bound(int owners, uint64_t bandwidth,
                                      const LaneExtremes &lanes) const;
};

/**
 * Build a discipline instance. `aging_cycles` parameterizes the
 * `Priority` discipline's backlog-age aging: a waiting request gains
 * one effective priority level per `aging_cycles` cycles waited, so
 * no priority gap can starve a tenant for more than
 * aging_cycles * (gap + 1) cycles (audited). Must be >= 1; the other
 * disciplines ignore it.
 */
std::unique_ptr<FabricScheduler> make_scheduler(SchedulerKind kind,
                                                uint64_t aging_cycles);

} // namespace btwc
