#include "faults/fault_plan.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/parse.hpp"

namespace btwc {

namespace {

void
set_error(std::string *error, const std::string &message)
{
    if (error != nullptr) {
        *error = message;
    }
}

/** Split `text` on `sep`, keeping empty fields (they diagnose). */
std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        const size_t end = text.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(text.substr(start));
            return out;
        }
        out.push_back(text.substr(start, end - start));
        start = end + 1;
    }
}

bool
parse_window(const std::string &clause,
             const std::vector<std::string> &fields, uint64_t *period,
             uint64_t *duration, std::string *error)
{
    int64_t p = 0;
    int64_t d = 0;
    if (!parse_i64(fields[1], &p) || p < 1 ||
        !parse_i64(fields[2], &d) || d < 1 || d >= p) {
        set_error(error, "bad fault window '" + clause +
                             "'; expected <period>:<duration> with "
                             "1 <= duration < period");
        return false;
    }
    *period = static_cast<uint64_t>(p);
    *duration = static_cast<uint64_t>(d);
    return true;
}

bool
parse_link_field(const std::string &clause, const std::string &field,
                 int *link, std::string *error)
{
    int64_t k = 0;
    if (!parse_i64(field, &k) || k < -1) {
        set_error(error, "bad link index in fault clause '" + clause +
                             "'; expected an integer >= -1 (-1 = every "
                             "link)");
        return false;
    }
    *link = static_cast<int>(k);
    return true;
}

bool
parse_rate(const std::string &clause, const std::string &field,
           double *rate, std::string *error)
{
    double p = 0.0;
    if (!parse_f64(field, &p) || !(p >= 0.0 && p <= 1.0)) {
        set_error(error, "bad fault probability in '" + clause +
                             "'; expected a value in [0, 1]");
        return false;
    }
    *rate = p;
    return true;
}

/** Whether the recurring window (period, duration) is active. The
 * first window opens at cycle `period`, so a run always has a clean
 * fault-free prefix to establish steady state. */
bool
window_active(uint64_t cycle, uint64_t period, uint64_t duration)
{
    return period > 0 && cycle >= period && cycle % period < duration;
}

/** Round-trip double rendering (cf. api/report.cpp's format_double;
 * re-implemented here because src/faults/ sits below src/api/). */
std::string
format_rate(double v)
{
    char buf[64];
    for (const int precision : {15, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        double back = 0.0;
        if (parse_f64(buf, &back) && back == v) {
            break;
        }
    }
    return buf;
}

} // namespace

bool
FaultPlan::any_faults() const
{
    return !outages.empty() || !spikes.empty() || !surges.empty() ||
           drop > 0.0 || duplicate > 0.0 || corrupt > 0.0;
}

bool
FaultPlan::try_parse(const std::string &text, FaultPlan *out,
                     std::string *error)
{
    FaultPlan plan;
    plan.enabled = true;
    if (text.empty()) {
        set_error(error, "empty faults= plan; use 'none' for the "
                         "explicit zero-fault plan");
        return false;
    }
    for (const std::string &clause : split(text, ';')) {
        const std::vector<std::string> fields = split(clause, ':');
        const std::string &head = fields[0];
        if (head == "none") {
            if (fields.size() != 1) {
                set_error(error, "'none' takes no fields");
                return false;
            }
            continue;
        }
        if (head == "outage") {
            if (fields.size() != 3 && fields.size() != 4) {
                set_error(error,
                          "bad clause '" + clause +
                              "'; expected "
                              "outage:<period>:<duration>[:<link>]");
                return false;
            }
            OutageSpec outage;
            if (!parse_window(clause, fields, &outage.period,
                              &outage.duration, error)) {
                return false;
            }
            if (fields.size() == 4 &&
                !parse_link_field(clause, fields[3], &outage.link,
                                  error)) {
                return false;
            }
            plan.outages.push_back(outage);
            continue;
        }
        if (head == "spike") {
            if (fields.size() != 4 && fields.size() != 5) {
                set_error(
                    error,
                    "bad clause '" + clause +
                        "'; expected "
                        "spike:<period>:<duration>:<extra>[:<link>]");
                return false;
            }
            SpikeSpec spike;
            if (!parse_window(clause, fields, &spike.period,
                              &spike.duration, error)) {
                return false;
            }
            int64_t extra = 0;
            if (!parse_i64(fields[3], &extra) || extra < 1) {
                set_error(error, "bad spike extra latency in '" +
                                     clause +
                                     "'; expected an integer >= 1");
                return false;
            }
            spike.extra = static_cast<uint64_t>(extra);
            if (fields.size() == 5 &&
                !parse_link_field(clause, fields[4], &spike.link,
                                  error)) {
                return false;
            }
            plan.spikes.push_back(spike);
            continue;
        }
        if (head == "drop" || head == "dup" || head == "corrupt") {
            if (fields.size() != 2) {
                set_error(error, "bad clause '" + clause +
                                     "'; expected " + head + ":<p>");
                return false;
            }
            double *rate = head == "drop"
                               ? &plan.drop
                               : (head == "dup" ? &plan.duplicate
                                                : &plan.corrupt);
            if (!parse_rate(clause, fields[1], rate, error)) {
                return false;
            }
            continue;
        }
        if (head == "surge") {
            if (fields.size() != 4 && fields.size() != 5) {
                set_error(
                    error,
                    "bad clause '" + clause +
                        "'; expected "
                        "surge:<period>:<duration>:<count>[:<tenant>]");
                return false;
            }
            SurgeSpec surge;
            if (!parse_window(clause, fields, &surge.period,
                              &surge.duration, error)) {
                return false;
            }
            int64_t count = 0;
            if (!parse_i64(fields[3], &count) || count < 1) {
                set_error(error, "bad surge count in '" + clause +
                                     "'; expected an integer >= 1");
                return false;
            }
            surge.count = static_cast<uint64_t>(count);
            if (fields.size() == 5) {
                int64_t tenant = 0;
                if (!parse_i64(fields[4], &tenant) || tenant < 0) {
                    set_error(error,
                              "bad surge tenant in '" + clause +
                                  "'; expected an integer >= 0");
                    return false;
                }
                surge.tenant = static_cast<int>(tenant);
            }
            plan.surges.push_back(surge);
            continue;
        }
        if (head == "fseed") {
            int64_t n = 0;
            if (fields.size() != 2 || !parse_i64(fields[1], &n) ||
                n < 0) {
                set_error(error, "bad clause '" + clause +
                                     "'; expected fseed:<n> with "
                                     "n >= 0");
                return false;
            }
            plan.seed = static_cast<uint64_t>(n);
            continue;
        }
        set_error(error,
                  "unknown fault clause '" + clause +
                      "'; expected outage | spike | drop | dup | "
                      "corrupt | surge | fseed | none "
                      "(see src/api/README.md)");
        return false;
    }
    *out = std::move(plan);
    return true;
}

std::string
FaultPlan::to_string() const
{
    std::string out;
    const auto emit = [&out](const std::string &clause) {
        if (!out.empty()) {
            out += ';';
        }
        out += clause;
    };
    for (const OutageSpec &outage : outages) {
        std::string clause = "outage:" + std::to_string(outage.period) +
                             ':' + std::to_string(outage.duration);
        if (outage.link != -1) {
            clause += ':' + std::to_string(outage.link);
        }
        emit(clause);
    }
    for (const SpikeSpec &spike : spikes) {
        std::string clause = "spike:" + std::to_string(spike.period) +
                             ':' + std::to_string(spike.duration) +
                             ':' + std::to_string(spike.extra);
        if (spike.link != -1) {
            clause += ':' + std::to_string(spike.link);
        }
        emit(clause);
    }
    if (drop > 0.0) {
        emit("drop:" + format_rate(drop));
    }
    if (duplicate > 0.0) {
        emit("dup:" + format_rate(duplicate));
    }
    if (corrupt > 0.0) {
        emit("corrupt:" + format_rate(corrupt));
    }
    for (const SurgeSpec &surge : surges) {
        std::string clause = "surge:" + std::to_string(surge.period) +
                             ':' + std::to_string(surge.duration) +
                             ':' + std::to_string(surge.count);
        if (surge.tenant != 0) {
            clause += ':' + std::to_string(surge.tenant);
        }
        emit(clause);
    }
    if (seed != kDefaultSeed) {
        emit("fseed:" + std::to_string(seed));
    }
    if (out.empty()) {
        out = "none";
    }
    return out;
}

void
FaultPlan::surges_at(uint64_t cycle,
                     std::vector<std::pair<int, uint64_t>> *out) const
{
    for (const SurgeSpec &surge : surges) {
        if (window_active(cycle, surge.period, surge.duration)) {
            out->emplace_back(surge.tenant, surge.count);
        }
    }
}

FaultInjector::FaultInjector(const FaultPlan &plan, int link)
    : plan_(plan), link_(link)
{
    BTWC_CHECK_MSG(link >= 0, "injectors are built per real link");
}

bool
FaultInjector::link_down(uint64_t cycle) const
{
    for (const OutageSpec &outage : plan_.outages) {
        if ((outage.link == -1 || outage.link == link_) &&
            window_active(cycle, outage.period, outage.duration)) {
            return true;
        }
    }
    return false;
}

uint64_t
FaultInjector::extra_latency(uint64_t cycle) const
{
    uint64_t extra = 0;
    for (const SpikeSpec &spike : plan_.spikes) {
        if ((spike.link == -1 || spike.link == link_) &&
            window_active(cycle, spike.period, spike.duration) &&
            spike.extra > extra) {
            extra = spike.extra;
        }
    }
    return extra;
}

bool
FaultInjector::hash_bernoulli(uint64_t salt, uint64_t index,
                              double p) const
{
    if (p <= 0.0) {
        return false;
    }
    const uint64_t key = plan_.seed ^
                         (static_cast<uint64_t>(link_) << 40) ^
                         (salt << 56) ^ index;
    // Top 53 bits -> uniform double in [0, 1), the xoshiro idiom.
    const double u =
        static_cast<double>(fault_mix(key) >> 11) * 0x1.0p-53;
    return u < p;
}

bool
FaultInjector::drop_delivery(uint64_t index) const
{
    return hash_bernoulli(1, index, plan_.drop);
}

bool
FaultInjector::duplicate_delivery(uint64_t index) const
{
    return hash_bernoulli(2, index, plan_.duplicate);
}

bool
FaultInjector::corrupt_delivery(uint64_t index) const
{
    return hash_bernoulli(3, index, plan_.corrupt);
}

size_t
FaultInjector::corrupt_byte(uint64_t index, size_t size) const
{
    BTWC_CHECK_MSG(size > 0, "corruption flips a byte of a non-empty "
                             "correction");
    const uint64_t key = plan_.seed ^
                         (static_cast<uint64_t>(link_) << 40) ^
                         (uint64_t{4} << 56) ^ index;
    return static_cast<size_t>(fault_mix(key) % size);
}

} // namespace btwc
