#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace btwc {

/**
 * Deterministic fault-injection plan for the off-chip link machinery
 * (src/faults/): what can go wrong, when, and with which probability.
 *
 * A plan is a set of clauses over the link's own cycle counter and a
 * per-delivery hash stream, so every fault decision is a pure function
 * of (plan seed, link index, cycle / delivery index) — no draw ever
 * touches the simulation's main `Rng` stream. That independence is the
 * structural zero-fault contract: attaching a plan whose clauses never
 * fire (`faults=none`, or all rates zero) leaves frames, delivery
 * order, RNG stream, and histograms bit-exact with the unfaulted path
 * (pinned in tests/test_faults.cpp).
 *
 * Grammar (the `faults=` scenario key; clauses ';'-separated, fields
 * ':'-separated, see src/api/README.md):
 *
 *     outage:<period>:<duration>[:<link>]        link dead for
 *         `duration` cycles out of every `period` (starting at cycle
 *         `period`); link -1 (the default) hits every link
 *     spike:<period>:<duration>:<extra>[:<link>] +`extra` cycles of
 *         service latency during the window
 *     drop:<p>      each landing delivery is lost with probability p
 *     dup:<p>       each landing delivery is delivered twice
 *     corrupt:<p>   one byte of the landing correction is flipped
 *     surge:<period>:<duration>:<count>[:<tenant>]  `count` synthetic
 *         requests per cycle charged to `tenant`'s lane while active
 *     fseed:<n>     seed of the fault hash stream
 *     none          explicitly empty plan (the zero-fault arm)
 */
struct OutageSpec
{
    uint64_t period = 0;    ///< window recurrence (cycles; > duration)
    uint64_t duration = 0;  ///< down cycles per window (>= 1)
    int link = -1;          ///< affected link; -1 = every link
};

/** A latency-spike window (same clock as OutageSpec). */
struct SpikeSpec
{
    uint64_t period = 0;
    uint64_t duration = 0;
    uint64_t extra = 0;  ///< extra service latency while active
    int link = -1;
};

/** A per-tenant synthetic demand surge window. */
struct SurgeSpec
{
    uint64_t period = 0;
    uint64_t duration = 0;
    uint64_t count = 1;  ///< synthetic requests per active cycle
    int tenant = 0;      ///< charged tenant (clamped by the caller)
};

struct FaultPlan
{
    /** Default fault hash seed (overridden by `fseed:<n>`). */
    static constexpr uint64_t kDefaultSeed = 0xb7dcf011;

    std::vector<OutageSpec> outages;
    std::vector<SpikeSpec> spikes;
    double drop = 0.0;       ///< per-delivery loss probability
    double duplicate = 0.0;  ///< per-delivery duplication probability
    double corrupt = 0.0;    ///< per-delivery corruption probability
    std::vector<SurgeSpec> surges;
    uint64_t seed = kDefaultSeed;
    /**
     * True once a `faults=` clause was parsed (or a plan was attached
     * programmatically). An enabled plan installs the injector even
     * when no clause can ever fire — that is the no-op plan the
     * bit-exactness tests run through the full fault plumbing.
     */
    bool enabled = false;

    /** Whether any clause can ever fire. */
    bool any_faults() const;

    /**
     * Parse the clause grammar above. Returns false on a malformed
     * plan, leaving `out` untouched and storing a diagnostic in
     * `error` (when non-null). An accepted plan has `enabled` set.
     */
    static bool try_parse(const std::string &text, FaultPlan *out,
                          std::string *error);

    /**
     * Canonical clause string (outages, spikes, drop, dup, corrupt,
     * surges, fseed — defaults omitted; "none" when nothing can
     * fire). `try_parse(plan.to_string())` round-trips every valid
     * plan, which is what lets `ScenarioSpec::to_string` embed it.
     */
    std::string to_string() const;

    /**
     * Append every surge active at `cycle` as a (tenant, count) pair.
     * Plan-level (link-agnostic): the caller that owns the tenant →
     * link placement routes each surge to the right service, so a
     * multi-link fabric never double-applies a surge.
     */
    void surges_at(uint64_t cycle,
                   std::vector<std::pair<int, uint64_t>> *out) const;
};

/**
 * SplitMix64-style finalizer used for every per-delivery fault
 * decision. Deliberately not the simulation `Rng` (common/rng.hpp):
 * fault draws keyed by (seed, link, delivery index) consume nothing
 * from the main stream, which is what makes the zero-fault contract
 * structural rather than coincidental.
 */
inline uint64_t
fault_mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Per-link view of a `FaultPlan`: pure deterministic predicates over
 * the link's cycle counter and its monotone landed-delivery index.
 * Stateless by design — two injectors built from the same (plan,
 * link) answer identically, and audits may query them freely without
 * perturbing anything.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, int link);

    const FaultPlan &plan() const { return plan_; }
    int link() const { return link_; }

    /** Whether this link is inside an outage window at `cycle`. */
    bool link_down(uint64_t cycle) const;

    /** Extra service latency at `cycle` (max over active spikes). */
    uint64_t extra_latency(uint64_t cycle) const;

    /** Whether landing delivery `index` is lost on the down-link. */
    bool drop_delivery(uint64_t index) const;

    /** Whether landing delivery `index` is delivered twice. */
    bool duplicate_delivery(uint64_t index) const;

    /** Whether landing delivery `index` lands corrupted. */
    bool corrupt_delivery(uint64_t index) const;

    /** Which byte of a `size`-byte correction flips (size >= 1). */
    size_t corrupt_byte(uint64_t index, size_t size) const;

  private:
    /** Bernoulli(p) keyed by (seed, link, salt, index). */
    bool hash_bernoulli(uint64_t salt, uint64_t index, double p) const;

    FaultPlan plan_;
    int link_ = 0;
};

} // namespace btwc
