#include "matching/blossom.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace btwc {

namespace {
constexpr int64_t kInf = int64_t(1) << 62;
}

MaxWeightMatching::MaxWeightMatching(int n)
{
    reset(n);
}

void
MaxWeightMatching::reset(int n)
{
    BTWC_CHECK(n >= 0);
    n_ = n;
    n_x_ = n;
    const int size = 2 * n_ + 1;
    if (capacity_ < size) {
        // Grow path (rare): allocate and fully initialize. Edge
        // endpoints are slot invariants, so later resets only need to
        // clear weights.
        capacity_ = size;
        g_.assign(size, std::vector<Edge>(size));
        for (int u = 0; u < size; ++u) {
            for (int v = 0; v < size; ++v) {
                g_[u][v] = Edge{u, v, 0};
            }
        }
        lab_.assign(size, 0);
        match_.assign(size, 0);
        slack_.assign(size, 0);
        st_.assign(size, 0);
        pa_.assign(size, 0);
        s_.assign(size, -1);
        vis_.assign(size, 0);
        visit_stamp_ = 0;
        flower_.assign(size, {});
        // Rows sized for the largest n this capacity can host, so a
        // smaller later instance never outgrows them.
        flower_from_.assign(size, std::vector<int>(n_ + 1, 0));
        if (audit_deep()) {
            audit_slots(true);
        }
        return;
    }
    // Reuse path: restore the canonical slot state `Edge{u, v, 0}`
    // over the region this instance uses. Clearing the weight alone is
    // not enough — `add_blossom` copies edges into blossom-slot rows
    // (overwriting their endpoint fields), and a slot that served as a
    // blossom for one instance can be a real vertex for the next.
    // Entries beyond `size` from a larger earlier instance are never
    // read (every loop is bounded by n_ / n_x_ <= 2n+1), and solve()
    // reinitializes all per-run state over the full capacity.
    for (int u = 0; u < size; ++u) {
        Edge *row = g_[u].data();
        for (int v = 0; v < size; ++v) {
            row[v] = Edge{u, v, 0};
        }
    }
    // The visit stamp must restart with its array: a persistent pooled
    // matcher would otherwise march the int stamp toward overflow over
    // millions of decodes (fresh instances restarted it implicitly).
    visit_stamp_ = 0;
    std::fill(vis_.begin(), vis_.end(), 0);
    if (audit_deep()) {
        audit_slots(true);
    }
}

void
MaxWeightMatching::audit_slots(bool expect_cleared) const
{
    const int size = 2 * n_ + 1;
    BTWC_CHECK_MSG(capacity_ >= size &&
                       static_cast<int>(g_.size()) >= size,
                   "matcher capacity covers the active instance");
    for (int u = 0; u < size; ++u) {
        const Edge *row = g_[u].data();
        for (int v = 0; v < size; ++v) {
            BTWC_CHECK_MSG(row[v].u == u && row[v].v == v,
                           "blossom slot endpoints must be canonical "
                           "after reset");
            if (expect_cleared) {
                BTWC_CHECK_MSG(row[v].w == 0,
                               "reset must clear every edge weight");
            }
        }
    }
}

void
MaxWeightMatching::set_weight(int u, int v, int64_t w)
{
    BTWC_AUDIT(u != v && u >= 0 && v >= 0 && u < n_ && v < n_ &&
               w >= 0);
    g_[u + 1][v + 1].w = w;
    g_[v + 1][u + 1].w = w;
}

int64_t
MaxWeightMatching::edge_delta(const Edge &e) const
{
    return lab_[e.u] + lab_[e.v] - g_[e.u][e.v].w * 2;
}

void
MaxWeightMatching::update_slack(int u, int x)
{
    if (!slack_[x] || edge_delta(g_[u][x]) < edge_delta(g_[slack_[x]][x])) {
        slack_[x] = u;
    }
}

void
MaxWeightMatching::set_slack(int x)
{
    slack_[x] = 0;
    for (int u = 1; u <= n_; ++u) {
        if (g_[u][x].w > 0 && st_[u] != x && s_[st_[u]] == 0) {
            update_slack(u, x);
        }
    }
}

void
MaxWeightMatching::queue_push(int x)
{
    if (x <= n_) {
        queue_.push_back(x);
        return;
    }
    for (const int sub : flower_[x]) {
        queue_push(sub);
    }
}

void
MaxWeightMatching::set_st(int x, int b)
{
    st_[x] = b;
    if (x <= n_) {
        return;
    }
    for (const int sub : flower_[x]) {
        set_st(sub, b);
    }
}

int
MaxWeightMatching::get_pr(int b, int xr)
{
    auto &f = flower_[b];
    const int pr = static_cast<int>(
        std::find(f.begin(), f.end(), xr) - f.begin());
    if (pr % 2 == 1) {
        // Walk the cycle the other way so the path to xr is even.
        std::reverse(f.begin() + 1, f.end());
        return static_cast<int>(f.size()) - pr;
    }
    return pr;
}

void
MaxWeightMatching::set_match(int u, int v)
{
    match_[u] = g_[u][v].v;
    if (u <= n_) {
        return;
    }
    const Edge e = g_[u][v];
    const int xr = flower_from_[u][e.u];
    const int pr = get_pr(u, xr);
    for (int i = 0; i < pr; ++i) {
        set_match(flower_[u][i], flower_[u][i ^ 1]);
    }
    set_match(xr, v);
    std::rotate(flower_[u].begin(), flower_[u].begin() + pr,
                flower_[u].end());
}

void
MaxWeightMatching::augment(int u, int v)
{
    for (;;) {
        const int xnv = st_[match_[u]];
        set_match(u, v);
        if (!xnv) {
            return;
        }
        set_match(xnv, st_[pa_[xnv]]);
        u = st_[pa_[xnv]];
        v = xnv;
    }
}

int
MaxWeightMatching::get_lca(int u, int v)
{
    ++visit_stamp_;
    while (u || v) {
        if (u != 0) {
            if (vis_[u] == visit_stamp_) {
                return u;
            }
            vis_[u] = visit_stamp_;
            u = st_[match_[u]];
            if (u) {
                u = st_[pa_[u]];
            }
        }
        std::swap(u, v);
    }
    return 0;
}

void
MaxWeightMatching::add_blossom(int u, int lca, int v)
{
    int b = n_ + 1;
    while (b <= n_x_ && st_[b]) {
        ++b;
    }
    if (b > n_x_) {
        ++n_x_;
    }
    lab_[b] = 0;
    s_[b] = 0;
    match_[b] = match_[lca];
    flower_[b].clear();
    flower_[b].push_back(lca);
    for (int x = u, y; x != lca; x = st_[pa_[y]]) {
        flower_[b].push_back(x);
        flower_[b].push_back(y = st_[match_[x]]);
        queue_push(y);
    }
    std::reverse(flower_[b].begin() + 1, flower_[b].end());
    for (int x = v, y; x != lca; x = st_[pa_[y]]) {
        flower_[b].push_back(x);
        flower_[b].push_back(y = st_[match_[x]]);
        queue_push(y);
    }
    set_st(b, b);
    for (int x = 1; x <= n_x_; ++x) {
        g_[b][x].w = 0;
        g_[x][b].w = 0;
    }
    for (int x = 1; x <= n_; ++x) {
        flower_from_[b][x] = 0;
    }
    for (const int xs : flower_[b]) {
        for (int x = 1; x <= n_x_; ++x) {
            if (g_[xs][x].w > 0 &&
                (g_[b][x].w == 0 ||
                 edge_delta(g_[xs][x]) < edge_delta(g_[b][x]))) {
                g_[b][x] = g_[xs][x];
                g_[x][b] = g_[x][xs];
            }
        }
        for (int x = 1; x <= n_; ++x) {
            if (flower_from_[xs][x]) {
                flower_from_[b][x] = xs;
            }
        }
    }
    set_slack(b);
}

void
MaxWeightMatching::expand_blossom(int b)
{
    for (const int sub : flower_[b]) {
        set_st(sub, sub);
    }
    const int xr = flower_from_[b][g_[b][pa_[b]].u];
    const int pr = get_pr(b, xr);
    for (int i = 0; i < pr; i += 2) {
        const int xs = flower_[b][i];
        const int xns = flower_[b][i + 1];
        pa_[xs] = g_[xns][xs].u;
        s_[xs] = 1;
        s_[xns] = 0;
        slack_[xs] = 0;
        set_slack(xns);
        queue_push(xns);
    }
    s_[xr] = 1;
    pa_[xr] = pa_[b];
    for (size_t i = static_cast<size_t>(pr) + 1; i < flower_[b].size();
         ++i) {
        const int xs = flower_[b][i];
        s_[xs] = -1;
        set_slack(xs);
    }
    st_[b] = 0;
}

bool
MaxWeightMatching::on_found_edge(const Edge &e)
{
    const int u = st_[e.u];
    const int v = st_[e.v];
    if (s_[v] == -1) {
        // Grow: attach the free matched pair (v, match(v)) to the tree.
        pa_[v] = e.u;
        s_[v] = 1;
        const int nu = st_[match_[v]];
        slack_[v] = 0;
        slack_[nu] = 0;
        s_[nu] = 0;
        queue_push(nu);
    } else if (s_[v] == 0) {
        const int lca = get_lca(u, v);
        if (!lca) {
            augment(u, v);
            augment(v, u);
            return true;
        }
        add_blossom(u, lca, v);
    }
    return false;
}

bool
MaxWeightMatching::matching_phase()
{
    std::fill(s_.begin(), s_.end(), -1);
    std::fill(slack_.begin(), slack_.end(), 0);
    queue_.clear();
    queue_head_ = 0;
    for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && !match_[x]) {
            pa_[x] = 0;
            s_[x] = 0;
            queue_push(x);
        }
    }
    if (queue_.empty()) {
        return false;
    }
    for (;;) {
        while (queue_head_ < queue_.size()) {
            const int u = queue_[queue_head_++];
            if (s_[st_[u]] == 1) {
                continue;
            }
            for (int v = 1; v <= n_; ++v) {
                if (g_[u][v].w > 0 && st_[u] != st_[v]) {
                    if (edge_delta(g_[u][v]) == 0) {
                        if (on_found_edge(g_[u][v])) {
                            return true;
                        }
                    } else {
                        update_slack(u, st_[v]);
                    }
                }
            }
        }
        int64_t d = kInf;
        for (int b = n_ + 1; b <= n_x_; ++b) {
            if (st_[b] == b && s_[b] == 1) {
                d = std::min(d, lab_[b] / 2);
            }
        }
        for (int x = 1; x <= n_x_; ++x) {
            if (st_[x] == x && slack_[x]) {
                if (s_[x] == -1) {
                    d = std::min(d, edge_delta(g_[slack_[x]][x]));
                } else if (s_[x] == 0) {
                    d = std::min(d, edge_delta(g_[slack_[x]][x]) / 2);
                }
            }
        }
        for (int u = 1; u <= n_; ++u) {
            if (s_[st_[u]] == 0) {
                if (lab_[u] <= d) {
                    return false;
                }
                lab_[u] -= d;
            } else if (s_[st_[u]] == 1) {
                lab_[u] += d;
            }
        }
        for (int b = n_ + 1; b <= n_x_; ++b) {
            if (st_[b] == b) {
                if (s_[b] == 0) {
                    lab_[b] += d * 2;
                } else if (s_[b] == 1) {
                    lab_[b] -= d * 2;
                }
            }
        }
        queue_.clear();
        queue_head_ = 0;
        for (int x = 1; x <= n_x_; ++x) {
            if (st_[x] == x && slack_[x] && st_[slack_[x]] != x &&
                edge_delta(g_[slack_[x]][x]) == 0) {
                if (on_found_edge(g_[slack_[x]][x])) {
                    return true;
                }
            }
        }
        for (int b = n_ + 1; b <= n_x_; ++b) {
            if (st_[b] == b && s_[b] == 1 && lab_[b] == 0) {
                expand_blossom(b);
            }
        }
    }
}

std::vector<int>
MaxWeightMatching::solve()
{
    std::fill(match_.begin(), match_.end(), 0);
    n_x_ = n_;
    for (int u = 0; u < static_cast<int>(st_.size()); ++u) {
        st_[u] = u <= n_ ? u : 0;
        flower_[u].clear();
    }
    int64_t w_max = 0;
    for (int u = 1; u <= n_; ++u) {
        for (int v = 1; v <= n_; ++v) {
            flower_from_[u][v] = (u == v ? u : 0);
            w_max = std::max(w_max, g_[u][v].w);
        }
    }
    for (int u = 1; u <= n_; ++u) {
        lab_[u] = w_max;
    }
    while (matching_phase()) {
    }
    total_weight_ = 0;
    for (int u = 1; u <= n_; ++u) {
        if (match_[u] && match_[u] < u) {
            total_weight_ += g_[u][match_[u]].w;
        }
    }
    std::vector<int> mate(n_, -1);
    for (int u = 1; u <= n_; ++u) {
        mate[u - 1] = match_[u] ? match_[u] - 1 : -1;
    }
    return mate;
}

std::vector<int>
min_weight_perfect_matching(int n,
                            const std::vector<std::vector<int64_t>> &weights)
{
    BTWC_CHECK(n % 2 == 0);
    if (n == 0) {
        return {};
    }
    int64_t total = 0;
    for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
            if (weights[u][v] >= 0) {
                total += weights[u][v];
            }
        }
    }
    const int64_t big = total + 1;
    MaxWeightMatching solver(n);
    for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
            if (weights[u][v] >= 0) {
                solver.set_weight(u, v, big - weights[u][v]);
            }
        }
    }
    std::vector<int> mate = solver.solve();
    for (int u = 0; u < n; ++u) {
        if (mate[u] < 0) {
            return {};
        }
    }
    return mate;
}

} // namespace btwc
