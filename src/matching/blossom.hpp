#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace btwc {

/**
 * Maximum-weight matching in a general graph, O(V^3).
 *
 * Classic primal-dual weighted blossom algorithm (Galil's exposition):
 * dual variables on vertices and (shrunken) odd cycles, alternating
 * trees grown over tight edges, with grow / augment / shrink / expand
 * phases. Weights are non-negative integers; a zero weight means "no
 * edge". The implementation doubles all weights internally so that all
 * dual variables stay integral.
 *
 * This is the engine behind the paper's off-chip Minimum Weight
 * Perfect Matching decoder [19]; `min_weight_perfect_matching` below
 * performs the standard reduction. Correctness is property-tested
 * against the brute-force oracle in `matching/exact.hpp`.
 */
class MaxWeightMatching
{
  public:
    /** Create an empty solver; call `reset(n)` before use. */
    MaxWeightMatching() = default;

    /** Create an empty graph on n vertices (0-indexed externally). */
    explicit MaxWeightMatching(int n);

    /**
     * Re-arm the solver for a fresh n-vertex instance, reusing the
     * grown capacity of every internal array (in particular the dense
     * (2n+1)^2 edge matrix, the dominant per-solve allocation): once
     * the instance has seen its largest n, subsequent reset/solve
     * cycles are allocation-free. All edge weights are cleared; the
     * result is indistinguishable from a freshly constructed
     * MaxWeightMatching(n). This is what lets `MwpmDecoder` keep one
     * persistent matcher per decoder instance instead of paying the
     * matrix allocation on every decode.
     */
    void reset(int n);

    /** Set the weight of edge (u, v); w > 0 required, w == 0 removes. */
    void set_weight(int u, int v, int64_t w);

    /**
     * Run the matching. Returns the mate of each vertex (or -1) and
     * stores the total weight retrievable via `total_weight()`.
     */
    std::vector<int> solve();

    /** Total weight of the matching computed by `solve()`. */
    int64_t total_weight() const { return total_weight_; }

    /**
     * Verify the pooled-slot invariant over the active (2n+1)^2
     * region: every edge slot holds canonical endpoints Edge{u, v, .}
     * (add_blossom overwrites them; reset must restore them), and
     * with `expect_cleared` additionally zero weight — the exact
     * postcondition of reset(). Runs automatically at the end of
     * reset() under AuditLevel::Deep. Throws CheckFailure.
     */
    void audit_slots(bool expect_cleared) const;

  private:
    struct Edge
    {
        int u = 0;
        int v = 0;
        int64_t w = 0;
    };

    int64_t edge_delta(const Edge &e) const;
    void update_slack(int u, int x);
    void set_slack(int x);
    void queue_push(int x);
    void set_st(int x, int b);
    int get_pr(int b, int xr);
    void set_match(int u, int v);
    void augment(int u, int v);
    int get_lca(int u, int v);
    void add_blossom(int u, int lca, int v);
    void expand_blossom(int b);
    bool on_found_edge(const Edge &e);
    bool matching_phase();

    int n_ = 0;        ///< number of real vertices
    int n_x_ = 0;      ///< real vertices plus live blossoms
    int capacity_ = 0; ///< allocated array dimension (2 * max n + 1)

    std::vector<std::vector<Edge>> g_;
    std::vector<int64_t> lab_;
    std::vector<int> match_, slack_, st_, pa_, s_, vis_;
    std::vector<std::vector<int>> flower_, flower_from_;
    std::vector<int> queue_;
    size_t queue_head_ = 0;
    int64_t total_weight_ = 0;
    int visit_stamp_ = 0;
};

/**
 * Minimum-weight perfect matching on a (possibly sparse) graph.
 *
 * @param n      vertex count (must be even for a perfect matching)
 * @param weights dense n x n matrix; weights[u][v] < 0 marks a missing
 *               edge, any value >= 0 is a usable edge weight
 * @return mate vector (mate[u] == v), or an empty vector if no perfect
 *         matching exists
 *
 * Reduction: transformed weight B - w with B larger than the total
 * weight of all edges, so a maximum-weight matching is forced to be
 * perfect (when one exists) and minimizes the original weight.
 */
std::vector<int> min_weight_perfect_matching(
    int n, const std::vector<std::vector<int64_t>> &weights);

} // namespace btwc
