#include "matching/exact.hpp"

#include <cstddef>

#include "common/check.hpp"

namespace btwc {

namespace {
constexpr int64_t kUnreachable = int64_t(1) << 60;
}

int64_t
exact_min_weight_perfect(int n,
                         const std::vector<std::vector<int64_t>> &weights)
{
    BTWC_CHECK(n >= 0 && n % 2 == 0 && n <= 24);
    if (n == 0) {
        return 0;
    }
    const size_t size = size_t(1) << n;
    std::vector<int64_t> best(size, kUnreachable);
    best[0] = 0;
    for (size_t mask = 1; mask < size; ++mask) {
        const int i = __builtin_ctzll(mask);
        if (__builtin_popcountll(mask) % 2 != 0) {
            continue;
        }
        const size_t rest = mask ^ (size_t(1) << i);
        int64_t acc = kUnreachable;
        for (size_t sub = rest; sub != 0; sub &= sub - 1) {
            const int j = __builtin_ctzll(sub);
            if (weights[i][j] < 0) {
                continue;
            }
            const size_t prev = rest ^ (size_t(1) << j);
            if (best[prev] < kUnreachable) {
                const int64_t cand = best[prev] + weights[i][j];
                acc = cand < acc ? cand : acc;
            }
        }
        best[mask] = acc;
    }
    const int64_t result = best[size - 1];
    return result >= kUnreachable ? -1 : result;
}

int64_t
exact_min_weight_with_boundary(int n,
                               const std::vector<std::vector<int64_t>> &weights,
                               const std::vector<int64_t> &boundary)
{
    BTWC_CHECK(n >= 0 && n <= 24);
    if (n == 0) {
        return 0;
    }
    const size_t size = size_t(1) << n;
    std::vector<int64_t> best(size, kUnreachable);
    best[0] = 0;
    for (size_t mask = 1; mask < size; ++mask) {
        const int i = __builtin_ctzll(mask);
        const size_t rest = mask ^ (size_t(1) << i);
        int64_t acc = kUnreachable;
        if (best[rest] < kUnreachable) {
            acc = best[rest] + boundary[i];
        }
        for (size_t sub = rest; sub != 0; sub &= sub - 1) {
            const int j = __builtin_ctzll(sub);
            if (weights[i][j] < 0) {
                continue;
            }
            const size_t prev = rest ^ (size_t(1) << j);
            if (best[prev] < kUnreachable) {
                const int64_t cand = best[prev] + weights[i][j];
                acc = cand < acc ? cand : acc;
            }
        }
        best[mask] = acc;
    }
    return best[size - 1];
}

int64_t
exact_min_weight_with_boundary_mates(
    int n, const std::vector<std::vector<int64_t>> &weights,
    const std::vector<int64_t> &boundary, std::vector<int> &mates)
{
    BTWC_CHECK(n >= 0 && n <= 24);
    mates.assign(static_cast<size_t>(n), -1);
    if (n == 0) {
        return 0;
    }
    const size_t size = size_t(1) << n;
    std::vector<int64_t> best(size, kUnreachable);
    best[0] = 0;
    for (size_t mask = 1; mask < size; ++mask) {
        const int i = __builtin_ctzll(mask);
        const size_t rest = mask ^ (size_t(1) << i);
        int64_t acc = kUnreachable;
        if (boundary[i] >= 0 && best[rest] < kUnreachable) {
            acc = best[rest] + boundary[i];
        }
        for (size_t sub = rest; sub != 0; sub &= sub - 1) {
            const int j = __builtin_ctzll(sub);
            if (weights[i][j] < 0) {
                continue;
            }
            const size_t prev = rest ^ (size_t(1) << j);
            if (best[prev] < kUnreachable) {
                const int64_t cand = best[prev] + weights[i][j];
                acc = cand < acc ? cand : acc;
            }
        }
        best[mask] = acc;
    }
    if (best[size - 1] >= kUnreachable) {
        return -1;
    }

    // Backtrack: at every step the lowest set bit either retired to
    // the boundary or paired with some other set bit; re-test the DP
    // transition costs (exact integer equality holds by construction).
    size_t mask = size - 1;
    while (mask != 0) {
        const int i = __builtin_ctzll(mask);
        const size_t rest = mask ^ (size_t(1) << i);
        if (boundary[i] >= 0 && best[rest] < kUnreachable &&
            best[rest] + boundary[i] == best[mask]) {
            mates[i] = -1;
            mask = rest;
            continue;
        }
        bool advanced = false;
        for (size_t sub = rest; sub != 0; sub &= sub - 1) {
            const int j = __builtin_ctzll(sub);
            if (weights[i][j] < 0) {
                continue;
            }
            const size_t prev = rest ^ (size_t(1) << j);
            if (best[prev] < kUnreachable &&
                best[prev] + weights[i][j] == best[mask]) {
                mates[i] = j;
                mates[j] = i;
                mask = prev;
                advanced = true;
                break;
            }
        }
        BTWC_CHECK_MSG(advanced,
                       "DP table admits a consistent backtrack");
    }
    return best[size - 1];
}

} // namespace btwc
