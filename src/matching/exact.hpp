#pragma once

#include <cstdint>
#include <vector>

namespace btwc {

/**
 * Brute-force exact minimum-weight perfect matching (subset DP).
 *
 * O(2^n * n) time; practical for n <= ~22. Used as the correctness
 * oracle for the blossom implementation and as an alternative decoder
 * backend in cross-validation tests.
 *
 * @param n       vertex count (even)
 * @param weights dense matrix; negative entries mark missing edges
 * @return the minimum total weight, or -1 if no perfect matching
 */
int64_t exact_min_weight_perfect(
    int n, const std::vector<std::vector<int64_t>> &weights);

/**
 * Exact minimum-weight matching where every vertex is either paired
 * with another vertex at cost weights[u][v] or retired to the boundary
 * at cost boundary[u]. This matches the structure of surface-code
 * defect matching. O(2^n * n); n <= ~22.
 *
 * @return minimum total cost (always feasible: all-boundary works)
 */
int64_t exact_min_weight_with_boundary(
    int n, const std::vector<std::vector<int64_t>> &weights,
    const std::vector<int64_t> &boundary);

/**
 * As `exact_min_weight_with_boundary`, additionally recovering an
 * optimal assignment by DP backtracking: `mates[u]` is the vertex u is
 * paired with, or -1 when u retires to the boundary. Used by the
 * `ExactDecoder` backend (decoders/exact_decoder.hpp).
 *
 * @return minimum total cost, or -1 when some vertex can neither reach
 *         the boundary nor any partner (then `mates` is unspecified)
 */
int64_t exact_min_weight_with_boundary_mates(
    int n, const std::vector<std::vector<int64_t>> &weights,
    const std::vector<int64_t> &boundary, std::vector<int> &mates);

} // namespace btwc
