#include "matching/mwpm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <queue>

#include "common/check.hpp"
#include "matching/blossom.hpp"
#include "matching/exact.hpp"
#include "surface/distance.hpp"

namespace btwc {

namespace {

constexpr int kNoNode = -1;

/**
 * Largest defect count handed to the subset-DP matcher: O(2^k * k)
 * time and O(2^k) memory, so 18 keeps a single decode under ~5M ops.
 * Beyond it the ExactDp backend falls back to blossom (which the
 * property tests verify is exact anyway).
 */
constexpr int kExactDpMaxDefects = 18;

/**
 * Smallest uncapped instance worth domination-pruning: below this the
 * complete-graph blossom is already cheap and the O(k^2 log k)
 * selection is pure overhead (measured: no win at k ~ 17, ~1.5x at
 * k ~ 130). Skipping also makes small decodes — the BtwcSystem
 * per-cycle common case — structurally identical to the
 * complete-graph solve.
 */
constexpr int kSparseMinDefects = 32;

} // namespace

int
log_likelihood_weight(double p, double scale)
{
    BTWC_CHECK(p > 0.0 && p < 1.0);
    const double w = scale * std::log((1.0 - p) / p);
    return w < 1.0 ? 1 : static_cast<int>(std::lround(w));
}

/**
 * Persistent per-instance working set. Every array (and the blossom
 * matcher's dense edge matrix) holds on to its grown capacity, so
 * after the first few decodes the steady state allocates nothing —
 * this is what the `BM_MwpmDecodeSingle*` benchmarks measure. One
 * Scratch lives in each decoder (`MwpmDecoder::scratch_`); `decode`,
 * `decode_batch`, and the tier-chain resume paths all route through
 * it.
 */
struct MwpmDecoder::Scratch
{
    // Dijkstra fallback: per-defect distance and parent arrays over
    // the full spacetime graph (only touched on the legacy path).
    std::vector<std::vector<int>> dist;
    std::vector<std::vector<int>> parent_node;
    std::vector<std::vector<int>> parent_data;
    std::vector<int> boundary_node;
    std::vector<int> boundary_via;

    // Shared by both paths.
    std::vector<int64_t> boundary_dist;
    std::vector<int64_t> defect_w;  ///< k x k pairwise distances, flat
    std::vector<int> mate_defect;

    // Sparse candidate selection.
    std::vector<int> nbr_order;
    std::vector<uint8_t> keep;  ///< k x k candidate-edge flags

    // Subset-DP bridge (row-matrix view over `defect_w`).
    std::vector<std::vector<int64_t>> dp_w;

    // Pooled pairing engine (MaxWeightMatching::reset).
    MaxWeightMatching matcher;

    void prepare_dijkstra(int defects)
    {
        const size_t k = static_cast<size_t>(defects);
        if (dist.size() < k) {
            dist.resize(k);
            parent_node.resize(k);
            parent_data.resize(k);
        }
        boundary_node.resize(k);
        boundary_via.resize(k);
    }
};

MwpmDecoder::MwpmDecoder(const RotatedSurfaceCode &code, CheckType detector,
                         int space_weight, int time_weight, Matcher matcher,
                         FastPathConfig fast)
    : code_(code), detector_(detector),
      num_checks_(code.num_checks(detector)),
      space_weight_(space_weight), time_weight_(time_weight),
      matcher_(matcher), fast_(fast),
      scratch_(std::make_unique<Scratch>())
{
    BTWC_CHECK(space_weight >= 1 && time_weight >= 1);
    BTWC_CHECK(fast_.knn >= 0);
}

MwpmDecoder::~MwpmDecoder() = default;

MwpmDecoder::Result
MwpmDecoder::decode(const std::vector<DetectionEvent> &events,
                    int rounds) const
{
    thread_owner_.assert_single_thread_owner();
    return decode_impl(events, rounds, *scratch_);
}

std::vector<MwpmDecoder::Result>
MwpmDecoder::decode_batch(
    const std::vector<std::vector<DetectionEvent>> &batch, int rounds) const
{
    thread_owner_.assert_single_thread_owner();
    std::vector<Result> results;
    results.reserve(batch.size());
    for (const std::vector<DetectionEvent> &events : batch) {
        results.push_back(decode_impl(events, rounds, *scratch_));
    }
    return results;
}

MwpmDecoder::Result
MwpmDecoder::decode_matched(const std::vector<DetectionEvent> &events,
                            int rounds, MwpmMatches &matches) const
{
    thread_owner_.assert_single_thread_owner();
    return decode_impl(events, rounds, *scratch_, &matches);
}

MwpmDecoder::Result
MwpmDecoder::decode_impl(const std::vector<DetectionEvent> &events,
                         int rounds, Scratch &scratch,
                         MwpmMatches *matches) const
{
    Result result;
    result.correction.assign(code_.num_data(), 0);
    result.defects = static_cast<int>(events.size());
    if (matches != nullptr) {
        matches->clear();
    }
    if (events.empty()) {
        return result;
    }
    BTWC_CHECK(rounds >= 1);

    const int k = static_cast<int>(events.size());
    const size_t ks = static_cast<size_t>(k);

    // Fast path: with uniform per-dimension weights the spacetime
    // graph is the Cartesian product of the check graph and the round
    // path, so distances decompose into space hops + time separation
    // and come from the precomputed oracle in O(1). Non-unit weights
    // would also decompose, but the legacy Dijkstra is kept as the
    // exact reference/fallback there (and for the bit-exactness
    // property tests).
    const bool fast = fast_.distance_oracle && space_weight_ == 1 &&
                      time_weight_ == 1;
    const CheckGraphDistances *oracle =
        fast ? &code_.check_distances(detector_) : nullptr;

    std::vector<int64_t> &boundary_dist = scratch.boundary_dist;
    std::vector<int64_t> &defect_w = scratch.defect_w;
    boundary_dist.assign(ks, -1);
    defect_w.assign(ks * ks, -1);

    if (fast) {
        for (int i = 0; i < k; ++i) {
            BTWC_AUDIT(events[i].round >= 0 && events[i].round < rounds);
            BTWC_AUDIT(events[i].check >= 0 && events[i].check < num_checks_);
            boundary_dist[i] =
                oracle->boundary_hops(events[i].check) + 1;
            for (int j = 0; j < i; ++j) {
                const int64_t w =
                    oracle->distance(events[i].check, events[j].check) +
                    std::abs(events[i].round - events[j].round);
                defect_w[static_cast<size_t>(i) * ks + j] = w;
                defect_w[static_cast<size_t>(j) * ks + i] = w;
            }
        }
    } else {
        // Per-defect Dijkstra over the spacetime graph: distances to
        // every node plus parent pointers for path recovery.
        // parent_data records the data qubit of a space edge (or -1
        // for a time edge). With unit weights this degenerates to
        // breadth-first search.
        const int num_nodes = rounds * num_checks_;
        scratch.prepare_dijkstra(k);
        std::vector<std::vector<int>> &dist = scratch.dist;
        std::vector<std::vector<int>> &parent_node = scratch.parent_node;
        std::vector<std::vector<int>> &parent_data = scratch.parent_data;
        std::vector<int> &boundary_node = scratch.boundary_node;
        std::vector<int> &boundary_via = scratch.boundary_via;

        for (int i = 0; i < k; ++i) {
            BTWC_AUDIT(events[i].round >= 0 && events[i].round < rounds);
            BTWC_AUDIT(events[i].check >= 0 && events[i].check < num_checks_);
            dist[i].assign(num_nodes, -1);
            parent_node[i].assign(num_nodes, kNoNode);
            parent_data[i].assign(num_nodes, -1);
            boundary_dist[i] = -1;
            boundary_node[i] = kNoNode;
            boundary_via[i] = -1;

            const int src = node_id(events[i].check, events[i].round);
            using HeapEntry = std::pair<int, int>;  // (distance, node)
            std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                std::greater<HeapEntry>>
                frontier;
            dist[i][src] = 0;
            frontier.push({0, src});
            while (!frontier.empty()) {
                const auto [cur_dist, cur] = frontier.top();
                frontier.pop();
                if (cur_dist != dist[i][cur]) {
                    continue;  // stale entry
                }
                const int check = cur % num_checks_;
                const int round = cur / num_checks_;

                // Boundary half-edges cost one space weight; the first
                // settled boundary-adjacent node is optimal because
                // the hop cost is uniform.
                if (boundary_dist[i] < 0 &&
                    !code_.boundary_data(detector_, check).empty()) {
                    boundary_dist[i] = cur_dist + space_weight_;
                    boundary_node[i] = cur;
                    boundary_via[i] =
                        code_.boundary_data(detector_, check)[0];
                }

                auto relax = [&](int node, int via_data, int weight) {
                    const int cand = cur_dist + weight;
                    if (dist[i][node] < 0 || cand < dist[i][node]) {
                        dist[i][node] = cand;
                        parent_node[i][node] = cur;
                        parent_data[i][node] = via_data;
                        frontier.push({cand, node});
                    }
                };
                for (const CliqueNeighbor &nb :
                     code_.clique_neighbors(detector_, check)) {
                    relax(node_id(nb.check, round), nb.shared_data,
                          space_weight_);
                }
                if (round + 1 < rounds) {
                    relax(node_id(check, round + 1), -1, time_weight_);
                }
                if (round > 0) {
                    relax(node_id(check, round - 1), -1, time_weight_);
                }
            }
        }

        // Defect-defect pairing distances, shared by both matcher
        // backends (a divergence here would silently desynchronize the
        // exact-DP oracle from the production blossom matcher).
        for (int i = 0; i < k; ++i) {
            for (int j = i + 1; j < k; ++j) {
                const int nj = node_id(events[j].check, events[j].round);
                const int d = dist[i][nj];
                if (d >= 0) {
                    defect_w[static_cast<size_t>(i) * ks + j] = d;
                    defect_w[static_cast<size_t>(j) * ks + i] = d;
                }
            }
        }
    }

    // Solve the pairing: mate_defect[i] is another defect index, or -1
    // for a boundary retirement.
    std::vector<int> &mate_defect = scratch.mate_defect;
    if (matcher_ == Matcher::ExactDp && k <= kExactDpMaxDefects) {
        std::vector<std::vector<int64_t>> &dp_w = scratch.dp_w;
        if (dp_w.size() < ks) {
            dp_w.resize(ks);
        }
        for (int i = 0; i < k; ++i) {
            dp_w[i].assign(defect_w.begin() + static_cast<size_t>(i) * ks,
                           defect_w.begin() +
                               static_cast<size_t>(i + 1) * ks);
            dp_w[i][i] = -1;
        }
        const int64_t total = exact_min_weight_with_boundary_mates(
            k, dp_w, boundary_dist, mate_defect);
        BTWC_CHECK_MSG(total >= 0,
                       "defect graph always admits a boundary matching");
    } else {
        // Build the 2k matching instance in the pooled solver:
        // defects 0..k-1, boundary twins k..2k-1, twin-twin edges
        // free. Under sparse_candidates each defect offers only its
        // knn nearest non-dominated partners (an edge costing more
        // than the two boundary retirements it replaces is in no
        // optimal matching), symmetrically unioned; boundary and twin
        // edges always survive, so a perfect matching always exists.
        // Skip the selection when it cannot pay for itself: uncapped,
        // below kSparseMinDefects; capped, below the cap + 1 (where
        // the kNN union is the complete graph anyway). Small
        // instances — the common case — then pay zero overhead and
        // match the complete-graph solve identically by construction.
        const int cap = fast_.knn == 0 ? k : fast_.knn;
        const int min_defects =
            fast_.knn == 0 ? kSparseMinDefects : fast_.knn + 1;
        uint8_t *keep = nullptr;
        if (fast_.sparse_candidates && k > min_defects) {
            scratch.keep.assign(ks * ks, 0);
            keep = scratch.keep.data();
            std::vector<int> &order = scratch.nbr_order;
            for (int i = 0; i < k; ++i) {
                const int64_t *row = &defect_w[static_cast<size_t>(i) * ks];
                order.clear();
                for (int j = 0; j < k; ++j) {
                    if (j != i && row[j] >= 0) {
                        order.push_back(j);
                    }
                }
                std::sort(order.begin(), order.end(),
                          [row](int a, int b) {
                              return row[a] != row[b] ? row[a] < row[b]
                                                      : a < b;
                          });
                int taken = 0;
                for (const int j : order) {
                    if (taken >= cap) {
                        break;
                    }
                    if (boundary_dist[i] >= 0 && boundary_dist[j] >= 0 &&
                        row[j] > boundary_dist[i] + boundary_dist[j]) {
                        continue;  // strictly dominated by boundaries
                    }
                    keep[static_cast<size_t>(i) * ks + j] = 1;
                    keep[static_cast<size_t>(j) * ks + i] = 1;
                    ++taken;
                }
            }
        }

        const int n = 2 * k;
        MaxWeightMatching &solver = scratch.matcher;
        solver.reset(n);
        int64_t total = 0;
        for (int i = 0; i < k; ++i) {
            for (int j = i + 1; j < k; ++j) {
                const int64_t w = defect_w[static_cast<size_t>(i) * ks + j];
                if (w >= 0 &&
                    (keep == nullptr ||
                     keep[static_cast<size_t>(i) * ks + j])) {
                    total += w;
                }
            }
            if (boundary_dist[i] >= 0) {
                total += boundary_dist[i];
            }
        }
        const int64_t big = total + 1;
        for (int i = 0; i < k; ++i) {
            for (int j = i + 1; j < k; ++j) {
                const int64_t w = defect_w[static_cast<size_t>(i) * ks + j];
                if (w >= 0 &&
                    (keep == nullptr ||
                     keep[static_cast<size_t>(i) * ks + j])) {
                    solver.set_weight(i, j, big - w);
                }
            }
            if (boundary_dist[i] >= 0) {
                solver.set_weight(i, k + i, big - boundary_dist[i]);
            }
            for (int j = i + 1; j < k; ++j) {
                solver.set_weight(k + i, k + j, big);
            }
        }

        const std::vector<int> mate = solver.solve();
        mate_defect.assign(ks, -1);
        for (int i = 0; i < k; ++i) {
            BTWC_CHECK_MSG(mate[i] >= 0,
                           "defect graph always admits a perfect matching");
            // Matched to own boundary twin (twin-twin edges are only
            // interconnected among themselves) or to another defect.
            mate_defect[i] = mate[i] < k ? mate[i] : -1;
        }
    }

    // Path recovery. The fast walk reproduces the legacy parent
    // chains exactly: Dijkstra settles equal-distance nodes in node-id
    // order, so the parent of node v is its smallest-id neighbor one
    // hop closer to the source — recomputable from distances alone,
    // no parent arrays needed. Corrections are therefore bit-exact
    // between the two paths (pinned by tests/test_fastpath.cpp).
    auto toggle = [&](int via) {
        result.correction[via] ^= 1;
        if (matches != nullptr) {
            matches->path_data.push_back(via);
        }
    };

    auto oracle_walk = [&](int i, int to_check, int to_round) {
        const int sc = events[i].check;
        const int sr = events[i].round;
        int c = to_check;
        int r = to_round;
        int cur_d = oracle->distance(sc, c) + std::abs(r - sr);
        while (cur_d > 0) {
            const int want = cur_d - 1;
            int via = -1;
            // Candidates in node-id order: (c, r-1) precedes every
            // same-round space neighbor, which precede (c, r+1).
            if (r > 0 &&
                oracle->distance(sc, c) + std::abs(r - 1 - sr) == want) {
                --r;
            } else {
                int best_check = std::numeric_limits<int>::max();
                for (const CliqueNeighbor &nb :
                     code_.clique_neighbors(detector_, c)) {
                    if (nb.check < best_check &&
                        oracle->distance(sc, nb.check) +
                                std::abs(r - sr) ==
                            want) {
                        best_check = nb.check;
                        via = nb.shared_data;
                    }
                }
                if (via >= 0) {
                    c = best_check;
                    toggle(via);
                } else {
                    // Only the forward time edge can be closer.
                    BTWC_DCHECK(r + 1 < rounds);
                    ++r;
                }
            }
            --cur_d;
        }
        BTWC_AUDIT_MSG(c == sc && r == sr,
                       "geodesic walk must terminate at the source defect");
    };

    auto legacy_walk_back = [&](int i, int from_node) {
        // XOR the space-edge data qubits on the path from `from_node`
        // back to defect i's source node.
        int cur = from_node;
        while (scratch.parent_node[i][cur] != kNoNode) {
            const int via = scratch.parent_data[i][cur];
            if (via >= 0) {
                toggle(via);
            }
            cur = scratch.parent_node[i][cur];
        }
    };

    for (int i = 0; i < k; ++i) {
        const int m = mate_defect[i];
        if (m >= 0 && m < i) {
            continue;  // pair already walked from its lower endpoint
        }
        const int path_begin =
            matches != nullptr ? static_cast<int>(matches->path_data.size())
                               : 0;
        int64_t pair_weight = 0;
        if (m < 0) {
            // Boundary retirement: path to the nearest boundary qubit.
            pair_weight = boundary_dist[i];
            if (fast) {
                const int bc = oracle->boundary_check(events[i].check);
                toggle(code_.boundary_data(detector_, bc)[0]);
                oracle_walk(i, bc, events[i].round);
            } else {
                toggle(scratch.boundary_via[i]);
                legacy_walk_back(i, scratch.boundary_node[i]);
            }
        } else {
            pair_weight = defect_w[static_cast<size_t>(i) * ks + m];
            if (fast) {
                oracle_walk(i, events[m].check, events[m].round);
            } else {
                legacy_walk_back(
                    i, node_id(events[m].check, events[m].round));
            }
        }
        result.weight += pair_weight;
        if (matches != nullptr) {
            matches->pairs.push_back(
                {i, m, pair_weight, path_begin,
                 static_cast<int>(matches->path_data.size())});
        }
    }
    return result;
}

} // namespace btwc
