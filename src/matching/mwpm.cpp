#include "matching/mwpm.hpp"

#include <cassert>
#include <cmath>
#include <queue>

#include "matching/blossom.hpp"
#include "matching/exact.hpp"

namespace btwc {

namespace {

constexpr int kNoNode = -1;

/**
 * Largest defect count handed to the subset-DP matcher: O(2^k * k)
 * time and O(2^k) memory, so 18 keeps a single decode under ~5M ops.
 * Beyond it the ExactDp backend falls back to blossom (which the
 * property tests verify is exact anyway).
 */
constexpr int kExactDpMaxDefects = 18;

} // namespace

int
log_likelihood_weight(double p, double scale)
{
    assert(p > 0.0 && p < 1.0);
    const double w = scale * std::log((1.0 - p) / p);
    return w < 1.0 ? 1 : static_cast<int>(std::lround(w));
}

MwpmDecoder::MwpmDecoder(const RotatedSurfaceCode &code, CheckType detector,
                         int space_weight, int time_weight, Matcher matcher)
    : code_(code), detector_(detector),
      num_checks_(code.num_checks(detector)),
      space_weight_(space_weight), time_weight_(time_weight),
      matcher_(matcher)
{
    assert(space_weight >= 1 && time_weight >= 1);
}

/**
 * Reusable per-decode working set: the per-defect distance and parent
 * arrays dominate the setup cost of a decode (k arrays of
 * rounds * num_checks entries each), so `decode_batch` keeps one
 * Scratch alive across the batch and every item reuses the grown
 * capacity instead of reallocating.
 */
struct MwpmDecoder::Scratch
{
    std::vector<std::vector<int>> dist;
    std::vector<std::vector<int>> parent_node;
    std::vector<std::vector<int>> parent_data;
    std::vector<int64_t> boundary_dist;
    std::vector<int> boundary_node;
    std::vector<int> boundary_via;

    void prepare(int defects)
    {
        const size_t k = static_cast<size_t>(defects);
        if (dist.size() < k) {
            dist.resize(k);
            parent_node.resize(k);
            parent_data.resize(k);
        }
        boundary_dist.resize(k);
        boundary_node.resize(k);
        boundary_via.resize(k);
    }
};

MwpmDecoder::Result
MwpmDecoder::decode(const std::vector<DetectionEvent> &events,
                    int rounds) const
{
    Scratch scratch;
    return decode_impl(events, rounds, scratch);
}

std::vector<MwpmDecoder::Result>
MwpmDecoder::decode_batch(
    const std::vector<std::vector<DetectionEvent>> &batch, int rounds) const
{
    Scratch scratch;
    std::vector<Result> results;
    results.reserve(batch.size());
    for (const std::vector<DetectionEvent> &events : batch) {
        results.push_back(decode_impl(events, rounds, scratch));
    }
    return results;
}

MwpmDecoder::Result
MwpmDecoder::decode_impl(const std::vector<DetectionEvent> &events,
                         int rounds, Scratch &scratch) const
{
    Result result;
    result.correction.assign(code_.num_data(), 0);
    result.defects = static_cast<int>(events.size());
    if (events.empty()) {
        return result;
    }
    assert(rounds >= 1);

    const int k = static_cast<int>(events.size());
    const int num_nodes = rounds * num_checks_;

    // Per-defect Dijkstra over the spacetime graph: distances to every
    // node plus parent pointers for path recovery. parent_data records
    // the data qubit of a space edge (or -1 for a time edge). With the
    // default unit weights this degenerates to breadth-first search.
    scratch.prepare(k);
    std::vector<std::vector<int>> &dist = scratch.dist;
    std::vector<std::vector<int>> &parent_node = scratch.parent_node;
    std::vector<std::vector<int>> &parent_data = scratch.parent_data;
    std::vector<int64_t> &boundary_dist = scratch.boundary_dist;
    std::vector<int> &boundary_node = scratch.boundary_node;
    std::vector<int> &boundary_via = scratch.boundary_via;

    for (int i = 0; i < k; ++i) {
        assert(events[i].round >= 0 && events[i].round < rounds);
        assert(events[i].check >= 0 && events[i].check < num_checks_);
        dist[i].assign(num_nodes, -1);
        parent_node[i].assign(num_nodes, kNoNode);
        parent_data[i].assign(num_nodes, -1);
        boundary_dist[i] = -1;
        boundary_node[i] = kNoNode;
        boundary_via[i] = -1;

        const int src = node_id(events[i].check, events[i].round);
        using HeapEntry = std::pair<int, int>;  // (distance, node)
        std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                            std::greater<HeapEntry>>
            frontier;
        dist[i][src] = 0;
        frontier.push({0, src});
        while (!frontier.empty()) {
            const auto [cur_dist, cur] = frontier.top();
            frontier.pop();
            if (cur_dist != dist[i][cur]) {
                continue;  // stale entry
            }
            const int check = cur % num_checks_;
            const int round = cur / num_checks_;

            // Boundary half-edges cost one space weight; the first
            // settled boundary-adjacent node is optimal because the
            // hop cost is uniform.
            if (boundary_dist[i] < 0 &&
                !code_.boundary_data(detector_, check).empty()) {
                boundary_dist[i] = cur_dist + space_weight_;
                boundary_node[i] = cur;
                boundary_via[i] = code_.boundary_data(detector_, check)[0];
            }

            auto relax = [&](int node, int via_data, int weight) {
                const int cand = cur_dist + weight;
                if (dist[i][node] < 0 || cand < dist[i][node]) {
                    dist[i][node] = cand;
                    parent_node[i][node] = cur;
                    parent_data[i][node] = via_data;
                    frontier.push({cand, node});
                }
            };
            for (const CliqueNeighbor &nb :
                 code_.clique_neighbors(detector_, check)) {
                relax(node_id(nb.check, round), nb.shared_data,
                      space_weight_);
            }
            if (round + 1 < rounds) {
                relax(node_id(check, round + 1), -1, time_weight_);
            }
            if (round > 0) {
                relax(node_id(check, round - 1), -1, time_weight_);
            }
        }
    }

    // Defect-defect pairing distances, shared by both matcher
    // backends (a divergence here would silently desynchronize the
    // exact-DP oracle from the production blossom matcher).
    std::vector<std::vector<int64_t>> defect_w(
        k, std::vector<int64_t>(k, -1));
    for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j) {
            const int nj = node_id(events[j].check, events[j].round);
            const int d = dist[i][nj];
            if (d >= 0) {
                defect_w[i][j] = d;
                defect_w[j][i] = d;
            }
        }
    }

    // Solve the pairing: mate_defect[i] is another defect index, or -1
    // for a boundary retirement.
    std::vector<int> mate_defect;
    if (matcher_ == Matcher::ExactDp && k <= kExactDpMaxDefects) {
        const int64_t total = exact_min_weight_with_boundary_mates(
            k, defect_w, boundary_dist, mate_defect);
        assert(total >= 0 &&
               "defect graph always admits a boundary matching");
        (void)total;
    } else {
        // Build the 2k matching instance: defects 0..k-1, boundary
        // twins k..2k-1, twin-twin edges free.
        const int n = 2 * k;
        std::vector<std::vector<int64_t>> w(n,
                                            std::vector<int64_t>(n, -1));
        for (int i = 0; i < k; ++i) {
            for (int j = i + 1; j < k; ++j) {
                w[i][j] = defect_w[i][j];
                w[j][i] = defect_w[j][i];
            }
            if (boundary_dist[i] >= 0) {
                w[i][k + i] = boundary_dist[i];
                w[k + i][i] = boundary_dist[i];
            }
            for (int j = i + 1; j < k; ++j) {
                w[k + i][k + j] = 0;
                w[k + j][k + i] = 0;
            }
        }

        const std::vector<int> mate = min_weight_perfect_matching(n, w);
        assert(!mate.empty() &&
               "defect graph always admits a perfect matching");
        mate_defect.assign(k, -1);
        for (int i = 0; i < k; ++i) {
            // Matched to own boundary twin (twin-twin edges are only
            // interconnected among themselves) or to another defect.
            mate_defect[i] = mate[i] < k ? mate[i] : -1;
        }
    }

    auto walk_back = [&](int i, int from_node) {
        // XOR the space-edge data qubits on the path from `from_node`
        // back to defect i's source node.
        int cur = from_node;
        while (parent_node[i][cur] != kNoNode) {
            const int via = parent_data[i][cur];
            if (via >= 0) {
                result.correction[via] ^= 1;
            }
            cur = parent_node[i][cur];
        }
    };

    for (int i = 0; i < k; ++i) {
        const int m = mate_defect[i];
        if (m < 0) {
            // Boundary retirement: path to the nearest boundary qubit.
            result.weight += boundary_dist[i];
            result.correction[boundary_via[i]] ^= 1;
            walk_back(i, boundary_node[i]);
        } else if (m > i) {
            const int nj = node_id(events[m].check, events[m].round);
            result.weight += dist[i][nj];
            walk_back(i, nj);
        }
    }
    return result;
}

} // namespace btwc
