#pragma once

#include <cstdint>
#include <vector>

#include "decoders/decoder.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Minimum Weight Perfect Matching decoder over the spacetime decoding
 * graph (the paper's off-chip "complex" decoder [19]).
 *
 * Nodes are (check, round) pairs; space edges are data qubits shared
 * by two same-type checks, time edges connect a check to itself in the
 * next round (measurement errors), and boundary half-edges let chains
 * terminate on the lattice boundary. All edges have unit weight, which
 * is exact for the paper's phenomenological model with equal data and
 * measurement error probabilities.
 *
 * Defect pairwise distances come from breadth-first search; the
 * pairing is solved with the configured `Matcher` backend: the blossom
 * algorithm (each defect also gets a zero-cost-interconnected boundary
 * twin, the standard construction for codes with boundaries), or the
 * brute-force subset DP of matching/exact.hpp, which is exact by
 * construction and backs the `ExactDecoder` cross-validation tier.
 */
class MwpmDecoder : public Decoder
{
  public:
    /** Backwards-compatible alias; see Decoder::Result. */
    using Result = Decoder::Result;

    /** Pairing engine used on the defect distance graph. */
    enum class Matcher : uint8_t
    {
        Blossom = 0,  ///< O(V^3) primal-dual blossom (production path)
        ExactDp = 1,  ///< subset DP oracle; falls back to Blossom when
                      ///< the defect count exceeds its feasible range
    };

    /**
     * @param code         the surface code
     * @param detector     which check type's events this decoder consumes
     * @param space_weight weight of space (data qubit) and boundary edges
     * @param time_weight  weight of time (measurement) edges
     * @param matcher      pairing engine (see Matcher)
     *
     * Unit weights are exact for the paper's p_data == p_meas model;
     * for asymmetric noise pass log-likelihood weights (see
     * `log_likelihood_weight`).
     */
    MwpmDecoder(const RotatedSurfaceCode &code, CheckType detector,
                int space_weight = 1, int time_weight = 1,
                Matcher matcher = Matcher::Blossom);

    const char *name() const override { return "mwpm"; }

    /** The check type whose detection events are decoded. */
    CheckType detector() const override { return detector_; }

    /**
     * Decode a set of detection events observed over `rounds`
     * measurement rounds (all event rounds must lie in [0, rounds)).
     */
    Result decode(const std::vector<DetectionEvent> &events,
                  int rounds) const override;

    /**
     * Batched decoding with shared graph scratch: the per-defect
     * distance / parent arrays (the dominant per-call allocation) are
     * set up once and reused across the whole batch, which is how the
     * async off-chip service amortizes graph setup over the
     * escalations it drains per cycle. Results are bit-identical to
     * looping `decode`. `ExactDecoder` inherits the specialization.
     */
    std::vector<Result>
    decode_batch(const std::vector<std::vector<DetectionEvent>> &batch,
                 int rounds) const override;

  private:
    struct Scratch;

    Result decode_impl(const std::vector<DetectionEvent> &events,
                       int rounds, Scratch &scratch) const;

    int node_id(int check, int round) const { return round * num_checks_ + check; }

    const RotatedSurfaceCode &code_;
    CheckType detector_;
    int num_checks_;
    int space_weight_;
    int time_weight_;
    Matcher matcher_;
};

/**
 * Integer log-likelihood edge weight for an error channel of
 * probability p: round(scale * ln((1-p)/p)). Matching with these
 * weights maximizes the likelihood of the recovered error pattern
 * under independent channels (the standard weighted-MWPM recipe).
 */
int log_likelihood_weight(double p, double scale = 100.0);

} // namespace btwc
