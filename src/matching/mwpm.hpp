#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "decoders/decoder.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Fast-path knobs of `MwpmDecoder` (all on by default; the legacy
 * configuration is the exact reference the property tests pin the
 * fast path against, bit-for-bit).
 */
struct FastPathConfig
{
    /**
     * Answer defect-defect and defect-boundary spacetime distances
     * from the per-code precomputed tables
     * (`RotatedSurfaceCode::check_distances`) in O(1) closed form —
     * space hops plus time separation — instead of running one
     * Dijkstra per defect, and recover correction paths by walking the
     * same geodesics the Dijkstra parent trees encode (identical
     * tie-breaking, so corrections are bit-exact). Only applies under
     * unit `space_weight`/`time_weight` (the default, and the exact
     * setting for the paper's p_data == p_meas model); non-unit
     * weights always take the Dijkstra fallback.
     */
    bool distance_oracle = true;

    /**
     * Hand the blossom stage a sparse candidate edge set — per defect
     * its nearest partners with boundary-dominated pairs pruned —
     * instead of the complete defect graph. A dominated edge costs
     * strictly more than the two boundary retirements it replaces, so
     * it appears in *no* optimal matching: the pruning provably
     * preserves the optimal-matching set, and the bit-exactness
     * property tests pin that the solver's tie selection survives too
     * (tests/test_fastpath.cpp, including a d = 13 / ~200-defect
     * stress corpus). Boundary and twin edges are always kept, so a
     * perfect matching always exists.
     */
    bool sparse_candidates = true;

    /**
     * Optional hard cap on candidate partners kept per defect;
     * 0 (the default) means uncapped — domination pruning only,
     * which is the bit-exact configuration. A positive cap bounds the
     * candidate degree for very large instances but may select a
     * *different equal-weight* matching once defect counts exceed it
     * (observed from ~160 defects with knn = 16), so capped decoders
     * trade the bit-exactness guarantee for bounded work — opt-in
     * only.
     */
    int knn = 0;

    /** The default: oracle distances + domination-pruned candidates. */
    static FastPathConfig fast() { return FastPathConfig(); }

    /**
     * Oracle distances over the complete defect graph: for decoders
     * that serve as exact references themselves (`ExactDecoder`),
     * where even provably-optimum-preserving pruning is unwanted in
     * the rare blossom fallback.
     */
    static FastPathConfig oracle_only()
    {
        FastPathConfig config;
        config.sparse_candidates = false;
        return config;
    }

    /**
     * The pre-oracle reference configuration: per-defect Dijkstra and
     * the complete defect graph. Kept as the exact baseline the
     * property tests (tests/test_fastpath.cpp) compare against.
     */
    static FastPathConfig legacy()
    {
        FastPathConfig config;
        config.distance_oracle = false;
        config.sparse_candidates = false;
        return config;
    }
};

/**
 * The pairing behind one MWPM decode, exposed for consumers that must
 * attribute the correction to individual matched pairs — the
 * sliding-window stream decoder (decoders/stream_window.hpp) commits
 * pairs, not whole masks. Flat storage: the correction path of
 * `pairs[i]` is `path_data[pairs[i].path_begin, pairs[i].path_end)`, a
 * list of data-qubit toggles whose XOR across all pairs reproduces
 * `Result::correction` exactly (toggles within one pair are distinct;
 * across pairs they cancel pairwise, matching the mask's XOR
 * semantics). Both vectors are pooled: `clear()` keeps capacity, so a
 * caller-owned instance makes steady-state matched decodes
 * allocation-free on the match-record side.
 */
struct MwpmMatches
{
    struct Pair
    {
        int a = -1;  ///< event index of the first endpoint
        int b = -1;  ///< event index of the mate, or -1 for a boundary
                     ///< retirement
        int64_t weight = 0;  ///< matched spacetime distance
        int path_begin = 0;  ///< [path_begin, path_end) into path_data
        int path_end = 0;
    };

    std::vector<Pair> pairs;     ///< one entry per event pair / retirement
    std::vector<int> path_data;  ///< concatenated data-qubit toggles

    void clear()
    {
        pairs.clear();
        path_data.clear();
    }
};

/**
 * Minimum Weight Perfect Matching decoder over the spacetime decoding
 * graph (the paper's off-chip "complex" decoder [19]).
 *
 * Nodes are (check, round) pairs; space edges are data qubits shared
 * by two same-type checks, time edges connect a check to itself in the
 * next round (measurement errors), and boundary half-edges let chains
 * terminate on the lattice boundary. All edges have unit weight, which
 * is exact for the paper's phenomenological model with equal data and
 * measurement error probabilities.
 *
 * Defect pairwise distances come from the precomputed distance oracle
 * (surface/distance.hpp) under the default unit weights, or from
 * per-defect Dijkstra otherwise (see `FastPathConfig`); the pairing is
 * solved with the configured `Matcher` backend: the blossom algorithm
 * (each defect also gets a zero-cost-interconnected boundary twin, the
 * standard construction for codes with boundaries), or the brute-force
 * subset DP of matching/exact.hpp, which is exact by construction and
 * backs the `ExactDecoder` cross-validation tier.
 *
 * Hot-path contract: each decoder instance owns one persistent graph /
 * matcher scratch (grown once, reused by every `decode` and
 * `decode_batch` call), so steady-state decoding is allocation-free.
 * Instances are therefore not safe for concurrent `decode` calls from
 * multiple threads — the sharded Monte-Carlo engine gives every shard
 * its own decoder stack, which is the intended usage.
 */
class MwpmDecoder : public Decoder
{
  public:
    /** Backwards-compatible alias; see Decoder::Result. */
    using Result = Decoder::Result;

    /** Pairing engine used on the defect distance graph. */
    enum class Matcher : uint8_t
    {
        Blossom = 0,  ///< O(V^3) primal-dual blossom (production path)
        ExactDp = 1,  ///< subset DP oracle; falls back to Blossom when
                      ///< the defect count exceeds its feasible range
    };

    /**
     * @param code         the surface code
     * @param detector     which check type's events this decoder consumes
     * @param space_weight weight of space (data qubit) and boundary edges
     * @param time_weight  weight of time (measurement) edges
     * @param matcher      pairing engine (see Matcher)
     * @param fast         fast-path knobs (see FastPathConfig)
     *
     * Unit weights are exact for the paper's p_data == p_meas model;
     * for asymmetric noise pass log-likelihood weights (see
     * `log_likelihood_weight`).
     */
    MwpmDecoder(const RotatedSurfaceCode &code, CheckType detector,
                int space_weight = 1, int time_weight = 1,
                Matcher matcher = Matcher::Blossom,
                FastPathConfig fast = FastPathConfig());

    ~MwpmDecoder() override;

    const char *name() const override { return "mwpm"; }

    /** The check type whose detection events are decoded. */
    CheckType detector() const override { return detector_; }

    /**
     * Decode a set of detection events observed over `rounds`
     * measurement rounds (all event rounds must lie in [0, rounds)).
     */
    Result decode(const std::vector<DetectionEvent> &events,
                  int rounds) const override;

    /**
     * Batched decoding with shared graph scratch: the per-defect
     * distance / parent arrays (the dominant per-call allocation) are
     * set up once and reused across the whole batch, which is how the
     * async off-chip service amortizes graph setup over the
     * escalations it drains per cycle. Results are bit-identical to
     * looping `decode`. `ExactDecoder` inherits the specialization.
     */
    std::vector<Result>
    decode_batch(const std::vector<std::vector<DetectionEvent>> &batch,
                 int rounds) const override;

    /**
     * As `decode`, but also report the solved pairing into `matches`
     * (overwritten; capacity reused): one entry per matched pair or
     * boundary retirement, each event index appearing in exactly one
     * entry, with the data-qubit path of that pair's correction. The
     * Result is bit-identical to `decode` on the same input — the
     * match record is filled inside the same path-recovery walk the
     * plain decode runs (see MwpmMatches).
     */
    Result decode_matched(const std::vector<DetectionEvent> &events,
                          int rounds, MwpmMatches &matches) const;

  private:
    struct Scratch;

    Result decode_impl(const std::vector<DetectionEvent> &events,
                       int rounds, Scratch &scratch,
                       MwpmMatches *matches = nullptr) const;

    int node_id(int check, int round) const { return round * num_checks_ + check; }

    const RotatedSurfaceCode &code_;
    CheckType detector_;
    int num_checks_;
    int space_weight_;
    int time_weight_;
    Matcher matcher_;
    FastPathConfig fast_;
    /**
     * Persistent per-instance working set (graph arrays + the pooled
     * blossom matcher); every decode entry point routes through it, so
     * single-shot `decode()` calls — the dominant `BtwcSystem`
     * per-cycle path — reuse grown capacity instead of reallocating.
     * Mutated under `const` decode; see the class comment for the
     * (non-)thread-safety contract.
     */
    mutable std::unique_ptr<Scratch> scratch_;
};

/**
 * Integer log-likelihood edge weight for an error channel of
 * probability p: round(scale * ln((1-p)/p)). Matching with these
 * weights maximizes the likelihood of the recovered error pattern
 * under independent channels (the standard weighted-MWPM recipe).
 */
int log_likelihood_weight(double p, double scale = 100.0);

} // namespace btwc
