#include "matching/union_find.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace btwc {

namespace {

/** Disjoint-set forest with cluster metadata for the UF decoder. */
class Clusters
{
  public:
    explicit Clusters(int n)
        : parent_(n), odd_(n, 0), boundary_(n, 0)
    {
        for (int i = 0; i < n; ++i) {
            parent_[i] = i;
        }
    }

    int find(int x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    /** Merge; returns the surviving root. */
    int unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a == b) {
            return a;
        }
        parent_[b] = a;
        odd_[a] ^= odd_[b];
        boundary_[a] |= boundary_[b];
        return a;
    }

    void mark_defect(int x) { odd_[find(x)] ^= 1; }
    void mark_boundary(int x) { boundary_[find(x)] = 1; }

    /** A cluster still grows while it has odd parity off-boundary. */
    bool active(int x)
    {
        const int r = find(x);
        return odd_[r] && !boundary_[r];
    }

  private:
    std::vector<int> parent_;
    std::vector<uint8_t> odd_;
    std::vector<uint8_t> boundary_;
};

struct UfEdge
{
    int a;         ///< spacetime node
    int b;         ///< spacetime node, or -1 for a boundary edge
    int data;      ///< data qubit of a space edge, -1 for time edges
    int growth;    ///< 0..2 half-edge growth
};

} // namespace

UnionFindDecoder::UnionFindDecoder(const RotatedSurfaceCode &code,
                                   CheckType detector)
    : code_(code), detector_(detector),
      num_checks_(code.num_checks(detector))
{
}

UnionFindDecoder::Result
UnionFindDecoder::decode(const std::vector<DetectionEvent> &events,
                         int rounds) const
{
    Result result;
    result.correction.assign(code_.num_data(), 0);
    result.defects = static_cast<int>(events.size());
    if (events.empty()) {
        return result;
    }

    const int num_nodes = rounds * num_checks_;
    const int boundary_id = num_nodes;  // virtual node shared by all edges
    auto node_id = [&](int check, int round) {
        return round * num_checks_ + check;
    };

    // Materialize the spacetime edge list once per call.
    std::vector<UfEdge> edges;
    std::vector<std::vector<int>> incident(num_nodes + 1);
    auto add_edge = [&](int a, int b, int data) {
        incident[a].push_back(static_cast<int>(edges.size()));
        incident[b < 0 ? boundary_id : b]
            .push_back(static_cast<int>(edges.size()));
        edges.push_back(UfEdge{a, b, data, 0});
    };
    for (int t = 0; t < rounds; ++t) {
        for (int c = 0; c < num_checks_; ++c) {
            const int a = node_id(c, t);
            for (const CliqueNeighbor &nb :
                 code_.clique_neighbors(detector_, c)) {
                if (nb.check > c) {
                    add_edge(a, node_id(nb.check, t), nb.shared_data);
                }
            }
            for (const int bdata : code_.boundary_data(detector_, c)) {
                add_edge(a, -1, bdata);
            }
            if (t + 1 < rounds) {
                add_edge(a, node_id(c, t + 1), -1);
            }
        }
    }

    Clusters clusters(num_nodes + 1);
    clusters.mark_boundary(boundary_id);
    std::vector<uint8_t> is_defect(num_nodes + 1, 0);
    std::vector<int> active_roots;
    for (const DetectionEvent &ev : events) {
        const int v = node_id(ev.check, ev.round);
        is_defect[v] ^= 1;
        clusters.mark_defect(v);
    }
    std::vector<uint8_t> in_cluster(num_nodes + 1, 0);
    for (const DetectionEvent &ev : events) {
        in_cluster[node_id(ev.check, ev.round)] = 1;
    }

    // Growth: every active cluster advances all its incident edges by
    // half an edge per round; fully grown edges merge their endpoints.
    // Terminates because an active cluster always has an ungrown
    // incident edge (a maximal cluster has absorbed the boundary and
    // is therefore inactive).
    int growth_rounds = 0;
    for (;;) {
        bool have_active = false;
        for (int v = 0; v <= num_nodes; ++v) {
            if (in_cluster[v] && clusters.active(v)) {
                have_active = true;
                break;
            }
        }
        if (!have_active) {
            break;
        }
        ++growth_rounds;
        std::vector<int> grow_list;
        for (size_t e = 0; e < edges.size(); ++e) {
            if (edges[e].growth >= 2) {
                continue;
            }
            const UfEdge &edge = edges[e];
            const int b = edge.b < 0 ? boundary_id : edge.b;
            const bool a_active = in_cluster[edge.a] &&
                                  clusters.active(edge.a);
            const bool b_active = in_cluster[b] && clusters.active(b);
            if (a_active || b_active) {
                grow_list.push_back(static_cast<int>(e));
            }
        }
        for (const int e : grow_list) {
            UfEdge &edge = edges[e];
            edge.growth += (in_cluster[edge.a] && clusters.active(edge.a))
                           ? 1 : 0;
            const int b = edge.b < 0 ? boundary_id : edge.b;
            edge.growth += (in_cluster[b] && clusters.active(b)) ? 1 : 0;
            if (edge.growth >= 2) {
                edge.growth = 2;
                in_cluster[edge.a] = 1;
                in_cluster[b] = 1;
                clusters.unite(edge.a, b);
            }
        }
    }

    result.effort = growth_rounds;

    // Peeling: spanning forest over fully grown edges, rooted at the
    // boundary where reachable, then transfer defects leaf-to-root.
    std::vector<int> parent_edge(num_nodes + 1, -1);
    std::vector<int> parent_node(num_nodes + 1, -1);
    std::vector<uint8_t> visited(num_nodes + 1, 0);
    std::vector<int> order;
    order.reserve(num_nodes + 1);

    std::vector<std::vector<int>> grown_incident(num_nodes + 1);
    for (size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].growth >= 2) {
            const int b = edges[e].b < 0 ? boundary_id : edges[e].b;
            grown_incident[edges[e].a].push_back(static_cast<int>(e));
            grown_incident[b].push_back(static_cast<int>(e));
        }
    }

    auto bfs_tree = [&](int root) {
        std::queue<int> frontier;
        visited[root] = 1;
        frontier.push(root);
        while (!frontier.empty()) {
            const int v = frontier.front();
            frontier.pop();
            order.push_back(v);
            for (const int e : grown_incident[v]) {
                const int b = edges[e].b < 0 ? boundary_id : edges[e].b;
                const int other = edges[e].a == v ? b : edges[e].a;
                if (!visited[other]) {
                    visited[other] = 1;
                    parent_edge[other] = e;
                    parent_node[other] = v;
                    frontier.push(other);
                }
            }
        }
    };

    bfs_tree(boundary_id);
    for (int v = 0; v < num_nodes; ++v) {
        if (!visited[v] && !grown_incident[v].empty()) {
            bfs_tree(v);
        }
        if (!visited[v] && is_defect[v]) {
            bfs_tree(v);  // isolated defect (shouldn't occur after growth)
        }
    }

    for (size_t i = order.size(); i-- > 0;) {
        const int v = order[i];
        if (v == boundary_id || parent_edge[v] < 0) {
            continue;
        }
        if (is_defect[v]) {
            const UfEdge &e = edges[parent_edge[v]];
            if (e.data >= 0) {
                result.correction[e.data] ^= 1;
                ++result.weight;
            }
            is_defect[v] = 0;
            is_defect[parent_node[v]] ^= 1;
        }
    }
    return result;
}

UnionFindDecoder::Result
UnionFindDecoder::decode(const std::vector<DetectionEvent> &events,
                         int rounds, int *growth_rounds_out) const
{
    Result result = decode(events, rounds);
    if (growth_rounds_out) {
        *growth_rounds_out = result.effort;
    }
    return result;
}

UnionFindDecoder::Result
UnionFindDecoder::decode_syndrome(const std::vector<uint8_t> &syndrome,
                                  int *growth_rounds_out) const
{
    Result result = Decoder::decode_syndrome(syndrome);
    if (growth_rounds_out) {
        *growth_rounds_out = result.effort;
    }
    return result;
}

} // namespace btwc
