#include "matching/union_find.hpp"

#include <algorithm>
#include <queue>

#include "surface/packed.hpp"

namespace btwc {

namespace {

/** Disjoint-set forest with cluster metadata for the UF decoder. */
class Clusters
{
  public:
    explicit Clusters(int n)
        : parent_(n), odd_(n, 0), boundary_(n, 0)
    {
        for (int i = 0; i < n; ++i) {
            parent_[i] = i;
        }
    }

    int find(int x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    /** Merge; returns the surviving root. */
    int unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a == b) {
            return a;
        }
        parent_[b] = a;
        odd_[a] ^= odd_[b];
        boundary_[a] |= boundary_[b];
        return a;
    }

    void mark_defect(int x) { odd_[find(x)] ^= 1; }
    void mark_boundary(int x) { boundary_[find(x)] = 1; }

    /** A cluster still grows while it has odd parity off-boundary. */
    bool active(int x)
    {
        const int r = find(x);
        return odd_[r] && !boundary_[r];
    }

  private:
    std::vector<int> parent_;
    std::vector<uint8_t> odd_;
    std::vector<uint8_t> boundary_;
};

/** Reference-path spacetime edge (growth carried on the edge). */
struct RefEdge
{
    int a;         ///< spacetime node
    int b;         ///< spacetime node, or -1 for a boundary edge
    int data;      ///< data qubit of a space edge, -1 for time edges
    int growth;    ///< 0..2 half-edge growth
};

/** Fast-path spacetime edge (growth lives in a per-call array). */
struct UfEdge
{
    int a;         ///< spacetime node
    int b;         ///< spacetime node, or -1 for a boundary edge
    int data;      ///< data qubit of a space edge, -1 for time edges
};

} // namespace

/**
 * Per-instance scratch of the packed fast path. The topology block
 * (edges + CSR incidence) depends only on the code, detector and
 * round count, so it is rebuilt only when `rounds` changes; the
 * per-call block is reset via capacity-preserving assigns/clears, so
 * repeated decodes of the same window depth allocate nothing.
 */
struct UnionFindDecoder::Scratch
{
    // Topology (rebuilt when `rounds` changes).
    int rounds = -1;
    int num_nodes = 0;
    std::vector<UfEdge> edges;
    std::vector<int> incident_offset;  ///< CSR offsets, num_nodes + 2
    std::vector<int> incident_edges;   ///< CSR payload, 2 x edges

    // Per-call cluster state.
    std::vector<uint8_t> growth;       ///< per-edge 0..2 half-edges
    std::vector<int> parent;           ///< union-find forest
    PackedBits odd;                    ///< per-root odd-parity flag
    PackedBits on_boundary;            ///< per-root touched-boundary flag
    PackedBits is_defect;
    PackedBits in_cluster;
    PackedBits active;                 ///< pre-round active snapshot
    PackedBits candidate;              ///< per-edge grow candidates
    PackedBits visited;

    // Per-call peeling state.
    std::vector<int> grown_degree;     ///< grown-edge degree per node
    std::vector<int> grown_offset;     ///< CSR offsets over grown edges
    std::vector<int> grown_cursor;
    std::vector<int> grown_edges;
    std::vector<int> parent_edge;
    std::vector<int> parent_node;
    std::vector<int> order;
    std::vector<int> queue;            ///< BFS ring storage
};

UnionFindDecoder::UnionFindDecoder(const RotatedSurfaceCode &code,
                                   CheckType detector)
    : code_(code), detector_(detector),
      num_checks_(code.num_checks(detector))
{
}

UnionFindDecoder::~UnionFindDecoder() = default;

UnionFindDecoder::Scratch &
UnionFindDecoder::scratch(int rounds) const
{
    if (!scratch_) {
        scratch_ = std::make_unique<Scratch>();
    }
    Scratch &s = *scratch_;
    if (s.rounds == rounds) {
        return s;
    }
    s.rounds = rounds;
    s.num_nodes = rounds * num_checks_;
    const int boundary_id = s.num_nodes;
    auto node_id = [this](int check, int round) {
        return round * num_checks_ + check;
    };

    // Same edge order as the reference path's add_edge walk: space
    // edges (ascending neighbor), boundary half-edges, then the time
    // edge, per check per round.
    s.edges.clear();
    for (int t = 0; t < rounds; ++t) {
        for (int c = 0; c < num_checks_; ++c) {
            const int a = node_id(c, t);
            for (const CliqueNeighbor &nb :
                 code_.clique_neighbors(detector_, c)) {
                if (nb.check > c) {
                    s.edges.push_back(
                        UfEdge{a, node_id(nb.check, t), nb.shared_data});
                }
            }
            for (const int bdata : code_.boundary_data(detector_, c)) {
                s.edges.push_back(UfEdge{a, -1, bdata});
            }
            if (t + 1 < rounds) {
                s.edges.push_back(UfEdge{a, node_id(c, t + 1), -1});
            }
        }
    }

    // CSR incidence including the virtual boundary node.
    const int n1 = s.num_nodes + 1;
    s.incident_offset.assign(static_cast<size_t>(n1) + 1, 0);
    for (const UfEdge &edge : s.edges) {
        const int b = edge.b < 0 ? boundary_id : edge.b;
        ++s.incident_offset[static_cast<size_t>(edge.a) + 1];
        ++s.incident_offset[static_cast<size_t>(b) + 1];
    }
    for (int v = 0; v < n1; ++v) {
        s.incident_offset[static_cast<size_t>(v) + 1] +=
            s.incident_offset[static_cast<size_t>(v)];
    }
    s.incident_edges.assign(2 * s.edges.size(), 0);
    {
        std::vector<int> cursor(s.incident_offset.begin(),
                                s.incident_offset.end() - 1);
        for (size_t e = 0; e < s.edges.size(); ++e) {
            const UfEdge &edge = s.edges[e];
            const int b = edge.b < 0 ? boundary_id : edge.b;
            s.incident_edges[static_cast<size_t>(cursor[edge.a]++)] =
                static_cast<int>(e);
            s.incident_edges[static_cast<size_t>(cursor[b]++)] =
                static_cast<int>(e);
        }
    }

    // Size the per-call blocks once; decode resets contents only.
    s.growth.assign(s.edges.size(), 0);
    s.parent.assign(static_cast<size_t>(n1), 0);
    s.odd.resize(n1);
    s.on_boundary.resize(n1);
    s.is_defect.resize(n1);
    s.in_cluster.resize(n1);
    s.active.resize(n1);
    s.candidate.resize(static_cast<int>(s.edges.size()));
    s.visited.resize(n1);
    s.grown_degree.assign(static_cast<size_t>(n1), 0);
    s.grown_offset.assign(static_cast<size_t>(n1) + 1, 0);
    s.grown_cursor.assign(static_cast<size_t>(n1), 0);
    s.grown_edges.clear();
    s.grown_edges.reserve(2 * s.edges.size());
    s.parent_edge.assign(static_cast<size_t>(n1), -1);
    s.parent_node.assign(static_cast<size_t>(n1), -1);
    s.order.clear();
    s.order.reserve(static_cast<size_t>(n1));
    s.queue.clear();
    s.queue.reserve(static_cast<size_t>(n1));
    return s;
}

UnionFindDecoder::Result
UnionFindDecoder::decode(const std::vector<DetectionEvent> &events,
                         int rounds) const
{
    Result result;
    result.correction.assign(code_.num_data(), 0);
    result.defects = static_cast<int>(events.size());
    if (events.empty()) {
        return result;
    }

    Scratch &s = scratch(rounds);
    const int num_nodes = s.num_nodes;
    const int boundary_id = num_nodes;
    const int n1 = num_nodes + 1;
    auto node_id = [this](int check, int round) {
        return round * num_checks_ + check;
    };

    // Reset per-call state (capacity-preserving).
    std::fill(s.growth.begin(), s.growth.end(), 0);
    for (int v = 0; v < n1; ++v) {
        s.parent[static_cast<size_t>(v)] = v;
    }
    s.odd.clear();
    s.on_boundary.clear();
    s.is_defect.clear();
    s.in_cluster.clear();

    auto find = [&s](int x) {
        while (s.parent[static_cast<size_t>(x)] != x) {
            s.parent[static_cast<size_t>(x)] =
                s.parent[static_cast<size_t>(
                    s.parent[static_cast<size_t>(x)])];
            x = s.parent[static_cast<size_t>(x)];
        }
        return x;
    };
    // A cluster still grows while it has odd parity off-boundary
    // (Clusters::active of the reference path).
    auto cluster_active = [&s, &find](int x) {
        const int r = find(x);
        return s.odd.test(r) && !s.on_boundary.test(r);
    };
    auto unite = [&s, &find](int a, int b) {
        a = find(a);
        b = find(b);
        if (a == b) {
            return;
        }
        s.parent[static_cast<size_t>(b)] = a;
        if (s.odd.test(b)) {
            s.odd.flip(a);
        }
        if (s.on_boundary.test(b)) {
            s.on_boundary.set(a);
        }
    };

    s.on_boundary.set(boundary_id);
    for (const DetectionEvent &ev : events) {
        const int v = node_id(ev.check, ev.round);
        s.is_defect.flip(v);
        s.odd.flip(find(v));
        s.in_cluster.set(v);
    }

    // Growth. The candidate set is selected from the pre-round cluster
    // state (the reference's grow_list scan mutates nothing while
    // selecting, so a snapshot is equivalent) and applied in ascending
    // edge order with live re-evaluation of cluster activity — the
    // same order and the same intra-round merge visibility as the
    // reference loop, which is what makes the two paths bit-exact.
    int growth_rounds = 0;
    for (;;) {
        s.active.clear();
        bool have_active = false;
        s.in_cluster.for_each_set([&](int v) {
            if (cluster_active(v)) {
                s.active.set(v);
                have_active = true;
            }
        });
        if (!have_active) {
            break;
        }
        ++growth_rounds;
        s.candidate.clear();
        s.active.for_each_set([&](int v) {
            const int begin = s.incident_offset[static_cast<size_t>(v)];
            const int end = s.incident_offset[static_cast<size_t>(v) + 1];
            for (int k = begin; k < end; ++k) {
                const int e = s.incident_edges[static_cast<size_t>(k)];
                if (s.growth[static_cast<size_t>(e)] < 2) {
                    s.candidate.set(e);
                }
            }
        });
        s.candidate.for_each_set([&](int e) {
            const UfEdge &edge = s.edges[static_cast<size_t>(e)];
            const int b = edge.b < 0 ? boundary_id : edge.b;
            uint8_t g = s.growth[static_cast<size_t>(e)];
            g = static_cast<uint8_t>(
                g + ((s.in_cluster.test(edge.a) && cluster_active(edge.a))
                         ? 1
                         : 0));
            g = static_cast<uint8_t>(
                g + ((s.in_cluster.test(b) && cluster_active(b)) ? 1 : 0));
            if (g >= 2) {
                g = 2;
                s.in_cluster.set(edge.a);
                s.in_cluster.set(b);
                unite(edge.a, b);
            }
            s.growth[static_cast<size_t>(e)] = g;
        });
    }

    result.effort = growth_rounds;

    // Peeling: spanning forest over fully grown edges, rooted at the
    // boundary where reachable, then transfer defects leaf-to-root.
    // The grown incidence is a CSR built in ascending edge order, so
    // each node's list matches the reference's push_back order.
    std::fill(s.grown_degree.begin(), s.grown_degree.end(), 0);
    for (size_t e = 0; e < s.edges.size(); ++e) {
        if (s.growth[e] >= 2) {
            const int b =
                s.edges[e].b < 0 ? boundary_id : s.edges[e].b;
            ++s.grown_degree[static_cast<size_t>(s.edges[e].a)];
            ++s.grown_degree[static_cast<size_t>(b)];
        }
    }
    s.grown_offset[0] = 0;
    for (int v = 0; v < n1; ++v) {
        s.grown_offset[static_cast<size_t>(v) + 1] =
            s.grown_offset[static_cast<size_t>(v)] +
            s.grown_degree[static_cast<size_t>(v)];
    }
    std::copy(s.grown_offset.begin(), s.grown_offset.end() - 1,
              s.grown_cursor.begin());
    s.grown_edges.resize(
        static_cast<size_t>(s.grown_offset[static_cast<size_t>(n1)]));
    for (size_t e = 0; e < s.edges.size(); ++e) {
        if (s.growth[e] >= 2) {
            const int b =
                s.edges[e].b < 0 ? boundary_id : s.edges[e].b;
            s.grown_edges[static_cast<size_t>(
                s.grown_cursor[static_cast<size_t>(s.edges[e].a)]++)] =
                static_cast<int>(e);
            s.grown_edges[static_cast<size_t>(
                s.grown_cursor[static_cast<size_t>(b)]++)] =
                static_cast<int>(e);
        }
    }

    s.visited.clear();
    std::fill(s.parent_edge.begin(), s.parent_edge.end(), -1);
    std::fill(s.parent_node.begin(), s.parent_node.end(), -1);
    s.order.clear();

    auto bfs_tree = [&](int root) {
        s.queue.clear();
        s.visited.set(root);
        s.queue.push_back(root);
        size_t head = 0;
        while (head < s.queue.size()) {
            const int v = s.queue[head++];
            s.order.push_back(v);
            const int begin = s.grown_offset[static_cast<size_t>(v)];
            const int end = s.grown_offset[static_cast<size_t>(v) + 1];
            for (int k = begin; k < end; ++k) {
                const int e = s.grown_edges[static_cast<size_t>(k)];
                const UfEdge &edge = s.edges[static_cast<size_t>(e)];
                const int b = edge.b < 0 ? boundary_id : edge.b;
                const int other = edge.a == v ? b : edge.a;
                if (!s.visited.test(other)) {
                    s.visited.set(other);
                    s.parent_edge[static_cast<size_t>(other)] = e;
                    s.parent_node[static_cast<size_t>(other)] = v;
                    s.queue.push_back(other);
                }
            }
        }
    };

    bfs_tree(boundary_id);
    for (int v = 0; v < num_nodes; ++v) {
        if (!s.visited.test(v) &&
            s.grown_degree[static_cast<size_t>(v)] > 0) {
            bfs_tree(v);
        }
        if (!s.visited.test(v) && s.is_defect.test(v)) {
            bfs_tree(v);  // isolated defect (shouldn't occur after growth)
        }
    }

    for (size_t i = s.order.size(); i-- > 0;) {
        const int v = s.order[i];
        if (v == boundary_id ||
            s.parent_edge[static_cast<size_t>(v)] < 0) {
            continue;
        }
        if (s.is_defect.test(v)) {
            const UfEdge &e = s.edges[static_cast<size_t>(
                s.parent_edge[static_cast<size_t>(v)])];
            if (e.data >= 0) {
                result.correction[e.data] ^= 1;
                ++result.weight;
            }
            s.is_defect.reset_bit(v);
            s.is_defect.flip(s.parent_node[static_cast<size_t>(v)]);
        }
    }
    return result;
}

UnionFindDecoder::Result
UnionFindDecoder::decode_reference(const std::vector<DetectionEvent> &events,
                                   int rounds) const
{
    Result result;
    result.correction.assign(code_.num_data(), 0);
    result.defects = static_cast<int>(events.size());
    if (events.empty()) {
        return result;
    }

    const int num_nodes = rounds * num_checks_;
    const int boundary_id = num_nodes;  // virtual node shared by all edges
    auto node_id = [&](int check, int round) {
        return round * num_checks_ + check;
    };

    // Materialize the spacetime edge list once per call.
    std::vector<RefEdge> edges;
    for (int t = 0; t < rounds; ++t) {
        for (int c = 0; c < num_checks_; ++c) {
            const int a = node_id(c, t);
            for (const CliqueNeighbor &nb :
                 code_.clique_neighbors(detector_, c)) {
                if (nb.check > c) {
                    edges.push_back(
                        RefEdge{a, node_id(nb.check, t), nb.shared_data, 0});
                }
            }
            for (const int bdata : code_.boundary_data(detector_, c)) {
                edges.push_back(RefEdge{a, -1, bdata, 0});
            }
            if (t + 1 < rounds) {
                edges.push_back(RefEdge{a, node_id(c, t + 1), -1, 0});
            }
        }
    }

    Clusters clusters(num_nodes + 1);
    clusters.mark_boundary(boundary_id);
    std::vector<uint8_t> is_defect(num_nodes + 1, 0);
    for (const DetectionEvent &ev : events) {
        const int v = node_id(ev.check, ev.round);
        is_defect[v] ^= 1;
        clusters.mark_defect(v);
    }
    std::vector<uint8_t> in_cluster(num_nodes + 1, 0);
    for (const DetectionEvent &ev : events) {
        in_cluster[node_id(ev.check, ev.round)] = 1;
    }

    // Growth: every active cluster advances all its incident edges by
    // half an edge per round; fully grown edges merge their endpoints.
    // Terminates because an active cluster always has an ungrown
    // incident edge (a maximal cluster has absorbed the boundary and
    // is therefore inactive).
    int growth_rounds = 0;
    for (;;) {
        bool have_active = false;
        for (int v = 0; v <= num_nodes; ++v) {
            if (in_cluster[v] && clusters.active(v)) {
                have_active = true;
                break;
            }
        }
        if (!have_active) {
            break;
        }
        ++growth_rounds;
        std::vector<int> grow_list;
        for (size_t e = 0; e < edges.size(); ++e) {
            if (edges[e].growth >= 2) {
                continue;
            }
            const RefEdge &edge = edges[e];
            const int b = edge.b < 0 ? boundary_id : edge.b;
            const bool a_active = in_cluster[edge.a] &&
                                  clusters.active(edge.a);
            const bool b_active = in_cluster[b] && clusters.active(b);
            if (a_active || b_active) {
                grow_list.push_back(static_cast<int>(e));
            }
        }
        for (const int e : grow_list) {
            RefEdge &edge = edges[e];
            edge.growth += (in_cluster[edge.a] && clusters.active(edge.a))
                           ? 1 : 0;
            const int b = edge.b < 0 ? boundary_id : edge.b;
            edge.growth += (in_cluster[b] && clusters.active(b)) ? 1 : 0;
            if (edge.growth >= 2) {
                edge.growth = 2;
                in_cluster[edge.a] = 1;
                in_cluster[b] = 1;
                clusters.unite(edge.a, b);
            }
        }
    }

    result.effort = growth_rounds;

    // Peeling: spanning forest over fully grown edges, rooted at the
    // boundary where reachable, then transfer defects leaf-to-root.
    std::vector<int> parent_edge(num_nodes + 1, -1);
    std::vector<int> parent_node(num_nodes + 1, -1);
    std::vector<uint8_t> visited(num_nodes + 1, 0);
    std::vector<int> order;
    order.reserve(num_nodes + 1);

    std::vector<std::vector<int>> grown_incident(num_nodes + 1);
    for (size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].growth >= 2) {
            const int b = edges[e].b < 0 ? boundary_id : edges[e].b;
            grown_incident[edges[e].a].push_back(static_cast<int>(e));
            grown_incident[b].push_back(static_cast<int>(e));
        }
    }

    auto bfs_tree = [&](int root) {
        std::queue<int> frontier;
        visited[root] = 1;
        frontier.push(root);
        while (!frontier.empty()) {
            const int v = frontier.front();
            frontier.pop();
            order.push_back(v);
            for (const int e : grown_incident[v]) {
                const int b = edges[e].b < 0 ? boundary_id : edges[e].b;
                const int other = edges[e].a == v ? b : edges[e].a;
                if (!visited[other]) {
                    visited[other] = 1;
                    parent_edge[other] = e;
                    parent_node[other] = v;
                    frontier.push(other);
                }
            }
        }
    };

    bfs_tree(boundary_id);
    for (int v = 0; v < num_nodes; ++v) {
        if (!visited[v] && !grown_incident[v].empty()) {
            bfs_tree(v);
        }
        if (!visited[v] && is_defect[v]) {
            bfs_tree(v);  // isolated defect (shouldn't occur after growth)
        }
    }

    for (size_t i = order.size(); i-- > 0;) {
        const int v = order[i];
        if (v == boundary_id || parent_edge[v] < 0) {
            continue;
        }
        if (is_defect[v]) {
            const RefEdge &e = edges[parent_edge[v]];
            if (e.data >= 0) {
                result.correction[e.data] ^= 1;
                ++result.weight;
            }
            is_defect[v] = 0;
            is_defect[parent_node[v]] ^= 1;
        }
    }
    return result;
}

UnionFindDecoder::Result
UnionFindDecoder::decode(const std::vector<DetectionEvent> &events,
                         int rounds, int *growth_rounds_out) const
{
    Result result = decode(events, rounds);
    if (growth_rounds_out) {
        *growth_rounds_out = result.effort;
    }
    return result;
}

UnionFindDecoder::Result
UnionFindDecoder::decode_syndrome(const std::vector<uint8_t> &syndrome,
                                  int *growth_rounds_out) const
{
    Result result = Decoder::decode_syndrome(syndrome);
    if (growth_rounds_out) {
        *growth_rounds_out = result.effort;
    }
    return result;
}

} // namespace btwc
