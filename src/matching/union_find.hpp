#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "decoders/decoder.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Union-Find decoder (Delfosse-Nickerson) over the spacetime graph.
 *
 * Implements the almost-linear-time cluster-growth + peeling decoder.
 * The paper's §8.1 suggests deeper decoder hierarchies beyond Clique;
 * Union-Find is the natural mid-tier: far cheaper than MWPM with only
 * slightly worse accuracy. We provide it both as that extension and as
 * an independent cross-check of the MWPM implementation (their logical
 * error rates must be within a small factor of each other).
 *
 * Algorithm: every defect seeds a cluster; clusters grow by half-edge
 * increments; odd clusters keep growing until their defect parity is
 * even or they touch the lattice boundary; the grown support (erasure)
 * is then peeled from the leaves of a spanning forest to produce the
 * correction.
 *
 * As a `Decoder` tier, the number of half-edge growth iterations the
 * cluster stage needed is reported as `Result::effort`: a cheap,
 * hardware-friendly measure of how non-local the signature was (0 =
 * nothing to grow). The tier chain (§8.1) escalates to MWPM above a
 * configured threshold.
 *
 * Two implementations share these semantics bit-exactly (property
 * tests): `decode`, the packed fast path — spacetime topology cached
 * per round count, packed defect/cluster/visited bitsets, word-scans
 * for the active-cluster and candidate-edge sweeps, and every per-call
 * array pooled in a per-instance scratch so steady-state decodes
 * allocate nothing — and `decode_reference`, the original
 * allocate-per-call byte-vector implementation, kept as the pinning
 * reference and micro-bench baseline. Instances are not
 * concurrency-safe (pooled scratch); concurrent shards own their own.
 */
class UnionFindDecoder : public Decoder
{
  public:
    UnionFindDecoder(const RotatedSurfaceCode &code, CheckType detector);
    ~UnionFindDecoder() override;

    const char *name() const override { return "union-find"; }

    /** The check type whose detection events are decoded. */
    CheckType detector() const override { return detector_; }

    /**
     * Decode detection events over `rounds` rounds (cf. MwpmDecoder).
     * `Result::effort` carries the cluster growth iteration count.
     */
    Result decode(const std::vector<DetectionEvent> &events,
                  int rounds) const override;

    /**
     * The original allocation-per-call implementation, bit-exact with
     * `decode` by contract (tests/test_packed.cpp pins correction,
     * weight, effort, defects across random spacetime noise). Kept as
     * the property-test reference and the BM_UnionFindDecode byte
     * baseline.
     */
    Result decode_reference(const std::vector<DetectionEvent> &events,
                            int rounds) const;

    /**
     * Legacy spelling of the growth signal: as `decode`, but also
     * stores the growth iteration count through `growth_rounds_out`
     * when non-null (it always equals `Result::effort`).
     */
    Result decode(const std::vector<DetectionEvent> &events, int rounds,
                  int *growth_rounds_out) const;

    using Decoder::decode_syndrome;

    /** Single perfect-measurement round convenience wrapper. */
    Result decode_syndrome(const std::vector<uint8_t> &syndrome,
                           int *growth_rounds_out) const;

  private:
    struct Scratch;
    /** Per-instance scratch, topology rebuilt only when `rounds`
     * changes (each caller decodes a fixed window depth). */
    Scratch &scratch(int rounds) const;

    const RotatedSurfaceCode &code_;
    CheckType detector_;
    int num_checks_;
    mutable std::unique_ptr<Scratch> scratch_;
};

} // namespace btwc
