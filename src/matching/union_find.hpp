#pragma once

#include <cstdint>
#include <vector>

#include "matching/mwpm.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Union-Find decoder (Delfosse-Nickerson) over the spacetime graph.
 *
 * Implements the almost-linear-time cluster-growth + peeling decoder.
 * The paper's §8.1 suggests deeper decoder hierarchies beyond Clique;
 * Union-Find is the natural mid-tier: far cheaper than MWPM with only
 * slightly worse accuracy. We provide it both as that extension and as
 * an independent cross-check of the MWPM implementation (their logical
 * error rates must be within a small factor of each other).
 *
 * Algorithm: every defect seeds a cluster; clusters grow by half-edge
 * increments; odd clusters keep growing until their defect parity is
 * even or they touch the lattice boundary; the grown support (erasure)
 * is then peeled from the leaves of a spanning forest to produce the
 * correction.
 */
class UnionFindDecoder
{
  public:
    UnionFindDecoder(const RotatedSurfaceCode &code, CheckType detector);

    /** The check type whose detection events are decoded. */
    CheckType detector() const { return detector_; }

    /**
     * Decode detection events over `rounds` rounds (cf. MwpmDecoder).
     *
     * @param growth_rounds_out if non-null, receives the number of
     *        half-edge growth iterations the cluster stage needed: a
     *        cheap, hardware-friendly measure of how non-local the
     *        signature was (0 = nothing to grow). The hierarchical
     *        decoder (§8.1) escalates to MWPM above a threshold.
     */
    MwpmDecoder::Result decode(const std::vector<DetectionEvent> &events,
                               int rounds,
                               int *growth_rounds_out = nullptr) const;

    /** Single perfect-measurement round convenience wrapper. */
    MwpmDecoder::Result
    decode_syndrome(const std::vector<uint8_t> &syndrome,
                    int *growth_rounds_out = nullptr) const;

  private:
    const RotatedSurfaceCode &code_;
    CheckType detector_;
    int num_checks_;
};

} // namespace btwc
