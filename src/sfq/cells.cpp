#include "sfq/cells.hpp"

#include "common/check.hpp"

namespace btwc {

namespace {

// Table 1: ERSFQ cell library used for decoder synthesis.
//                       name     delay  area    JJs
const CellSpec kCells[] = {
    {"XOR2", 6.2, 7000.0, 18},
    {"AND2", 8.2, 7000.0, 16},
    {"OR2", 5.4, 7000.0, 14},
    {"NOT", 12.8, 7000.0, 12},
    {"DFF", 8.6, 5600.0, 10},
    {"SPLIT", 7.0, 3500.0, 4},
    {"IN", 0.0, 0.0, 0},
};

} // namespace

const CellSpec &
cell_spec(CellType type)
{
    const int idx = static_cast<int>(type);
    BTWC_CHECK(idx >= 0 && idx <= kNumCellTypes);
    return kCells[idx];
}

} // namespace btwc
