#pragma once

#include <cstdint>

namespace btwc {

/** ERSFQ standard-cell kinds (Table 1 of the paper). */
enum class CellType : uint8_t
{
    XOR2 = 0,
    AND2 = 1,
    OR2 = 2,
    NOT = 3,
    DFF = 4,
    SPLIT = 5,
    Input = 6,  ///< primary input pseudo-cell (zero cost)
};

/** Physical characteristics of one ERSFQ cell. */
struct CellSpec
{
    const char *name;
    double delay_ps;   ///< gate delay
    double area_um2;   ///< layout area
    int jj_count;      ///< Josephson junctions
};

/**
 * The ERSFQ cell library used for decoder synthesis, transcribed from
 * Table 1 of the paper.
 */
const CellSpec &cell_spec(CellType type);

/** Number of real (costed) cell types. */
constexpr int kNumCellTypes = 6;

} // namespace btwc
