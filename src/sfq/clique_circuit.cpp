#include "sfq/clique_circuit.hpp"

#include <string>
#include <vector>

namespace btwc {

Netlist
build_clique_netlist(const RotatedSurfaceCode &code, int filter_rounds)
{
    Netlist net;
    std::vector<int> complex_flags;

    for (const CheckType type : {CheckType::X, CheckType::Z}) {
        const int num_checks = code.num_checks(type);
        const std::string prefix =
            type == CheckType::X ? "x" : "z";

        // Filtered syndrome per check: raw input delayed through
        // filter_rounds - 1 DFFs; each stored round contributes a
        // flip-detect XOR2 + NOT, all AND-ed with the live bit.
        std::vector<int> filtered(num_checks);
        for (int c = 0; c < num_checks; ++c) {
            const int raw = net.add_input(prefix + "_raw" +
                                          std::to_string(c));
            int live = raw;
            int delayed = raw;
            for (int r = 1; r < filter_rounds; ++r) {
                delayed = net.add_gate(CellType::DFF, {delayed});
                const int flip =
                    net.add_gate(CellType::XOR2, {live, delayed});
                const int same = net.add_gate(CellType::NOT, {flip});
                live = net.add_gate(CellType::AND2, {live, same});
            }
            filtered[c] = live;
        }

        // Per-clique decision logic (Fig. 6) and correction wires.
        for (int c = 0; c < num_checks; ++c) {
            const auto &nbrs = code.clique_neighbors(type, c);
            const auto &bdata = code.boundary_data(type, c);

            std::vector<int> nbr_bits;
            nbr_bits.reserve(nbrs.size());
            for (const CliqueNeighbor &nb : nbrs) {
                nbr_bits.push_back(filtered[nb.check]);
            }
            const int parity = net.add_tree(CellType::XOR2, nbr_bits);
            const int even = net.add_gate(CellType::NOT, {parity});
            int complex_bit =
                net.add_gate(CellType::AND2, {filtered[c], even});
            if (!bdata.empty()) {
                // Boundary cliques stay trivial when no neighbor
                // fired; COMPLEX needs an even, *nonzero* count.
                const int any = net.add_tree(CellType::OR2, nbr_bits);
                complex_bit =
                    net.add_gate(CellType::AND2, {complex_bit, any});

                // Boundary correction: fired with a silent clique.
                const int none = net.add_gate(CellType::NOT, {any});
                const int fix = net.add_gate(
                    CellType::AND2, {filtered[c], none},
                    prefix + "_bfix" + std::to_string(c));
                net.mark_output(fix);
            }
            complex_flags.push_back(complex_bit);
        }

        // Shared-data correction wires: AND of the two checks that
        // own each data qubit (emitted once per qubit per type).
        for (int q = 0; q < code.num_data(); ++q) {
            const auto [a, b] = code.edge_of_data(type, q);
            if (b >= 0) {
                const int fix = net.add_gate(
                    CellType::AND2, {filtered[a], filtered[b]},
                    prefix + "_fix" + std::to_string(q));
                net.mark_output(fix);
            }
        }
    }

    const int complex_out = net.add_tree(CellType::OR2, complex_flags,
                                         "COMPLEX");
    net.mark_output(complex_out);
    return net;
}

} // namespace btwc
