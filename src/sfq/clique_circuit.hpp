#pragma once

#include "sfq/netlist.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Gate-level generator for the Clique decoder hardware (Figs. 6-7).
 *
 * Emits, for every check of both types:
 *
 *  - the measurement filter: per extra round one DFF (round storage),
 *    one XOR2 (flip detection), one NOT and one AND2 (persistence),
 *    exactly the Fig. 7 structure;
 *  - the clique decision: an XOR parity tree over the filtered clique
 *    neighbors, a NOT, and the AND with the primary filtered bit
 *    (Fig. 6); boundary cliques additionally AND with the OR of their
 *    neighbors so that an isolated firing stays trivial (the 1+1/1+2
 *    special cases);
 *
 * plus one AND2 correction wire per data qubit (the AND of its two
 * same-type checks, Fig. 5 bottom), a boundary-correction AND for
 * boundary cliques, and the global COMPLEX OR tree across both types.
 *
 * @param code          lattice to generate hardware for
 * @param filter_rounds measurement rounds combined by the filter (>= 1)
 */
Netlist build_clique_netlist(const RotatedSurfaceCode &code,
                             int filter_rounds = 2);

} // namespace btwc
