#include "sfq/cost.hpp"

namespace btwc {

const NisqPlusReference &
nisq_plus_reference()
{
    static const NisqPlusReference kReference{};
    return kReference;
}

} // namespace btwc
