#pragma once

#include "sfq/synth.hpp"

namespace btwc {

/**
 * ERSFQ operating-point cost model.
 *
 * ERSFQ has zero static dissipation; dynamic power is switching
 * energy times switching rate:
 *
 *     P = JJ_count * E_sw * f_clk * activity
 *
 * Calibrated constants (documented substitution for the authors'
 * foundry-model power numbers, see DESIGN.md):
 *  - E_sw = 2e-19 J per JJ switch (I_c * Phi_0 with I_c ~ 100 uA;
 *    the paper quotes ~1e-19 J switching energy for SFQ in §2.4),
 *  - f_clk = 25 GHz, a typical (ER)SFQ clock,
 *  - activity = 1.0 (worst-case: every JJ switches every clock).
 *
 * The *scaling* of power with code distance -- the quantity Fig. 15
 * argues from -- comes entirely from the synthesized JJ count.
 */
struct ErsfqOperatingPoint
{
    double switch_energy_j = 2e-19;  ///< per JJ switch
    double clock_hz = 25e9;          ///< processing clock
    double activity = 1.0;           ///< average switching activity

    /** Dynamic power (W) of a synthesized block. */
    double power_w(const SynthesisResult &synth) const
    {
        return synth.jj_count * switch_energy_j * clock_hz * activity;
    }

    /** Dynamic power in microwatts. */
    double power_uw(const SynthesisResult &synth) const
    {
        return power_w(synth) * 1e6;
    }
};

/**
 * Published NISQ+ [27] per-logical-qubit overheads at code distance 9,
 * reconstructed from the paper's §7.4 comparison ratios (Clique is
 * 37x more power-efficient, 25x more area-efficient, and 15x faster
 * at d = 9) anchored to representative NISQ+ SFQ figures. NISQ+ is a
 * closed-source comparator; see the substitution table in DESIGN.md.
 */
struct NisqPlusReference
{
    int distance = 9;
    double power_uw = 2.4e3;   ///< ~2.4 mW per logical qubit
    double area_mm2 = 370.0;   ///< per logical qubit
    double latency_ns = 2.7;   ///< average decode latency
    double worst_case_latency_factor = 6.0;  ///< §7.4: up to 6x worse
};

/** The reference NISQ+ data point used by Fig. 15. */
const NisqPlusReference &nisq_plus_reference();

} // namespace btwc
