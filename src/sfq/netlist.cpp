#include "sfq/netlist.hpp"

#include "common/check.hpp"

namespace btwc {

int
Netlist::add_input(std::string name)
{
    nodes_.push_back(Node{CellType::Input, {}, std::move(name)});
    ++num_inputs_;
    return size() - 1;
}

int
Netlist::add_gate(CellType type, std::vector<int> fanins, std::string name)
{
    BTWC_CHECK(type != CellType::Input);
    const size_t expected =
        (type == CellType::NOT || type == CellType::DFF ||
         type == CellType::SPLIT)
            ? 1
            : 2;
    BTWC_CHECK(fanins.size() == expected);
    for (const int f : fanins) {
        BTWC_CHECK_MSG(f >= 0 && f < size(),
                       "fanins must precede the gate");
    }
    nodes_.push_back(Node{type, std::move(fanins), std::move(name)});
    return size() - 1;
}

int
Netlist::add_tree(CellType type, const std::vector<int> &inputs,
                  const std::string &name)
{
    BTWC_CHECK(!inputs.empty());
    std::vector<int> level = inputs;
    while (level.size() > 1) {
        std::vector<int> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2) {
            next.push_back(add_gate(type, {level[i], level[i + 1]}, name));
        }
        if (level.size() % 2 == 1) {
            next.push_back(level.back());
        }
        level = std::move(next);
    }
    return level.front();
}

void
Netlist::mark_output(int node)
{
    BTWC_CHECK(node >= 0 && node < size());
    outputs_.push_back(node);
}

std::vector<int>
Netlist::gate_counts() const
{
    std::vector<int> counts(kNumCellTypes, 0);
    for (const Node &node : nodes_) {
        if (node.type != CellType::Input) {
            ++counts[static_cast<int>(node.type)];
        }
    }
    return counts;
}

std::vector<int>
Netlist::fanouts() const
{
    std::vector<int> fo(nodes_.size(), 0);
    for (const Node &node : nodes_) {
        for (const int f : node.fanins) {
            ++fo[f];
        }
    }
    return fo;
}

} // namespace btwc
