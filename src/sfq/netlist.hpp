#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sfq/cells.hpp"

namespace btwc {

/**
 * A simple combinational/sequential netlist over the ERSFQ library.
 *
 * Nodes are primary inputs or gates; edges are fanin references. DFF
 * nodes represent explicit architectural state (the measurement
 * filter's round storage); *path-balancing* DFFs required by SFQ's
 * gate-level pipelining are not stored as nodes -- they are counted by
 * the synthesizer (`sfq/synth.hpp`), which also accounts for splitter
 * trees on every multi-fanout net (SFQ gates drive exactly one sink).
 */
class Netlist
{
  public:
    /** One node: a primary input or a gate instance. */
    struct Node
    {
        CellType type;
        std::vector<int> fanins;
        std::string name;
    };

    /** Add a primary input; returns its node id. */
    int add_input(std::string name);

    /** Add a gate; 2-input kinds take exactly 2 fanins, NOT/DFF 1. */
    int add_gate(CellType type, std::vector<int> fanins,
                 std::string name = {});

    /**
     * Reduction tree (XOR2/OR2/AND2) over `inputs`. Returns the root
     * node id; a single input is returned unchanged. `inputs` must be
     * non-empty.
     */
    int add_tree(CellType type, const std::vector<int> &inputs,
                 const std::string &name = {});

    /** Mark a node as a primary output. */
    void mark_output(int node);

    /** All nodes, topologically ordered by construction. */
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Primary output node ids. */
    const std::vector<int> &outputs() const { return outputs_; }

    /** Number of nodes (inputs + gates). */
    int size() const { return static_cast<int>(nodes_.size()); }

    /** Number of primary inputs. */
    int num_inputs() const { return num_inputs_; }

    /** Number of gates of each cell type (indexed by CellType). */
    std::vector<int> gate_counts() const;

    /** Fanout count of every node. */
    std::vector<int> fanouts() const;

  private:
    std::vector<Node> nodes_;
    std::vector<int> outputs_;
    int num_inputs_ = 0;
};

} // namespace btwc
