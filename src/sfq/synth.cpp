#include "sfq/synth.hpp"

#include <algorithm>
#include <cmath>

namespace btwc {

SynthesisResult
synthesize(const Netlist &netlist)
{
    SynthesisResult result;
    result.gate_counts = netlist.gate_counts();

    const auto &nodes = netlist.nodes();
    const std::vector<int> fanouts = netlist.fanouts();

    // Splitter trees: a net with F sinks needs F - 1 splitters; the
    // tree adds ceil(log2 F) splitter hops of delay on that net.
    std::vector<int> split_depth(nodes.size(), 0);
    for (size_t i = 0; i < nodes.size(); ++i) {
        int sinks = fanouts[i];
        const bool is_output =
            std::find(netlist.outputs().begin(), netlist.outputs().end(),
                      static_cast<int>(i)) != netlist.outputs().end();
        if (is_output) {
            ++sinks;  // the output pin is one more sink
        }
        if (sinks > 1) {
            result.splitters += sinks - 1;
            int depth = 0;
            while ((1 << depth) < sinks) {
                ++depth;
            }
            split_depth[i] = depth;
        }
    }

    // Clocked-stage levels for path balancing: inputs sit at level 0,
    // each gate one level past its deepest fanin. Every fanin edge
    // spanning more than one level is padded with DFFs.
    std::vector<int> level(nodes.size(), 0);
    std::vector<double> arrival(nodes.size(), 0.0);
    const double split_delay = cell_spec(CellType::SPLIT).delay_ps;

    for (size_t i = 0; i < nodes.size(); ++i) {
        const Netlist::Node &node = nodes[i];
        if (node.type == CellType::Input) {
            level[i] = 0;
            arrival[i] = 0.0;
            continue;
        }
        int max_level = 0;
        double max_arrival = 0.0;
        for (const int f : node.fanins) {
            max_level = std::max(max_level, level[f]);
            max_arrival = std::max(
                max_arrival, arrival[f] + split_depth[f] * split_delay);
        }
        level[i] = max_level + 1;
        arrival[i] = max_arrival + cell_spec(node.type).delay_ps;
    }
    for (size_t i = 0; i < nodes.size(); ++i) {
        for (const int f : nodes[i].fanins) {
            result.balancing_dffs += level[i] - 1 - level[f];
        }
    }

    for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].type == CellType::Input) {
            continue;
        }
        const CellSpec &spec = cell_spec(nodes[i].type);
        result.jj_count += spec.jj_count;
        result.area_um2 += spec.area_um2;
    }
    const CellSpec &split = cell_spec(CellType::SPLIT);
    const CellSpec &dff = cell_spec(CellType::DFF);
    result.jj_count += result.splitters * split.jj_count +
                       result.balancing_dffs * dff.jj_count;
    result.area_um2 += result.splitters * split.area_um2 +
                       result.balancing_dffs * dff.area_um2;

    int total = result.splitters + result.balancing_dffs;
    for (const int count : result.gate_counts) {
        total += count;
    }
    result.total_cells = total;

    for (const int out : netlist.outputs()) {
        result.critical_path_ps =
            std::max(result.critical_path_ps, arrival[out]);
        result.logic_depth = std::max(result.logic_depth, level[out]);
    }
    return result;
}

} // namespace btwc
