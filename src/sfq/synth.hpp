#pragma once

#include <cstdint>
#include <vector>

#include "sfq/netlist.hpp"

namespace btwc {

/**
 * Aggregate result of SFQ technology mapping (§6.2 of the paper).
 *
 * The numbers already include the two structural obligations of SFQ
 * logic that dominate real synthesis results:
 *
 *  1. *Splitter insertion*: SFQ pulses cannot fan out; every net
 *     driving F > 1 sinks needs a tree of F - 1 SPLIT cells.
 *  2. *Full path balancing*: clocked SFQ gates consume exactly one
 *     pulse per clock, so every gate's fanins must traverse the same
 *     number of clocked stages; shorter paths are padded with DFFs
 *     (one per missing stage).
 */
struct SynthesisResult
{
    std::vector<int> gate_counts;  ///< logic cells by CellType
    int splitters = 0;             ///< inserted SPLIT cells
    int balancing_dffs = 0;        ///< inserted path-balancing DFFs
    int total_cells = 0;           ///< everything, including insertions
    int jj_count = 0;              ///< total Josephson junctions
    double area_um2 = 0.0;         ///< total cell area
    double critical_path_ps = 0.0; ///< longest register-free delay path
    int logic_depth = 0;           ///< clocked stages on the deepest path

    /** Area in mm^2. */
    double area_mm2() const { return area_um2 / 1e6; }
};

/**
 * Map a netlist to the ERSFQ library: count splitters, balance paths,
 * and roll up JJ count, area, and the critical path.
 */
SynthesisResult synthesize(const Netlist &netlist);

} // namespace btwc
