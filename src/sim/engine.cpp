#include "sim/engine.hpp"

#include "common/rng.hpp"

namespace btwc {

int
resolve_threads(int requested)
{
    if (requested >= 1) {
        return requested;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<Shard>
plan_shards(uint64_t cycles, int shards, uint64_t seed)
{
    std::vector<Shard> plan;
    if (cycles == 0 || shards <= 1) {
        plan.push_back(Shard{0, cycles, seed});
        return plan;
    }
    const uint64_t n = static_cast<uint64_t>(shards);
    Rng seeder(seed);
    for (uint64_t i = 0; i < n; ++i) {
        // Draw every shard's seed even for dropped empty shards so the
        // stream assignment is independent of the cycle count.
        const uint64_t shard_seed = seeder.next_u64();
        const uint64_t shard_cycles = cycles / n + (i < cycles % n ? 1 : 0);
        if (shard_cycles == 0) {
            continue;
        }
        plan.push_back(
            Shard{static_cast<int>(plan.size()), shard_cycles, shard_seed});
    }
    return plan;
}

} // namespace btwc
