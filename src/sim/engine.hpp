#pragma once

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace btwc {

/**
 * Sharded multi-threaded Monte-Carlo engine.
 *
 * Every harness in sim/ draws independent per-cycle samples, so a run
 * of C cycles splits exactly into N shards of ~C/N cycles with
 * independent RNG streams (splittable seeds via SplitMix64, cf.
 * common/rng.hpp) whose per-shard statistics merge losslessly
 * (LifetimeStats::merge, CountHistogram::merge, RunningStats::merge).
 *
 * Determinism contract: for a fixed (cycles, threads, seed) triple the
 * result is bit-identical regardless of scheduling, because shard
 * seeds and cycle counts are planned up front and results are merged
 * in shard order. `threads <= 1` runs inline on the caller's thread
 * with the *original* seed, reproducing the historical single-threaded
 * results exactly. Results for different `threads` values are
 * different (but statistically equivalent) samples.
 */

/** One worker shard of a sharded Monte-Carlo run. */
struct Shard
{
    int index = 0;       ///< 0-based shard number
    uint64_t cycles = 0; ///< cycles this shard simulates (> 0)
    uint64_t seed = 0;   ///< independent RNG stream seed
};

/**
 * Resolve a `--threads`-style request: values >= 1 pass through, 0 (or
 * negative) means "all hardware threads" (at least 1).
 */
int resolve_threads(int requested);

/**
 * Plan the shard decomposition of `cycles` cycles over at most
 * `shards` workers: cycle counts differ by at most one and sum to
 * `cycles` exactly; empty shards are dropped. With a single shard the
 * master seed passes through untouched (legacy reproducibility);
 * otherwise shard seeds are drawn from a SplitMix64-seeded stream of
 * the master seed.
 */
std::vector<Shard> plan_shards(uint64_t cycles, int shards, uint64_t seed);

/**
 * Run `worker` over the planned shards -- on std::thread workers when
 * more than one shard is planned -- and merge the per-shard results in
 * shard order.
 *
 * @tparam Result  default-constructible; the first shard's result
 *                 seeds the accumulator and every later result is
 *                 folded in via `Result::merge(const Result &)`.
 * @param  worker  callable `(const Shard &) -> Result`; must be safe
 *                 to invoke concurrently from different threads.
 */
template <typename Result, typename Worker>
Result
run_sharded(uint64_t cycles, int threads, uint64_t seed, Worker &&worker)
{
    const std::vector<Shard> shards =
        plan_shards(cycles, resolve_threads(threads), seed);
    if (shards.size() <= 1) {
        return worker(shards.empty() ? Shard{0, 0, seed} : shards[0]);
    }
    std::vector<Result> results(shards.size());
    std::vector<std::thread> pool;
    pool.reserve(shards.size());
    for (size_t i = 0; i < shards.size(); ++i) {
        pool.emplace_back([&, i]() { results[i] = worker(shards[i]); });
    }
    for (std::thread &t : pool) {
        t.join();
    }
    Result merged = std::move(results[0]);
    for (size_t i = 1; i < results.size(); ++i) {
        merged.merge(results[i]);
    }
    return merged;
}

} // namespace btwc
