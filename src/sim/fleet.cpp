#include "sim/fleet.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"
#include "core/offchip_queue.hpp"
#include "core/offchip_service.hpp"
#include "core/stall.hpp"
#include "sim/engine.hpp"
#include "surface/lattice.hpp"

namespace btwc {

namespace {

/**
 * The fleet's per-cycle demand distribution: Binomial(n, q) for the
 * homogeneous model, Poisson-binomial for a heterogeneous
 * `FleetConfig::qubit_probs` profile. Draws group qubits by
 * probability (one binomial per distinct probability, summed), so the
 * homogeneous case -- and a vector of all-equal entries -- stays a
 * single `Rng::binomial` call, bit-exact with the historical stream.
 */
class DemandModel
{
  public:
    explicit DemandModel(const FleetConfig &config)
    {
        if (config.qubit_probs.empty()) {
            groups_.emplace_back(
                static_cast<uint64_t>(config.num_qubits),
                config.offchip_prob);
            return;
        }
        if (config.qubit_probs.size() !=
            static_cast<size_t>(config.num_qubits)) {
            // A silently mismatched profile would model the wrong
            // fleet (e.g. a copied config with only num_qubits
            // rescaled); refuse loudly instead.
            throw std::invalid_argument(
                "FleetConfig::qubit_probs size (" +
                std::to_string(config.qubit_probs.size()) +
                ") != num_qubits (" +
                std::to_string(config.num_qubits) + ")");
        }
        std::map<double, uint64_t> counts;
        for (const double q : config.qubit_probs) {
            ++counts[q];
        }
        groups_.reserve(counts.size());
        for (const auto &[q, count] : counts) {
            groups_.emplace_back(count, q);
        }
    }

    uint64_t draw(Rng &rng) const
    {
        uint64_t total = 0;
        for (const auto &[count, q] : groups_) {
            total += rng.binomial(count, q);
        }
        return total;
    }

  private:
    std::vector<std::pair<uint64_t, double>> groups_;  ///< (qubits, prob)
};

/**
 * Block-parallel demand stream for the serial bandwidth/stall queue:
 * the queue must consume demand cycle by cycle (its backlog couples
 * adjacent cycles), but the draws themselves are independent, so
 * worker threads prefill fixed-size blocks, one contiguous chunk per
 * persistent worker stream. Deterministic for a fixed (seed, threads)
 * pair; `threads <= 1` degenerates to drawing straight off one
 * stream, reproducing the historical sequence bit-for-bit.
 */
class DemandSource
{
  public:
    DemandSource(DemandModel model, uint64_t seed, int threads)
        : model_(std::move(model)), workers_(resolve_threads(threads))
    {
        Rng seeder(seed);
        if (workers_ <= 1) {
            streams_.push_back(seeder);
        } else {
            streams_.reserve(static_cast<size_t>(workers_));
            for (int w = 0; w < workers_; ++w) {
                streams_.emplace_back(seeder.next_u64());
            }
        }
    }

    uint64_t next()
    {
        if (workers_ <= 1) {
            return model_.draw(streams_[0]);
        }
        if (pos_ == buffer_.size()) {
            refill();
        }
        return buffer_[pos_++];
    }

  private:
    static constexpr size_t kChunk = 4096;  ///< draws per worker per refill

    void refill()
    {
        buffer_.resize(kChunk * static_cast<size_t>(workers_));
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(workers_));
        for (int w = 0; w < workers_; ++w) {
            pool.emplace_back([this, w]() {
                uint64_t *out = buffer_.data() + kChunk * w;
                Rng &rng = streams_[w];
                for (size_t i = 0; i < kChunk; ++i) {
                    out[i] = model_.draw(rng);
                }
            });
        }
        for (std::thread &t : pool) {
            t.join();
        }
        pos_ = 0;
    }

    DemandModel model_;
    int workers_;
    std::vector<Rng> streams_;
    std::vector<uint64_t> buffer_;
    size_t pos_ = 0;
};

} // namespace

std::vector<double>
hotspot_probs(int num_qubits, double q, double hot_fraction,
              double hot_multiplier)
{
    std::vector<double> probs(static_cast<size_t>(num_qubits < 0
                                                      ? 0
                                                      : num_qubits),
                              std::clamp(q, 0.0, 1.0));
    if (hot_fraction <= 0.0 || probs.empty()) {
        return probs;
    }
    const double hot_q = std::clamp(q * hot_multiplier, 0.0, 1.0);
    size_t hot = static_cast<size_t>(hot_fraction *
                                     static_cast<double>(probs.size()));
    hot = std::clamp<size_t>(hot, 1, probs.size());
    for (size_t i = 0; i < hot; ++i) {
        probs[i] = hot_q;
    }
    return probs;
}

CountHistogram
fleet_demand_histogram(const FleetConfig &config)
{
    const DemandModel model(config);
    return run_sharded<CountHistogram>(
        config.cycles, config.threads, config.seed,
        [&model](const Shard &shard) {
            Rng rng(shard.seed);
            CountHistogram demand;
            for (uint64_t cycle = 0; cycle < shard.cycles; ++cycle) {
                demand.add(model.draw(rng));
            }
            return demand;
        });
}

void
ExactFleetStats::merge(const ExactFleetStats &other)
{
    demand.merge(other.demand);
    queue_delay.merge(other.queue_delay);
    batch_sizes.merge(other.batch_sizes);
    backlog.merge(other.backlog);
    stall_cycles += other.stall_cycles;
    work_cycles += other.work_cycles;
    max_backlog = std::max(max_backlog, other.max_backlog);
    enqueued += other.enqueued;
    served += other.served;
    landed += other.landed;
    suppressed += other.suppressed;
    pending += other.pending;
    outage_cycles += other.outage_cycles;
    dropped += other.dropped;
    duplicated += other.duplicated;
    corrupted += other.corrupted;
    surge_enqueued += other.surge_enqueued;
    surge_landed += other.surge_landed;
    if (per_qubit.size() < other.per_qubit.size()) {
        per_qubit.resize(other.per_qubit.size());
    }
    for (size_t i = 0; i < other.per_qubit.size(); ++i) {
        per_qubit[i].merge(other.per_qubit[i]);
    }
}

double
ExactFleetStats::exec_time_increase() const
{
    return stall_execution_time_increase(stall_cycles, work_cycles);
}

double
tenant_prob(const ExactFleetConfig &config, int q)
{
    if (config.tenant_probs.empty()) {
        return config.p;
    }
    return config.tenant_probs[static_cast<size_t>(q)];
}

int
tenant_distance(const ExactFleetConfig &config, int q)
{
    if (config.tenant_distances.empty()) {
        return config.distance;
    }
    return config.tenant_distances[static_cast<size_t>(q)];
}

void
validate_tenant_profile(const ExactFleetConfig &config)
{
    // Same rationale as DemandModel's qubit_probs check: a silently
    // mismatched profile would model the wrong fleet; refuse loudly.
    if (!config.tenant_probs.empty() &&
        config.tenant_probs.size() !=
            static_cast<size_t>(config.num_qubits)) {
        throw std::invalid_argument(
            "ExactFleetConfig::tenant_probs size (" +
            std::to_string(config.tenant_probs.size()) +
            ") != num_qubits (" + std::to_string(config.num_qubits) +
            ")");
    }
    for (const double q : config.tenant_probs) {
        if (!(q >= 0.0 && q <= 1.0)) {
            throw std::invalid_argument(
                "ExactFleetConfig::tenant_probs entries must be "
                "probabilities");
        }
    }
    if (!config.tenant_distances.empty() &&
        config.tenant_distances.size() !=
            static_cast<size_t>(config.num_qubits)) {
        throw std::invalid_argument(
            "ExactFleetConfig::tenant_distances size (" +
            std::to_string(config.tenant_distances.size()) +
            ") != num_qubits (" + std::to_string(config.num_qubits) +
            ")");
    }
}

ExactFleetStats
fleet_demand_exact_stats(const ExactFleetConfig &config)
{
    validate_tenant_profile(config);
    // Codes are immutable and shared across shards: the base code plus
    // one per distinct per-tenant distance override.
    const RotatedSurfaceCode code(config.distance);
    std::map<int, RotatedSurfaceCode> extra_codes;
    for (const int d : config.tenant_distances) {
        if (d != config.distance) {
            extra_codes.try_emplace(d, d);
        }
    }
    const auto code_of = [&](int q) -> const RotatedSurfaceCode & {
        const int d = tenant_distance(config, q);
        return d == config.distance ? code : extra_codes.at(d);
    };
    return run_sharded<ExactFleetStats>(
        config.cycles, config.threads, config.seed,
        [&](const Shard &shard) {
            Rng seeder(shard.seed);
            SystemConfig sconfig;
            sconfig.offchip = config.offchip;
            sconfig.tiers = config.tiers;
            if (!config.shared_link) {
                // Private queues carry the link parameters per qubit;
                // under the shared link the tenants' own queues stay
                // idle and the parameters live on the service.
                sconfig.offchip_latency = config.offchip_latency;
                sconfig.offchip_bandwidth = config.offchip_bandwidth;
                sconfig.offchip_batch = config.offchip_batch;
            }
            std::vector<BtwcSystem> qubits;
            qubits.reserve(static_cast<size_t>(config.num_qubits));
            for (int q = 0; q < config.num_qubits; ++q) {
                qubits.emplace_back(
                    code_of(q),
                    NoiseParams::uniform(tenant_prob(config, q)),
                    sconfig, seeder.next_u64());
            }
            std::optional<SharedOffchipService> service;
            if (config.shared_link) {
                service.emplace(
                    code, config.tiers,
                    OffchipQueueConfig{config.offchip_bandwidth,
                                       config.offchip_latency,
                                       config.offchip_batch});
                for (const auto &[d, extra] : extra_codes) {
                    service->register_code(extra);
                }
                if (config.faults.enabled) {
                    service->set_fault_injector(
                        std::make_unique<FaultInjector>(config.faults,
                                                        0));
                }
                for (size_t q = 0; q < qubits.size(); ++q) {
                    qubits[q].attach_shared_service(&*service,
                                                    static_cast<int>(q));
                }
            }
            ExactFleetStats stats;
            stats.per_qubit.resize(qubits.size());
            std::vector<std::pair<int, uint64_t>> surge_scratch;
            for (uint64_t cycle = 0; cycle < shard.cycles; ++cycle) {
                // Demand = qubits that shipped a fresh escalation this
                // cycle. Counting `report.offchip` instead would
                // re-count a half on every cycle its request is in
                // flight (the escalated errors stay on the lattice
                // and keep classifying off-chip), inflating demand
                // ~(latency+1)x against the per-escalation binomial
                // model; those re-flags are `suppressed`, not demand.
                // At the synchronous L=0 point the two counts agree
                // (a half is never busy when it classifies), which
                // keeps the legacy histogram bit-exact.
                uint64_t offchip = 0;
                for (size_t q = 0; q < qubits.size(); ++q) {
                    const CycleReport report = qubits[q].step();
                    offchip += report.queued > 0 ? 1 : 0;
                    QubitServiceStats &mine = stats.per_qubit[q];
                    mine.enqueued += static_cast<uint64_t>(report.queued);
                    mine.suppressed +=
                        static_cast<uint64_t>(report.suppressed);
                    if (!config.shared_link) {
                        mine.landed +=
                            static_cast<uint64_t>(report.landed);
                    }
                }
                if (service) {
                    // Fault-plan surges join this cycle's demand.
                    if (config.faults.enabled &&
                        !config.faults.surges.empty()) {
                        surge_scratch.clear();
                        config.faults.surges_at(
                            service->queue().total_cycles(),
                            &surge_scratch);
                        for (const auto &surge : surge_scratch) {
                            service->enqueue_synthetic(
                                surge.first % config.num_qubits,
                                surge.second);
                        }
                    }
                    // All tenants stepped: advance the shared link one
                    // machine cycle and route the landings home.
                    for (const SharedOffchipService::Delivery &landing :
                         service->step()) {
                        qubits[static_cast<size_t>(landing.owner)]
                            .deliver_offchip_correction(
                                landing.half, landing.correction);
                        ++stats.per_qubit[static_cast<size_t>(
                                              landing.owner)]
                              .landed;
                    }
                    stats.backlog.add(service->queue().backlog());
                }
                stats.demand.add(offchip);
            }
            if (service) {
                const OffchipQueue &link = service->queue();
                stats.queue_delay = link.delay_histogram();
                stats.batch_sizes = link.batch_histogram();
                stats.stall_cycles = link.stall_cycles();
                stats.work_cycles = link.work_cycles();
                stats.max_backlog = link.max_backlog();
                stats.enqueued = link.enqueued();
                stats.served = link.served();
                stats.landed = link.landed();
                stats.pending = service->pending();
                stats.outage_cycles = link.outage_cycles();
                stats.dropped = service->dropped();
                stats.duplicated = service->duplicated();
                stats.corrupted = service->corrupted();
                stats.surge_enqueued = service->surge_enqueued();
                stats.surge_landed = service->surge_landed();
            } else {
                for (const BtwcSystem &qubit : qubits) {
                    const OffchipQueue &link = qubit.offchip_queue();
                    stats.queue_delay.merge(link.delay_histogram());
                    stats.batch_sizes.merge(link.batch_histogram());
                    stats.stall_cycles += link.stall_cycles();
                    stats.work_cycles += link.work_cycles();
                    stats.max_backlog =
                        std::max(stats.max_backlog, link.max_backlog());
                    stats.enqueued += link.enqueued();
                    stats.served += link.served();
                    stats.landed += link.landed();
                    stats.pending += qubit.pending_offchip();
                }
            }
            for (const QubitServiceStats &mine : stats.per_qubit) {
                stats.suppressed += mine.suppressed;
            }
            return stats;
        });
}

CountHistogram
fleet_demand_exact(int distance, double p, int num_qubits, uint64_t cycles,
                   uint64_t seed, int threads)
{
    ExactFleetConfig config;
    config.distance = distance;
    config.p = p;
    config.num_qubits = num_qubits;
    config.cycles = cycles;
    config.seed = seed;
    config.threads = threads;
    return fleet_demand_exact_stats(config).demand;
}

FleetRunResult
run_fleet_with_bandwidth(const FleetConfig &config, uint64_t bandwidth)
{
    DemandSource demand(DemandModel(config), config.seed, config.threads);
    // The off-chip link as an async service (core/offchip_queue.hpp):
    // bandwidth-limited FIFO with `offchip_latency` cycles between a
    // decode entering service and its correction landing. Latency 0
    // reproduces the historical StallController run step-for-step.
    const uint64_t effective = bandwidth ? bandwidth : 1;
    OffchipQueue queue(OffchipQueueConfig{effective, config.offchip_latency,
                                          config.offchip_batch});
    // The program needs `config.cycles` cycles of real progress; stall
    // cycles extend the wall clock and keep generating fresh errors.
    // Provisioning at (or below) the demand mean never converges --
    // the paper's "infinite stalling" regime -- so the run aborts once
    // the wall clock blows past a generous multiple of the program or
    // the backlog exceeds what the link could ever drain; callers
    // detect divergence via work_cycles < cycles.
    const uint64_t wall_clock_cap = 25 * config.cycles + 1000;
    while (queue.work_cycles() < config.cycles) {
        queue.step(demand.next());
        if (queue.total_cycles() >= wall_clock_cap ||
            queue.backlog() >
                effective * (config.cycles + queue.total_cycles())) {
            break;
        }
    }
    FleetRunResult result;
    result.bandwidth = effective;
    result.total_cycles = queue.total_cycles();
    result.work_cycles = queue.work_cycles();
    result.stall_cycles = queue.stall_cycles();
    result.max_backlog = queue.max_backlog();
    result.exec_time_increase = queue.execution_time_increase();
    result.bandwidth_reduction =
        static_cast<double>(config.num_qubits) /
        static_cast<double>(effective);
    result.mean_queue_delay = queue.delay_histogram().mean();
    result.p99_queue_delay = queue.delay_histogram().percentile(0.99);
    result.max_queue_delay = queue.delay_histogram().max_value();
    result.mean_batch = queue.batch_histogram().mean();
    return result;
}

std::vector<TraceCycle>
fleet_trace(const FleetConfig &config, uint64_t bandwidth)
{
    const DemandModel model(config);
    Rng rng(config.seed);
    StallController queue(bandwidth);
    std::vector<TraceCycle> trace;
    trace.reserve(config.cycles);
    for (uint64_t cycle = 0; cycle < config.cycles; ++cycle) {
        TraceCycle entry;
        entry.carryover = queue.backlog();
        entry.stall = queue.stall_pending();
        entry.fresh = model.draw(rng);
        const uint64_t before = queue.served();
        queue.step(entry.fresh);
        entry.served = queue.served() - before;
        trace.push_back(entry);
    }
    return trace;
}

} // namespace btwc
