#include "sim/fleet.hpp"

#include "common/rng.hpp"
#include "core/stall.hpp"
#include "surface/lattice.hpp"

namespace btwc {

CountHistogram
fleet_demand_histogram(const FleetConfig &config)
{
    Rng rng(config.seed);
    CountHistogram demand;
    for (uint64_t cycle = 0; cycle < config.cycles; ++cycle) {
        demand.add(rng.binomial(static_cast<uint64_t>(config.num_qubits),
                                config.offchip_prob));
    }
    return demand;
}

CountHistogram
fleet_demand_exact(int distance, double p, int num_qubits, uint64_t cycles,
                   uint64_t seed)
{
    const RotatedSurfaceCode code(distance);
    Rng seeder(seed);
    std::vector<BtwcSystem> qubits;
    qubits.reserve(static_cast<size_t>(num_qubits));
    for (int q = 0; q < num_qubits; ++q) {
        qubits.emplace_back(code, NoiseParams::uniform(p), SystemConfig{},
                            seeder.next_u64());
    }
    CountHistogram demand;
    for (uint64_t cycle = 0; cycle < cycles; ++cycle) {
        uint64_t offchip = 0;
        for (BtwcSystem &qubit : qubits) {
            offchip += qubit.step().offchip ? 1 : 0;
        }
        demand.add(offchip);
    }
    return demand;
}

FleetRunResult
run_fleet_with_bandwidth(const FleetConfig &config, uint64_t bandwidth)
{
    Rng rng(config.seed);
    StallController queue(bandwidth);
    // The program needs `config.cycles` cycles of real progress; stall
    // cycles extend the wall clock and keep generating fresh errors.
    // Provisioning at (or below) the demand mean never converges --
    // the paper's "infinite stalling" regime -- so the run aborts once
    // the wall clock blows past a generous multiple of the program or
    // the backlog exceeds what the link could ever drain; callers
    // detect divergence via work_cycles < cycles.
    const uint64_t wall_clock_cap = 25 * config.cycles + 1000;
    while (queue.work_cycles() < config.cycles) {
        const uint64_t fresh = rng.binomial(
            static_cast<uint64_t>(config.num_qubits), config.offchip_prob);
        queue.step(fresh);
        if (queue.total_cycles() >= wall_clock_cap ||
            queue.backlog() >
                bandwidth * (config.cycles + queue.total_cycles())) {
            break;
        }
    }
    FleetRunResult result;
    result.bandwidth = queue.bandwidth();
    result.total_cycles = queue.total_cycles();
    result.work_cycles = queue.work_cycles();
    result.stall_cycles = queue.stall_cycles();
    result.max_backlog = queue.max_backlog();
    result.exec_time_increase = queue.execution_time_increase();
    result.bandwidth_reduction =
        static_cast<double>(config.num_qubits) /
        static_cast<double>(queue.bandwidth());
    return result;
}

std::vector<TraceCycle>
fleet_trace(const FleetConfig &config, uint64_t bandwidth)
{
    Rng rng(config.seed);
    StallController queue(bandwidth);
    std::vector<TraceCycle> trace;
    trace.reserve(config.cycles);
    for (uint64_t cycle = 0; cycle < config.cycles; ++cycle) {
        TraceCycle entry;
        entry.carryover = queue.backlog();
        entry.stall = queue.stall_pending();
        entry.fresh = rng.binomial(
            static_cast<uint64_t>(config.num_qubits), config.offchip_prob);
        const uint64_t before = queue.served();
        queue.step(entry.fresh);
        entry.served = queue.served() - before;
        trace.push_back(entry);
    }
    return trace;
}

} // namespace btwc
