#include "sim/fleet.hpp"

#include <thread>

#include "common/rng.hpp"
#include "core/offchip_queue.hpp"
#include "core/stall.hpp"
#include "sim/engine.hpp"
#include "surface/lattice.hpp"

namespace btwc {

namespace {

/**
 * Block-parallel Binomial(n, q) demand stream for the serial
 * bandwidth/stall queue: the queue must consume demand cycle by cycle
 * (its backlog couples adjacent cycles), but the draws themselves are
 * independent, so worker threads prefill fixed-size blocks, one
 * contiguous chunk per persistent worker stream. Deterministic for a
 * fixed (seed, threads) pair; `threads <= 1` degenerates to drawing
 * straight off one stream, reproducing the historical sequence
 * bit-for-bit.
 */
class DemandSource
{
  public:
    DemandSource(uint64_t n, double q, uint64_t seed, int threads)
        : n_(n), q_(q), workers_(resolve_threads(threads))
    {
        Rng seeder(seed);
        if (workers_ <= 1) {
            streams_.push_back(seeder);
        } else {
            streams_.reserve(static_cast<size_t>(workers_));
            for (int w = 0; w < workers_; ++w) {
                streams_.emplace_back(seeder.next_u64());
            }
        }
    }

    uint64_t next()
    {
        if (workers_ <= 1) {
            return streams_[0].binomial(n_, q_);
        }
        if (pos_ == buffer_.size()) {
            refill();
        }
        return buffer_[pos_++];
    }

  private:
    static constexpr size_t kChunk = 4096;  ///< draws per worker per refill

    void refill()
    {
        buffer_.resize(kChunk * static_cast<size_t>(workers_));
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(workers_));
        for (int w = 0; w < workers_; ++w) {
            pool.emplace_back([this, w]() {
                uint64_t *out = buffer_.data() + kChunk * w;
                Rng &rng = streams_[w];
                for (size_t i = 0; i < kChunk; ++i) {
                    out[i] = rng.binomial(n_, q_);
                }
            });
        }
        for (std::thread &t : pool) {
            t.join();
        }
        pos_ = 0;
    }

    uint64_t n_;
    double q_;
    int workers_;
    std::vector<Rng> streams_;
    std::vector<uint64_t> buffer_;
    size_t pos_ = 0;
};

} // namespace

CountHistogram
fleet_demand_histogram(const FleetConfig &config)
{
    return run_sharded<CountHistogram>(
        config.cycles, config.threads, config.seed,
        [&config](const Shard &shard) {
            Rng rng(shard.seed);
            CountHistogram demand;
            for (uint64_t cycle = 0; cycle < shard.cycles; ++cycle) {
                demand.add(
                    rng.binomial(static_cast<uint64_t>(config.num_qubits),
                                 config.offchip_prob));
            }
            return demand;
        });
}

CountHistogram
fleet_demand_exact(int distance, double p, int num_qubits, uint64_t cycles,
                   uint64_t seed, int threads)
{
    const RotatedSurfaceCode code(distance);
    return run_sharded<CountHistogram>(
        cycles, threads, seed, [&](const Shard &shard) {
            Rng seeder(shard.seed);
            std::vector<BtwcSystem> qubits;
            qubits.reserve(static_cast<size_t>(num_qubits));
            for (int q = 0; q < num_qubits; ++q) {
                qubits.emplace_back(code, NoiseParams::uniform(p),
                                    SystemConfig{}, seeder.next_u64());
            }
            CountHistogram demand;
            for (uint64_t cycle = 0; cycle < shard.cycles; ++cycle) {
                uint64_t offchip = 0;
                for (BtwcSystem &qubit : qubits) {
                    offchip += qubit.step().offchip ? 1 : 0;
                }
                demand.add(offchip);
            }
            return demand;
        });
}

FleetRunResult
run_fleet_with_bandwidth(const FleetConfig &config, uint64_t bandwidth)
{
    DemandSource demand(static_cast<uint64_t>(config.num_qubits),
                        config.offchip_prob, config.seed, config.threads);
    // The off-chip link as an async service (core/offchip_queue.hpp):
    // bandwidth-limited FIFO with `offchip_latency` cycles between a
    // decode entering service and its correction landing. Latency 0
    // reproduces the historical StallController run step-for-step.
    const uint64_t effective = bandwidth ? bandwidth : 1;
    OffchipQueue queue(OffchipQueueConfig{effective, config.offchip_latency,
                                          config.offchip_batch});
    // The program needs `config.cycles` cycles of real progress; stall
    // cycles extend the wall clock and keep generating fresh errors.
    // Provisioning at (or below) the demand mean never converges --
    // the paper's "infinite stalling" regime -- so the run aborts once
    // the wall clock blows past a generous multiple of the program or
    // the backlog exceeds what the link could ever drain; callers
    // detect divergence via work_cycles < cycles.
    const uint64_t wall_clock_cap = 25 * config.cycles + 1000;
    while (queue.work_cycles() < config.cycles) {
        queue.step(demand.next());
        if (queue.total_cycles() >= wall_clock_cap ||
            queue.backlog() >
                effective * (config.cycles + queue.total_cycles())) {
            break;
        }
    }
    FleetRunResult result;
    result.bandwidth = effective;
    result.total_cycles = queue.total_cycles();
    result.work_cycles = queue.work_cycles();
    result.stall_cycles = queue.stall_cycles();
    result.max_backlog = queue.max_backlog();
    result.exec_time_increase = queue.execution_time_increase();
    result.bandwidth_reduction =
        static_cast<double>(config.num_qubits) /
        static_cast<double>(effective);
    result.mean_queue_delay = queue.delay_histogram().mean();
    result.p99_queue_delay = queue.delay_histogram().percentile(0.99);
    result.max_queue_delay = queue.delay_histogram().max_value();
    result.mean_batch = queue.batch_histogram().mean();
    return result;
}

std::vector<TraceCycle>
fleet_trace(const FleetConfig &config, uint64_t bandwidth)
{
    Rng rng(config.seed);
    StallController queue(bandwidth);
    std::vector<TraceCycle> trace;
    trace.reserve(config.cycles);
    for (uint64_t cycle = 0; cycle < config.cycles; ++cycle) {
        TraceCycle entry;
        entry.carryover = queue.backlog();
        entry.stall = queue.stall_pending();
        entry.fresh = rng.binomial(
            static_cast<uint64_t>(config.num_qubits), config.offchip_prob);
        const uint64_t before = queue.served();
        queue.step(entry.fresh);
        entry.served = queue.served() - before;
        trace.push_back(entry);
    }
    return trace;
}

} // namespace btwc
