#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "core/system.hpp"
#include "surface/noise.hpp"

namespace btwc {

/**
 * Configuration of a multi-logical-qubit machine simulation (§5).
 *
 * Under the paper's i.i.d. phenomenological noise, per-qubit per-cycle
 * off-chip events are independent Bernoulli(q) draws, so the fleet's
 * per-cycle demand is Binomial(num_qubits, q); `offchip_prob` is the q
 * measured by the single-qubit lifetime simulation. An exact
 * trace-driven mode (`fleet_demand_exact`) simulates every qubit's
 * full pipeline and exists to validate the binomial shortcut.
 */
struct FleetConfig
{
    int num_qubits = 1000;
    uint64_t cycles = 1000000;
    double offchip_prob = 0.01;  ///< per-qubit per-cycle P(complex)
    /**
     * Per-qubit off-chip probability overrides (hot spots, defective
     * patches). Empty = the homogeneous `offchip_prob` model whose
     * per-cycle demand is a single Binomial(num_qubits, q) draw
     * (bit-exact with the historical sampler). Non-empty (size must
     * equal `num_qubits`; a mismatch throws std::invalid_argument
     * from the demand entry points) makes the demand
     * Poisson-binomial: draws
     * group qubits by probability and sum one binomial per group, so
     * a vector of `num_qubits` equal entries reproduces the
     * homogeneous stream bit-for-bit. Build hot-spot profiles with
     * `hotspot_probs`.
     */
    std::vector<double> qubit_probs;
    /**
     * Monte-Carlo engine shards (sim/engine.hpp): 1 = historical
     * single-threaded sampling (bit-exact), 0 = all hardware threads.
     * Demand histograms shard over cycles; the bandwidth/stall run
     * keeps its (inherently serial) queue but generates demand blocks
     * in parallel.
     */
    int threads = 1;
    uint64_t seed = 1;
    /**
     * Off-chip service latency in cycles (see
     * core/offchip_queue.hpp): corrections land this many cycles
     * after their decode is served. 0 reproduces the historical
     * synchronous StallController run bit-for-bit; nonzero shifts the
     * queue-delay distribution without changing the stall behavior
     * (latency is pipelined, only backlog stalls).
     */
    uint64_t offchip_latency = 0;
    /** decode_batch grouping cap for the served stream (0 = per cycle). */
    uint64_t offchip_batch = 0;
};

/** One cycle of a provisioned fleet trace (Fig. 9). */
struct TraceCycle
{
    uint64_t fresh = 0;      ///< new off-chip decodes this cycle
    uint64_t carryover = 0;  ///< decodes carried from previous cycles
    uint64_t served = 0;     ///< decodes shipped off-chip this cycle
    bool stall = false;      ///< this cycle was a stall cycle
};

/** Outcome of a provisioned fleet run (one Fig. 16 sweep point). */
struct FleetRunResult
{
    uint64_t bandwidth = 0;      ///< provisioned decodes per cycle
    uint64_t total_cycles = 0;
    uint64_t work_cycles = 0;
    uint64_t stall_cycles = 0;
    uint64_t max_backlog = 0;
    double exec_time_increase = 0.0;   ///< stalls / work cycles (+inf all-stall)
    double bandwidth_reduction = 0.0;  ///< num_qubits / bandwidth
    /**
     * Enqueue-to-landing delay of the served decode stream in cycles
     * (= FleetConfig::offchip_latency plus queueing wait; all-latency
     * when the link never backs up).
     */
    double mean_queue_delay = 0.0;
    uint64_t p99_queue_delay = 0;
    uint64_t max_queue_delay = 0;
    double mean_batch = 0.0;  ///< mean served link-batch size (see OffchipQueue::batch_histogram)
};

/**
 * Heterogeneous fleet profile: `hot_fraction` of the qubits (rounded
 * down, at least one when the fraction is nonzero) run at
 * `hot_multiplier * q` -- a hot spot or defective patch -- and the
 * rest at the base q. Probabilities clamp to [0, 1]. Feed the result
 * to `FleetConfig::qubit_probs`.
 */
std::vector<double> hotspot_probs(int num_qubits, double q,
                                  double hot_fraction,
                                  double hot_multiplier);

/** Demand histogram from the binomial fleet model. */
CountHistogram fleet_demand_histogram(const FleetConfig &config);

/**
 * Configuration of the exact (trace-driven) fleet: `num_qubits` full
 * `BtwcSystem` pipelines stepped in lockstep. With `shared_link` every
 * qubit's escalations route through one SharedOffchipService
 * (core/offchip_service.hpp) -- the paper's actual machine, where real
 * (non-binomial) demand contends for one latency/bandwidth-limited
 * link; without it each qubit keeps a private queue with the same link
 * parameters (the historical model, kept as the equivalence
 * reference: at zero latency and unlimited bandwidth the two are
 * bit-exact, tested).
 */
struct ExactFleetConfig
{
    int distance = 5;
    double p = 1e-3;
    int num_qubits = 10;
    uint64_t cycles = 10000;
    uint64_t seed = 1;
    /** Monte-Carlo shards (sim/engine.hpp); each shard simulates an
        independent fleet instance. threads <= 1 is bit-exact legacy. */
    int threads = 1;
    /** One shared link for the whole fleet instead of private queues. */
    bool shared_link = false;
    OffchipPolicy offchip = OffchipPolicy::Oracle;
    TierChainConfig tiers = TierChainConfig::legacy();
    /** Link parameters (cf. OffchipQueueConfig / SystemConfig). */
    uint64_t offchip_latency = 0;
    uint64_t offchip_bandwidth = 0;
    uint64_t offchip_batch = 0;
    /**
     * Per-qubit physical error rate overrides: tenant q runs at
     * `tenant_probs[q]` instead of the uniform `p`, so hot tenants do
     * real extra decode work rather than just extra demand draws
     * (contrast `FleetConfig::qubit_probs`, which only reshapes the
     * binomial model). Empty = the homogeneous fleet, bit-exact with
     * the historical path; non-empty size must equal `num_qubits`
     * (mismatch throws std::invalid_argument) and every entry must be
     * a probability. Build hot-spot profiles with `hotspot_probs`.
     */
    std::vector<double> tenant_probs;
    /**
     * Per-qubit code distance overrides (same contract as
     * `tenant_probs`; entries must be valid `RotatedSurfaceCode`
     * distances). Under the shared link, each distinct distance gets
     * its own service-side decode chains via
     * `SharedOffchipService::register_code`.
     */
    std::vector<int> tenant_distances;
    /**
     * Chaos mode (src/faults/, shared link only): the fault plan
     * injected into the single link, installed when `faults.enabled`.
     * A plan with no firing clause is bit-exact with the fault-free
     * run (the zero-fault contract, pinned in tests/test_faults.cpp).
     */
    FaultPlan faults;
};

/** Tenant q's physical error rate (`tenant_probs` override or `p`). */
double tenant_prob(const ExactFleetConfig &config, int q);

/** Tenant q's code distance (`tenant_distances` override or `distance`). */
int tenant_distance(const ExactFleetConfig &config, int q);

/**
 * Throw std::invalid_argument when the per-tenant override vectors are
 * malformed (size != num_qubits, probabilities outside [0, 1]).
 * Called by the exact-fleet entry points before any simulation work.
 */
void validate_tenant_profile(const ExactFleetConfig &config);

/** Per-tenant counters of an exact fleet run (index = qubit). */
struct QubitServiceStats
{
    uint64_t enqueued = 0;    ///< escalations handed to the link
    uint64_t landed = 0;      ///< corrections routed back
    uint64_t suppressed = 0;  ///< decodes deferred to an in-flight request

    void merge(const QubitServiceStats &other)
    {
        enqueued += other.enqueued;
        landed += other.landed;
        suppressed += other.suppressed;
    }
};

/**
 * Aggregated observables of an exact fleet run. All counters are sums
 * and all histograms bin-wise counts, so shard results `merge()`
 * losslessly in the sharded Monte-Carlo engine (deterministic for a
 * fixed (cycles, threads, seed) triple, like every sim/ harness).
 */
struct ExactFleetStats
{
    /** Per-cycle fresh off-chip demand: qubits that *shipped* an
        escalation that cycle (the binomial model's event). Re-flags
        of work already in flight are counted in `suppressed`, not
        here -- so under latency or a narrow link this is throttled
        demand, held back by the one-outstanding-request-per-half
        contract. At the synchronous L=0 default it coincides with
        the historical "classified off-chip" count bit-for-bit. */
    CountHistogram demand;
    /** Enqueue-to-landing delay of every landed correction. Shared
        mode: the one link; private mode: merged across the per-qubit
        queues (all-zero at the synchronous default). */
    CountHistogram queue_delay;
    /** Served link-batch sizes (see OffchipQueue::batch_histogram).
        Shared mode mixes owners in one batch, so sizes above 1 appear
        even though each tenant is bounded at one request per half. */
    CountHistogram batch_sizes;
    /** End-of-cycle shared-link backlog, one sample per cycle
        (shared mode only; empty for private queues). */
    CountHistogram backlog;
    uint64_t stall_cycles = 0;  ///< link cycles that ended oversubscribed
    uint64_t work_cycles = 0;
    uint64_t max_backlog = 0;
    uint64_t enqueued = 0;
    uint64_t served = 0;
    uint64_t landed = 0;
    uint64_t suppressed = 0;  ///< reconciliation-contract deferrals
    uint64_t pending = 0;     ///< outstanding when the run ended
    // Chaos-mode accounting (shared link; all zero fault-free).
    uint64_t outage_cycles = 0;   ///< link-down cycles
    uint64_t dropped = 0;         ///< deliveries lost
    uint64_t duplicated = 0;      ///< deliveries duplicated
    uint64_t corrupted = 0;       ///< corrections byte-flipped
    uint64_t surge_enqueued = 0;  ///< synthetic surge requests
    uint64_t surge_landed = 0;    ///< ... that consumed link service
    std::vector<QubitServiceStats> per_qubit;

    void merge(const ExactFleetStats &other);

    /** Fig. 16 x-axis for the shared link (stalls / work cycles). */
    double exec_time_increase() const;
};

/**
 * Run the exact fleet and return the full service statistics. Shards
 * the cycle budget over `config.threads` workers, each simulating an
 * independent fleet instance (threads <= 1 reproduces the historical
 * run bit-for-bit).
 */
ExactFleetStats fleet_demand_exact_stats(const ExactFleetConfig &config);

/**
 * Demand histogram from fully simulated per-qubit pipelines (slow;
 * used for validating the binomial model at small scale). Convenience
 * wrapper over `fleet_demand_exact_stats` with private queues at the
 * synchronous default link.
 */
CountHistogram fleet_demand_exact(int distance, double p, int num_qubits,
                                  uint64_t cycles, uint64_t seed,
                                  int threads = 1);

/** Run the fleet against a fixed provisioned bandwidth. */
FleetRunResult run_fleet_with_bandwidth(const FleetConfig &config,
                                        uint64_t bandwidth);

/** Short per-cycle trace for the Fig. 9 illustration. */
std::vector<TraceCycle> fleet_trace(const FleetConfig &config,
                                    uint64_t bandwidth);

} // namespace btwc
