#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "core/system.hpp"
#include "surface/noise.hpp"

namespace btwc {

/**
 * Configuration of a multi-logical-qubit machine simulation (§5).
 *
 * Under the paper's i.i.d. phenomenological noise, per-qubit per-cycle
 * off-chip events are independent Bernoulli(q) draws, so the fleet's
 * per-cycle demand is Binomial(num_qubits, q); `offchip_prob` is the q
 * measured by the single-qubit lifetime simulation. An exact
 * trace-driven mode (`fleet_demand_exact`) simulates every qubit's
 * full pipeline and exists to validate the binomial shortcut.
 */
struct FleetConfig
{
    int num_qubits = 1000;
    uint64_t cycles = 1000000;
    double offchip_prob = 0.01;  ///< per-qubit per-cycle P(complex)
    /**
     * Monte-Carlo engine shards (sim/engine.hpp): 1 = historical
     * single-threaded sampling (bit-exact), 0 = all hardware threads.
     * Demand histograms shard over cycles; the bandwidth/stall run
     * keeps its (inherently serial) queue but generates demand blocks
     * in parallel.
     */
    int threads = 1;
    uint64_t seed = 1;
    /**
     * Off-chip service latency in cycles (see
     * core/offchip_queue.hpp): corrections land this many cycles
     * after their decode is served. 0 reproduces the historical
     * synchronous StallController run bit-for-bit; nonzero shifts the
     * queue-delay distribution without changing the stall behavior
     * (latency is pipelined, only backlog stalls).
     */
    uint64_t offchip_latency = 0;
    /** decode_batch grouping cap for the served stream (0 = per cycle). */
    uint64_t offchip_batch = 0;
};

/** One cycle of a provisioned fleet trace (Fig. 9). */
struct TraceCycle
{
    uint64_t fresh = 0;      ///< new off-chip decodes this cycle
    uint64_t carryover = 0;  ///< decodes carried from previous cycles
    uint64_t served = 0;     ///< decodes shipped off-chip this cycle
    bool stall = false;      ///< this cycle was a stall cycle
};

/** Outcome of a provisioned fleet run (one Fig. 16 sweep point). */
struct FleetRunResult
{
    uint64_t bandwidth = 0;      ///< provisioned decodes per cycle
    uint64_t total_cycles = 0;
    uint64_t work_cycles = 0;
    uint64_t stall_cycles = 0;
    uint64_t max_backlog = 0;
    double exec_time_increase = 0.0;   ///< stalls / work cycles (+inf all-stall)
    double bandwidth_reduction = 0.0;  ///< num_qubits / bandwidth
    /**
     * Enqueue-to-landing delay of the served decode stream in cycles
     * (= FleetConfig::offchip_latency plus queueing wait; all-latency
     * when the link never backs up).
     */
    double mean_queue_delay = 0.0;
    uint64_t p99_queue_delay = 0;
    uint64_t max_queue_delay = 0;
    double mean_batch = 0.0;  ///< mean served link-batch size (see OffchipQueue::batch_histogram)
};

/** Demand histogram from the binomial fleet model. */
CountHistogram fleet_demand_histogram(const FleetConfig &config);

/**
 * Demand histogram from fully simulated per-qubit pipelines (slow;
 * used for validating the binomial model at small scale). Shards the
 * cycle budget over `threads` workers, each simulating an independent
 * fleet instance (threads <= 1 reproduces the historical run).
 */
CountHistogram fleet_demand_exact(int distance, double p, int num_qubits,
                                  uint64_t cycles, uint64_t seed,
                                  int threads = 1);

/** Run the fleet against a fixed provisioned bandwidth. */
FleetRunResult run_fleet_with_bandwidth(const FleetConfig &config,
                                        uint64_t bandwidth);

/** Short per-cycle trace for the Fig. 9 illustration. */
std::vector<TraceCycle> fleet_trace(const FleetConfig &config,
                                    uint64_t bandwidth);

} // namespace btwc
