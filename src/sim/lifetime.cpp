#include "sim/lifetime.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "core/clique.hpp"
#include "surface/frame.hpp"
#include "surface/lattice.hpp"

namespace btwc {

namespace {

/** Closed-loop lifetime run through the full BtwcSystem. */
LifetimeStats
run_pipeline(const LifetimeConfig &config)
{
    const RotatedSurfaceCode code(config.distance);
    SystemConfig sys_config;
    sys_config.filter_rounds = config.filter_rounds;
    sys_config.offchip = config.offchip;
    BtwcSystem system(code,
                      NoiseParams{config.p, config.meas_probability()},
                      sys_config, config.seed);

    LifetimeStats stats;
    stats.cycles = config.cycles;
    for (uint64_t cycle = 0; cycle < config.cycles; ++cycle) {
        const CycleReport report = system.step();
        switch (report.verdict) {
          case CliqueVerdict::AllZeros:
            ++stats.all_zero_cycles;
            break;
          case CliqueVerdict::Trivial:
            ++stats.trivial_cycles;
            break;
          case CliqueVerdict::Complex:
            ++stats.complex_cycles;
            break;
        }
        for (const CliqueVerdict verdict : report.type_verdict) {
            switch (verdict) {
              case CliqueVerdict::AllZeros:
                ++stats.all_zero_halves;
                break;
              case CliqueVerdict::Trivial:
                ++stats.trivial_halves;
                break;
              case CliqueVerdict::Complex:
                ++stats.complex_halves;
                break;
            }
        }
        stats.clique_corrections +=
            static_cast<uint64_t>(report.clique_corrections);
        stats.raw_weight.add(static_cast<uint64_t>(report.raw_weight));
    }
    return stats;
}

/**
 * Open-loop signature sampling, the paper's §6.1 methodology: each
 * cycle draws fresh errors, measures them over `filter_rounds` noisy
 * rounds, classifies the filtered signature, and resets.
 */
LifetimeStats
run_signature(const LifetimeConfig &config)
{
    const RotatedSurfaceCode code(config.distance);
    Rng rng(config.seed);
    LifetimeStats stats;
    stats.cycles = config.cycles;

    struct Half
    {
        Half(const RotatedSurfaceCode &c, CheckType error_type)
            : frame(c, error_type),
              clique(c, detector_of_error(error_type))
        {
        }
        ErrorFrame frame;
        CliqueDecoder clique;
        std::vector<uint8_t> round;
        std::vector<uint8_t> filtered;
    };
    Half halves[2] = {Half(code, CheckType::X), Half(code, CheckType::Z)};

    for (uint64_t cycle = 0; cycle < config.cycles; ++cycle) {
        CliqueVerdict verdict = CliqueVerdict::AllZeros;
        uint64_t raw_weight = 0;
        for (Half &half : halves) {
            half.frame.reset();
            half.frame.inject(config.p, rng);
            // `filter_rounds` noisy measurements of the same error
            // state; the filtered signature is their AND (Fig. 7).
            for (int r = 0; r < config.filter_rounds; ++r) {
                half.frame.measure(config.meas_probability(), rng,
                                   half.round);
                if (r == 0) {
                    half.filtered = half.round;
                } else {
                    for (size_t c = 0; c < half.filtered.size(); ++c) {
                        half.filtered[c] &= half.round[c];
                    }
                }
            }
            for (const uint8_t bit : half.round) {
                raw_weight += bit & 1;
            }
            const CliqueOutcome out = half.clique.decode(half.filtered);
            switch (out.verdict) {
              case CliqueVerdict::AllZeros:
                ++stats.all_zero_halves;
                break;
              case CliqueVerdict::Trivial:
                ++stats.trivial_halves;
                break;
              case CliqueVerdict::Complex:
                ++stats.complex_halves;
                break;
            }
            if (out.verdict == CliqueVerdict::Complex) {
                verdict = CliqueVerdict::Complex;
            } else if (out.verdict == CliqueVerdict::Trivial &&
                       verdict == CliqueVerdict::AllZeros) {
                verdict = CliqueVerdict::Trivial;
            }
            stats.clique_corrections += out.corrections.size();
        }
        switch (verdict) {
          case CliqueVerdict::AllZeros:
            ++stats.all_zero_cycles;
            break;
          case CliqueVerdict::Trivial:
            ++stats.trivial_cycles;
            break;
          case CliqueVerdict::Complex:
            ++stats.complex_cycles;
            break;
        }
        stats.raw_weight.add(raw_weight);
    }
    return stats;
}

} // namespace

LifetimeStats
run_lifetime(const LifetimeConfig &config)
{
    return config.mode == LifetimeMode::Pipeline ? run_pipeline(config)
                                                 : run_signature(config);
}

int
required_distance(double p, double target_logical_rate)
{
    // LER(d) ~ A * (p / p_th)^((d+1)/2); see header. Returns the
    // smallest odd d whose projected LER meets the target (with a
    // 1.5x tolerance absorbing the prefactor uncertainty).
    constexpr double kThreshold = 1e-2;
    constexpr double kPrefactor = 0.1;
    const double ratio = p / kThreshold;
    if (ratio >= 1.0) {
        return 81;  // beyond threshold: the code cannot converge
    }
    for (int d = 3; d <= 81; d += 2) {
        const double k = (d + 1) / 2.0;
        const double ler = kPrefactor * std::pow(ratio, k);
        if (ler <= target_logical_rate * 1.5) {
            return d;
        }
    }
    return 81;
}

} // namespace btwc
