#include "sim/lifetime.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "core/clique.hpp"
#include "sim/engine.hpp"
#include "surface/frame.hpp"
#include "surface/lattice.hpp"

namespace btwc {

void
LifetimeStats::merge(const LifetimeStats &other)
{
    cycles += other.cycles;
    all_zero_cycles += other.all_zero_cycles;
    trivial_cycles += other.trivial_cycles;
    complex_cycles += other.complex_cycles;
    offchip_cycles += other.offchip_cycles;
    clique_corrections += other.clique_corrections;
    raw_weight.merge(other.raw_weight);
    all_zero_halves += other.all_zero_halves;
    trivial_halves += other.trivial_halves;
    complex_halves += other.complex_halves;
    for (int t = 0; t < kNumDecoderTiers; ++t) {
        tier_halves[t] += other.tier_halves[t];
    }
    offchip_halves += other.offchip_halves;
    offchip_queue_delay.merge(other.offchip_queue_delay);
    offchip_batch_sizes.merge(other.offchip_batch_sizes);
    suppressed_escalations += other.suppressed_escalations;
    pending_offchip += other.pending_offchip;
}

namespace {

/** Classify one half's verdict and tier outcome into the counters. */
void
count_half(LifetimeStats &stats, CliqueVerdict verdict, DecoderTier tier,
           bool offchip)
{
    switch (verdict) {
      case CliqueVerdict::AllZeros:
        ++stats.all_zero_halves;
        break;
      case CliqueVerdict::Trivial:
        ++stats.trivial_halves;
        break;
      case CliqueVerdict::Complex:
        ++stats.complex_halves;
        ++stats.tier_halves[static_cast<int>(tier)];
        stats.offchip_halves += offchip ? 1 : 0;
        break;
    }
}

/** Closed-loop lifetime run through the full BtwcSystem (one shard). */
LifetimeStats
run_pipeline(const LifetimeConfig &config)
{
    const RotatedSurfaceCode code(config.distance);
    SystemConfig sys_config;
    sys_config.filter_rounds = config.filter_rounds;
    sys_config.offchip = config.offchip;
    sys_config.tiers = config.tiers;
    sys_config.service = config.service;
    sys_config.offchip_latency = config.offchip_latency;
    sys_config.offchip_bandwidth = config.offchip_bandwidth;
    sys_config.offchip_batch = config.offchip_batch;
    BtwcSystem system(code,
                      NoiseParams{config.p, config.meas_probability()},
                      sys_config, config.seed);

    LifetimeStats stats;
    stats.cycles = config.cycles;
    for (uint64_t cycle = 0; cycle < config.cycles; ++cycle) {
        const CycleReport report = system.step();
        switch (report.verdict) {
          case CliqueVerdict::AllZeros:
            ++stats.all_zero_cycles;
            break;
          case CliqueVerdict::Trivial:
            ++stats.trivial_cycles;
            break;
          case CliqueVerdict::Complex:
            ++stats.complex_cycles;
            break;
        }
        stats.offchip_cycles += report.offchip ? 1 : 0;
        for (int detector = 0; detector < 2; ++detector) {
            count_half(stats, report.type_verdict[detector],
                       report.tier_used[detector],
                       report.type_offchip[detector]);
        }
        stats.clique_corrections +=
            static_cast<uint64_t>(report.clique_corrections);
        stats.raw_weight.add(static_cast<uint64_t>(report.raw_weight));
    }
    stats.offchip_queue_delay = system.offchip_queue().delay_histogram();
    stats.offchip_batch_sizes = system.offchip_queue().batch_histogram();
    stats.suppressed_escalations = system.suppressed_escalations();
    stats.pending_offchip =
        static_cast<uint64_t>(system.pending_offchip());
    return stats;
}

/**
 * Open-loop signature sampling, the paper's §6.1 methodology: each
 * cycle draws fresh errors, measures them over `filter_rounds` noisy
 * rounds, classifies the filtered signature through the tier chain,
 * and resets. Off-chip tiers are classified but never run (the frame
 * resets regardless, so their result cannot affect the sampled
 * distribution); on-chip mid-tiers really run, which is what
 * attributes each COMPLEX signature to the tier that absorbs it.
 */
LifetimeStats
run_signature(const LifetimeConfig &config)
{
    const RotatedSurfaceCode code(config.distance);
    Rng rng(config.seed);
    LifetimeStats stats;
    stats.cycles = config.cycles;

    struct Half
    {
        Half(const RotatedSurfaceCode &c, CheckType error_type,
             const TierChainConfig &tiers)
            : frame(c, error_type),
              chain(c, detector_of_error(error_type), tiers)
        {
        }
        ErrorFrame frame;
        TierChain chain;
        PackedSyndrome round;
        PackedSyndrome filtered;
        TierChain::Result out;  ///< pooled, overwritten each cycle
    };
    Half halves[2] = {Half(code, CheckType::X, config.tiers),
                      Half(code, CheckType::Z, config.tiers)};

    TierChain::Options chain_options;
    chain_options.stop_before_offchip = true;

    for (uint64_t cycle = 0; cycle < config.cycles; ++cycle) {
        CliqueVerdict verdict = CliqueVerdict::AllZeros;
        bool cycle_offchip = false;
        uint64_t raw_weight = 0;
        for (Half &half : halves) {
            half.frame.reset();
            half.frame.inject(config.p, rng);
            // `filter_rounds` noisy measurements of the same error
            // state; the filtered signature is their AND (Fig. 7),
            // word-wide on the packed fast path.
            for (int r = 0; r < config.filter_rounds; ++r) {
                half.frame.measure_packed(config.meas_probability(), rng,
                                          half.round);
                if (r == 0) {
                    half.filtered = half.round;
                } else {
                    half.filtered &= half.round;
                }
            }
            raw_weight += static_cast<uint64_t>(half.round.popcount());
            half.chain.decode_syndrome(half.filtered, chain_options,
                                       half.out);
            const TierChain::Result &out = half.out;
            // Shared with BtwcSystem::step (the tier-0 classification
            // contract): the two modes must agree on this mapping.
            const CliqueVerdict half_verdict = classify_decode(out);
            count_half(stats, half_verdict, out.tier, out.offchip);
            if (half_verdict == CliqueVerdict::Complex) {
                verdict = CliqueVerdict::Complex;
            } else if (half_verdict == CliqueVerdict::Trivial &&
                       verdict == CliqueVerdict::AllZeros) {
                verdict = CliqueVerdict::Trivial;
            }
            cycle_offchip |= out.offchip;
            if (half_verdict == CliqueVerdict::Trivial) {
                stats.clique_corrections +=
                    static_cast<uint64_t>(out.decode.weight);
            }
        }
        switch (verdict) {
          case CliqueVerdict::AllZeros:
            ++stats.all_zero_cycles;
            break;
          case CliqueVerdict::Trivial:
            ++stats.trivial_cycles;
            break;
          case CliqueVerdict::Complex:
            ++stats.complex_cycles;
            break;
        }
        stats.offchip_cycles += cycle_offchip ? 1 : 0;
        stats.raw_weight.add(raw_weight);
    }
    return stats;
}

} // namespace

LifetimeStats
run_lifetime(const LifetimeConfig &config)
{
    return run_sharded<LifetimeStats>(
        config.cycles, config.threads, config.seed,
        [&config](const Shard &shard) {
            LifetimeConfig shard_config = config;
            shard_config.cycles = shard.cycles;
            shard_config.seed = shard.seed;
            shard_config.threads = 1;
            return shard_config.mode == LifetimeMode::Pipeline
                       ? run_pipeline(shard_config)
                       : run_signature(shard_config);
        });
}

int
required_distance(double p, double target_logical_rate)
{
    // LER(d) ~ A * (p / p_th)^((d+1)/2); see header. Returns the
    // smallest odd d whose projected LER meets the target (with a
    // 1.5x tolerance absorbing the prefactor uncertainty).
    constexpr double kThreshold = 1e-2;
    constexpr double kPrefactor = 0.1;
    const double ratio = p / kThreshold;
    if (ratio >= 1.0) {
        return 81;  // beyond threshold: the code cannot converge
    }
    for (int d = 3; d <= 81; d += 2) {
        const double k = (d + 1) / 2.0;
        const double ler = kPrefactor * std::pow(ratio, k);
        if (ler <= target_logical_rate * 1.5) {
            return d;
        }
    }
    return 81;
}

} // namespace btwc
