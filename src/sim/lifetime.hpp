#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "core/system.hpp"
#include "surface/noise.hpp"

namespace btwc {

/**
 * How the lifetime simulator advances between cycles.
 *
 * `Signature` reproduces the paper's Monte-Carlo benchmarking exactly:
 * every cycle draws a fresh batch of data errors, measures it over
 * `filter_rounds` noisy rounds (the Fig. 7 filter sees transient
 * measurement flips), classifies the filtered signature and resets --
 * i.e. it samples the *distribution of per-cycle error signatures*
 * that Figs. 4 and 11-13 report, with every decode assumed to complete
 * within its cycle.
 *
 * `Pipeline` runs the closed-loop `BtwcSystem` instead: corrections
 * trail errors by the filter latency, so signatures from adjacent
 * cycles can interact. It is the end-to-end system model (used by the
 * examples and integration tests); its off-chip fraction runs a little
 * higher than Signature mode's at large p*d^2.
 */
enum class LifetimeMode : uint8_t { Signature = 0, Pipeline = 1 };

/** Configuration of a lifetime (Monte-Carlo benchmarking) run (§6.1). */
struct LifetimeConfig
{
    int distance = 5;
    double p = 1e-3;              ///< data-error probability per cycle
    double p_meas = -1.0;         ///< measurement-flip probability; <0 -> p
    uint64_t cycles = 100000;     ///< simulated decode cycles
    int filter_rounds = 2;
    LifetimeMode mode = LifetimeMode::Signature;
    OffchipPolicy offchip = OffchipPolicy::Oracle;  ///< Pipeline mode only
    /**
     * Off-chip escalation transport (Pipeline mode only, cf.
     * SystemConfig): the default Queued service with zero latency and
     * unlimited bandwidth reproduces the historical synchronous
     * results bit-for-bit; nonzero `offchip_latency` /
     * `offchip_bandwidth` open the latency x bandwidth x tier-chain
     * grid (corrections land late, backlog builds under a narrow
     * link). `offchip_batch` caps the decode_batch group size.
     */
    OffchipService service = OffchipService::Queued;
    uint64_t offchip_latency = 0;
    uint64_t offchip_bandwidth = 0;
    uint64_t offchip_batch = 0;
    /**
     * The decode hierarchy (cf. SystemConfig::tiers); the default is
     * the paper's two-tier Clique -> MWPM chain, and e.g.
     * TierChainConfig::deep() inserts the §8.1 Union-Find mid-tier.
     * In Signature mode off-chip tiers are classified but never run
     * (their result cannot affect the sampled distribution), so deep
     * chains stay cheap even at the d = 81 operating points.
     */
    TierChainConfig tiers = TierChainConfig::legacy();
    /**
     * Worker shards for the Monte-Carlo engine (sim/engine.hpp): 1 =
     * historical single-threaded run (bit-exact), 0 = all hardware
     * threads, N = exactly N shards with independent RNG streams.
     */
    int threads = 1;
    uint64_t seed = 1;

    /** Effective measurement flip probability. */
    double meas_probability() const { return p_meas < 0.0 ? p : p_meas; }
};

/** Aggregated statistics of a lifetime run. */
struct LifetimeStats
{
    uint64_t cycles = 0;
    uint64_t all_zero_cycles = 0;  ///< filtered signature all zeros
    uint64_t trivial_cycles = 0;   ///< nonzero, fully handled by tier 0
    uint64_t complex_cycles = 0;   ///< at least one tier-0 escalation
    uint64_t offchip_cycles = 0;   ///< at least one off-chip tier consulted
    uint64_t clique_corrections = 0;
    CountHistogram raw_weight;     ///< per-cycle fired raw bits (AFS input)

    /**
     * Decode-granularity counters. Every cycle runs one decode per
     * lattice half (the X- and Z-detecting Clique instances are
     * independent hardware), so each cycle contributes two decodes.
     * Figs. 4 and 11-13 are reported at this granularity; the
     * per-qubit-cycle counters above drive the fleet model (§5.1
     * counts off-chip *logical-qubit* decodes per cycle).
     */
    uint64_t all_zero_halves = 0;
    uint64_t trivial_halves = 0;
    uint64_t complex_halves = 0;  ///< escalated past tier 0

    /**
     * Of the half-decodes that escalated past tier 0, how many were
     * absorbed by each tier of the chain (indexed by DecoderTier).
     * With the legacy chain everything lands on Mwpm; with a §8.1
     * mid-tier most COMPLEX signatures stay on-chip in UnionFind.
     */
    uint64_t tier_halves[kNumDecoderTiers] = {};
    uint64_t offchip_halves = 0;  ///< escalations that left the chip

    /**
     * Queued off-chip service observables (Pipeline mode with the
     * Queued service; all-empty otherwise). `offchip_queue_delay` is
     * the enqueue-to-landing delay of every landed correction (its
     * total() is the landed count); `offchip_batch_sizes` the size of
     * every served link batch (see OffchipQueue::batch_histogram);
     * `suppressed_escalations` counts decodes deferred to an
     * in-flight request of the same half (the reconciliation
     * contract, core/system.hpp); `pending_offchip` the requests
     * still outstanding when the run ended.
     */
    CountHistogram offchip_queue_delay;
    CountHistogram offchip_batch_sizes;
    uint64_t suppressed_escalations = 0;
    uint64_t pending_offchip = 0;

    /**
     * Fold the statistics of another (independently sampled) run into
     * this one -- the reduction step of the sharded Monte-Carlo engine
     * (sim/engine.hpp). Exact: every counter is a sum.
     */
    void merge(const LifetimeStats &other);

    /** Fraction of cycles fully handled by tier 0 (Fig. 11). */
    double coverage() const
    {
        return cycles == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(complex_cycles) /
                               static_cast<double>(cycles);
    }

    /** Fraction of cycles whose syndrome must ship off-chip. */
    double offchip_fraction() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(offchip_cycles) /
                                 static_cast<double>(cycles);
    }

    /** Total decodes at half granularity (two per cycle). */
    uint64_t total_halves() const
    {
        return all_zero_halves + trivial_halves + complex_halves;
    }

    /** Fraction of *decodes* handled by tier 0 (Fig. 11). */
    double coverage_per_decode() const
    {
        const uint64_t total = total_halves();
        return total == 0 ? 0.0
                          : 1.0 - static_cast<double>(complex_halves) /
                                      static_cast<double>(total);
    }

    /**
     * Fraction of tier-0 escalations absorbed by on-chip mid-tiers
     * (the §8.1 payoff; 0 for the legacy two-tier chain).
     */
    double midtier_absorption() const
    {
        return complex_halves == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(offchip_halves) /
                               static_cast<double>(complex_halves);
    }

    /**
     * Among on-chip decodes, the fraction that actually corrected
     * something (not All-0s) -- Fig. 12.
     */
    double onchip_nonzero_fraction() const
    {
        const uint64_t onchip = all_zero_halves + trivial_halves;
        return onchip == 0 ? 0.0
                           : static_cast<double>(trivial_halves) /
                                 static_cast<double>(onchip);
    }

    /**
     * Average off-chip data reduction achieved by the on-chip tiers:
     * the raw half-syndrome stream divided by what actually ships
     * (off-chip halves only) -- Fig. 13's Clique series.
     */
    double clique_data_reduction() const
    {
        if (offchip_halves == 0) {
            return static_cast<double>(total_halves());  // saturated
        }
        return static_cast<double>(total_halves()) /
               static_cast<double>(offchip_halves);
    }
};

/**
 * Run the single-logical-qubit lifetime simulation, sharded over
 * `config.threads` workers (sim/engine.hpp). Shard cycle counts sum
 * to `config.cycles` exactly; `threads == 1` reproduces the
 * historical single-threaded results bit-for-bit.
 */
LifetimeStats run_lifetime(const LifetimeConfig &config);

/**
 * Code distance needed to reach `target_logical_rate` from physical
 * rate p, using the standard surface-code scaling
 * LER(d) ~ A * (p / p_th)^((d+1)/2) with p_th the phenomenological
 * threshold (~2.9%) and A ~ 0.1. Returns an odd distance >= 3.
 * This reproduces the paper's (p, target LER) -> d pairings in Fig. 4
 * (e.g. 1e-3/1e-12 -> d = 21, 5e-4/1e-12 -> d = 15).
 */
int required_distance(double p, double target_logical_rate);

} // namespace btwc
