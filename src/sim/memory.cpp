#include "sim/memory.hpp"

#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/clique.hpp"
#include "core/filter.hpp"
#include "matching/mwpm.hpp"
#include "matching/union_find.hpp"
#include "sim/engine.hpp"
#include "surface/frame.hpp"
#include "surface/noise.hpp"

namespace btwc {

const char *
decoder_arm_name(DecoderArm arm)
{
    switch (arm) {
      case DecoderArm::MwpmOnly:
        return "mwpm";
      case DecoderArm::CliqueMwpm:
        return "clique+mwpm";
      case DecoderArm::UnionFindOnly:
        return "union-find";
    }
    return "?";
}

std::pair<double, double>
MemoryResult::ler_interval() const
{
    return wilson_interval(failures, trials);
}

namespace {

/**
 * One trial: returns true on logical failure. `offchip_rounds` is
 * incremented for every round the Clique arm flags COMPLEX;
 * `unclear_syndromes` for a decode that leaves the perfect-round
 * syndrome uncleared (an invariant violation, see
 * MemoryResult::unclear_syndromes).
 */
bool
run_trial(const RotatedSurfaceCode &code, const MemoryConfig &config,
          DecoderArm arm, const MwpmDecoder &mwpm,
          const UnionFindDecoder &uf, const CliqueDecoder &clique,
          Rng &rng, uint64_t &offchip_rounds, uint64_t &unclear_syndromes)
{
    const CheckType detector = detector_of_error(config.error_type);
    const int rounds = config.rounds > 0 ? config.rounds
                                         : config.distance;
    const int num_checks = code.num_checks(detector);

    ErrorFrame frame(code, config.error_type);
    MeasurementFilter filter(num_checks, config.filter_rounds);

    std::vector<std::vector<uint8_t>> raw(
        static_cast<size_t>(rounds) + 1);
    for (int t = 0; t < rounds; ++t) {
        frame.inject(config.p, rng);
        frame.measure(config.meas_probability(), rng, raw[t]);
        if (arm == DecoderArm::CliqueMwpm) {
            const std::vector<uint8_t> &filtered = filter.push(raw[t]);
            const CliqueOutcome outcome = clique.decode(filtered);
            if (outcome.verdict == CliqueVerdict::Trivial) {
                frame.apply(outcome.corrections);
            } else if (outcome.verdict == CliqueVerdict::Complex) {
                ++offchip_rounds;
            }
        }
    }
    // Final perfect round closes every chain so the residual after
    // correction is guaranteed syndrome-free.
    frame.measure_perfect(raw[rounds]);

    std::vector<DetectionEvent> events;
    for (int t = 0; t <= rounds; ++t) {
        for (int c = 0; c < num_checks; ++c) {
            const uint8_t prev = t == 0 ? 0 : raw[t - 1][c];
            if ((raw[t][c] ^ prev) & 1) {
                events.push_back(DetectionEvent{c, t});
            }
        }
    }

    MwpmDecoder::Result fix;
    if (arm == DecoderArm::UnionFindOnly) {
        fix = uf.decode(events, rounds + 1);
    } else {
        fix = mwpm.decode(events, rounds + 1);
    }
    frame.apply_mask(fix.correction);

    // Counted runtime check (not an assert): Release builds must see
    // a violation of the syndrome-clear invariant too.
    if (!frame.syndrome_clear()) {
        ++unclear_syndromes;
    }
    return frame.logical_flipped();
}

/**
 * One shard: the historical single-threaded trial loop. `config`
 * carries the shard's trial budget, failure target and seed.
 */
MemoryResult
run_memory_shard(const MemoryConfig &config, DecoderArm arm)
{
    const RotatedSurfaceCode code(config.distance);
    const CheckType detector = detector_of_error(config.error_type);
    int space_weight = 1;
    int time_weight = 1;
    if (config.weighted_matching) {
        space_weight = log_likelihood_weight(config.p);
        time_weight = log_likelihood_weight(config.meas_probability());
    }
    const MwpmDecoder mwpm(code, detector, space_weight, time_weight);
    const UnionFindDecoder uf(code, detector);
    const CliqueDecoder clique(code, detector);
    Rng rng(config.seed);

    MemoryResult result;
    const int rounds = config.rounds > 0 ? config.rounds
                                         : config.distance;
    while (result.trials < config.max_trials &&
           result.failures < config.target_failures) {
        ++result.trials;
        result.total_rounds += static_cast<uint64_t>(rounds);
        if (run_trial(code, config, arm, mwpm, uf, clique, rng,
                      result.offchip_rounds,
                      result.unclear_syndromes)) {
            ++result.failures;
        }
    }
    return result;
}

} // namespace

MemoryResult
run_memory_experiment(const MemoryConfig &config, DecoderArm arm)
{
    // Cross-shard early-stop rule (see header): per-shard failure
    // budget ceil(target / #shards), planned up front so the result
    // is deterministic for a fixed (trials, threads, seed) triple.
    const size_t num_shards =
        plan_shards(config.max_trials, resolve_threads(config.threads),
                    config.seed)
            .size();
    const uint64_t shard_target =
        num_shards <= 1
            ? config.target_failures
            : (config.target_failures + num_shards - 1) / num_shards;
    return run_sharded<MemoryResult>(
        config.max_trials, config.threads, config.seed,
        [&config, arm, shard_target](const Shard &shard) {
            MemoryConfig shard_config = config;
            shard_config.max_trials = shard.cycles;
            shard_config.target_failures = shard_target;
            shard_config.seed = shard.seed;
            shard_config.threads = 1;
            return run_memory_shard(shard_config, arm);
        });
}

} // namespace btwc
