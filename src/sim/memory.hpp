#pragma once

#include <cstdint>
#include <utility>

#include "surface/lattice.hpp"

namespace btwc {

/** Which decoder stack a memory experiment exercises (Fig. 14). */
enum class DecoderArm : uint8_t
{
    MwpmOnly = 0,      ///< paper's off-chip baseline
    CliqueMwpm = 1,    ///< Clique first, MWPM for complex rounds
    UnionFindOnly = 2, ///< §8.1 hierarchy extension / cross-check
};

/** Display name of a decoder arm. */
const char *decoder_arm_name(DecoderArm arm);

/** Configuration of a logical-memory Monte-Carlo experiment. */
struct MemoryConfig
{
    int distance = 5;
    double p = 1e-3;              ///< data-error probability per round
    double p_meas = -1.0;         ///< measurement-flip probability; <0 -> p
    uint64_t max_trials = 100000; ///< hard trial cap
    uint64_t target_failures = 100; ///< stop early once reached
    int rounds = 0;               ///< noisy rounds; 0 means d
    int filter_rounds = 2;
    /**
     * Use log-likelihood edge weights in the matching graph instead of
     * unit weights. Matters only when p_meas != p (asymmetric noise);
     * with the paper's symmetric model both are exact.
     */
    bool weighted_matching = false;
    CheckType error_type = CheckType::X;  ///< which half is simulated
    /**
     * Worker shards for the Monte-Carlo engine (sim/engine.hpp): 1 =
     * historical single-threaded run (bit-exact), 0 = all hardware
     * threads, N = exactly N shards with independent RNG streams.
     * Sharding splits `max_trials` exactly; see run_memory_experiment
     * for the cross-shard `target_failures` early-stop rule.
     */
    int threads = 1;
    uint64_t seed = 1;

    /** Effective measurement flip probability. */
    double meas_probability() const { return p_meas < 0.0 ? p : p_meas; }
};

/** Result of a memory experiment. */
struct MemoryResult
{
    uint64_t trials = 0;
    uint64_t failures = 0;
    uint64_t offchip_rounds = 0;  ///< rounds flagged COMPLEX (Clique arm)
    uint64_t total_rounds = 0;
    /**
     * Trials whose decode failed to clear the perfect-round syndrome.
     * This must be zero -- the final matching pass closes every
     * detection-event chain by construction -- and it is a *counted
     * runtime check*, not an assert, so Release/-DNDEBUG builds (the
     * CI smoke path) surface a violation instead of silently skipping
     * the invariant. A nonzero count invalidates `ler()`.
     */
    uint64_t unclear_syndromes = 0;

    /**
     * Fold the result of another (independently sampled) run into this
     * one -- the reduction step of the sharded Monte-Carlo engine
     * (sim/engine.hpp). Exact: every counter is a sum.
     */
    void merge(const MemoryResult &other)
    {
        trials += other.trials;
        failures += other.failures;
        offchip_rounds += other.offchip_rounds;
        total_rounds += other.total_rounds;
        unclear_syndromes += other.unclear_syndromes;
    }

    /** Logical error rate per `rounds`-round block. */
    double ler() const
    {
        return trials == 0 ? 0.0
                           : static_cast<double>(failures) /
                                 static_cast<double>(trials);
    }

    /** 95% Wilson confidence interval on the LER. */
    std::pair<double, double> ler_interval() const;
};

/**
 * Run one memory experiment: per trial, `rounds` noisy syndrome
 * extraction rounds followed by one perfect round, decode, and check
 * whether the residual anticommutes with the dual logical operator.
 *
 * Sharded over `config.threads` workers (sim/engine.hpp): shard trial
 * budgets sum to `max_trials` exactly and `threads == 1` reproduces
 * the historical single-threaded run bit-for-bit. Cross-shard
 * early-stop rule: each shard stops at its trial budget or after
 * ceil(target_failures / #shards) failures, whichever comes first --
 * deterministic (no inter-thread communication), and since shard
 * samples are i.i.d. the merged run stops at ~target_failures like
 * the serial loop. The merged `failures` can exceed `target_failures`
 * by at most #shards - 1.
 *
 * The baseline arm decodes all detection events in a single 3D MWPM
 * pass. The Clique arm replays the paper's pipeline: per-round
 * filtered syndromes go through Clique; trivial corrections are
 * applied online (and their echo shows up as time-like event pairs
 * that the final MWPM pass resolves as identity); rounds flagged
 * COMPLEX leave their events to the final MWPM pass, which models the
 * off-chip hand-over.
 */
MemoryResult run_memory_experiment(const MemoryConfig &config,
                                   DecoderArm arm);

} // namespace btwc
