#include "sim/stream.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "surface/frame.hpp"
#include "surface/packed.hpp"

namespace btwc {

std::vector<TierSpec>
stream_screen_tiers(const TierChainConfig &tiers)
{
    std::vector<TierSpec> screen;
    const size_t n = tiers.tiers.size();
    for (size_t i = 0; i < n; ++i) {
        const TierSpec &tier = tiers.tiers[i];
        if (tier.kind == DecoderTier::Stream) {
            BTWC_CHECK_MSG(i + 1 == n,
                           "the stream tier must be the final tier of "
                           "a kind=stream chain");
            continue;
        }
        BTWC_CHECK_MSG(tier.kind == DecoderTier::UnionFind,
                       "a kind=stream chain admits only union-find "
                       "screening tiers before the final stream tier");
        screen.push_back(tier);
    }
    BTWC_CHECK_MSG(n == 0 || tiers.tiers.back().kind == DecoderTier::Stream,
                   "a non-empty kind=stream chain must end with the "
                   "stream tier");
    return screen;
}

namespace {

/** One shard: a single independent stream (cf. run_memory_shard). */
StreamStats
run_stream_shard(const StreamConfig &config)
{
    const RotatedSurfaceCode code(config.distance);
    const CheckType detector = detector_of_error(config.error_type);

    StreamWindowConfig window_config;
    window_config.window = config.window;
    window_config.overlap = config.overlap;
    window_config.screen = stream_screen_tiers(config.tiers);
    StreamWindowDecoder decoder(code, detector, window_config);

    ErrorFrame frame(code, config.error_type);
    Rng rng(config.seed);
    PackedSyndrome raw(code.num_checks(detector));
    std::vector<uint8_t> perfect;

    for (uint64_t t = 0; t < config.rounds; ++t) {
        frame.inject(config.p, rng);
        frame.measure_packed(config.meas_probability(), rng, raw);
        decoder.push_round(raw);
    }
    // One noiseless closing round: its detection events close every
    // open defect chain, so the flushed correction clears the final
    // syndrome (the memory-experiment template, sim/memory.cpp).
    frame.measure_perfect(perfect);
    raw.from_bytes(perfect);
    decoder.push_round(raw);
    decoder.flush();
    frame.apply_packed(decoder.committed_correction());

    StreamStats stats;
    stats.window = decoder.stats();
    stats.streams = 1;
    // Counted runtime checks, not asserts (cf. MemoryResult).
    if (!frame.syndrome_clear()) {
        ++stats.unclear_syndromes;
    }
    if (frame.logical_flipped()) {
        ++stats.logical_failures;
    }
    return stats;
}

} // namespace

StreamStats
run_stream(const StreamConfig &config)
{
    // Validate the chain shape up front (before any shard thread
    // starts) so a malformed spec fails with one clean diagnostic.
    (void)stream_screen_tiers(config.tiers);
    return run_sharded<StreamStats>(
        config.rounds, config.threads, config.seed,
        [&config](const Shard &shard) {
            StreamConfig shard_config = config;
            shard_config.rounds = shard.cycles;
            shard_config.seed = shard.seed;
            shard_config.threads = 1;
            return run_stream_shard(shard_config);
        });
}

} // namespace btwc
