#pragma once

#include <cstdint>
#include <vector>

#include "decoders/stream_window.hpp"
#include "decoders/tier_chain.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Configuration of a streaming-decode experiment: one logical qubit's
 * syndrome stream fed round by round through the sliding-window
 * decoder (decoders/stream_window.hpp) instead of batch-decoded at the
 * end — the service-shaped operating mode a real-time decoder runs in.
 */
struct StreamConfig
{
    int distance = 5;
    double p = 1e-3;       ///< data-error probability per round
    double p_meas = -1.0;  ///< measurement-flip probability; <0 -> p
    int window = 8;        ///< W: rounds per decode window
    int overlap = 2;       ///< V: rounds re-decoded next window
    /**
     * Total noisy measurement rounds, split exactly over
     * `threads` shards (sim/engine.hpp); each shard runs one
     * independent stream (its own noise history and decoder), closed
     * by a final noiseless round and a flush. `threads == 1`
     * reproduces the single-threaded stream bit-for-bit.
     */
    uint64_t rounds = 20000;
    CheckType error_type = CheckType::X;  ///< which half is simulated
    /**
     * The stream's decode chain. Empty = bare sliding-window MWPM.
     * Otherwise the chain must end with the stream tier, optionally
     * preceded by union-find screening tiers whose escalation
     * thresholds gate the whole-window screening fast path (see
     * StreamWindowConfig::screen); anything else is rejected with a
     * diagnostic (stream_screen_tiers).
     */
    TierChainConfig tiers;
    int threads = 1;
    uint64_t seed = 1;

    /** Effective measurement flip probability. */
    double meas_probability() const { return p_meas < 0.0 ? p : p_meas; }
};

/** Aggregated statistics of a streaming-decode run. */
struct StreamStats
{
    StreamWindowStats window;  ///< decoder-side counters and ledgers
    uint64_t streams = 0;      ///< independent streams (one per shard)
    /**
     * Streams whose committed correction failed to clear the final
     * syndrome. Must be zero — the flushed commit set is a perfect
     * matching of every stream event — and is a *counted runtime
     * check* (cf. MemoryResult::unclear_syndromes), so Release builds
     * surface a violation instead of silently skipping the invariant.
     */
    uint64_t unclear_syndromes = 0;
    uint64_t logical_failures = 0;  ///< residual flipped the logical

    /** Fold another shard's statistics in (sim/engine.hpp). */
    void merge(const StreamStats &other)
    {
        window.merge(other.window);
        streams += other.streams;
        unclear_syndromes += other.unclear_syndromes;
        logical_failures += other.logical_failures;
    }
};

/**
 * Extract the screening tiers of a kind=stream chain, validating its
 * shape: the final tier must be `stream` and every preceding tier
 * union-find (empty chains mean bare sliding-window MWPM). Throws
 * CheckFailure with a diagnostic on any other shape — the same rule
 * ScenarioSpec validation reports as a parse error.
 */
std::vector<TierSpec> stream_screen_tiers(const TierChainConfig &tiers);

/**
 * Run the streaming-decode experiment: per shard, `rounds` noisy
 * syndrome extraction rounds pushed through a StreamWindowDecoder as
 * they are measured, a final noiseless round, a flush, and the
 * committed correction applied to the frame (the memory-experiment
 * closing template, sim/memory.cpp). Sharded over `config.threads`
 * workers with independent RNG streams; merged stats are bit-exact
 * deterministic for a fixed (rounds, threads, seed) triple.
 */
StreamStats run_stream(const StreamConfig &config);

} // namespace btwc
