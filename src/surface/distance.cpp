#include "surface/distance.hpp"

#include <limits>

#include "common/check.hpp"

namespace btwc {

CheckGraphDistances::CheckGraphDistances(const RotatedSurfaceCode &code,
                                         CheckType type)
    : n_(code.num_checks(type))
{
    BTWC_CHECK(n_ > 0 &&
               static_cast<size_t>(n_) <
                   std::numeric_limits<uint16_t>::max());
    const size_t n = static_cast<size_t>(n_);
    dist_.assign(n * n, 0);

    // One BFS per source over the unit-weight check graph. The graph
    // is connected (the test suite pins this via symmetry +
    // reachability), so every slot is written.
    std::vector<int> frontier;
    frontier.reserve(n);
    for (int src = 0; src < n_; ++src) {
        uint16_t *dist = &dist_[static_cast<size_t>(src) * n];
        std::vector<uint8_t> seen(n, 0);
        frontier.clear();
        frontier.push_back(src);
        seen[src] = 1;
        dist[src] = 0;
        size_t head = 0;
        while (head < frontier.size()) {
            const int cur = frontier[head++];
            for (const CliqueNeighbor &nb :
                 code.clique_neighbors(type, cur)) {
                if (!seen[nb.check]) {
                    seen[nb.check] = 1;
                    dist[nb.check] =
                        static_cast<uint16_t>(dist[cur] + 1);
                    frontier.push_back(nb.check);
                }
            }
        }
    }

    // Nearest boundary-adjacent check per source, ties broken toward
    // the smallest check id — the order Dijkstra settles equal-distance
    // nodes in, which the fast path's boundary retirement must match.
    boundary_hops_.assign(n, 0);
    boundary_check_.assign(n, -1);
    for (int src = 0; src < n_; ++src) {
        int best_hops = std::numeric_limits<int>::max();
        int best_check = -1;
        for (int b = 0; b < n_; ++b) {
            if (code.boundary_data(type, b).empty()) {
                continue;
            }
            const int hops = distance(src, b);
            if (hops < best_hops) {
                best_hops = hops;
                best_check = b;
            }
        }
        BTWC_CHECK_MSG(best_check >= 0,
                       "every check graph has a boundary");
        boundary_hops_[src] = static_cast<uint16_t>(best_hops);
        boundary_check_[src] = best_check;
    }

    if (audit_deep()) {
        audit(code, type);
    }
}

void
CheckGraphDistances::audit(const RotatedSurfaceCode &code,
                           CheckType type) const
{
    // The table is correct iff it satisfies the BFS optimality
    // conditions on the (connected, unit-weight) check graph: zero
    // diagonal, symmetry, every edge changes the distance by at most
    // one, and every non-source vertex has a neighbor one hop closer.
    // Together these pin dist() to the true geodesic distances, so
    // this audit re-verifies the oracle against the graph itself
    // rather than against a second copy of the construction code.
    for (int src = 0; src < n_; ++src) {
        BTWC_CHECK_MSG(distance(src, src) == 0,
                       "distance oracle diagonal must be zero");
        for (int c = 0; c < n_; ++c) {
            BTWC_CHECK_MSG(distance(src, c) == distance(c, src),
                           "distance oracle must be symmetric");
            if (c == src) {
                continue;
            }
            const int d = distance(src, c);
            BTWC_CHECK_MSG(d > 0, "off-diagonal distances are positive");
            bool has_descent = false;
            for (const CliqueNeighbor &nb :
                 code.clique_neighbors(type, c)) {
                const int dn = distance(src, nb.check);
                BTWC_CHECK_MSG(dn >= d - 1 && dn <= d + 1,
                               "adjacent checks differ by at most one "
                               "hop from any source");
                has_descent = has_descent || dn == d - 1;
            }
            BTWC_CHECK_MSG(has_descent,
                           "every non-source check has a neighbor one "
                           "hop closer (BFS optimality)");
        }

        // Re-derive the boundary argmin with the same (hops, id)
        // tie-break the fast path's boundary retirement depends on.
        int best_hops = std::numeric_limits<int>::max();
        int best_check = -1;
        for (int b = 0; b < n_; ++b) {
            if (code.boundary_data(type, b).empty()) {
                continue;
            }
            if (distance(src, b) < best_hops) {
                best_hops = distance(src, b);
                best_check = b;
            }
        }
        BTWC_CHECK_MSG(boundary_check(src) == best_check &&
                           boundary_hops(src) == best_hops,
                       "boundary retirement table must match the "
                       "(hops, id) argmin over boundary checks");
    }
}

} // namespace btwc
