#include "surface/distance.hpp"

#include <cassert>
#include <limits>

namespace btwc {

CheckGraphDistances::CheckGraphDistances(const RotatedSurfaceCode &code,
                                         CheckType type)
    : n_(code.num_checks(type))
{
    assert(n_ > 0 &&
           static_cast<size_t>(n_) <
               std::numeric_limits<uint16_t>::max());
    const size_t n = static_cast<size_t>(n_);
    dist_.assign(n * n, 0);

    // One BFS per source over the unit-weight check graph. The graph
    // is connected (the test suite pins this via symmetry +
    // reachability), so every slot is written.
    std::vector<int> frontier;
    frontier.reserve(n);
    for (int src = 0; src < n_; ++src) {
        uint16_t *dist = &dist_[static_cast<size_t>(src) * n];
        std::vector<uint8_t> seen(n, 0);
        frontier.clear();
        frontier.push_back(src);
        seen[src] = 1;
        dist[src] = 0;
        size_t head = 0;
        while (head < frontier.size()) {
            const int cur = frontier[head++];
            for (const CliqueNeighbor &nb :
                 code.clique_neighbors(type, cur)) {
                if (!seen[nb.check]) {
                    seen[nb.check] = 1;
                    dist[nb.check] =
                        static_cast<uint16_t>(dist[cur] + 1);
                    frontier.push_back(nb.check);
                }
            }
        }
    }

    // Nearest boundary-adjacent check per source, ties broken toward
    // the smallest check id — the order Dijkstra settles equal-distance
    // nodes in, which the fast path's boundary retirement must match.
    boundary_hops_.assign(n, 0);
    boundary_check_.assign(n, -1);
    for (int src = 0; src < n_; ++src) {
        int best_hops = std::numeric_limits<int>::max();
        int best_check = -1;
        for (int b = 0; b < n_; ++b) {
            if (code.boundary_data(type, b).empty()) {
                continue;
            }
            const int hops = distance(src, b);
            if (hops < best_hops) {
                best_hops = hops;
                best_check = b;
            }
        }
        assert(best_check >= 0 && "every check graph has a boundary");
        boundary_hops_[src] = static_cast<uint16_t>(best_hops);
        boundary_check_[src] = best_check;
    }
}

} // namespace btwc
