#pragma once

#include <cstdint>
#include <vector>

#include "surface/lattice.hpp"

namespace btwc {

/**
 * Precomputed geometry of one check type's matching graph: all-pairs
 * hop distances between same-type checks plus, per check, the hop
 * distance to (and identity of) its nearest boundary-adjacent check.
 *
 * This is the spacetime distance oracle behind `MwpmDecoder`'s fast
 * path. The decoding graph over `(check, round)` nodes is the
 * Cartesian product of this 2-D check graph (space edges, weight
 * `space_weight`) with a path graph over rounds (time edges, weight
 * `time_weight`), and every edge of one dimension carries one uniform
 * weight — so the spacetime distance decomposes in closed form:
 *
 *     dist((c1, r1), (c2, r2)) =
 *         distance(c1, c2) * space_weight + |r1 - r2| * time_weight
 *
 * and the boundary distance from `(c, r)` is
 * `(boundary_hops(c) + 1) * space_weight` (time moves never help reach
 * a boundary). The per-defect Dijkstra this replaces costs
 * O(rounds * num_checks * log) per defect; the oracle answers in O(1)
 * from a table built once per code (sparse-blossom-style precomputed
 * geometry, cf. Higgott et al., arXiv:2203.04948).
 *
 * Tie-breaking contract: `boundary_check(c)` is the boundary-adjacent
 * check with the smallest (hops, id) pair — exactly the first
 * boundary-adjacent node the legacy Dijkstra settles under unit
 * weights, which is what keeps the fast path's corrections bit-exact
 * with the Dijkstra fallback (see MwpmDecoder).
 *
 * Tables are O(num_checks^2) `uint16_t`s (~190 KB at d = 21); they are
 * built lazily per check type via
 * `RotatedSurfaceCode::check_distances`, so codes that never run a
 * matching decoder (Clique-only chains, Oracle-policy runs) pay
 * nothing.
 */
class CheckGraphDistances
{
  public:
    CheckGraphDistances(const RotatedSurfaceCode &code, CheckType type);

    /** Number of checks (table dimension). */
    int num_checks() const { return n_; }

    /** Lattice hop distance between checks a and b (unit space edges). */
    int distance(int a, int b) const
    {
        return dist_[static_cast<size_t>(a) * static_cast<size_t>(n_) +
                     static_cast<size_t>(b)];
    }

    /**
     * Hop distance from check c to the nearest boundary-adjacent check
     * (0 when c itself holds a boundary half-edge). The boundary
     * *distance* adds one more space hop for the half-edge itself.
     */
    int boundary_hops(int c) const { return boundary_hops_[c]; }

    /**
     * The boundary-adjacent check realizing `boundary_hops(c)`,
     * smallest check id among ties (the Dijkstra settle order).
     */
    int boundary_check(int c) const { return boundary_check_[c]; }

    /**
     * Re-verify the tables against the check graph itself: BFS
     * optimality conditions (zero diagonal, symmetry, unit edge
     * Lipschitz bound, a descending neighbor from every non-source
     * check) uniquely pin the geodesic distances on a connected
     * unit-weight graph, plus a re-derivation of the boundary
     * (hops, id) argmin. Runs automatically from the constructor at
     * AuditLevel::Deep; throws CheckFailure on any mismatch.
     */
    void audit(const RotatedSurfaceCode &code, CheckType type) const;

  private:
    int n_;
    std::vector<uint16_t> dist_;
    std::vector<uint16_t> boundary_hops_;
    std::vector<int> boundary_check_;
};

} // namespace btwc
