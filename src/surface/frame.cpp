#include "surface/frame.hpp"

namespace btwc {

ErrorFrame::ErrorFrame(const RotatedSurfaceCode &code, CheckType error_type)
    : code_(code), error_type_(error_type),
      detector_(detector_of_error(error_type)),
      err_(static_cast<size_t>(code.num_data()), 0),
      packed_(code.num_data())
{
}

void
ErrorFrame::reset()
{
    std::fill(err_.begin(), err_.end(), 0);
    packed_.clear();
}

void
ErrorFrame::flip(int data)
{
    err_[data] ^= 1;
    packed_.flip(data);
}

void
ErrorFrame::inject(double p, Rng &rng)
{
    if (p <= 0.0) {
        return;
    }
    const uint64_t n = err_.size();
    uint64_t i = rng.geometric(p);
    while (i < n) {
        err_[i] ^= 1;
        packed_.flip(static_cast<int>(i));
        const uint64_t gap = rng.geometric(p);
        if (gap >= n - i) {
            break;
        }
        i += gap + 1;
    }
}

void
ErrorFrame::apply(const std::vector<int> &corrections)
{
    for (const int data : corrections) {
        err_[data] ^= 1;
        packed_.flip(data);
    }
}

void
ErrorFrame::apply_mask(const std::vector<uint8_t> &mask)
{
    for (size_t i = 0; i < err_.size(); ++i) {
        if (mask[i] & 1) {
            err_[i] ^= 1;
            packed_.flip(static_cast<int>(i));
        }
    }
}

void
ErrorFrame::apply_packed(const PackedBits &mask)
{
    // Sparse mirror update first, then the word-wide XOR.
    mask.for_each_set([this](int data) { err_[data] ^= 1; });
    packed_ ^= mask;
}

void
ErrorFrame::measure(double p_meas, Rng &rng, std::vector<uint8_t> &out) const
{
    code_.syndrome_of(detector_, err_, out);
    if (p_meas <= 0.0) {
        return;
    }
    const uint64_t n = out.size();
    uint64_t i = rng.geometric(p_meas);
    while (i < n) {
        out[i] ^= 1;
        const uint64_t gap = rng.geometric(p_meas);
        if (gap >= n - i) {
            break;
        }
        i += gap + 1;
    }
}

void
ErrorFrame::measure_packed(double p_meas, Rng &rng,
                           PackedSyndrome &out) const
{
    out.reset(code_.num_checks(detector_));
    // Sparse extraction: each flipped qubit toggles its owning checks.
    // Every data qubit belongs to 1-2 checks per type, so a weight-w
    // error costs O(w) toggles instead of the O(num_checks x support)
    // dense parity sweep.
    packed_.for_each_set([this, &out](int data) {
        for (const int check : code_.checks_of_data(detector_, data)) {
            out.flip(check);
        }
    });
    if (p_meas <= 0.0) {
        return;
    }
    // Identical geometric gap-skipping walk (and therefore identical
    // RNG stream) as the byte path: Monte-Carlo runs stay bit-exact.
    const uint64_t n = static_cast<uint64_t>(out.size());
    uint64_t i = rng.geometric(p_meas);
    while (i < n) {
        out.flip(static_cast<int>(i));
        const uint64_t gap = rng.geometric(p_meas);
        if (gap >= n - i) {
            break;
        }
        i += gap + 1;
    }
}

void
ErrorFrame::measure_perfect(std::vector<uint8_t> &out) const
{
    code_.syndrome_of(detector_, err_, out);
}

bool
ErrorFrame::syndrome_clear() const
{
    syndrome_scratch_.reset(code_.num_checks(detector_));
    packed_.for_each_set([this](int data) {
        for (const int check : code_.checks_of_data(detector_, data)) {
            syndrome_scratch_.flip(check);
        }
    });
    return syndrome_scratch_.none();
}

int
ErrorFrame::weight() const
{
    return packed_.popcount();
}

bool
ErrorFrame::logical_flipped() const
{
    return code_.logical_flipped(error_type_, err_);
}

} // namespace btwc
