#include "surface/frame.hpp"

namespace btwc {

ErrorFrame::ErrorFrame(const RotatedSurfaceCode &code, CheckType error_type)
    : code_(code), error_type_(error_type),
      detector_(detector_of_error(error_type)),
      err_(static_cast<size_t>(code.num_data()), 0)
{
}

void
ErrorFrame::reset()
{
    std::fill(err_.begin(), err_.end(), 0);
}

void
ErrorFrame::flip(int data)
{
    err_[data] ^= 1;
}

void
ErrorFrame::inject(double p, Rng &rng)
{
    if (p <= 0.0) {
        return;
    }
    const uint64_t n = err_.size();
    uint64_t i = rng.geometric(p);
    while (i < n) {
        err_[i] ^= 1;
        const uint64_t gap = rng.geometric(p);
        if (gap >= n - i) {
            break;
        }
        i += gap + 1;
    }
}

void
ErrorFrame::apply(const std::vector<int> &corrections)
{
    for (const int data : corrections) {
        err_[data] ^= 1;
    }
}

void
ErrorFrame::apply_mask(const std::vector<uint8_t> &mask)
{
    for (size_t i = 0; i < err_.size(); ++i) {
        err_[i] ^= (mask[i] & 1);
    }
}

void
ErrorFrame::measure(double p_meas, Rng &rng, std::vector<uint8_t> &out) const
{
    code_.syndrome_of(detector_, err_, out);
    if (p_meas <= 0.0) {
        return;
    }
    const uint64_t n = out.size();
    uint64_t i = rng.geometric(p_meas);
    while (i < n) {
        out[i] ^= 1;
        const uint64_t gap = rng.geometric(p_meas);
        if (gap >= n - i) {
            break;
        }
        i += gap + 1;
    }
}

void
ErrorFrame::measure_perfect(std::vector<uint8_t> &out) const
{
    code_.syndrome_of(detector_, err_, out);
}

bool
ErrorFrame::syndrome_clear() const
{
    std::vector<uint8_t> syn;
    code_.syndrome_of(detector_, err_, syn);
    for (const uint8_t s : syn) {
        if (s) {
            return false;
        }
    }
    return true;
}

int
ErrorFrame::weight() const
{
    int w = 0;
    for (const uint8_t e : err_) {
        w += e & 1;
    }
    return w;
}

bool
ErrorFrame::logical_flipped() const
{
    return code_.logical_flipped(error_type_, err_);
}

} // namespace btwc
