#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "surface/lattice.hpp"

namespace btwc {

/**
 * Error state and noisy syndrome extraction for one error type.
 *
 * Tracks which data qubits currently carry an error of the configured
 * type (X or Z) and produces per-round syndrome measurements of the
 * detecting check type, optionally with measurement flips. This is the
 * "Pauli frame" of one half of the independently-decoded lattice.
 */
class ErrorFrame
{
  public:
    /** Create an all-clear frame for errors of `error_type`. */
    ErrorFrame(const RotatedSurfaceCode &code, CheckType error_type);

    /** The tracked error type. */
    CheckType error_type() const { return error_type_; }

    /** The check type whose measurements detect the tracked errors. */
    CheckType detector() const { return detector_; }

    /** Clear all errors. */
    void reset();

    /** Toggle the error on one data qubit. */
    void flip(int data);

    /**
     * Inject i.i.d. errors: each data qubit flips with probability p.
     * Uses geometric gap skipping, so cost is O(d^2 p + 1).
     */
    void inject(double p, Rng &rng);

    /** Apply a correction: toggle every listed data qubit. */
    void apply(const std::vector<int> &corrections);

    /** Apply a correction mask (one byte per data qubit). */
    void apply_mask(const std::vector<uint8_t> &mask);

    /**
     * One noisy measurement round: `out[c]` is the parity of the
     * current error over check c's support, flipped with probability
     * p_meas. `out` is resized to the check count.
     */
    void measure(double p_meas, Rng &rng, std::vector<uint8_t> &out) const;

    /** Noiseless measurement round. */
    void measure_perfect(std::vector<uint8_t> &out) const;

    /** True when the noiseless syndrome is all zero. */
    bool syndrome_clear() const;

    /** Number of data qubits currently in error. */
    int weight() const;

    /**
     * True when the current error pattern anticommutes with the dual
     * logical operator. Meaningful as a *failure* indicator only when
     * the syndrome is clear.
     */
    bool logical_flipped() const;

    /** Raw per-qubit error indicators. */
    const std::vector<uint8_t> &error() const { return err_; }

    /** The underlying code. */
    const RotatedSurfaceCode &code() const { return code_; }

  private:
    const RotatedSurfaceCode &code_;
    CheckType error_type_;
    CheckType detector_;
    std::vector<uint8_t> err_;
};

} // namespace btwc
