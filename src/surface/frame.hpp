#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "surface/lattice.hpp"
#include "surface/packed.hpp"

namespace btwc {

/**
 * Error state and noisy syndrome extraction for one error type.
 *
 * Tracks which data qubits currently carry an error of the configured
 * type (X or Z) and produces per-round syndrome measurements of the
 * detecting check type, optionally with measurement flips. This is the
 * "Pauli frame" of one half of the independently-decoded lattice.
 *
 * The error state is held twice: a byte-per-qubit vector (`error()`,
 * the legacy representation every byte-path consumer reads) and a
 * bit-packed mirror (`error_packed()`). Every mutator keeps the two in
 * sync; the packed mirror is what makes `measure_packed` O(weight)
 * instead of O(num_checks x support) and `weight()` a popcount.
 */
class ErrorFrame
{
  public:
    /** Create an all-clear frame for errors of `error_type`. */
    ErrorFrame(const RotatedSurfaceCode &code, CheckType error_type);

    /** The tracked error type. */
    CheckType error_type() const { return error_type_; }

    /** The check type whose measurements detect the tracked errors. */
    CheckType detector() const { return detector_; }

    /** Clear all errors. */
    void reset();

    /** Toggle the error on one data qubit. */
    void flip(int data);

    /**
     * Inject i.i.d. errors: each data qubit flips with probability p.
     * Uses geometric gap skipping, so cost is O(d^2 p + 1).
     */
    void inject(double p, Rng &rng);

    /** Apply a correction: toggle every listed data qubit. */
    void apply(const std::vector<int> &corrections);

    /** Apply a correction mask (one byte per data qubit). */
    void apply_mask(const std::vector<uint8_t> &mask);

    /** Apply a packed correction mask (one bit per data qubit). */
    void apply_packed(const PackedBits &mask);

    /**
     * One noisy measurement round: `out[c]` is the parity of the
     * current error over check c's support, flipped with probability
     * p_meas. `out` is resized to the check count.
     */
    void measure(double p_meas, Rng &rng, std::vector<uint8_t> &out) const;

    /**
     * Packed equivalent of `measure`: bit-exact with the byte form
     * (same syndrome, same RNG consumption) but O(error weight) for
     * the extraction — each flipped qubit toggles its 1-2 owning
     * checks via the incidence lists — and allocation-free once `out`
     * has the check width (the per-`BtwcSystem::Half` scratch idiom).
     */
    void measure_packed(double p_meas, Rng &rng, PackedSyndrome &out) const;

    /** Noiseless measurement round. */
    void measure_perfect(std::vector<uint8_t> &out) const;

    /** True when the noiseless syndrome is all zero. */
    bool syndrome_clear() const;

    /** Number of data qubits currently in error. */
    int weight() const;

    /**
     * True when the current error pattern anticommutes with the dual
     * logical operator. Meaningful as a *failure* indicator only when
     * the syndrome is clear.
     */
    bool logical_flipped() const;

    /** Raw per-qubit error indicators. */
    const std::vector<uint8_t> &error() const { return err_; }

    /** Bit-packed per-qubit error indicators (mirror of error()). */
    const PackedBits &error_packed() const { return packed_; }

    /** The underlying code. */
    const RotatedSurfaceCode &code() const { return code_; }

  private:
    const RotatedSurfaceCode &code_;
    CheckType error_type_;
    CheckType detector_;
    std::vector<uint8_t> err_;
    PackedBits packed_;
    // Reused by the const syndrome_clear() query; frames are not
    // concurrency-safe per instance (each engine shard owns its own).
    mutable PackedSyndrome syndrome_scratch_;
};

} // namespace btwc
