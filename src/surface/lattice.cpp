#include "surface/lattice.hpp"

#include "common/check.hpp"
#include <cstdlib>

#include "surface/distance.hpp"

namespace btwc {

const char *
check_type_name(CheckType t)
{
    return t == CheckType::X ? "X" : "Z";
}

namespace {

/** Plaquette type from the checkerboard colouring. */
CheckType
plaquette_type(int pr, int pc)
{
    return ((pr + pc) % 2 + 2) % 2 == 0 ? CheckType::X : CheckType::Z;
}

/**
 * Whether a plaquette hosts a stabilizer. Interior plaquettes always
 * do; boundary rows keep only X-type plaquettes (alternating) and
 * boundary columns only Z-type; corners host none.
 */
bool
plaquette_exists(int d, int pr, int pc)
{
    const bool row_edge = (pr == -1 || pr == d - 1);
    const bool col_edge = (pc == -1 || pc == d - 1);
    if (row_edge && col_edge) {
        return false;
    }
    if (row_edge) {
        return pc >= 0 && pc <= d - 2 &&
               plaquette_type(pr, pc) == CheckType::X;
    }
    if (col_edge) {
        return pr >= 0 && pr <= d - 2 &&
               plaquette_type(pr, pc) == CheckType::Z;
    }
    return pr >= 0 && pr <= d - 2 && pc >= 0 && pc <= d - 2;
}

} // namespace

RotatedSurfaceCode::RotatedSurfaceCode(int distance) : d_(distance)
{
    BTWC_CHECK_MSG(d_ >= 3 && d_ % 2 == 1,
                   "distance must be odd and >= 3");
    build_checks();
    build_incidence();
    build_cliques();

    // Minimum-weight logical representatives: X_L on data column 0
    // (connects the top and bottom boundaries of the Z-check matching
    // graph), Z_L on data row 0 (connects the left/right boundaries of
    // the X-check graph). Validated by the test suite.
    for (int r = 0; r < d_; ++r) {
        logical_[index(CheckType::X)].push_back(data_id(r, 0));
    }
    for (int c = 0; c < d_; ++c) {
        logical_[index(CheckType::Z)].push_back(data_id(0, c));
    }
}

void
RotatedSurfaceCode::build_checks()
{
    for (const CheckType t : {CheckType::X, CheckType::Z}) {
        plaquette_id_[index(t)].assign(
            d_ + 1, std::vector<int>(d_ + 1, -1));
    }
    for (int pr = -1; pr <= d_ - 1; ++pr) {
        for (int pc = -1; pc <= d_ - 1; ++pc) {
            if (!plaquette_exists(d_, pr, pc)) {
                continue;
            }
            const CheckType t = plaquette_type(pr, pc);
            Check chk;
            chk.id = static_cast<int>(checks_[index(t)].size());
            chk.pr = pr;
            chk.pc = pc;
            chk.type = t;
            for (int r = pr; r <= pr + 1; ++r) {
                for (int c = pc; c <= pc + 1; ++c) {
                    if (r >= 0 && r < d_ && c >= 0 && c < d_) {
                        chk.data.push_back(data_id(r, c));
                    }
                }
            }
            plaquette_id_[index(t)][pr + 1][pc + 1] = chk.id;
            checks_[index(t)].push_back(std::move(chk));
        }
    }
    BTWC_CHECK(num_checks(CheckType::X) == (d_ * d_ - 1) / 2);
    BTWC_CHECK(num_checks(CheckType::Z) == (d_ * d_ - 1) / 2);
}

void
RotatedSurfaceCode::build_incidence()
{
    for (const CheckType t : {CheckType::X, CheckType::Z}) {
        auto &incidence = data_checks_[index(t)];
        incidence.assign(num_data(), {});
        for (const Check &chk : checks_[index(t)]) {
            for (const int data : chk.data) {
                incidence[data].push_back(chk.id);
            }
        }
        for (const auto &list : incidence) {
            BTWC_CHECK_MSG(list.size() >= 1 && list.size() <= 2,
                           "every data qubit touches 1 or 2 checks "
                           "per type");
        }
    }
}

void
RotatedSurfaceCode::build_cliques()
{
    for (const CheckType t : {CheckType::X, CheckType::Z}) {
        auto &clique = clique_[index(t)];
        auto &boundary = boundary_[index(t)];
        clique.assign(num_checks(t), {});
        boundary.assign(num_checks(t), {});
        for (const Check &chk : checks_[index(t)]) {
            for (const int data : chk.data) {
                const auto &owners = data_checks_[index(t)][data];
                if (owners.size() == 1) {
                    boundary[chk.id].push_back(data);
                    continue;
                }
                const int other = owners[0] == chk.id ? owners[1]
                                                      : owners[0];
                clique[chk.id].push_back(CliqueNeighbor{other, data});
            }
        }
    }
}

RotatedSurfaceCode::~RotatedSurfaceCode() = default;

const CheckGraphDistances &
RotatedSurfaceCode::check_distances(CheckType t) const
{
    const int i = index(t);
    std::call_once(distances_once_[i], [this, t, i] {
        distances_[i] = std::make_unique<CheckGraphDistances>(*this, t);
    });
    return *distances_[i];
}

int
RotatedSurfaceCode::check_at(CheckType t, int pr, int pc) const
{
    if (pr < -1 || pr > d_ - 1 || pc < -1 || pc > d_ - 1) {
        return -1;
    }
    return plaquette_id_[index(t)][pr + 1][pc + 1];
}

std::pair<int, int>
RotatedSurfaceCode::edge_of_data(CheckType t, int data) const
{
    const auto &owners = data_checks_[index(t)][data];
    if (owners.size() == 2) {
        return {owners[0], owners[1]};
    }
    return {owners[0], -1};
}

void
RotatedSurfaceCode::syndrome_of(CheckType detector,
                                const std::vector<uint8_t> &error,
                                std::vector<uint8_t> &out) const
{
    const auto &list = checks_[index(detector)];
    out.assign(list.size(), 0);
    for (const Check &chk : list) {
        uint8_t parity = 0;
        for (const int data : chk.data) {
            parity ^= (error[data] & 1);
        }
        out[chk.id] = parity;
    }
}

bool
RotatedSurfaceCode::logical_flipped(CheckType error_type,
                                    const std::vector<uint8_t> &error) const
{
    // An X-type residual fails the logical qubit when it anticommutes
    // with Z_L (and symmetrically for Z residuals), i.e. when its
    // overlap with the *opposite* type's logical support is odd.
    const CheckType dual =
        error_type == CheckType::X ? CheckType::Z : CheckType::X;
    uint8_t parity = 0;
    for (const int data : logical_[index(dual)]) {
        parity ^= (error[data] & 1);
    }
    return parity != 0;
}

} // namespace btwc
