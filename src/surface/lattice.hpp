#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace btwc {

class CheckGraphDistances;

/**
 * Stabilizer (ancilla) type of the rotated surface code.
 *
 * Z-type stabilizers measure Z-parities and therefore detect X (bit
 * flip) data errors; X-type stabilizers detect Z (phase flip) errors.
 * The two halves of the lattice are decoded independently (§6.1 of the
 * paper).
 */
enum class CheckType : uint8_t { X = 0, Z = 1 };

/** The check type that detects the given error type. */
constexpr CheckType
detector_of_error(CheckType error_type)
{
    return error_type == CheckType::X ? CheckType::Z : CheckType::X;
}

/** Short display name ("X" or "Z"). */
const char *check_type_name(CheckType t);

/**
 * One stabilizer measurement site (ancilla qubit).
 *
 * `pr`/`pc` are plaquette coordinates: the plaquette at (pr, pc) acts
 * on the data qubits at rows {pr, pr+1} x columns {pc, pc+1} that lie
 * inside the d x d data grid, so interior checks have weight 4 and
 * boundary checks have weight 2.
 */
struct Check
{
    int id;                 ///< index within its type's check list
    int pr;                 ///< plaquette row, in [-1, d-1]
    int pc;                 ///< plaquette column, in [-1, d-1]
    CheckType type;         ///< stabilizer type
    std::vector<int> data;  ///< data qubit ids in the stabilizer support
};

/**
 * A same-type clique neighbor of a check (Fig. 5 of the paper).
 *
 * Two same-type checks are clique neighbors when they share exactly
 * one data qubit; `shared_data` identifies it. It is the qubit the
 * Clique decoder corrects when both checks fire.
 */
struct CliqueNeighbor
{
    int check;        ///< neighbor check id (same type)
    int shared_data;  ///< the one data qubit shared by the two checks
};

/**
 * Rotated surface code of odd distance d.
 *
 * Layout: d x d data qubits at integer coordinates (r, c). Plaquettes
 * live at half-integer positions indexed by (pr, pc) with pr, pc in
 * [-1, d-1]. Interior plaquettes are all present, with type X when
 * (pr + pc) is even and Z when odd. Weight-2 boundary plaquettes are
 * X-type on the top/bottom rows and Z-type on the left/right columns,
 * alternating so that each boundary hosts (d-1)/2 checks. Corners hold
 * no checks. This yields (d^2-1)/2 checks of each type.
 *
 * Matching-graph view (per check type): each data qubit touches
 * exactly one or two checks of each type, so it is either an edge
 * between two same-type checks or a *boundary half-edge* hanging off a
 * single check. X-error chains terminate on the top/bottom (X-type)
 * boundaries, Z-error chains on the left/right boundaries.
 *
 * Logical operators: X_L is a column of X on data column 0 and Z_L a
 * row of Z on data row 0 (verified by the test suite: trivial
 * syndrome, mutual anticommutation, independence of the stabilizer
 * group).
 */
class RotatedSurfaceCode
{
  public:
    /** Build the lattice for the given odd distance >= 3. */
    explicit RotatedSurfaceCode(int distance);

    ~RotatedSurfaceCode();

    // The lazily-built distance tables carry a once_flag, so the code
    // is addressed by reference everywhere (as it always was).
    RotatedSurfaceCode(const RotatedSurfaceCode &) = delete;
    RotatedSurfaceCode &operator=(const RotatedSurfaceCode &) = delete;

    /** Code distance d. */
    int distance() const { return d_; }

    /** Number of data qubits, d^2. */
    int num_data() const { return d_ * d_; }

    /** Number of checks of one type, (d^2 - 1) / 2. */
    int num_checks(CheckType t) const
    {
        return static_cast<int>(checks_[index(t)].size());
    }

    /** Data qubit id from (row, column). */
    int data_id(int r, int c) const { return r * d_ + c; }

    /** Row of a data qubit id. */
    int data_row(int id) const { return id / d_; }

    /** Column of a data qubit id. */
    int data_col(int id) const { return id % d_; }

    /** Check record by type and id. */
    const Check &check(CheckType t, int id) const
    {
        return checks_[index(t)][id];
    }

    /** All checks of a type. */
    const std::vector<Check> &checks(CheckType t) const
    {
        return checks_[index(t)];
    }

    /** Check id at plaquette (pr, pc) of the given type, or -1. */
    int check_at(CheckType t, int pr, int pc) const;

    /**
     * Checks of type t containing the given data qubit (1 or 2 ids).
     */
    const std::vector<int> &checks_of_data(CheckType t, int data) const
    {
        return data_checks_[index(t)][data];
    }

    /**
     * The two same-type checks a data qubit connects in the matching
     * graph of type t, as {a, b}; b == -1 marks a boundary half-edge.
     */
    std::pair<int, int> edge_of_data(CheckType t, int data) const;

    /** Clique neighbors of a check (same type, sharing a data qubit). */
    const std::vector<CliqueNeighbor> &
    clique_neighbors(CheckType t, int id) const
    {
        return clique_[index(t)][id];
    }

    /**
     * Boundary half-edge data qubits of a check: data qubits in its
     * support that belong to no other check of the same type.
     */
    const std::vector<int> &boundary_data(CheckType t, int id) const
    {
        return boundary_[index(t)][id];
    }

    /**
     * Support of the minimum-weight logical operator of the given
     * error type: data column 0 for X errors, data row 0 for Z errors.
     */
    const std::vector<int> &logical_support(CheckType error_type) const
    {
        return logical_[index(error_type)];
    }

    /**
     * Noiseless syndrome: for every check of type `detector`, the
     * parity of `error` (one byte per data qubit, nonzero = flipped)
     * over the check support. `out` is resized to num_checks.
     */
    void syndrome_of(CheckType detector, const std::vector<uint8_t> &error,
                     std::vector<uint8_t> &out) const;

    /**
     * Parity of an error pattern over the logical support of the
     * *opposite* error type; odd parity after a trivial-syndrome
     * residual means a logical failure. For X-type residual errors
     * pass error_type = X (overlap with Z_L is evaluated).
     */
    bool logical_flipped(CheckType error_type,
                         const std::vector<uint8_t> &error) const;

    /**
     * Precomputed matching-graph geometry of one check type
     * (surface/distance.hpp): all-pairs check hop distances plus
     * per-check boundary hops — the spacetime distance oracle behind
     * `MwpmDecoder`'s fast path. Built lazily on first request
     * (thread-safe), so Clique-only and Oracle-policy runs never pay
     * the O(num_checks^2) table.
     */
    const CheckGraphDistances &check_distances(CheckType t) const;

  private:
    static int index(CheckType t) { return static_cast<int>(t); }

    void build_checks();
    void build_incidence();
    void build_cliques();

    int d_;
    std::vector<Check> checks_[2];
    std::vector<std::vector<int>> plaquette_id_[2];
    std::vector<std::vector<int>> data_checks_[2];
    std::vector<std::vector<CliqueNeighbor>> clique_[2];
    std::vector<std::vector<int>> boundary_[2];
    std::vector<int> logical_[2];
    mutable std::once_flag distances_once_[2];
    mutable std::unique_ptr<CheckGraphDistances> distances_[2];
};

} // namespace btwc
