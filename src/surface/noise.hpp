#pragma once

namespace btwc {

/**
 * Phenomenological noise model parameters (§6.1 of the paper).
 *
 * Every cycle each data qubit independently acquires an X error with
 * probability `p_data` and a Z error with probability `p_data`, and
 * every syndrome measurement outcome flips with probability `p_meas`.
 * The paper uses a single parameter p for both; `uniform(p)` builds
 * that configuration.
 */
struct NoiseParams
{
    double p_data = 1e-3;  ///< per-data-qubit, per-cycle flip probability
    double p_meas = 1e-3;  ///< per-measurement flip probability

    /** The paper's single-parameter model: p_data = p_meas = p. */
    static NoiseParams uniform(double p) { return NoiseParams{p, p}; }
};

} // namespace btwc
