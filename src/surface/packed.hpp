#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace btwc {

/** Number of 64-bit words covering `bits` bits. */
constexpr int
packed_words(int bits)
{
    return (bits + 63) / 64;
}

/**
 * Dynamically sized bitset packed 64 bits per `uint64_t` word — the
 * carrier of the word-parallel screening fast path (ROADMAP
 * "raw-speed floor").
 *
 * Invariant: bits at positions >= size() are always zero, so whole-word
 * reductions (popcount, none, AND/OR/XOR) never see garbage in the
 * tail word. All mutators preserve it; `set`/`flip`/`reset`/`test`
 * require `i < size()`.
 *
 * `resize` is the only allocating operation (and only when the word
 * count grows), which is what makes persistent instances — per-decoder
 * scratch, per-`BtwcSystem::Half` syndromes — allocation-free in
 * steady state.
 */
class PackedBits
{
  public:
    PackedBits() = default;
    explicit PackedBits(int bits) { resize(bits); }

    /** Resize to `bits` bits, clearing all of them. */
    void resize(int bits)
    {
        bits_ = bits;
        words_.assign(static_cast<size_t>(packed_words(bits)), 0);
    }

    /** Clear all bits, keeping the size. */
    void clear()
    {
        for (uint64_t &w : words_) {
            w = 0;
        }
    }

    /** Resize when the width differs, else just clear (never shrinks
     * capacity): the reset idiom of every pooled scratch instance. */
    void reset(int bits)
    {
        if (bits_ != bits) {
            resize(bits);
        } else {
            clear();
        }
    }

    int size() const { return bits_; }
    int num_words() const { return static_cast<int>(words_.size()); }

    uint64_t word(int w) const { return words_[static_cast<size_t>(w)]; }
    const uint64_t *data() const { return words_.data(); }
    uint64_t *data() { return words_.data(); }

    bool test(int i) const
    {
        return ((words_[static_cast<size_t>(i >> 6)] >> (i & 63)) & 1) != 0;
    }
    void set(int i)
    {
        words_[static_cast<size_t>(i >> 6)] |= uint64_t(1) << (i & 63);
    }
    void reset_bit(int i)
    {
        words_[static_cast<size_t>(i >> 6)] &= ~(uint64_t(1) << (i & 63));
    }
    void flip(int i)
    {
        words_[static_cast<size_t>(i >> 6)] ^= uint64_t(1) << (i & 63);
    }

    /** True when no bit is set. */
    bool none() const
    {
        uint64_t acc = 0;
        for (const uint64_t w : words_) {
            acc |= w;
        }
        return acc == 0;
    }
    bool any() const { return !none(); }

    /** Number of set bits. */
    int popcount() const
    {
        int n = 0;
        for (const uint64_t w : words_) {
            n += __builtin_popcountll(w);
        }
        return n;
    }

    /** Call f(i) for every set bit i, in ascending order. */
    template <typename F>
    void for_each_set(F &&f) const
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t bits = words_[w];
            while (bits != 0) {
                f(static_cast<int>(w * 64) +
                  __builtin_ctzll(bits));
                bits &= bits - 1;
            }
        }
    }

    /** XOR in another bitset of the same size. */
    PackedBits &operator^=(const PackedBits &other)
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            words_[w] ^= other.words_[w];
        }
        return *this;
    }

    /** AND in another bitset of the same size. */
    PackedBits &operator&=(const PackedBits &other)
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            words_[w] &= other.words_[w];
        }
        return *this;
    }

    /** OR in another bitset of the same size. */
    PackedBits &operator|=(const PackedBits &other)
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            words_[w] |= other.words_[w];
        }
        return *this;
    }

    bool operator==(const PackedBits &other) const
    {
        return bits_ == other.bits_ && words_ == other.words_;
    }
    bool operator!=(const PackedBits &other) const
    {
        return !(*this == other);
    }

    /** Pack a byte-per-bit vector (nonzero low bit = set). */
    void from_bytes(const std::vector<uint8_t> &bytes)
    {
        reset(static_cast<int>(bytes.size()));
        for (size_t i = 0; i < bytes.size(); ++i) {
            if (bytes[i] & 1) {
                set(static_cast<int>(i));
            }
        }
    }

    /** Unpack into a byte-per-bit vector (resized to size()). */
    void to_bytes(std::vector<uint8_t> &out) const
    {
        out.assign(static_cast<size_t>(bits_), 0);
        for_each_set([&out](int i) { out[static_cast<size_t>(i)] = 1; });
    }

    /**
     * Verify the class invariant: the word count covers exactly
     * size() bits and every bit at position >= size() is zero (the
     * property all whole-word reductions rely on). Raw `data()`
     * writers are the only way to break it; audit() is how the deep
     * audit tier catches them. Throws CheckFailure.
     */
    void audit() const
    {
        BTWC_CHECK_MSG(bits_ >= 0 &&
                           num_words() == packed_words(bits_),
                       "PackedBits word count must cover size() bits");
        const int tail = bits_ & 63;
        if (tail != 0) {
            BTWC_CHECK_MSG((words_.back() >> tail) == 0,
                           "PackedBits bits at positions >= size() "
                           "must be zero");
        }
    }

  private:
    int bits_ = 0;
    std::vector<uint64_t> words_;
};

/**
 * One extraction round's fired-check bits, 64 checks per word — the
 * packed counterpart of the byte-per-check syndrome vectors. Built by
 * `ErrorFrame::measure_packed` and consumed word-parallel by the
 * screening tiers (CliqueDecoder, UnionFindDecoder, TierChain).
 */
using PackedSyndrome = PackedBits;

/** popcount(a & b) over `words` 64-bit words, without materializing. */
inline int
and_popcount(const uint64_t *a, const uint64_t *b, int words)
{
    int n = 0;
    for (int w = 0; w < words; ++w) {
        n += __builtin_popcountll(a[w] & b[w]);
    }
    return n;
}

} // namespace btwc
