/**
 * @file
 * Tests for the AFS syndrome-compression baseline: size formulas,
 * round-trip correctness of the sparse codec, and the qualitative
 * behaviour Fig. 13 relies on (great on all-zeros, poor on dense
 * syndromes).
 */

#include <gtest/gtest.h>

#include <vector>

#include "afs/compression.hpp"
#include "common/rng.hpp"

namespace btwc {
namespace {

TEST(CeilLog2, Values)
{
    EXPECT_EQ(ceil_log2(1), 0);
    EXPECT_EQ(ceil_log2(2), 1);
    EXPECT_EQ(ceil_log2(3), 2);
    EXPECT_EQ(ceil_log2(8), 3);
    EXPECT_EQ(ceil_log2(9), 4);
    EXPECT_EQ(ceil_log2(1024), 10);
}

TEST(Afs, AllZeroSyndromeIsOneBit)
{
    const AfsCompressor afs(48);
    EXPECT_EQ(afs.sparse_rep_bits(0), 1);
    EXPECT_EQ(afs.run_length_bits({}), 1);
    const std::vector<uint8_t> zeros(48, 0);
    EXPECT_EQ(afs.compress_sparse(zeros).size(), 1u);
}

TEST(Afs, SparseSizeGrowsLinearlyInOnes)
{
    const AfsCompressor afs(48);  // ceil(log2 48) = 6
    EXPECT_EQ(afs.index_bits(), 6);
    const int one = afs.sparse_rep_bits(1);
    const int two = afs.sparse_rep_bits(2);
    const int five = afs.sparse_rep_bits(5);
    EXPECT_EQ(two - one, 6);
    EXPECT_EQ(five - two, 18);
}

TEST(Afs, DynamicNeverWorseThanRawPlusSelector)
{
    const AfsCompressor afs(24);
    Rng rng(3);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<int> ones;
        for (int i = 0; i < 24; ++i) {
            if (rng.bernoulli(0.3)) {
                ones.push_back(i);
            }
        }
        const int dyn = afs.dynamic_bits(ones);
        EXPECT_LE(dyn, 24 + 2);
        EXPECT_GE(dyn, 3);
        EXPECT_LE(dyn,
                  2 + afs.sparse_rep_bits(static_cast<int>(ones.size())));
    }
}

TEST(Afs, DenseSyndromesCompressPoorly)
{
    // The paper's §7.2 argument: with many set bits the sparse
    // representation exceeds the raw bitmap.
    const AfsCompressor afs(80);
    const int k_dense = 20;
    EXPECT_GT(afs.sparse_rep_bits(k_dense), 80);
}

class AfsRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(AfsRoundTrip, SparseCodecIsLossless)
{
    const int n = GetParam();
    const AfsCompressor afs(n);
    Rng rng(101 + n);
    for (double density : {0.0, 0.02, 0.1, 0.5, 1.0}) {
        for (int iter = 0; iter < 40; ++iter) {
            std::vector<uint8_t> syndrome(n, 0);
            for (auto &bit : syndrome) {
                bit = rng.bernoulli(density) ? 1 : 0;
            }
            const auto stream = afs.compress_sparse(syndrome);
            const auto back = afs.decompress_sparse(stream);
            ASSERT_EQ(back, syndrome) << "n=" << n
                                      << " density=" << density;
            // Stream length must equal the size formula.
            int k = 0;
            for (const uint8_t bit : syndrome) {
                k += bit;
            }
            ASSERT_EQ(static_cast<int>(stream.size()),
                      afs.sparse_rep_bits(k));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, AfsRoundTrip,
                         ::testing::Values(4, 24, 48, 121, 440));

TEST(Afs, CompressedBitsDispatch)
{
    const AfsCompressor afs(16);
    const std::vector<int> ones = {3, 7};
    EXPECT_EQ(afs.compressed_bits(AfsCompressor::Scheme::Raw, ones), 16);
    EXPECT_EQ(afs.compressed_bits(AfsCompressor::Scheme::SparseRep, ones),
              afs.sparse_rep_bits(2));
    EXPECT_EQ(afs.compressed_bits(AfsCompressor::Scheme::RunLength, ones),
              afs.run_length_bits(ones));
    EXPECT_EQ(afs.compressed_bits(AfsCompressor::Scheme::Dynamic, ones),
              afs.dynamic_bits(ones));
}

} // namespace
} // namespace btwc
