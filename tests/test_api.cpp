/**
 * @file
 * Tests for the unified ScenarioSpec / run_scenario / Report API
 * (src/api): spec grammar round-trips and rejects, flag
 * consolidation, Report rendering (JSON / flat / CSV) with a golden
 * key-stability check, and — the load-bearing guarantee — bit-exact
 * equivalence of `run_scenario` with direct legacy-config harness
 * calls for hand-written specs and for *every* registry scenario.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "api/json_output.hpp"
#include "api/registry.hpp"
#include "api/report.hpp"
#include "api/run.hpp"
#include "api/scenario.hpp"
#include "fabric/harness.hpp"
#include "sim/fleet.hpp"
#include "sim/lifetime.hpp"
#include "sim/memory.hpp"

namespace btwc {
namespace {

// ------------------------------------------------------------ grammar

TEST(ScenarioSpec, ParsesTheIssueExample)
{
    const ScenarioSpec spec = ScenarioSpec::parse(
        "d=21,p=1e-3,tiers=clique,uf:3,mwpm,latency=2,bandwidth=1,"
        "fleet=50");
    EXPECT_EQ(spec.kind, ScenarioKind::Lifetime);
    EXPECT_EQ(spec.code.distance, 21);
    EXPECT_DOUBLE_EQ(spec.code.p, 1e-3);
    EXPECT_EQ(spec.tiers.describe(), "clique>union-find(3)>mwpm");
    EXPECT_EQ(spec.service.latency, 2u);
    EXPECT_EQ(spec.service.bandwidth, 1u);
    EXPECT_EQ(spec.service.fleet_size, 50);
}

TEST(ScenarioSpec, ToStringRoundTripsEveryField)
{
    const std::vector<std::string> specs = {
        "",
        "kind=lifetime",
        "d=21,p=1e-3,tiers=clique,uf:3,mwpm,latency=2,bandwidth=1,"
        "fleet=50",
        "kind=lifetime,d=9,p=5e-3,p_meas=0.01,filter=3,"
        "tiers=clique,uf:2,mwpm,mode=pipeline,policy=mwpm,latency=4,"
        "bandwidth=1,batch=8,cycles=20000,threads=4,seed=7",
        "kind=memory,d=7,p=8e-3,p_meas=0.016,rounds=9,error_type=z,"
        "arm=mwpm,weighted,trials=4000,failures=50",
        "kind=memory,arm=uf",
        "kind=fleet,qubits=2000,q=0.004,hot_fraction=0.1,hot_mult=8,"
        "bandwidth=12,cycles=100000",
        "kind=exact-fleet,d=5,p=6e-3,shared,fleet=12,latency=2,"
        "bandwidth=1,batch=4,cycles=3000",
        "kind=fabric,d=5,p=8e-3,policy=mwpm,latency=2,bandwidth=1,"
        "scheduler=deadline,links=2,placement=isolate,deadline=8,"
        "fleet=12,hot_fraction=0.25,hot_mult=3,cycles=4000",
        "pipeline,shared,weighted",
        "tiers=clique,exact",
        "tiers=uf:-1,mwpm",
    };
    for (const std::string &text : specs) {
        SCOPED_TRACE(text);
        const ScenarioSpec spec = ScenarioSpec::parse(text);
        const std::string canonical = spec.to_string();
        // Canonical form is a fixpoint and reconstructs the spec.
        const ScenarioSpec reparsed = ScenarioSpec::parse(canonical);
        EXPECT_EQ(reparsed, spec);
        EXPECT_EQ(reparsed.to_string(), canonical);
    }
}

TEST(ScenarioSpec, TierListRoundTripsIndependentOfUfDefault)
{
    // `uf` without an explicit threshold picks up the uf_threshold
    // key; the canonical form pins it so a re-parse cannot drift.
    const ScenarioSpec spec =
        ScenarioSpec::parse("uf_threshold=5,tiers=clique,uf,mwpm");
    EXPECT_EQ(spec.tiers.describe(), "clique>union-find(5)>mwpm");
    const ScenarioSpec reparsed = ScenarioSpec::parse(spec.to_string());
    EXPECT_EQ(reparsed.tiers.describe(), "clique>union-find(5)>mwpm");
}

TEST(ScenarioSpec, LutTierRoundTripsThroughTheGrammar)
{
    // `lut` participates in the tiers sub-grammar like any other
    // token, including as a bare continuation after `tiers=`.
    const ScenarioSpec spec =
        ScenarioSpec::parse("d=3,tiers=lut,mwpm,cycles=100");
    EXPECT_EQ(spec.tiers.describe(), "lut>mwpm");
    EXPECT_EQ(spec.engine.cycles, 100u);
    const ScenarioSpec reparsed = ScenarioSpec::parse(spec.to_string());
    EXPECT_EQ(reparsed, spec);
    EXPECT_EQ(reparsed.tiers.describe(), "lut>mwpm");
}

TEST(ScenarioSpec, RejectsMalformedSpecs)
{
    const std::vector<std::string> bad = {
        "kind=nope",
        "d=2",             // below the smallest surface code
        "d=abc",
        "p=1.5",           // not a probability
        "p=",
        "frobnicate=1",    // unknown key
        "frobnicate",      // unknown bare token
        "tiers=clique,frob",
        "tiers=clique,uf:x,mwpm",
        "mode=sideways",
        "policy=psychic",
        "arm=both",
        "error_type=y",
        "latency=-1",
        "cycles=10k",
        "cycles=99999999999999999999",  // strtoll ERANGE saturation
        "p=nan",           // NaN fails every range check
        "q=nan",
        "p_meas=nan",
        "hot_mult=nan",
        "fleet=0",
        "weighted=maybe",
        "mwpm",            // tier token outside a tiers= run
        "kind=fabric,links=0",
        "kind=fabric,scheduler=bogus",
        "kind=fabric,placement=everywhere",
        // Fabric topology keys are rejected off the fabric kind.
        "kind=exact-fleet,links=2",
        "scheduler=priority",
        "kind=stream,placement=isolate",
        "kind=memory,deadline=6",
    };
    for (const std::string &text : bad) {
        SCOPED_TRACE(text);
        ScenarioSpec out = ScenarioSpec::parse("d=9");  // sentinel
        std::string error;
        EXPECT_FALSE(ScenarioSpec::try_parse(text, &out, &error));
        EXPECT_FALSE(error.empty());
        // A failed parse leaves the output untouched.
        EXPECT_EQ(out.code.distance, 9);
        EXPECT_THROW(ScenarioSpec::parse(text), std::invalid_argument);
    }
}

TEST(ScenarioSpec, BareTokensAfterTiersEndWithAnyKeyValue)
{
    const ScenarioSpec spec =
        ScenarioSpec::parse("tiers=clique,uf:1,cycles=5");
    EXPECT_EQ(spec.tiers.describe(), "clique>union-find(1)");
    EXPECT_EQ(spec.engine.cycles, 5u);
    // A bare tier token after another key=value is no longer a tier
    // continuation.
    EXPECT_THROW(ScenarioSpec::parse("tiers=clique,cycles=5,mwpm"),
                 std::invalid_argument);
}

TEST(ScenarioSpec, FromFlagsMatchesGrammar)
{
    const char *argv[] = {
        "prog",           "--kind",          "lifetime",
        "--distance=11",  "--p=0.005",       "--p_meas=0.01",
        "--filter_rounds=3", "--tiers=clique,uf:2,mwpm",
        "--pipeline",     "--real_offchip",  "--offchip-latency=4",
        "--offchip-bandwidth=1", "--batch=8", "--cycles=12345",
        "--threads=4",    "--seed=9",
    };
    const Flags flags(static_cast<int>(std::size(argv)), argv);
    ScenarioSpec from_flags;
    std::string error;
    ASSERT_TRUE(ScenarioSpec::from_flags(flags, &from_flags, &error))
        << error;
    const ScenarioSpec from_grammar = ScenarioSpec::parse(
        "kind=lifetime,d=11,p=0.005,p_meas=0.01,filter=3,"
        "tiers=clique,uf:2,mwpm,mode=pipeline,policy=mwpm,latency=4,"
        "bandwidth=1,batch=8,cycles=12345,threads=4,seed=9");
    EXPECT_EQ(from_flags, from_grammar);
}

TEST(ScenarioSpec, ApplyFlagsOverridesOnlyPresentFlags)
{
    ScenarioSpec spec = ScenarioSpec::parse(
        "kind=memory,d=7,p=8e-3,trials=4000,failures=50");
    const char *argv[] = {"prog", "--trials=100", "--arm=mwpm"};
    const Flags flags(3, argv);
    std::string error;
    ASSERT_TRUE(spec.apply_flags(flags, &error)) << error;
    EXPECT_EQ(spec.engine.trials, 100u);
    EXPECT_EQ(spec.arm, DecoderArm::MwpmOnly);
    EXPECT_EQ(spec.code.distance, 7);       // untouched
    EXPECT_EQ(spec.engine.target_failures, 50u);
}

TEST(ScenarioSpec, GrammarKeysWorkAsFlagSpellings)
{
    // An override can be copied straight off a printed spec string:
    // every grammar key is its own flag spelling next to the
    // historical one (--latency == --offchip-latency, --fleet ==
    // --fleet-size, --d == --distance, --shared == --shared-link).
    const char *argv[] = {"prog",        "--d=11",     "--filter=3",
                          "--latency=8", "--fleet=20", "--shared=true"};
    const Flags flags(6, argv);
    ScenarioSpec spec;
    std::string error;
    ASSERT_TRUE(spec.apply_flags(flags, &error)) << error;
    EXPECT_EQ(spec.code.distance, 11);
    EXPECT_EQ(spec.code.filter_rounds, 3);
    EXPECT_EQ(spec.service.latency, 8u);
    EXPECT_EQ(spec.service.fleet_size, 20);
    EXPECT_TRUE(spec.service.shared_link);
    // The override surface is enumerable (btwc_run rejects unknown
    // flags against it) and covers both spellings.
    const auto &known = scenario_override_flags();
    for (const char *flag : {"latency", "offchip-latency", "fleet",
                             "fleet-size", "d", "distance", "tiers",
                             "shared", "pipeline", "cycles"}) {
        EXPECT_NE(std::find(known.begin(), known.end(), flag),
                  known.end())
            << flag;
    }
}

TEST(ScenarioSpec, UfThresholdAloneRethresholdsAnExistingChain)
{
    // `btwc_run deep-chain --uf_threshold 5`: the registry scenario's
    // chain is already resolved, so the override must re-threshold
    // its Union-Find tiers rather than be silently dropped.
    ScenarioSpec spec =
        ScenarioSpec::parse("tiers=clique,uf:2,mwpm");
    const char *argv[] = {"prog", "--uf_threshold=5"};
    const Flags flags(2, argv);
    std::string error;
    ASSERT_TRUE(spec.apply_flags(flags, &error)) << error;
    EXPECT_EQ(spec.tiers.describe(), "clique>union-find(5)>mwpm");
    // Same via the grammar on an existing spec; non-UF tiers keep
    // their thresholds.
    ScenarioSpec grammar =
        ScenarioSpec::parse("tiers=clique:1,uf:2,mwpm");
    const char *argv2[] = {"prog", "--uf_threshold=7"};
    const Flags flags2(2, argv2);
    ASSERT_TRUE(grammar.apply_flags(flags2, &error)) << error;
    EXPECT_EQ(grammar.tiers.describe(), "clique(1)>union-find(7)>mwpm");
}

TEST(JsonOutputConvention, BareJsonFlagIsADiagnosticNotAFileNamedTrue)
{
    // `--json` with no path parses as the value "true"; finish() must
    // refuse instead of writing a file literally named `true`.
    const char *argv[] = {"prog", "--json"};
    const Flags flags(2, argv);
    JsonOutput json(flags, "test");
    EXPECT_TRUE(json.enabled());
    EXPECT_EQ(json.finish(), 2);
    std::remove("true");  // defensive: must not exist, clean if so
}

TEST(ScenarioSpec, ApplyFlagsReportsBadValues)
{
    ScenarioSpec spec;
    const char *argv[] = {"prog", "--distance=banana"};
    const Flags flags(2, argv);
    std::string error;
    EXPECT_FALSE(spec.apply_flags(flags, &error));
    EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------------- report

TEST(Report, JsonKeyOrderIsInsertionOrder)
{
    Report report;
    report.set("zeta", 1);
    report.set("alpha", 2.5);
    Report &nested = report.child("nested");
    nested.set("b", true);
    nested.set("a", "text");
    const std::string json = report.to_json();
    const size_t zeta = json.find("\"zeta\"");
    const size_t alpha = json.find("\"alpha\"");
    const size_t b = json.find("\"b\"");
    const size_t a = json.find("\"a\": \"text\"");
    ASSERT_NE(zeta, std::string::npos);
    EXPECT_LT(zeta, alpha);
    EXPECT_LT(alpha, b);
    EXPECT_LT(b, a);
}

TEST(Report, CsvQuotesValuesContainingCommas)
{
    // scenario.spec always contains commas; without RFC-4180 quoting
    // every --csv row would shift columns under its consumers.
    Report report;
    report.set("spec", "kind=lifetime,d=5,p=0.003");
    report.set("ci", "[3.5e-04,1.1e-02]");
    report.set("n", 1);
    EXPECT_EQ(report.csv(),
              "spec,ci,n\n"
              "\"kind=lifetime,d=5,p=0.003\",\"[3.5e-04,1.1e-02]\",1\n");
    Table table({"a", "b"});
    table.add_row({"x,y", "with \"quote\""});
    EXPECT_EQ(table.to_csv(),
              "a,b\n\"x,y\",\"with \"\"quote\"\"\"\n");
}

TEST(Report, FlatAndCsvAndTableAgree)
{
    Report report;
    report.set("count", static_cast<uint64_t>(7));
    report.child("sub").set("x", 0.25);
    Table embedded({"h"});
    embedded.add_row({"v"});
    report.add_table("table", embedded);  // skipped by flat()
    const auto flat = report.flat();
    ASSERT_EQ(flat.size(), 2u);
    EXPECT_EQ(flat[0].first, "count");
    EXPECT_EQ(flat[0].second, "7");
    EXPECT_EQ(flat[1].first, "sub.x");
    EXPECT_EQ(flat[1].second, "0.25");
    EXPECT_EQ(report.csv(), "count,sub.x\n7,0.25\n");
    EXPECT_EQ(report.to_table().rows().size(), 2u);
}

TEST(Report, LookupByDottedPath)
{
    Report report;
    report.child("metrics").child("service").set(
        "landed", static_cast<uint64_t>(42));
    report.child("metrics").set("ler", 1e-3);
    uint64_t landed = 0;
    ASSERT_TRUE(report.lookup_uint("metrics.service.landed", &landed));
    EXPECT_EQ(landed, 42u);
    double ler = 0.0;
    ASSERT_TRUE(report.lookup_double("metrics.ler", &ler));
    EXPECT_DOUBLE_EQ(ler, 1e-3);
    EXPECT_FALSE(report.lookup_uint("metrics.missing", &landed));
    EXPECT_EQ(report.find("metrics.service"), report.find("metrics.service"));
    EXPECT_EQ(report.find("nope"), nullptr);
}

TEST(Report, JsonIsParseableWithEscapesAndNonFiniteDoubles)
{
    Report report;
    report.set("quote", "a\"b\\c\nd");
    report.set("inf", 1.0 / 0.0);
    report.set("neg", false);
    const std::string json = report.to_json();
    EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
    EXPECT_NE(json.find("\"inf\""), std::string::npos);  // as string
}

TEST(Report, FormatDoubleRoundTrips)
{
    for (const double v : {0.001, 1.0 / 3.0, 2e-13, 12345.6789, 0.0}) {
        EXPECT_EQ(std::strtod(format_double(v).c_str(), nullptr), v);
    }
    EXPECT_EQ(format_double(0.001), "0.001");
}

TEST(Report, WriteJsonToFileAndFailurePath)
{
    Report report;
    report.set("k", 1);
    std::string error;
    const std::string path = ::testing::TempDir() + "btwc_report.json";
    ASSERT_TRUE(write_report_json(report, path, &error)) << error;
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[64] = {0};
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_NE(std::string(buf, n).find("\"k\": 1"), std::string::npos);
    EXPECT_FALSE(
        write_report_json(report, "/nonexistent-dir/x.json", &error));
    EXPECT_FALSE(error.empty());
}

// ----------------------------------------------- golden key stability

/** Dotted scalar keys of a report, for schema pinning. */
std::vector<std::string>
flat_keys(const Report &report)
{
    std::vector<std::string> keys;
    for (const auto &pair : report.flat()) {
        keys.push_back(pair.first);
    }
    return keys;
}

TEST(ReportSchema, LifetimeKeysAreStable)
{
    const Report report = run_scenario(
        ScenarioSpec::parse("kind=lifetime,d=3,cycles=50"));
    const std::vector<std::string> expected = {
        "scenario.kind", "scenario.spec", "scenario.tiers",
        "config.distance", "config.p", "config.p_meas",
        "config.filter_rounds", "config.mode", "config.policy",
        "config.cycles", "config.offchip_latency",
        "config.offchip_bandwidth", "config.offchip_batch",
        "config.threads", "config.seed",
        "metrics.cycles", "metrics.all_zero_cycles",
        "metrics.trivial_cycles", "metrics.complex_cycles",
        "metrics.offchip_cycles", "metrics.clique_corrections",
        "metrics.all_zero_halves", "metrics.trivial_halves",
        "metrics.complex_halves", "metrics.offchip_halves",
        "metrics.tier_halves.clique", "metrics.tier_halves.union_find",
        "metrics.tier_halves.mwpm", "metrics.tier_halves.exact",
        "metrics.tier_halves.lut",
        "metrics.coverage_per_decode", "metrics.coverage_per_cycle",
        "metrics.onchip_nonzero_fraction", "metrics.offchip_fraction",
        "metrics.midtier_absorption", "metrics.clique_data_reduction",
        "metrics.mean_raw_weight", "metrics.service.landed",
        "metrics.service.suppressed", "metrics.service.pending",
        "metrics.service.mean_queue_delay",
        "metrics.service.p99_queue_delay",
        "metrics.service.mean_link_batch",
        "walltime.walltime_ms", "walltime.cycles_per_sec",
    };
    EXPECT_EQ(flat_keys(report), expected);
}

TEST(ReportSchema, MemoryKeysAreStable)
{
    const Report report = run_scenario(
        ScenarioSpec::parse("kind=memory,d=3,trials=20,failures=5"));
    const std::vector<std::string> expected = {
        "scenario.kind", "scenario.spec", "scenario.tiers",
        "config.distance", "config.p", "config.p_meas", "config.rounds",
        "config.filter_rounds", "config.arm", "config.weighted",
        "config.error_type", "config.max_trials",
        "config.target_failures", "config.threads", "config.seed",
        "metrics.trials", "metrics.failures", "metrics.ler",
        "metrics.ler_ci_lo", "metrics.ler_ci_hi",
        "metrics.offchip_rounds", "metrics.total_rounds",
        "metrics.offchip_round_fraction", "metrics.unclear_syndromes",
        "walltime.walltime_ms", "walltime.decodes_per_sec",
    };
    EXPECT_EQ(flat_keys(report), expected);
}

TEST(ReportSchema, FleetAndExactFleetCarryRequiredKeys)
{
    // Provisioned fleet: link observables (the demand stream feeds
    // the link run; histogram keys belong to bandwidth=0 scenarios).
    const Report fleet = run_scenario(ScenarioSpec::parse(
        "kind=fleet,qubits=50,q=0.01,bandwidth=2,cycles=500"));
    for (const char *key :
         {"metrics.link.bandwidth", "metrics.link.stall_cycles",
          "metrics.link.exec_time_increase"}) {
        EXPECT_NE(fleet.find(key), nullptr) << key;
    }
    EXPECT_EQ(fleet.find("metrics.demand.mean"), nullptr);
    const Report demand_only = run_scenario(ScenarioSpec::parse(
        "kind=fleet,qubits=50,q=0.01,cycles=500"));
    for (const char *key :
         {"metrics.demand.mean", "metrics.demand.p99"}) {
        EXPECT_NE(demand_only.find(key), nullptr) << key;
    }
    EXPECT_EQ(demand_only.find("metrics.link.bandwidth"), nullptr);
    const Report exact = run_scenario(ScenarioSpec::parse(
        "kind=exact-fleet,d=3,fleet=2,shared,cycles=100"));
    for (const char *key :
         {"metrics.demand.mean", "metrics.enqueued", "metrics.landed",
          "metrics.suppressed", "metrics.exec_time_increase",
          "metrics.queue_delay.mean", "metrics.batch_mean"}) {
        EXPECT_NE(exact.find(key), nullptr) << key;
    }
}

TEST(ReportSchema, FabricKeysAreStable)
{
    const Report report = run_scenario(ScenarioSpec::parse(
        "kind=fabric,d=3,fleet=2,latency=2,bandwidth=1,cycles=64"));
    std::vector<std::string> expected = {
        "scenario.kind", "scenario.spec", "scenario.tiers",
        "config.distance", "config.p", "config.fleet_size",
        "config.policy", "config.links", "config.scheduler",
        "config.placement", "config.deadline", "config.hot_fraction",
        "config.hot_mult", "config.probe_interval", "config.cycles",
        "config.offchip_latency", "config.offchip_bandwidth",
        "config.offchip_batch", "config.threads", "config.seed",
        "metrics.demand.total", "metrics.demand.mean",
        "metrics.demand.p50", "metrics.demand.p90",
        "metrics.demand.p99", "metrics.demand.p999",
        "metrics.demand.max",
        "metrics.enqueued", "metrics.served", "metrics.landed",
        "metrics.suppressed", "metrics.pending",
        "metrics.stall_cycles", "metrics.work_cycles",
        "metrics.max_backlog", "metrics.exec_time_increase",
        "metrics.backlog_mean",
        "metrics.queue_delay.mean", "metrics.queue_delay.p99",
        "metrics.queue_delay.max", "metrics.batch_mean",
        "metrics.fabric.deadline_misses", "metrics.fabric.probes",
        "metrics.fabric.probe_failures", "metrics.fabric.ler",
        "metrics.fabric.links.link0.enqueued",
        "metrics.fabric.links.link0.served",
        "metrics.fabric.links.link0.landed",
        "metrics.fabric.links.link0.stall_cycles",
        "metrics.fabric.links.link0.max_backlog",
        "metrics.fabric.links.link0.deadline_misses",
        "metrics.fabric.links.link0.mean_delay",
        "metrics.fabric.links.link0.p99_delay",
    };
    for (const char *tenant : {"t0", "t1"}) {
        for (const char *leaf :
             {"link", "enqueued", "landed", "suppressed",
              "deadline_misses", "mean_delay", "p99_delay", "probes",
              "failures", "ler"}) {
            expected.push_back(std::string("metrics.fabric.tenants.") +
                               tenant + "." + leaf);
        }
    }
    expected.push_back("walltime.walltime_ms");
    expected.push_back("walltime.cycles_per_sec");
    EXPECT_EQ(flat_keys(report), expected);
}

// ------------------------------------- bit-exactness with legacy path

uint64_t
get_uint(const Report &report, const std::string &path)
{
    uint64_t value = 0;
    EXPECT_TRUE(report.lookup_uint(path, &value)) << path;
    return value;
}

double
get_double(const Report &report, const std::string &path)
{
    double value = 0.0;
    EXPECT_TRUE(report.lookup_double(path, &value)) << path;
    return value;
}

void
expect_matches_lifetime(const Report &report, const LifetimeConfig &config)
{
    const LifetimeStats stats = run_lifetime(config);
    EXPECT_EQ(get_uint(report, "metrics.cycles"), stats.cycles);
    EXPECT_EQ(get_uint(report, "metrics.all_zero_halves"),
              stats.all_zero_halves);
    EXPECT_EQ(get_uint(report, "metrics.trivial_halves"),
              stats.trivial_halves);
    EXPECT_EQ(get_uint(report, "metrics.complex_halves"),
              stats.complex_halves);
    EXPECT_EQ(get_uint(report, "metrics.offchip_halves"),
              stats.offchip_halves);
    EXPECT_EQ(get_uint(report, "metrics.clique_corrections"),
              stats.clique_corrections);
    EXPECT_EQ(get_uint(report, "metrics.service.landed"),
              stats.offchip_queue_delay.total());
    EXPECT_EQ(get_uint(report, "metrics.service.suppressed"),
              stats.suppressed_escalations);
    EXPECT_EQ(get_double(report, "metrics.mean_raw_weight"),
              stats.raw_weight.mean());
}

void
expect_matches_memory(const Report &report, const MemoryConfig &config,
                      DecoderArm arm)
{
    const MemoryResult result = run_memory_experiment(config, arm);
    EXPECT_EQ(get_uint(report, "metrics.trials"), result.trials);
    EXPECT_EQ(get_uint(report, "metrics.failures"), result.failures);
    EXPECT_EQ(get_uint(report, "metrics.offchip_rounds"),
              result.offchip_rounds);
    EXPECT_EQ(get_uint(report, "metrics.total_rounds"),
              result.total_rounds);
    EXPECT_EQ(get_double(report, "metrics.ler"), result.ler());
}

void
expect_matches_fleet(const Report &report, const FleetConfig &config,
                     uint64_t bandwidth)
{
    if (bandwidth > 0) {
        const FleetRunResult run =
            run_fleet_with_bandwidth(config, bandwidth);
        EXPECT_EQ(get_uint(report, "metrics.link.stall_cycles"),
                  run.stall_cycles);
        EXPECT_EQ(get_uint(report, "metrics.link.work_cycles"),
                  run.work_cycles);
        EXPECT_EQ(get_uint(report, "metrics.link.max_backlog"),
                  run.max_backlog);
        EXPECT_EQ(get_double(report, "metrics.link.mean_queue_delay"),
                  run.mean_queue_delay);
    } else {
        const CountHistogram demand = fleet_demand_histogram(config);
        EXPECT_EQ(get_uint(report, "metrics.demand.total"),
                  demand.total());
        EXPECT_EQ(get_double(report, "metrics.demand.mean"),
                  demand.mean());
        EXPECT_EQ(get_uint(report, "metrics.demand.p99"),
                  demand.percentile(0.99));
    }
}

void
expect_matches_exact_fleet(const Report &report,
                           const ExactFleetConfig &config)
{
    const ExactFleetStats stats = fleet_demand_exact_stats(config);
    EXPECT_EQ(get_uint(report, "metrics.demand.total"),
              stats.demand.total());
    EXPECT_EQ(get_double(report, "metrics.demand.mean"),
              stats.demand.mean());
    EXPECT_EQ(get_uint(report, "metrics.enqueued"), stats.enqueued);
    EXPECT_EQ(get_uint(report, "metrics.served"), stats.served);
    EXPECT_EQ(get_uint(report, "metrics.landed"), stats.landed);
    EXPECT_EQ(get_uint(report, "metrics.suppressed"), stats.suppressed);
    EXPECT_EQ(get_uint(report, "metrics.stall_cycles"),
              stats.stall_cycles);
    EXPECT_EQ(get_double(report, "metrics.queue_delay.mean"),
              stats.queue_delay.mean());
}

void
expect_matches_stream(const Report &report, const StreamConfig &config)
{
    const StreamStats stats = run_stream(config);
    EXPECT_EQ(get_uint(report, "metrics.rounds"), stats.window.rounds);
    EXPECT_EQ(get_uint(report, "metrics.windows"), stats.window.windows);
    EXPECT_EQ(get_uint(report, "metrics.screened_windows"),
              stats.window.screened_windows);
    EXPECT_EQ(get_uint(report, "metrics.matched_windows"),
              stats.window.matched_windows);
    EXPECT_EQ(get_uint(report, "metrics.defects_in"),
              stats.window.defects_in);
    EXPECT_EQ(get_uint(report, "metrics.defects_committed"),
              stats.window.defects_committed);
    EXPECT_EQ(get_uint(report, "metrics.defects_carried"),
              stats.window.defects_carried);
    EXPECT_EQ(get_uint(report, "metrics.unclear_syndromes"),
              stats.unclear_syndromes);
    EXPECT_EQ(get_uint(report, "metrics.logical_failures"),
              stats.logical_failures);
    EXPECT_EQ(get_double(report, "metrics.commit_lag.mean"),
              stats.window.commit_lag.mean());
}

void
expect_matches_fabric(const Report &report,
                      const FabricFleetConfig &config)
{
    const FabricStats stats = run_fabric(config);
    EXPECT_EQ(get_uint(report, "metrics.enqueued"), stats.enqueued);
    EXPECT_EQ(get_uint(report, "metrics.served"), stats.served);
    EXPECT_EQ(get_uint(report, "metrics.landed"), stats.landed);
    EXPECT_EQ(get_uint(report, "metrics.suppressed"), stats.suppressed);
    EXPECT_EQ(get_uint(report, "metrics.stall_cycles"),
              stats.stall_cycles);
    EXPECT_EQ(get_uint(report, "metrics.fabric.deadline_misses"),
              stats.deadline_misses);
    EXPECT_EQ(get_uint(report, "metrics.fabric.probes"), stats.probes);
    EXPECT_EQ(get_uint(report, "metrics.fabric.probe_failures"),
              stats.probe_failures);
    EXPECT_EQ(get_double(report, "metrics.queue_delay.mean"),
              stats.queue_delay.mean());
}

TEST(RunScenario, LifetimeSignatureBitExactWithLegacyConfig)
{
    const ScenarioSpec spec = ScenarioSpec::parse(
        "kind=lifetime,d=7,p=8e-3,cycles=3000,seed=3");
    expect_matches_lifetime(run_scenario(spec),
                            spec.to_lifetime_config());
}

TEST(RunScenario, LifetimePipelineWithServiceBitExact)
{
    const ScenarioSpec spec = ScenarioSpec::parse(
        "kind=lifetime,d=5,p=8e-3,mode=pipeline,policy=mwpm,latency=3,"
        "bandwidth=1,batch=4,cycles=2000,seed=5");
    expect_matches_lifetime(run_scenario(spec),
                            spec.to_lifetime_config());
}

TEST(RunScenario, MemoryBitExactForEveryArm)
{
    for (const char *arm_spec : {"arm=mwpm", "arm=clique", "arm=uf"}) {
        SCOPED_TRACE(arm_spec);
        const ScenarioSpec spec = ScenarioSpec::parse(
            std::string("kind=memory,d=5,p=8e-3,trials=400,failures=20,") +
            arm_spec);
        expect_matches_memory(run_scenario(spec),
                              spec.to_memory_config(), spec.arm);
    }
}

TEST(RunScenario, FleetDemandAndLinkBitExact)
{
    const ScenarioSpec spec = ScenarioSpec::parse(
        "kind=fleet,qubits=200,q=0.01,hot_fraction=0.1,hot_mult=4,"
        "bandwidth=3,cycles=4000,seed=2");
    expect_matches_fleet(run_scenario(spec), spec.to_fleet_config(),
                         spec.service.bandwidth);
}

TEST(RunScenario, ExactFleetSharedAndPrivateBitExact)
{
    for (const char *link : {"shared,latency=2,bandwidth=1", ""}) {
        SCOPED_TRACE(link);
        const ScenarioSpec spec = ScenarioSpec::parse(
            std::string("kind=exact-fleet,d=3,fleet=3,cycles=300,") +
            link);
        expect_matches_exact_fleet(run_scenario(spec),
                                   spec.to_exact_fleet_config());
    }
}

TEST(RunScenario, FabricFifoUniformBitExactWithLegacySharedLink)
{
    // The pinned corner of the fabric subsystem: FIFO scheduling, one
    // link, a uniform noise profile is byte-for-byte the legacy
    // shared-link exact fleet across every counter both schemas carry.
    const Report report = run_scenario(ScenarioSpec::parse(
        "kind=fabric,d=3,p=6e-3,policy=mwpm,fleet=3,latency=2,"
        "bandwidth=1,cycles=400,seed=4"));
    const ScenarioSpec legacy = ScenarioSpec::parse(
        "kind=exact-fleet,d=3,p=6e-3,policy=mwpm,shared,fleet=3,"
        "latency=2,bandwidth=1,cycles=400,seed=4");
    const ExactFleetStats stats =
        fleet_demand_exact_stats(legacy.to_exact_fleet_config());
    EXPECT_EQ(get_uint(report, "metrics.enqueued"), stats.enqueued);
    EXPECT_EQ(get_uint(report, "metrics.served"), stats.served);
    EXPECT_EQ(get_uint(report, "metrics.landed"), stats.landed);
    EXPECT_EQ(get_uint(report, "metrics.suppressed"), stats.suppressed);
    EXPECT_EQ(get_uint(report, "metrics.pending"), stats.pending);
    EXPECT_EQ(get_uint(report, "metrics.stall_cycles"),
              stats.stall_cycles);
    EXPECT_EQ(get_uint(report, "metrics.work_cycles"),
              stats.work_cycles);
    EXPECT_EQ(get_uint(report, "metrics.max_backlog"),
              stats.max_backlog);
    EXPECT_EQ(get_uint(report, "metrics.demand.total"),
              stats.demand.total());
    EXPECT_EQ(get_double(report, "metrics.demand.mean"),
              stats.demand.mean());
    EXPECT_EQ(get_double(report, "metrics.queue_delay.mean"),
              stats.queue_delay.mean());
    EXPECT_EQ(get_double(report, "metrics.queue_delay.p99"),
              stats.queue_delay.percentile(0.99));
    EXPECT_EQ(get_uint(report, "metrics.queue_delay.max"),
              stats.queue_delay.max_value());
    EXPECT_EQ(get_double(report, "metrics.batch_mean"),
              stats.batch_sizes.mean());
}

// ------------------------------------------------------------ registry

TEST(Registry, EveryEntryParsesAndNamesResolve)
{
    for (const NamedScenario &entry : scenario_registry()) {
        SCOPED_TRACE(entry.name);
        ScenarioSpec spec;
        std::string error;
        EXPECT_TRUE(find_scenario(entry.name, &spec, &error)) << error;
        // The stored spec is canonical-compatible: it round-trips.
        EXPECT_EQ(ScenarioSpec::parse(spec.to_string()), spec);
    }
    ScenarioSpec spec;
    std::string error;
    EXPECT_FALSE(find_scenario("no-such-scenario", &spec, &error));
    EXPECT_NE(error.find("no-such-scenario"), std::string::npos);
}

TEST(Registry, EveryScenarioRunsBitExactWithLegacyPath)
{
    // The acceptance gate of the API redesign: each registry scenario,
    // budget-clamped for test speed and pinned at threads=1, produces
    // a run_scenario Report whose counters are bit-identical to a
    // direct call of its legacy harness with the adapted config.
    for (const NamedScenario &entry : scenario_registry()) {
        SCOPED_TRACE(entry.name);
        ScenarioSpec spec;
        std::string error;
        ASSERT_TRUE(find_scenario(entry.name, &spec, &error)) << error;
        spec.engine.threads = 1;
        if (spec.engine.cycles == 0 || spec.engine.cycles > 400) {
            spec.engine.cycles = 400;
        }
        if (spec.engine.trials == 0 || spec.engine.trials > 200) {
            spec.engine.trials = 200;
        }
        if (spec.code.distance > 21) {
            spec.code.distance = 21;  // keep the d=81 point affordable
        }
        const Report report = run_scenario(spec);
        switch (spec.kind) {
          case ScenarioKind::Lifetime:
            expect_matches_lifetime(report, spec.to_lifetime_config());
            break;
          case ScenarioKind::Memory:
            expect_matches_memory(report, spec.to_memory_config(),
                                  spec.arm);
            break;
          case ScenarioKind::Fleet:
            expect_matches_fleet(report, spec.to_fleet_config(),
                                 spec.service.bandwidth);
            break;
          case ScenarioKind::ExactFleet:
            expect_matches_exact_fleet(report,
                                       spec.to_exact_fleet_config());
            break;
          case ScenarioKind::Stream:
            expect_matches_stream(report, spec.to_stream_config());
            break;
          case ScenarioKind::Fabric:
            expect_matches_fabric(report, spec.to_fabric_config());
            break;
        }
    }
}

// ----------------------------------------------------------- adapters

TEST(Adapters, DefaultsFallBackToHarnessDefaults)
{
    // cycles/trials = 0 in the spec means "the harness default", so
    // the adapters must leave the struct defaults untouched.
    const ScenarioSpec spec;
    EXPECT_EQ(spec.to_lifetime_config().cycles, LifetimeConfig().cycles);
    EXPECT_EQ(spec.to_memory_config().max_trials,
              MemoryConfig().max_trials);
    EXPECT_EQ(spec.to_memory_config().target_failures,
              MemoryConfig().target_failures);
    EXPECT_EQ(spec.to_fleet_config().cycles, FleetConfig().cycles);
    EXPECT_EQ(spec.to_exact_fleet_config().cycles,
              ExactFleetConfig().cycles);
}

TEST(Adapters, HotspotProfileFeedsQubitProbs)
{
    const ScenarioSpec spec = ScenarioSpec::parse(
        "kind=fleet,qubits=100,q=0.01,hot_fraction=0.1,hot_mult=5");
    const FleetConfig config = spec.to_fleet_config();
    ASSERT_EQ(config.qubit_probs.size(), 100u);
    EXPECT_DOUBLE_EQ(config.qubit_probs[0], 0.05);   // hot head
    EXPECT_DOUBLE_EQ(config.qubit_probs[99], 0.01);  // cold tail
}

} // namespace
} // namespace btwc
