/**
 * @file
 * Property tests for the blossom matcher: structural validity plus
 * optimality against the brute-force subset-DP oracle on hundreds of
 * random instances, including the boundary-twin construction used by
 * the MWPM decoder.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "matching/blossom.hpp"
#include "matching/exact.hpp"

namespace btwc {
namespace {

/** Random dense symmetric weight matrix with entries in [1, max_w]. */
std::vector<std::vector<int64_t>>
random_weights(int n, int64_t max_w, Rng &rng)
{
    std::vector<std::vector<int64_t>> w(n, std::vector<int64_t>(n, -1));
    for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
            const int64_t value =
                1 + static_cast<int64_t>(rng.next_below(max_w));
            w[u][v] = value;
            w[v][u] = value;
        }
    }
    return w;
}

int64_t
matching_weight(const std::vector<int> &mate,
                const std::vector<std::vector<int64_t>> &w)
{
    int64_t total = 0;
    for (size_t u = 0; u < mate.size(); ++u) {
        const int v = mate[u];
        if (v >= 0 && static_cast<size_t>(v) > u) {
            total += w[u][v];
        }
    }
    return total;
}

void
expect_valid_perfect(const std::vector<int> &mate)
{
    for (size_t u = 0; u < mate.size(); ++u) {
        ASSERT_GE(mate[u], 0) << "vertex " << u << " unmatched";
        ASSERT_NE(static_cast<size_t>(mate[u]), u);
        EXPECT_EQ(mate[mate[u]], static_cast<int>(u));
    }
}

TEST(Blossom, TwoVertices)
{
    std::vector<std::vector<int64_t>> w = {{-1, 7}, {7, -1}};
    const auto mate = min_weight_perfect_matching(2, w);
    expect_valid_perfect(mate);
    EXPECT_EQ(mate[0], 1);
}

TEST(Blossom, PrefersCheapPairing)
{
    // 0-1 and 2-3 cost 2; the crossing pairings cost 200.
    std::vector<std::vector<int64_t>> w(4, std::vector<int64_t>(4, 100));
    w[0][1] = w[1][0] = 1;
    w[2][3] = w[3][2] = 1;
    for (int i = 0; i < 4; ++i) {
        w[i][i] = -1;
    }
    const auto mate = min_weight_perfect_matching(4, w);
    expect_valid_perfect(mate);
    EXPECT_EQ(mate[0], 1);
    EXPECT_EQ(mate[2], 3);
    EXPECT_EQ(matching_weight(mate, w), 2);
}

TEST(Blossom, ZeroWeightEdgesUsable)
{
    std::vector<std::vector<int64_t>> w(4, std::vector<int64_t>(4, 50));
    w[0][1] = w[1][0] = 0;
    w[2][3] = w[3][2] = 0;
    for (int i = 0; i < 4; ++i) {
        w[i][i] = -1;
    }
    const auto mate = min_weight_perfect_matching(4, w);
    expect_valid_perfect(mate);
    EXPECT_EQ(matching_weight(mate, w), 0);
}

TEST(Blossom, InfeasibleReturnsEmpty)
{
    // A vertex with no edges cannot be matched.
    std::vector<std::vector<int64_t>> w(4, std::vector<int64_t>(4, -1));
    w[0][1] = w[1][0] = 1;
    const auto mate = min_weight_perfect_matching(4, w);
    EXPECT_TRUE(mate.empty());
}

class BlossomRandom
    : public ::testing::TestWithParam<std::pair<int, int64_t>>
{
};

TEST_P(BlossomRandom, MatchesExactOracleOnDenseGraphs)
{
    const auto [n, max_w] = GetParam();
    Rng rng(1000 + n + max_w);
    for (int iter = 0; iter < 60; ++iter) {
        const auto w = random_weights(n, max_w, rng);
        const auto mate = min_weight_perfect_matching(n, w);
        expect_valid_perfect(mate);
        const int64_t got = matching_weight(mate, w);
        const int64_t want = exact_min_weight_perfect(n, w);
        ASSERT_EQ(got, want) << "n=" << n << " iter=" << iter;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlossomRandom,
    ::testing::Values(std::make_pair(4, 10), std::make_pair(6, 5),
                      std::make_pair(8, 8), std::make_pair(10, 4),
                      std::make_pair(10, 50), std::make_pair(12, 6),
                      std::make_pair(14, 3), std::make_pair(14, 100)));

class BlossomSparse : public ::testing::TestWithParam<int>
{
};

TEST_P(BlossomSparse, MatchesOracleWithMissingEdges)
{
    const int n = GetParam();
    Rng rng(77 + n);
    int solved = 0;
    for (int iter = 0; iter < 80; ++iter) {
        auto w = random_weights(n, 9, rng);
        // Drop ~40% of edges; keep a Hamilton cycle so perfect
        // matchings always exist.
        for (int u = 0; u < n; ++u) {
            for (int v = u + 1; v < n; ++v) {
                const bool on_cycle =
                    (v == u + 1) || (u == 0 && v == n - 1);
                if (!on_cycle && rng.bernoulli(0.4)) {
                    w[u][v] = -1;
                    w[v][u] = -1;
                }
            }
        }
        const auto mate = min_weight_perfect_matching(n, w);
        ASSERT_FALSE(mate.empty());
        expect_valid_perfect(mate);
        for (size_t u = 0; u < mate.size(); ++u) {
            ASSERT_GE(w[u][mate[u]], 0) << "matched a missing edge";
        }
        ASSERT_EQ(matching_weight(mate, w), exact_min_weight_perfect(n, w));
        ++solved;
    }
    EXPECT_EQ(solved, 80);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlossomSparse,
                         ::testing::Values(4, 6, 8, 10, 12));

TEST(Blossom, BoundaryTwinConstructionMatchesOracle)
{
    // The exact structure the MWPM decoder builds: k defects with
    // pairwise distances, k boundary twins, twin-twin edges free.
    Rng rng(4242);
    for (int iter = 0; iter < 120; ++iter) {
        const int k = 2 + static_cast<int>(rng.next_below(7));
        std::vector<std::vector<int64_t>> dist(
            k, std::vector<int64_t>(k, -1));
        std::vector<int64_t> boundary(k);
        for (int i = 0; i < k; ++i) {
            boundary[i] = 1 + static_cast<int64_t>(rng.next_below(12));
            for (int j = i + 1; j < k; ++j) {
                const int64_t v =
                    1 + static_cast<int64_t>(rng.next_below(12));
                dist[i][j] = v;
                dist[j][i] = v;
            }
        }
        const int n = 2 * k;
        std::vector<std::vector<int64_t>> w(n,
                                            std::vector<int64_t>(n, -1));
        for (int i = 0; i < k; ++i) {
            for (int j = i + 1; j < k; ++j) {
                w[i][j] = w[j][i] = dist[i][j];
                w[k + i][k + j] = w[k + j][k + i] = 0;
            }
            w[i][k + i] = w[k + i][i] = boundary[i];
        }
        const auto mate = min_weight_perfect_matching(n, w);
        expect_valid_perfect(mate);
        const int64_t got = matching_weight(mate, w);
        const int64_t want =
            exact_min_weight_with_boundary(k, dist, boundary);
        ASSERT_EQ(got, want) << "k=" << k << " iter=" << iter;
    }
}

TEST(ExactOracle, TinyCasesByHand)
{
    // Two nodes, must pair or both to boundary.
    std::vector<std::vector<int64_t>> w = {{-1, 5}, {5, -1}};
    EXPECT_EQ(exact_min_weight_perfect(2, w), 5);
    EXPECT_EQ(exact_min_weight_with_boundary(2, w, {1, 1}), 2);
    EXPECT_EQ(exact_min_weight_with_boundary(2, w, {10, 10}), 5);
    EXPECT_EQ(exact_min_weight_with_boundary(0, {}, {}), 0);
}

TEST(ExactOracle, OddBoundaryCase)
{
    // Three nodes: best is pair the close two, boundary the third.
    std::vector<std::vector<int64_t>> w = {
        {-1, 2, 9}, {2, -1, 9}, {9, 9, -1}};
    EXPECT_EQ(exact_min_weight_with_boundary(3, w, {4, 4, 4}), 6);
}

} // namespace
} // namespace btwc
