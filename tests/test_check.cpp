/**
 * @file
 * Tests for the contract/audit subsystem (src/common/check.hpp): audit
 * level semantics and the ScopedAuditLevel RAII, CheckFailure payload,
 * macro evaluation gating, the structural audit() methods (PackedBits,
 * MaxWeightMatching slots, OffchipQueue, SharedOffchipService,
 * CheckGraphDistances) including deliberate-corruption negative tests,
 * the SingleThreadOwner pooled-scratch guard, and the scenario-level
 * audit= knob (grammar round-trip; metrics invariant under auditing).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/report.hpp"
#include "api/run.hpp"
#include "api/scenario.hpp"
#include "common/check.hpp"
#include "core/offchip_queue.hpp"
#include "core/offchip_service.hpp"
#include "decoders/tier_chain.hpp"
#include "matching/blossom.hpp"
#include "surface/distance.hpp"
#include "surface/lattice.hpp"
#include "surface/packed.hpp"

namespace btwc {

/** Test-only hook into SharedOffchipService's payload FIFO, used to
 * prove the audit actually detects a broken FIFO order (the friend
 * declaration is the only way in: the FIFO has no mutable walk). */
struct OffchipServiceTestPeer
{
    static void swap_oldest_waiting(SharedOffchipService &service)
    {
        SharedOffchipService::Request a = service.waiting_.pop_front();
        SharedOffchipService::Request b = service.waiting_.pop_front();
        service.waiting_.push_back(std::move(b));
        service.waiting_.push_back(std::move(a));
    }
};

namespace {

// --------------------------------------------------------- audit level

TEST(AuditLevel, ParseAcceptsNamesAndDigits)
{
    AuditLevel level = AuditLevel::Deep;
    EXPECT_TRUE(parse_audit_level("off", &level));
    EXPECT_EQ(level, AuditLevel::Off);
    EXPECT_TRUE(parse_audit_level("basic", &level));
    EXPECT_EQ(level, AuditLevel::Basic);
    EXPECT_TRUE(parse_audit_level("deep", &level));
    EXPECT_EQ(level, AuditLevel::Deep);
    EXPECT_TRUE(parse_audit_level("0", &level));
    EXPECT_EQ(level, AuditLevel::Off);
    EXPECT_TRUE(parse_audit_level("2", &level));
    EXPECT_EQ(level, AuditLevel::Deep);

    level = AuditLevel::Basic;
    EXPECT_FALSE(parse_audit_level("bogus", &level));
    EXPECT_EQ(level, AuditLevel::Basic);  // untouched on reject
}

TEST(AuditLevel, NamesRoundTrip)
{
    for (const AuditLevel level :
         {AuditLevel::Off, AuditLevel::Basic, AuditLevel::Deep}) {
        AuditLevel parsed = AuditLevel::Off;
        EXPECT_TRUE(parse_audit_level(audit_level_name(level), &parsed));
        EXPECT_EQ(parsed, level);
    }
}

TEST(AuditLevel, ScopedOverrideRestoresOnExit)
{
    const AuditLevel before = audit_level();
    {
        ScopedAuditLevel outer(AuditLevel::Deep);
        EXPECT_EQ(audit_level(), AuditLevel::Deep);
        EXPECT_TRUE(audit_basic());
        EXPECT_TRUE(audit_deep());
        {
            ScopedAuditLevel inner(AuditLevel::Off);
            EXPECT_FALSE(audit_basic());
            EXPECT_FALSE(audit_deep());
        }
        EXPECT_EQ(audit_level(), AuditLevel::Deep);
    }
    EXPECT_EQ(audit_level(), before);
}

// --------------------------------------------------------- CheckFailure

TEST(CheckFailure, CarriesFileLineExpressionAndMessage)
{
    try {
        BTWC_CHECK_MSG(1 + 1 == 3, "arithmetic still works");
        FAIL() << "BTWC_CHECK_MSG must throw on a false condition";
    } catch (const CheckFailure &failure) {
        EXPECT_STREQ(failure.expression(), "1 + 1 == 3");
        EXPECT_NE(std::string(failure.file()).find("test_check.cpp"),
                  std::string::npos);
        EXPECT_GT(failure.line(), 0);
        const std::string what = failure.what();
        EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos);
        EXPECT_NE(what.find("arithmetic still works"), std::string::npos);
        EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
    }
}

TEST(CheckFailure, CheckPassesOnTrueCondition)
{
    EXPECT_NO_THROW(BTWC_CHECK(2 + 2 == 4));
    EXPECT_NO_THROW(BTWC_CHECK_MSG(true, "unused"));
}

// ------------------------------------------------------------- macros

TEST(AuditMacro, NotEvaluatedWhenOff)
{
    ScopedAuditLevel off(AuditLevel::Off);
    int evaluated = 0;
    BTWC_AUDIT((++evaluated, false));  // false, but gated off
    EXPECT_EQ(evaluated, 0);
}

TEST(AuditMacro, EvaluatedAndEnforcedAtBasic)
{
    ScopedAuditLevel basic(AuditLevel::Basic);
    int evaluated = 0;
    BTWC_AUDIT((++evaluated, true));
    EXPECT_EQ(evaluated, 1);
    EXPECT_THROW(BTWC_AUDIT(false), CheckFailure);
    EXPECT_THROW(BTWC_AUDIT_MSG(false, "why"), CheckFailure);
}

// --------------------------------------------------------- PackedBits

TEST(PackedBitsAudit, CleanBitsetPasses)
{
    PackedBits bits(70);
    bits.set(0);
    bits.set(69);
    EXPECT_NO_THROW(bits.audit());
}

TEST(PackedBitsAudit, CorruptedTailWordThrows)
{
    PackedBits bits(70);
    bits.set(3);
    // Raw data() write past size(): bit 104 lives in the tail word's
    // dead zone, exactly what whole-word reductions must never see.
    bits.data()[1] |= uint64_t(1) << 40;
    EXPECT_THROW(bits.audit(), CheckFailure);
    EXPECT_THROW(
        {
            try {
                bits.audit();
            } catch (const CheckFailure &failure) {
                EXPECT_NE(std::string(failure.what()).find(">= size()"),
                          std::string::npos);
                throw;
            }
        },
        CheckFailure);
}

// ------------------------------------------------- matcher slot audit

TEST(MatcherAudit, ResetRestoresSlotsAcrossShrinkAndGrow)
{
    ScopedAuditLevel deep(AuditLevel::Deep);  // reset() self-audits
    MaxWeightMatching matcher;
    matcher.reset(6);
    matcher.set_weight(0, 1, 5);
    matcher.set_weight(2, 3, 4);
    matcher.set_weight(4, 5, 3);
    matcher.set_weight(1, 2, 7);
    matcher.solve();  // may shrink blossoms, rewriting slot endpoints

    matcher.reset(4);  // shrink: reuse path
    EXPECT_NO_THROW(matcher.audit_slots(true));
    matcher.set_weight(0, 1, 2);
    matcher.set_weight(2, 3, 2);
    matcher.solve();

    matcher.reset(8);  // grow: reallocation path
    EXPECT_NO_THROW(matcher.audit_slots(true));
}

// --------------------------------------------------- off-chip queue

TEST(OffchipQueueAudit, CleanThroughBackloggedOperation)
{
    OffchipQueue queue(OffchipQueueConfig{1, 2, 0});
    EXPECT_NO_THROW(queue.audit());
    // Burst of 3 against bandwidth 1 builds real backlog; then drain.
    const uint64_t fresh[] = {3, 0, 1, 0, 0, 0, 0};
    for (const uint64_t f : fresh) {
        queue.step(f);
        EXPECT_NO_THROW(queue.audit());
    }
    EXPECT_EQ(queue.enqueued(), 4u);
    EXPECT_EQ(queue.enqueued(), queue.served() + queue.backlog());
    EXPECT_EQ(queue.served(), queue.landed() + queue.in_flight());
}

// ------------------------------------------------- shared service

SharedOffchipService::Request
oracle_request(const RotatedSurfaceCode &code, int owner, int half)
{
    SharedOffchipService::Request request;
    request.owner = owner;
    request.half = half;
    request.tier_index = 1;
    request.oracle = true;
    request.payload.assign(static_cast<size_t>(code.num_data()), 0);
    return request;
}

TEST(SharedServiceAudit, DoubleEnqueuePerHalfThrowsAtBasic)
{
    ScopedAuditLevel basic(AuditLevel::Basic);
    const RotatedSurfaceCode code(3);
    SharedOffchipService service(code, TierChainConfig::legacy(),
                                 OffchipQueueConfig{1, 2, 0});
    service.enqueue(oracle_request(code, 0, 0));
    service.enqueue(oracle_request(code, 0, 1));  // other half: fine
    service.enqueue(oracle_request(code, 1, 0));  // other owner: fine
    EXPECT_THROW(service.enqueue(oracle_request(code, 0, 0)),
                 CheckFailure);
    EXPECT_NO_THROW(service.audit());
}

TEST(SharedServiceAudit, BrokenFifoOrderIsDetected)
{
    const RotatedSurfaceCode code(3);
    SharedOffchipService service(code, TierChainConfig::legacy(),
                                 OffchipQueueConfig{1, 2, 0});
    service.enqueue(oracle_request(code, 0, 0));
    service.enqueue(oracle_request(code, 1, 0));
    EXPECT_NO_THROW(service.audit());
    OffchipServiceTestPeer::swap_oldest_waiting(service);
    EXPECT_THROW(service.audit(), CheckFailure);
}

// --------------------------------------------- single-thread owner

TEST(SingleThreadOwner, SecondThreadOnPooledScratchThrows)
{
    ScopedAuditLevel basic(AuditLevel::Basic);
    const RotatedSurfaceCode code(3);
    TierChain chain(code, CheckType::X, TierChainConfig::legacy());
    const std::vector<uint8_t> zeros(
        static_cast<size_t>(code.num_checks(CheckType::X)), 0);
    chain.decode_syndrome(zeros);  // binds ownership to this thread

    bool threw = false;
    std::thread intruder([&chain, &zeros, &threw] {
        try {
            chain.decode_syndrome(zeros);
        } catch (const CheckFailure &) {
            threw = true;
        }
    });
    intruder.join();
    EXPECT_TRUE(threw);
    // The bound owner keeps working.
    EXPECT_NO_THROW(chain.decode_syndrome(zeros));
}

TEST(SingleThreadOwner, InactiveWhenAuditingIsOff)
{
    ScopedAuditLevel off(AuditLevel::Off);
    const RotatedSurfaceCode code(3);
    TierChain chain(code, CheckType::X, TierChainConfig::legacy());
    const std::vector<uint8_t> zeros(
        static_cast<size_t>(code.num_checks(CheckType::X)), 0);
    chain.decode_syndrome(zeros);
    bool threw = false;
    std::thread visitor([&chain, &zeros, &threw] {
        try {
            chain.decode_syndrome(zeros);
        } catch (const CheckFailure &) {
            threw = true;
        }
    });
    visitor.join();
    EXPECT_FALSE(threw);
}

// ---------------------------------------------- distance-table audit

TEST(DistanceAudit, DeepAuditPassesOnRealTables)
{
    ScopedAuditLevel deep(AuditLevel::Deep);  // ctor self-audits
    const RotatedSurfaceCode code(5);
    for (const CheckType type : {CheckType::X, CheckType::Z}) {
        const CheckGraphDistances &distances = code.check_distances(type);
        EXPECT_NO_THROW(distances.audit(code, type));
    }
}

// --------------------------------------------------- scenario knob

TEST(ScenarioAudit, GrammarRoundTripsAndRejects)
{
    const ScenarioSpec spec =
        ScenarioSpec::parse("kind=lifetime,d=5,audit=deep");
    EXPECT_EQ(spec.engine.audit, static_cast<int>(AuditLevel::Deep));
    const std::string rendered = spec.to_string();
    EXPECT_NE(rendered.find("audit=deep"), std::string::npos);
    EXPECT_EQ(ScenarioSpec::parse(rendered), spec);

    // Default: no audit token, level untouched (-1 sentinel).
    const ScenarioSpec plain = ScenarioSpec::parse("kind=lifetime");
    EXPECT_EQ(plain.engine.audit, -1);
    EXPECT_EQ(plain.to_string().find("audit="), std::string::npos);

    ScenarioSpec out;
    std::string error;
    EXPECT_FALSE(ScenarioSpec::try_parse("audit=paranoid", &out, &error));
    EXPECT_NE(error.find("audit"), std::string::npos);
}

TEST(ScenarioAudit, MetricsAreBitIdenticalAcrossAuditLevels)
{
    ScenarioSpec spec =
        ScenarioSpec::parse("kind=lifetime,d=3,p=5e-3,cycles=300");
    spec.engine.audit = static_cast<int>(AuditLevel::Off);
    Report off = run_scenario(spec);
    spec.engine.audit = static_cast<int>(AuditLevel::Deep);
    Report deep = run_scenario(spec);
    // Audits consume no randomness and alter no metrics: the whole
    // metrics subtree (counters included) must match bit-for-bit.
    EXPECT_EQ(off.child("metrics").to_json(),
              deep.child("metrics").to_json());
}

} // namespace
} // namespace btwc
