/**
 * @file
 * Tests for the Clique decoder and the measurement filter: exhaustive
 * single-error decoding, the Fig. 5 boundary special cases, the Fig. 8
 * scenarios, gate-level decision consistency, and the key §4.4 claim
 * that Clique's trivial decodes are equivalent to MWPM's.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/clique.hpp"
#include "core/filter.hpp"
#include "matching/mwpm.hpp"
#include "surface/frame.hpp"
#include "surface/lattice.hpp"

namespace btwc {
namespace {

std::vector<uint8_t>
perfect_syndrome(const RotatedSurfaceCode & /*code*/, const ErrorFrame &frame)
{
    std::vector<uint8_t> syndrome;
    frame.measure_perfect(syndrome);
    return syndrome;
}

TEST(Clique, AllZerosVerdict)
{
    const RotatedSurfaceCode code(5);
    const CliqueDecoder clique(code, CheckType::Z);
    std::vector<uint8_t> syndrome(code.num_checks(CheckType::Z), 0);
    const auto out = clique.decode(syndrome);
    EXPECT_EQ(out.verdict, CliqueVerdict::AllZeros);
    EXPECT_TRUE(out.corrections.empty());
}

class CliqueSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CliqueSweep, EverySingleErrorIsTrivialAndCorrected)
{
    const int d = GetParam();
    const RotatedSurfaceCode code(d);
    for (const CheckType err : {CheckType::X, CheckType::Z}) {
        const CliqueDecoder clique(code, detector_of_error(err));
        for (int q = 0; q < code.num_data(); ++q) {
            ErrorFrame frame(code, err);
            frame.flip(q);
            const auto out =
                clique.decode(perfect_syndrome(code, frame));
            ASSERT_EQ(out.verdict, CliqueVerdict::Trivial)
                << "q=" << q << " type=" << check_type_name(err);
            frame.apply(out.corrections);
            ASSERT_TRUE(frame.syndrome_clear()) << "q=" << q;
            ASSERT_FALSE(frame.logical_flipped()) << "q=" << q;
        }
    }
}

TEST_P(CliqueSweep, TrivialPairsMatchMwpmExactly)
{
    // Fig. 8a: for every two-error pattern Clique declares trivial,
    // its on-chip correction must have the same logical action as the
    // off-chip MWPM decode of the same syndrome. (For weight-2 errors
    // beyond the half-distance guarantee -- e.g. d = 3 -- both
    // decoders fail together, which is exactly the §4.4 claim.)
    const int d = GetParam();
    const RotatedSurfaceCode code(d);
    const CheckType err = CheckType::X;
    const CheckType det = detector_of_error(err);
    const CliqueDecoder clique(code, det);
    const MwpmDecoder mwpm(code, det);
    int trivial_pairs = 0;
    for (int q1 = 0; q1 < code.num_data(); ++q1) {
        for (int q2 = q1 + 1; q2 < code.num_data(); ++q2) {
            ErrorFrame frame(code, err);
            frame.flip(q1);
            frame.flip(q2);
            const auto syndrome = perfect_syndrome(code, frame);
            const auto out = clique.decode(syndrome);
            if (out.verdict != CliqueVerdict::Trivial) {
                continue;
            }
            ++trivial_pairs;
            ErrorFrame mwpm_frame = frame;
            frame.apply(out.corrections);
            mwpm_frame.apply_mask(
                mwpm.decode_syndrome(syndrome).correction);
            ASSERT_TRUE(frame.syndrome_clear())
                << "q1=" << q1 << " q2=" << q2;
            ASSERT_TRUE(mwpm_frame.syndrome_clear())
                << "q1=" << q1 << " q2=" << q2;
            ASSERT_EQ(frame.logical_flipped(),
                      mwpm_frame.logical_flipped())
                << "q1=" << q1 << " q2=" << q2;
            if (d >= 5) {
                // Within half-distance the decode must also be right.
                ASSERT_FALSE(frame.logical_flipped())
                    << "q1=" << q1 << " q2=" << q2;
            }
        }
    }
    EXPECT_GT(trivial_pairs, 0);
}

TEST_P(CliqueSweep, ChainsSharingACheckAreComplex)
{
    // Fig. 8c: two errors on the same check cancel its parity and
    // leave isolated fired endpoints -> COMPLEX.
    const int d = GetParam();
    const RotatedSurfaceCode code(d);
    const CheckType err = CheckType::X;
    const CheckType det = detector_of_error(err);
    const CliqueDecoder clique(code, det);
    int chains = 0;
    for (int c = 0; c < code.num_checks(det); ++c) {
        const Check &chk = code.check(det, c);
        if (chk.data.size() < 4) {
            continue;  // boundary checks: some 2-chains stay decodable
        }
        // Pick two data qubits of this interior check that belong to
        // two *different* other checks (a genuine length-2 chain).
        for (size_t i = 0; i < chk.data.size(); ++i) {
            for (size_t j = i + 1; j < chk.data.size(); ++j) {
                ErrorFrame frame(code, err);
                frame.flip(chk.data[i]);
                frame.flip(chk.data[j]);
                const auto syndrome = perfect_syndrome(code, frame);
                if (!syndrome[c]) {
                    const auto out = clique.decode(syndrome);
                    if (out.verdict == CliqueVerdict::AllZeros) {
                        // Both errors were boundary half-edges of this
                        // check: the pattern is a stabilizer (invisible
                        // and harmless for this error type).
                        ASSERT_TRUE(frame.syndrome_clear());
                        ASSERT_FALSE(frame.logical_flipped());
                        continue;
                    }
                    if (out.verdict == CliqueVerdict::Trivial) {
                        // Permitted only if the local fix matches the
                        // MWPM decode of the same syndrome (both may
                        // fail on beyond-half-distance errors).
                        const MwpmDecoder mwpm(code, det);
                        ErrorFrame mwpm_frame = frame;
                        frame.apply(out.corrections);
                        mwpm_frame.apply_mask(
                            mwpm.decode_syndrome(syndrome).correction);
                        ASSERT_TRUE(frame.syndrome_clear());
                        ASSERT_TRUE(mwpm_frame.syndrome_clear());
                        ASSERT_EQ(frame.logical_flipped(),
                                  mwpm_frame.logical_flipped());
                    } else {
                        ++chains;
                    }
                }
            }
        }
    }
    if (d >= 5) {
        // At d = 3 every check borders the boundary, so all 2-chains
        // admit a trivial boundary explanation; from d = 5 on, genuine
        // COMPLEX chains must appear.
        EXPECT_GT(chains, 0);
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, CliqueSweep,
                         ::testing::Values(3, 5, 7, 9, 11));

TEST(Clique, IsolatedInteriorDefectIsComplex)
{
    // Fig. 8d: a single fired interior check (sticky measurement error
    // signature) must be handed off-chip.
    const RotatedSurfaceCode code(7);
    const CheckType det = CheckType::Z;
    const CliqueDecoder clique(code, det);
    for (int c = 0; c < code.num_checks(det); ++c) {
        if (!code.boundary_data(det, c).empty()) {
            continue;
        }
        std::vector<uint8_t> syndrome(code.num_checks(det), 0);
        syndrome[c] = 1;
        const auto out = clique.decode(syndrome);
        EXPECT_EQ(out.verdict, CliqueVerdict::Complex) << "check " << c;
    }
}

TEST(Clique, BoundaryCliqueAloneIsTrivial)
{
    // Fig. 5 special cases: a lone fired boundary clique (1+1 or 1+2)
    // corrects one of its boundary data qubits.
    const RotatedSurfaceCode code(7);
    const CheckType det = CheckType::Z;
    const CliqueDecoder clique(code, det);
    int tested = 0;
    for (int c = 0; c < code.num_checks(det); ++c) {
        const auto &bdata = code.boundary_data(det, c);
        if (bdata.empty()) {
            continue;
        }
        ++tested;
        std::vector<uint8_t> syndrome(code.num_checks(det), 0);
        syndrome[c] = 1;
        const auto out = clique.decode(syndrome);
        ASSERT_EQ(out.verdict, CliqueVerdict::Trivial) << "check " << c;
        ASSERT_EQ(out.corrections.size(), 1u);
        // The fix must be one of the clique's boundary qubits, and
        // either choice must fully cancel the firing.
        EXPECT_TRUE(std::find(bdata.begin(), bdata.end(),
                              out.corrections[0]) != bdata.end());
        ErrorFrame frame(code, CheckType::X);
        frame.flip(out.corrections[0]);
        auto check_syndrome = perfect_syndrome(code, frame);
        EXPECT_EQ(check_syndrome[c], 1);
        int weight = 0;
        for (const uint8_t s : check_syndrome) {
            weight += s;
        }
        EXPECT_EQ(weight, 1);
    }
    EXPECT_GT(tested, 0);
}

TEST(Clique, BoundaryCliqueWithTwoFiredNeighborsIsComplex)
{
    // The 1+2 clique with both neighbors fired (even, nonzero parity)
    // must raise COMPLEX.
    const RotatedSurfaceCode code(7);
    const CheckType det = CheckType::Z;
    const CliqueDecoder clique(code, det);
    bool found = false;
    for (int c = 0; c < code.num_checks(det); ++c) {
        const auto &nbrs = code.clique_neighbors(det, c);
        if (nbrs.size() != 2 || code.boundary_data(det, c).size() != 2) {
            continue;
        }
        std::vector<uint8_t> syndrome(code.num_checks(det), 0);
        syndrome[c] = 1;
        syndrome[nbrs[0].check] = 1;
        syndrome[nbrs[1].check] = 1;
        EXPECT_TRUE(clique.clique_is_complex(c, syndrome));
        const auto out = clique.decode(syndrome);
        EXPECT_EQ(out.verdict, CliqueVerdict::Complex);
        found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Clique, GateLevelDecisionMatchesDecode)
{
    const RotatedSurfaceCode code(5);
    const CheckType det = CheckType::Z;
    const CliqueDecoder clique(code, det);
    Rng rng(99);
    for (int iter = 0; iter < 500; ++iter) {
        std::vector<uint8_t> syndrome(code.num_checks(det), 0);
        for (auto &s : syndrome) {
            s = rng.bernoulli(0.15) ? 1 : 0;
        }
        bool any_complex = false;
        for (int c = 0; c < code.num_checks(det); ++c) {
            any_complex |= clique.clique_is_complex(c, syndrome);
        }
        const auto out = clique.decode(syndrome);
        EXPECT_EQ(any_complex, out.verdict == CliqueVerdict::Complex);
    }
}

TEST(Clique, ThreeFiredNeighborsOddParityTrivial)
{
    // Odd parity of three: all three shared qubits are corrected.
    const RotatedSurfaceCode code(7);
    const CheckType det = CheckType::Z;
    const CheckType err = CheckType::X;
    const CliqueDecoder clique(code, det);
    bool found = false;
    for (int c = 0; c < code.num_checks(det) && !found; ++c) {
        const auto &nbrs = code.clique_neighbors(det, c);
        if (nbrs.size() != 4) {
            continue;
        }
        // Build the error pattern: three shared data qubits flipped.
        ErrorFrame frame(code, err);
        frame.flip(nbrs[0].shared_data);
        frame.flip(nbrs[1].shared_data);
        frame.flip(nbrs[2].shared_data);
        const auto syndrome = perfect_syndrome(code, frame);
        if (!syndrome[c]) {
            continue;  // parity cancelled some other way
        }
        const auto out = clique.decode(syndrome);
        if (out.verdict != CliqueVerdict::Trivial) {
            continue;  // neighbors may interact elsewhere; skip
        }
        frame.apply(out.corrections);
        EXPECT_TRUE(frame.syndrome_clear());
        EXPECT_FALSE(frame.logical_flipped());
        found = true;
    }
    EXPECT_TRUE(found);
}

class CliqueMwpmEquivalence
    : public ::testing::TestWithParam<std::pair<int, double>>
{
};

TEST_P(CliqueMwpmEquivalence, TrivialDecodesMatchMwpmLogicalAction)
{
    // §4.4: whenever Clique declares a signature trivial, its local
    // correction must be *logically equivalent* to the MWPM decode of
    // the same syndrome (identical residual up to stabilizers).
    const auto [d, p] = GetParam();
    const RotatedSurfaceCode code(d);
    const CheckType err = CheckType::X;
    const CheckType det = detector_of_error(err);
    const CliqueDecoder clique(code, det);
    const MwpmDecoder mwpm(code, det);
    Rng rng(31 + d);
    int trivial_cases = 0;
    for (int iter = 0; iter < 600; ++iter) {
        ErrorFrame clique_frame(code, err);
        clique_frame.inject(p, rng);
        const auto syndrome = perfect_syndrome(code, clique_frame);
        const auto out = clique.decode(syndrome);
        if (out.verdict != CliqueVerdict::Trivial) {
            continue;
        }
        ++trivial_cases;
        ErrorFrame mwpm_frame = clique_frame;
        clique_frame.apply(out.corrections);
        const auto fix = mwpm.decode_syndrome(syndrome);
        mwpm_frame.apply_mask(fix.correction);

        ASSERT_TRUE(clique_frame.syndrome_clear());
        ASSERT_TRUE(mwpm_frame.syndrome_clear());
        ASSERT_EQ(clique_frame.logical_flipped(),
                  mwpm_frame.logical_flipped())
            << "d=" << d << " iter=" << iter;
    }
    EXPECT_GT(trivial_cases, 50);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CliqueMwpmEquivalence,
    ::testing::Values(std::make_pair(5, 0.01), std::make_pair(5, 0.03),
                      std::make_pair(7, 0.01), std::make_pair(9, 0.005),
                      std::make_pair(11, 0.003)));

TEST(MeasurementFilter, TransientFlipSuppressed)
{
    MeasurementFilter filter(4, 2);
    std::vector<uint8_t> quiet(4, 0);
    std::vector<uint8_t> blip = {0, 1, 0, 0};
    filter.push(quiet);
    const auto &after_blip = filter.push(blip);
    EXPECT_EQ(after_blip[1], 0);  // not yet persistent
    const auto &after_quiet = filter.push(quiet);
    EXPECT_EQ(after_quiet[1], 0);  // it vanished: measurement error
}

TEST(MeasurementFilter, PersistentFlipPasses)
{
    MeasurementFilter filter(4, 2);
    std::vector<uint8_t> fired = {0, 1, 0, 0};
    filter.push(fired);
    const auto &second = filter.push(fired);
    EXPECT_EQ(second[1], 1);
    EXPECT_EQ(second[0], 0);
}

TEST(MeasurementFilter, WarmupIsAllZero)
{
    MeasurementFilter filter(2, 3);
    std::vector<uint8_t> fired = {1, 1};
    EXPECT_EQ(filter.push(fired)[0], 0);
    EXPECT_EQ(filter.push(fired)[0], 0);
    EXPECT_EQ(filter.push(fired)[0], 1);  // persisted three rounds
}

TEST(MeasurementFilter, SingleRoundPassthrough)
{
    MeasurementFilter filter(3, 1);
    std::vector<uint8_t> raw = {1, 0, 1};
    const auto &out = filter.push(raw);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[1], 0);
    EXPECT_EQ(out[2], 1);
}

TEST(MeasurementFilter, ResetClearsHistory)
{
    MeasurementFilter filter(2, 2);
    std::vector<uint8_t> fired = {1, 1};
    filter.push(fired);
    filter.push(fired);
    EXPECT_EQ(filter.filtered()[0], 1);
    filter.reset();
    EXPECT_EQ(filter.push(fired)[0], 0);  // warmup restarts
}

TEST(MeasurementFilter, LongerWindowsSuppressLongerGlitches)
{
    MeasurementFilter filter(1, 3);
    std::vector<uint8_t> on = {1};
    std::vector<uint8_t> off = {0};
    filter.push(off);
    filter.push(on);
    filter.push(on);
    EXPECT_EQ(filter.filtered()[0], 0);  // two rounds < window of 3
    filter.push(on);
    EXPECT_EQ(filter.filtered()[0], 1);
}

} // namespace
} // namespace btwc
