/**
 * @file
 * Unit tests for the common utilities: RNG, statistics, tables, flags.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace btwc {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += a.next_u64() == b.next_u64() ? 1 : 0;
    }
    EXPECT_LT(equal, 4);
}

TEST(Rng, DoublesInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.next_double();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowIsUniform)
{
    Rng rng(11);
    const uint64_t bound = 10;
    std::vector<int> counts(bound, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const uint64_t v = rng.next_below(bound);
        ASSERT_LT(v, bound);
        ++counts[v];
    }
    for (const int c : counts) {
        EXPECT_NEAR(c, n / static_cast<double>(bound), 500);
    }
}

TEST(Rng, NextBelowDegenerateBounds)
{
    Rng rng(3);
    EXPECT_EQ(rng.next_below(0), 0u);
    EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(13);
    const double p = 0.137;
    const int n = 200000;
    int hits = 0;
    for (int i = 0; i < n; ++i) {
        hits += rng.bernoulli(p) ? 1 : 0;
    }
    EXPECT_NEAR(hits / static_cast<double>(n), p, 0.005);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(17);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, GeometricMeanMatchesTheory)
{
    Rng rng(19);
    const double p = 0.2;
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += static_cast<double>(rng.geometric(p));
    }
    // Mean of failures-before-success is (1-p)/p = 4.
    EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.1);
}

class RngBinomial : public ::testing::TestWithParam<std::pair<int, double>>
{
};

TEST_P(RngBinomial, MeanAndVarianceMatchTheory)
{
    const auto [n_trials, p] = GetParam();
    Rng rng(23);
    RunningStats stats;
    const int samples = 30000;
    for (int i = 0; i < samples; ++i) {
        const uint64_t v = rng.binomial(n_trials, p);
        ASSERT_LE(v, static_cast<uint64_t>(n_trials));
        stats.add(static_cast<double>(v));
    }
    const double mean = n_trials * p;
    const double var = n_trials * p * (1.0 - p);
    EXPECT_NEAR(stats.mean(), mean, 5.0 * std::sqrt(var / samples) + 1e-9);
    EXPECT_NEAR(stats.variance(), var, 0.1 * var + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RngBinomial,
    ::testing::Values(std::make_pair(1000, 0.001),
                      std::make_pair(1000, 0.01),
                      std::make_pair(1000, 0.05),
                      std::make_pair(1000, 0.3),
                      std::make_pair(1000, 0.7),
                      std::make_pair(100, 0.5),
                      std::make_pair(10, 0.09)));

TEST(Rng, BinomialEdgeCases)
{
    Rng rng(29);
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(100, 0.0), 0u);
    EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(RunningStats, MeanAndVariance)
{
    RunningStats stats;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stats.add(v);
    }
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stats.sum(), 40.0, 1e-12);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats stats;
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.variance(), 0.0);
}

TEST(CountHistogram, PercentilesExact)
{
    CountHistogram hist;
    for (uint64_t v = 1; v <= 100; ++v) {
        hist.add(v);
    }
    EXPECT_EQ(hist.total(), 100u);
    EXPECT_EQ(hist.percentile(0.5), 50u);
    EXPECT_EQ(hist.percentile(0.99), 99u);
    EXPECT_EQ(hist.percentile(1.0), 100u);
    EXPECT_EQ(hist.percentile(0.0), 1u);
    EXPECT_EQ(hist.max_value(), 100u);
    EXPECT_DOUBLE_EQ(hist.mean(), 50.5);
}

TEST(CountHistogram, WeightsAndCdf)
{
    CountHistogram hist;
    hist.add(0, 90);
    hist.add(5, 10);
    EXPECT_EQ(hist.percentile(0.5), 0u);
    EXPECT_EQ(hist.percentile(0.95), 5u);
    EXPECT_DOUBLE_EQ(hist.cdf(0), 0.9);
    EXPECT_DOUBLE_EQ(hist.cdf(4), 0.9);
    EXPECT_DOUBLE_EQ(hist.cdf(5), 1.0);
}

TEST(CountHistogram, EmptyHistogram)
{
    CountHistogram hist;
    EXPECT_EQ(hist.percentile(0.5), 0u);
    EXPECT_EQ(hist.max_value(), 0u);
    EXPECT_EQ(hist.mean(), 0.0);
}

TEST(WilsonInterval, BracketsTheProportion)
{
    const auto [lo, hi] = wilson_interval(50, 100);
    EXPECT_LT(lo, 0.5);
    EXPECT_GT(hi, 0.5);
    EXPECT_GT(lo, 0.35);
    EXPECT_LT(hi, 0.65);
}

TEST(WilsonInterval, ZeroTrials)
{
    const auto [lo, hi] = wilson_interval(0, 0);
    EXPECT_EQ(lo, 0.0);
    EXPECT_EQ(hi, 1.0);
}

TEST(WilsonInterval, ZeroSuccessesStillPositiveUpper)
{
    const auto [lo, hi] = wilson_interval(0, 1000);
    EXPECT_EQ(lo, 0.0);
    EXPECT_GT(hi, 0.0);
    EXPECT_LT(hi, 0.01);
}

TEST(PercentileOf, NearestRank)
{
    std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile_of(values, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(percentile_of(values, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile_of(values, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile_of({}, 0.5), 0.0);
}

TEST(Table, AlignsAndSeparates)
{
    Table table({"a", "bbb"});
    table.add_row({"1", "2"});
    table.add_row({"333", "4"});
    const std::string out = table.to_string();
    EXPECT_NE(out.find("a    bbb"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table table({"x", "y"});
    table.add_row({"1", "2"});
    EXPECT_EQ(table.to_csv(), "x,y\n1,2\n");
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::sci(0.000123, 1), "1.2e-04");
}

TEST(Flags, ParsesAllForms)
{
    const char *argv[] = {"prog", "pos", "--alpha=3", "--beta", "4.5",
                          "--list=1,2,3", "--gamma"};
    Flags flags(7, argv);
    EXPECT_EQ(flags.get_int("alpha", 0), 3);
    EXPECT_DOUBLE_EQ(flags.get_double("beta", 0.0), 4.5);
    EXPECT_TRUE(flags.get_bool("gamma"));
    EXPECT_FALSE(flags.get_bool("missing"));
    EXPECT_EQ(flags.positional().size(), 1u);
    EXPECT_EQ(flags.positional()[0], "pos");
    const auto list = flags.get_int_list("list", {});
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[2], 3);
}

TEST(Flags, DefaultsWhenAbsent)
{
    const char *argv[] = {"prog"};
    Flags flags(1, argv);
    EXPECT_EQ(flags.get_int("n", 17), 17);
    EXPECT_EQ(flags.get("s", "dflt"), "dflt");
    const auto dl = flags.get_double_list("d", {1.0, 2.0});
    ASSERT_EQ(dl.size(), 2u);
}

TEST(Flags, TryParseRejectsEmptyFlagNames)
{
    // Status + diagnostic, never a process exit: libraries and tests
    // can exercise malformed argv (the exit(2) lives in flags_or_exit
    // / binary mains only).
    for (const char *bad : {"--", "--=value"}) {
        SCOPED_TRACE(bad);
        const char *argv[] = {"prog", bad};
        Flags flags;
        std::string error;
        EXPECT_FALSE(Flags::try_parse(2, argv, &flags, &error));
        EXPECT_NE(error.find("empty flag name"), std::string::npos);
        EXPECT_THROW(Flags(2, argv), std::invalid_argument);
    }
}

TEST(Flags, MalformedValuesRecordDiagnosticsAndReturnDefaults)
{
    const char *argv[] = {"prog", "--cycles=10k", "--p=fast",
                          "--csv=maybe", "--list=1,x,3"};
    Flags flags(5, argv);
    EXPECT_TRUE(flags.ok());
    EXPECT_EQ(flags.get_int("cycles", 7), 7);
    EXPECT_FALSE(flags.ok());  // first diagnostic recorded
    EXPECT_NE(flags.error().find("--cycles"), std::string::npos);
    EXPECT_NE(flags.error().find("10k"), std::string::npos);
    EXPECT_DOUBLE_EQ(flags.get_double("p", 0.5), 0.5);
    EXPECT_FALSE(flags.get_bool("csv", false));
    const auto list = flags.get_int_list("list", {9});
    ASSERT_EQ(list.size(), 1u);
    EXPECT_EQ(list[0], 9);
    // The first diagnostic wins; later ones do not overwrite it.
    EXPECT_NE(flags.error().find("--cycles"), std::string::npos);
}

TEST(Flags, IntegerOverflowIsMalformedNotSaturated)
{
    // strtoll's silent ERANGE saturation to INT64_MAX must surface as
    // a diagnostic, not a ~9.2e18-cycle run.
    const char *argv[] = {"prog", "--cycles=99999999999999999999"};
    Flags flags(2, argv);
    EXPECT_EQ(flags.get_int("cycles", 5), 5);
    EXPECT_FALSE(flags.ok());
    EXPECT_NE(flags.error().find("--cycles"), std::string::npos);
}

TEST(Flags, StrictBooleansAcceptTheUsualSpellings)
{
    const char *argv[] = {"prog", "--a", "--b=false", "--c=1",
                          "--d=no", "--e=yes"};
    Flags flags(6, argv);
    EXPECT_TRUE(flags.get_bool("a"));
    EXPECT_FALSE(flags.get_bool("b", true));
    EXPECT_TRUE(flags.get_bool("c"));
    EXPECT_FALSE(flags.get_bool("d", true));
    EXPECT_TRUE(flags.get_bool("e"));
    EXPECT_TRUE(flags.ok());
}

TEST(Flags, NegativeNumbersAreValuesNotFlags)
{
    const char *argv[] = {"prog", "--threads", "-3", "--x=-2.5"};
    Flags flags(4, argv);
    EXPECT_EQ(flags.get_int("threads", 1), -3);
    EXPECT_DOUBLE_EQ(flags.get_double("x", 0.0), -2.5);
    EXPECT_TRUE(flags.ok());
}

} // namespace
} // namespace btwc
