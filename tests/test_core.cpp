/**
 * @file
 * Tests for the BTWC system plumbing: bandwidth allocation, the stall
 * controller's queueing semantics, and the full per-qubit pipeline.
 */

#include <gtest/gtest.h>

#include "core/bandwidth.hpp"
#include "core/stall.hpp"
#include "core/system.hpp"
#include "surface/lattice.hpp"
#include "surface/noise.hpp"

namespace btwc {
namespace {

TEST(BandwidthAllocator, PercentileProvisioning)
{
    BandwidthAllocator alloc;
    for (int i = 0; i < 99; ++i) {
        alloc.record_cycle(2);
    }
    alloc.record_cycle(50);
    EXPECT_EQ(alloc.provision(0.5), 2u);
    EXPECT_EQ(alloc.provision(0.99), 2u);
    EXPECT_EQ(alloc.provision(1.0), 50u);
    EXPECT_NEAR(alloc.mean_demand(), (99 * 2 + 50) / 100.0, 1e-12);
}

TEST(BandwidthAllocator, NeverProvisionsZero)
{
    BandwidthAllocator alloc;
    for (int i = 0; i < 100; ++i) {
        alloc.record_cycle(0);
    }
    EXPECT_EQ(alloc.provision(0.99), 1u);
}

TEST(StallController, NoOverflowNoStalls)
{
    StallController queue(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(queue.step(3));
    }
    EXPECT_EQ(queue.stall_cycles(), 0u);
    EXPECT_EQ(queue.work_cycles(), 100u);
    EXPECT_EQ(queue.backlog(), 0u);
    EXPECT_DOUBLE_EQ(queue.execution_time_increase(), 0.0);
}

TEST(StallController, OverflowStallsNextCycle)
{
    StallController queue(2);
    EXPECT_TRUE(queue.step(5));   // demand 5 > 2: 3 carry over
    EXPECT_EQ(queue.backlog(), 3u);
    EXPECT_TRUE(queue.stall_pending());
    EXPECT_FALSE(queue.step(0));  // this cycle is the stall
    EXPECT_EQ(queue.backlog(), 1u);
    EXPECT_FALSE(queue.step(0));  // backlog still draining
    EXPECT_EQ(queue.backlog(), 0u);
    EXPECT_TRUE(queue.step(0));
    EXPECT_EQ(queue.stall_cycles(), 2u);
    EXPECT_EQ(queue.work_cycles(), 2u);
}

TEST(StallController, ConservationOfDecodes)
{
    StallController queue(3);
    const uint64_t demands[] = {1, 7, 0, 2, 9, 0, 0, 0, 4, 1};
    uint64_t total = 0;
    for (const uint64_t d : demands) {
        queue.step(d);
        total += d;
    }
    EXPECT_EQ(queue.served() + queue.backlog(), total);
}

TEST(StallController, PersistentOverloadAccumulates)
{
    // Demand mean above bandwidth: the backlog must grow without
    // bound (the paper's "decode backlog problem", Fig. 9 top).
    StallController queue(2);
    for (int i = 0; i < 1000; ++i) {
        queue.step(3);
    }
    EXPECT_GE(queue.backlog(), 900u);
    EXPECT_GT(queue.stall_cycles(), 990u);
}

TEST(StallController, ExecutionTimeIncreaseMath)
{
    StallController queue(1);
    queue.step(2);  // work, 1 carried
    queue.step(0);  // stall, drains
    queue.step(0);  // work
    queue.step(0);  // work
    EXPECT_EQ(queue.work_cycles(), 3u);
    EXPECT_EQ(queue.stall_cycles(), 1u);
    EXPECT_NEAR(queue.execution_time_increase(), 1.0 / 3.0, 1e-12);
}

TEST(BtwcSystem, NoNoiseMeansAllZeros)
{
    const RotatedSurfaceCode code(5);
    BtwcSystem system(code, NoiseParams::uniform(0.0), SystemConfig{}, 1);
    for (int i = 0; i < 50; ++i) {
        const CycleReport report = system.step();
        EXPECT_EQ(report.verdict, CliqueVerdict::AllZeros);
        EXPECT_FALSE(report.offchip);
        EXPECT_EQ(report.raw_weight, 0);
    }
}

TEST(BtwcSystem, HighNoiseGoesOffchip)
{
    const RotatedSurfaceCode code(9);
    BtwcSystem system(code, NoiseParams::uniform(0.2), SystemConfig{}, 2);
    int offchip = 0;
    for (int i = 0; i < 200; ++i) {
        offchip += system.step().offchip ? 1 : 0;
    }
    EXPECT_GT(offchip, 150);
}

TEST(BtwcSystem, FilterSuppressesMeasurementOnlyNoise)
{
    // Pure measurement noise: the two-round filter should keep almost
    // everything on-chip, while a pass-through (1-round) configuration
    // classifies many cycles as complex.
    const RotatedSurfaceCode code(7);
    const NoiseParams noise{0.0, 0.05};

    SystemConfig filtered_cfg;
    filtered_cfg.filter_rounds = 2;
    BtwcSystem filtered(code, noise, filtered_cfg, 3);

    SystemConfig raw_cfg;
    raw_cfg.filter_rounds = 1;
    BtwcSystem raw(code, noise, raw_cfg, 3);

    int filtered_offchip = 0;
    int raw_offchip = 0;
    const int cycles = 2000;
    for (int i = 0; i < cycles; ++i) {
        filtered_offchip += filtered.step().offchip ? 1 : 0;
        raw_offchip += raw.step().offchip ? 1 : 0;
    }
    EXPECT_LT(filtered_offchip * 10, raw_offchip);
}

TEST(BtwcSystem, MwpmPolicyKeepsSyndromeBounded)
{
    // With real off-chip decoding the *syndrome* must stay near the
    // all-clear point rather than accumulating. (The raw error weight
    // is allowed to drift: corrections are only ever exact modulo
    // stabilizers, and that invisible background is harmless.)
    const RotatedSurfaceCode code(5);
    SystemConfig config;
    config.offchip = OffchipPolicy::Mwpm;
    BtwcSystem system(code, NoiseParams::uniform(0.01), config, 4);
    for (int i = 0; i < 3000; ++i) {
        system.step();
    }
    for (const CheckType err : {CheckType::X, CheckType::Z}) {
        std::vector<uint8_t> syndrome;
        system.frame(err).measure_perfect(syndrome);
        int weight = 0;
        for (const uint8_t s : syndrome) {
            weight += s;
        }
        EXPECT_LT(weight, code.num_checks(detector_of_error(err)) / 3);
        // No logical drift either: decoding is deterministic, so the
        // oscillating residuals cancel instead of walking the logical.
        (void)err;
    }
}

TEST(BtwcSystem, OracleAndMwpmPoliciesAgreeStatistically)
{
    // The Oracle substitution must not shift the classification
    // distribution (it only matters on rare residual-interaction
    // cycles).
    const RotatedSurfaceCode code(5);
    const double p = 5e-3;
    const int cycles = 20000;

    int offchip[2] = {0, 0};
    int zeros[2] = {0, 0};
    const OffchipPolicy policies[2] = {OffchipPolicy::Oracle,
                                       OffchipPolicy::Mwpm};
    for (int which = 0; which < 2; ++which) {
        SystemConfig config;
        config.offchip = policies[which];
        BtwcSystem system(code, NoiseParams::uniform(p), config, 7);
        for (int i = 0; i < cycles; ++i) {
            const CycleReport report = system.step();
            offchip[which] += report.offchip ? 1 : 0;
            zeros[which] +=
                report.verdict == CliqueVerdict::AllZeros ? 1 : 0;
        }
    }
    EXPECT_NEAR(offchip[0] / double(cycles), offchip[1] / double(cycles),
                0.01);
    EXPECT_NEAR(zeros[0] / double(cycles), zeros[1] / double(cycles),
                0.02);
}

TEST(BtwcSystem, TrivialCyclesApplyCorrections)
{
    const RotatedSurfaceCode code(5);
    BtwcSystem system(code, NoiseParams::uniform(2e-3), SystemConfig{}, 9);
    uint64_t trivial = 0;
    uint64_t corrections = 0;
    for (int i = 0; i < 20000; ++i) {
        const CycleReport report = system.step();
        trivial += report.verdict == CliqueVerdict::Trivial ? 1 : 0;
        corrections += static_cast<uint64_t>(report.clique_corrections);
    }
    EXPECT_GT(trivial, 0u);
    EXPECT_GE(corrections, trivial);
}

} // namespace
} // namespace btwc
